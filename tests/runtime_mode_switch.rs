//! Section 5.1's operational claim: "we changed the synchronization
//! method as well as activating/deactivating slipstream at runtime while
//! using the same binary." The analogue here: one compiled program,
//! different runtime environments.

use slipstream::compile::compile;
use slipstream::runner::run_compiled;
use slipstream_openmp::prelude::*;

fn machine() -> MachineConfig {
    let mut m = MachineConfig::paper();
    m.num_cmps = 4;
    m
}

fn program_with_runtime_sync() -> omp_ir::Program {
    let mut b = ProgramBuilder::new("switchable");
    let a = b.shared_array("a", 2048, 8);
    let i = b.var();
    // The program defers everything to the environment.
    b.slipstream(SlipstreamClause {
        sync: SlipSyncType::RuntimeSync,
        tokens: 0,
    });
    b.parallel(move |r| {
        r.par_for(None, i, 0, 2048, move |body| {
            body.load(a, Expr::v(i));
            body.compute(10);
            body.store(a, Expr::v(i));
        });
        r.barrier();
        r.par_for(None, i, 0, 2048, move |body| {
            body.load(a, Expr::v(i));
            body.compute(10);
        });
    });
    b.build()
}

#[test]
fn one_compiled_image_serves_every_runtime_setting() {
    let m = machine();
    let program = program_with_runtime_sync();
    // Compile once — the "binary".
    let map = dsm_sim::AddressMap::new(&m);
    let cp = compile(&program, &map).unwrap();

    let run = |env_value: Option<&str>, mode: ExecMode| {
        let mut env = RuntimeEnv::default();
        if let Some(v) = env_value {
            env.set_var("OMP_SLIPSTREAM", v).unwrap();
        }
        let opts = RunOptions::new(mode).with_machine(m.clone()).with_env(env);
        run_compiled(&cp, "switchable".into(), &opts).unwrap()
    };

    // Same image: single mode, slipstream under three different
    // environment settings.
    let single = run(None, ExecMode::Single);
    let g0 = run(Some("GLOBAL_SYNC,0"), ExecMode::Slipstream);
    let l1 = run(Some("LOCAL_SYNC,1"), ExecMode::Slipstream);
    let off = run(Some("NONE"), ExecMode::Slipstream);

    // All runs perform identical R-side work.
    for r in [&g0, &l1, &off] {
        assert_eq!(r.raw.user_r.loads, single.raw.user_r.loads);
    }
    // The kill switch really disables the A-streams.
    assert_eq!(off.raw.user_a.loads, 0);
    assert!(g0.raw.user_a.loads > 0);
    assert!(l1.raw.user_a.loads > 0);
    // And the synchronization choice is observably different: local-1
    // lets the A-stream lead a session, so its token waits differ.
    assert_ne!(g0.exec_cycles, l1.exec_cycles);
}

#[test]
fn region_override_beats_environment() {
    let m = machine();
    // The region pins LOCAL_SYNC explicitly; only NONE can disable it.
    let mut b = ProgramBuilder::new("pinned");
    let a = b.shared_array("a", 1024, 8);
    let i = b.var();
    b.parallel_with(
        Some(SlipstreamClause {
            sync: SlipSyncType::LocalSync,
            tokens: 1,
        }),
        move |r| {
            r.par_for(None, i, 0, 1024, move |body| {
                body.load(a, Expr::v(i));
            });
        },
    );
    let program = b.build();

    let mut env = RuntimeEnv::default();
    env.set_var("OMP_SLIPSTREAM", "GLOBAL_SYNC,0").unwrap();
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_machine(m.clone())
        .with_env(env);
    let r = run_program(&program, &opts).unwrap();
    assert!(r.raw.user_a.loads > 0, "slipstream active");

    let mut env = RuntimeEnv::default();
    env.set_var("OMP_SLIPSTREAM", "NONE").unwrap();
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_machine(m)
        .with_env(env);
    let r = run_program(&program, &opts).unwrap();
    assert_eq!(r.raw.user_a.loads, 0, "NONE overrides the region clause");
}
