//! Semantic oracle: every NPB kernel, in every execution mode, performs
//! exactly the user-level work the reference tracer predicts.

use npb_kernels::Benchmark;
use omp_ir::trace::trace;
use slipstream_openmp::prelude::*;

fn small_machine() -> MachineConfig {
    let mut m = MachineConfig::paper();
    m.num_cmps = 4;
    m
}

#[test]
fn all_kernels_match_trace_in_single_mode() {
    let m = small_machine();
    for bm in Benchmark::ALL {
        let p = bm.build_tiny();
        let oracle = trace(&p, 4);
        let r = run_program(
            &p,
            &RunOptions::new(ExecMode::Single).with_machine(m.clone()),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", bm.name()));
        assert_eq!(
            r.raw.user_r.loads,
            oracle.total.loads,
            "{} loads",
            bm.name()
        );
        assert_eq!(
            r.raw.user_r.stores,
            oracle.total.stores,
            "{} stores",
            bm.name()
        );
        assert_eq!(
            r.raw.user_r.compute_cycles,
            oracle.total.compute_cycles,
            "{} compute",
            bm.name()
        );
        assert_eq!(r.raw.user_r.io_in, oracle.total.io_in, "{} io", bm.name());
    }
}

#[test]
fn all_kernels_match_trace_in_double_mode() {
    let m = small_machine();
    for bm in Benchmark::ALL {
        let p = bm.build_tiny();
        let oracle = trace(&p, 8); // 4 CMPs x 2 processors
        let r = run_program(
            &p,
            &RunOptions::new(ExecMode::Double).with_machine(m.clone()),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", bm.name()));
        assert_eq!(
            r.raw.user_r.loads,
            oracle.total.loads,
            "{} loads",
            bm.name()
        );
        assert_eq!(
            r.raw.user_r.stores,
            oracle.total.stores,
            "{} stores",
            bm.name()
        );
    }
}

#[test]
fn all_kernels_match_trace_in_slipstream_mode() {
    let m = small_machine();
    for bm in Benchmark::ALL {
        let p = bm.build_tiny();
        let oracle = trace(&p, 4);
        for sync in [SlipSync::G0, SlipSync::L1] {
            let r = run_program(
                &p,
                &RunOptions::new(ExecMode::Slipstream)
                    .with_machine(m.clone())
                    .with_sync(sync),
            )
            .unwrap_or_else(|e| panic!("{} {}: {e}", bm.name(), sync.label()));
            // The R-side performs exactly the program's work.
            assert_eq!(
                r.raw.user_r.loads,
                oracle.total.loads,
                "{} {} R loads",
                bm.name(),
                sync.label()
            );
            assert_eq!(
                r.raw.user_r.stores,
                oracle.total.stores,
                "{} {} R stores",
                bm.name(),
                sync.label()
            );
            // The A-side never performs I/O and never demand-stores to
            // shared memory (every shared store converts or skips).
            assert_eq!(r.raw.user_a.io_in + r.raw.user_a.io_out, 0, "{}", bm.name());
            assert!(
                r.raw.stores_converted + r.raw.stores_skipped > 0,
                "{} A-stream saw shared stores",
                bm.name()
            );
        }
    }
}

#[test]
fn dynamic_schedules_preserve_totals() {
    use omp_ir::node::ScheduleSpec;
    let m = small_machine();
    for bm in Benchmark::ALL {
        if !bm.in_dynamic_experiment() {
            continue;
        }
        let p_static = bm.build_tiny();
        let oracle = trace(&p_static, 4);
        // Rebuild with a dynamic schedule; totals must be identical.
        let p_dyn = match bm {
            Benchmark::Cg => npb_kernels::CgParams::tiny()
                .with_schedule(Some(ScheduleSpec::dynamic(4)))
                .build(),
            Benchmark::Mg => npb_kernels::MgParams::tiny()
                .with_schedule(Some(ScheduleSpec::dynamic(1)))
                .build(),
            Benchmark::Bt => npb_kernels::BtParams::tiny()
                .with_schedule(Some(ScheduleSpec::dynamic(1)))
                .build(),
            Benchmark::Sp => npb_kernels::SpParams::tiny()
                .with_schedule(Some(ScheduleSpec::dynamic(1)))
                .build(),
            Benchmark::Lu => unreachable!(),
        };
        for mode in [ExecMode::Single, ExecMode::Slipstream] {
            let mut o = RunOptions::new(mode).with_machine(m.clone());
            if mode == ExecMode::Slipstream {
                o = o.with_sync(SlipSync::G0);
            }
            let r = run_program(&p_dyn, &o).unwrap();
            assert_eq!(
                r.raw.user_r.loads,
                oracle.total.loads,
                "{} dynamic {mode:?} loads",
                bm.name()
            );
            assert!(r.raw.sched_grabs > 0, "{} used the scheduler", bm.name());
        }
    }
}
