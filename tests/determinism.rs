//! Bit-reproducibility: the simulator is a deterministic discrete-event
//! machine, so identical inputs give identical cycle counts, breakdowns,
//! and classifications — across every kernel and mode.

use npb_kernels::Benchmark;
use slipstream_openmp::prelude::*;

fn machine() -> MachineConfig {
    let mut m = MachineConfig::paper();
    m.num_cmps = 4;
    m
}

#[test]
fn every_kernel_and_mode_is_bit_reproducible() {
    let m = machine();
    for bm in Benchmark::ALL {
        let p = bm.build_tiny();
        for (mode, sync) in [
            (ExecMode::Single, None),
            (ExecMode::Double, None),
            (ExecMode::Slipstream, Some(SlipSync::G0)),
            (ExecMode::Slipstream, Some(SlipSync::L1)),
        ] {
            let mut o = RunOptions::new(mode).with_machine(m.clone());
            o.sync = sync;
            let a = run_program(&p, &o).unwrap();
            let b = run_program(&p, &o).unwrap();
            assert_eq!(a.exec_cycles, b.exec_cycles, "{} {mode:?}", bm.name());
            assert_eq!(
                a.r_breakdown,
                b.r_breakdown,
                "{} {mode:?} breakdown",
                bm.name()
            );
            assert_eq!(a.fills, b.fills, "{} {mode:?} fills", bm.name());
        }
    }
}

#[test]
fn workload_generation_is_seeded() {
    // Two builds of the same benchmark are identical programs.
    let a = Benchmark::Cg.build_paper(None);
    let b = Benchmark::Cg.build_paper(None);
    assert_eq!(a, b);
}

#[test]
fn machine_size_changes_results_but_not_work() {
    let p = Benchmark::Sp.build_tiny();
    let mut m4 = MachineConfig::paper();
    m4.num_cmps = 4;
    let mut m8 = MachineConfig::paper();
    m8.num_cmps = 8;
    let r4 = run_program(&p, &RunOptions::new(ExecMode::Single).with_machine(m4)).unwrap();
    let r8 = run_program(&p, &RunOptions::new(ExecMode::Single).with_machine(m8)).unwrap();
    assert_eq!(
        r4.raw.user_r.loads, r8.raw.user_r.loads,
        "same program work"
    );
    assert_ne!(
        r4.exec_cycles, r8.exec_cycles,
        "different machines, different time"
    );
}
