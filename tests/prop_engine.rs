//! Property-style engine tests: random (but valid) OpenMP-style
//! programs must run to completion in every mode, match the reference
//! tracer's totals, and keep slipstream's R-side semantics identical to
//! single mode. Programs are generated from seeded SplitMix64 streams.

use dsm_sim::SplitMix64;
use omp_ir::expr::{Expr, VarId};
use omp_ir::node::{
    ArrayDecl, ArrayId, Node, Program, Reduction, ReductionOp, ScheduleKind, ScheduleSpec,
};
use omp_ir::trace::trace;
use omp_ir::validate::validate;
use slipstream_openmp::prelude::*;

const N_ARRAY: u64 = 256;
const CASES: u64 = 24;

/// A small affine index expression over the loop variable.
fn index_expr(g: &mut SplitMix64) -> Expr {
    let a = g.range_i64(1, 2);
    let b = g.range_i64(0, 7);
    (Expr::v(VarId(0)) * a + b)
        .max(Expr::c(0))
        .min(Expr::c(N_ARRAY as i64 - 1))
}

fn schedule(g: &mut SplitMix64) -> Option<ScheduleSpec> {
    match g.below(4) {
        0 => None,
        1 => Some(ScheduleSpec {
            kind: ScheduleKind::Static,
            chunk: Some(8),
        }),
        2 => Some(ScheduleSpec::dynamic(16)),
        _ => Some(ScheduleSpec {
            kind: ScheduleKind::Guided,
            chunk: Some(4),
        }),
    }
}

/// A statement valid inside a worksharing body.
fn body_stmt(g: &mut SplitMix64) -> Node {
    match g.below(4) {
        0 => Node::Load {
            array: ArrayId(0),
            index: index_expr(g),
        },
        1 => Node::Store {
            array: ArrayId(0),
            index: index_expr(g),
        },
        2 => Node::Load {
            array: ArrayId(1),
            index: index_expr(g),
        },
        _ => Node::Compute(Expr::c(g.range_i64(1, 19))),
    }
}

fn body_vec(g: &mut SplitMix64, max: u64) -> Vec<Node> {
    let n = 1 + g.below(max);
    (0..n).map(|_| body_stmt(g)).collect()
}

/// A region-level construct, with the same weighting as the original
/// generator (worksharing loops dominate).
fn region_item(g: &mut SplitMix64) -> Node {
    match g.below(11) {
        0..=3 => Node::ParFor {
            sched: schedule(g),
            var: VarId(0),
            begin: Expr::c(0),
            end: Expr::c(N_ARRAY as i64),
            body: Box::new(Node::Seq(body_vec(g, 3))),
            reduction: None,
            nowait: g.chance(0.5),
        },
        4 => Node::ParFor {
            sched: None,
            var: VarId(0),
            begin: Expr::c(0),
            end: Expr::c(N_ARRAY as i64),
            body: Box::new(Node::Seq(body_vec(g, 2))),
            reduction: Some(Reduction {
                op: ReductionOp::Sum,
                target: ArrayId(0),
                index: Expr::c(0),
            }),
            nowait: false,
        },
        5 => Node::Barrier,
        6 => Node::Single(Box::new(Node::Seq(body_vec(g, 2)))),
        7 => Node::Master(Box::new(Node::Seq(body_vec(g, 2)))),
        8 => Node::Critical {
            name: "c".into(),
            body: Box::new(Node::Seq(body_vec(g, 2))),
        },
        9 => Node::Atomic {
            array: ArrayId(0),
            index: index_expr(g),
        },
        _ => {
            let n = 1 + g.below(3);
            Node::Sections((0..n).map(|_| Node::Seq(body_vec(g, 2))).collect())
        }
    }
}

fn arbitrary_program(g: &mut SplitMix64) -> Program {
    let n = 1 + g.below(5);
    let items = (0..n).map(|_| region_item(g)).collect();
    Program {
        name: "prop".into(),
        arrays: vec![
            ArrayDecl {
                name: "s".into(),
                shared: true,
                len: N_ARRAY,
                elem_bytes: 8,
            },
            ArrayDecl {
                name: "p".into(),
                shared: false,
                len: N_ARRAY,
                elem_bytes: 8,
            },
        ],
        tables: vec![],
        num_vars: 1,
        body: Node::Parallel {
            body: Box::new(Node::Seq(items)),
            slipstream: None,
        },
    }
}

fn machine() -> MachineConfig {
    let mut m = MachineConfig::paper();
    m.num_cmps = 4;
    m
}

#[test]
fn random_programs_are_valid() {
    for seed in 0..CASES {
        let p = arbitrary_program(&mut SplitMix64::new(0x9A11D ^ seed));
        validate(&p).unwrap();
    }
}

#[test]
fn single_mode_matches_oracle() {
    for seed in 0..CASES {
        let p = arbitrary_program(&mut SplitMix64::new(0x0AC1E ^ seed));
        let oracle = trace(&p, 4);
        let r = run_program(
            &p,
            &RunOptions::new(ExecMode::Single).with_machine(machine()),
        )
        .unwrap();
        assert_eq!(r.raw.user_r.loads, oracle.total.loads);
        assert_eq!(r.raw.user_r.stores, oracle.total.stores);
        assert_eq!(r.raw.user_r.atomics, oracle.total.atomics);
        assert_eq!(r.raw.user_r.compute_cycles, oracle.total.compute_cycles);
    }
}

#[test]
fn slipstream_r_side_equals_single() {
    for seed in 0..CASES {
        let p = arbitrary_program(&mut SplitMix64::new(0x511F ^ seed));
        let m = machine();
        let single = run_program(
            &p,
            &RunOptions::new(ExecMode::Single).with_machine(m.clone()),
        )
        .unwrap();
        for sync in [SlipSync::G0, SlipSync::L1] {
            let slip = run_program(
                &p,
                &RunOptions::new(ExecMode::Slipstream)
                    .with_machine(m.clone())
                    .with_sync(sync),
            )
            .unwrap();
            assert_eq!(slip.raw.user_r.loads, single.raw.user_r.loads);
            assert_eq!(slip.raw.user_r.stores, single.raw.user_r.stores);
            // Every A-stream shared store is converted or skipped, never
            // demand-issued.
            let a_shared_stores = slip.raw.stores_converted + slip.raw.stores_skipped;
            assert!(a_shared_stores <= slip.raw.user_a.stores + slip.raw.user_a.atomics);
        }
    }
}

#[test]
fn double_mode_completes_and_matches() {
    for seed in 0..CASES {
        let p = arbitrary_program(&mut SplitMix64::new(0xD0B1E ^ seed));
        let oracle = trace(&p, 8);
        let r = run_program(
            &p,
            &RunOptions::new(ExecMode::Double).with_machine(machine()),
        )
        .unwrap();
        assert_eq!(r.raw.user_r.loads, oracle.total.loads);
    }
}
