//! Property-based engine tests: random (but valid) OpenMP-style programs
//! must run to completion in every mode, match the reference tracer's
//! totals, and keep slipstream's R-side semantics identical to single
//! mode.

use omp_ir::expr::{Expr, VarId};
use omp_ir::node::{
    ArrayDecl, ArrayId, Node, Program, Reduction, ReductionOp, ScheduleKind, ScheduleSpec,
};
use omp_ir::trace::trace;
use omp_ir::validate::validate;
use proptest::prelude::*;
use slipstream_openmp::prelude::*;

const N_ARRAY: u64 = 256;

/// A small affine index expression over the loop variable.
fn index_expr() -> impl Strategy<Value = Expr> {
    (1i64..3, 0i64..8).prop_map(|(a, b)| {
        (Expr::v(VarId(0)) * a + b)
            .max(Expr::c(0))
            .min(Expr::c(N_ARRAY as i64 - 1))
    })
}

fn schedule() -> impl Strategy<Value = Option<ScheduleSpec>> {
    prop_oneof![
        Just(None),
        Just(Some(ScheduleSpec {
            kind: ScheduleKind::Static,
            chunk: Some(8)
        })),
        Just(Some(ScheduleSpec::dynamic(16))),
        Just(Some(ScheduleSpec {
            kind: ScheduleKind::Guided,
            chunk: Some(4)
        })),
    ]
}

/// A statement valid inside a worksharing body.
fn body_stmt() -> impl Strategy<Value = Node> {
    prop_oneof![
        index_expr().prop_map(|e| Node::Load {
            array: ArrayId(0),
            index: e
        }),
        index_expr().prop_map(|e| Node::Store {
            array: ArrayId(0),
            index: e
        }),
        index_expr().prop_map(|e| Node::Load {
            array: ArrayId(1),
            index: e
        }),
        (1i64..20).prop_map(|c| Node::Compute(Expr::c(c))),
    ]
}

/// A region-level construct.
fn region_item() -> impl Strategy<Value = Node> {
    let wsloop = (schedule(), prop::collection::vec(body_stmt(), 1..4), any::<bool>()).prop_map(
        |(sched, stmts, nowait)| Node::ParFor {
            sched,
            var: VarId(0),
            begin: Expr::c(0),
            end: Expr::c(N_ARRAY as i64),
            body: Box::new(Node::Seq(stmts)),
            reduction: None,
            nowait,
        },
    );
    let red_loop = prop::collection::vec(body_stmt(), 1..3).prop_map(|stmts| Node::ParFor {
        sched: None,
        var: VarId(0),
        begin: Expr::c(0),
        end: Expr::c(N_ARRAY as i64),
        body: Box::new(Node::Seq(stmts)),
        reduction: Some(Reduction {
            op: ReductionOp::Sum,
            target: ArrayId(0),
            index: Expr::c(0),
        }),
        nowait: false,
    });
    prop_oneof![
        4 => wsloop,
        1 => red_loop,
        1 => Just(Node::Barrier),
        1 => prop::collection::vec(body_stmt(), 1..3)
            .prop_map(|s| Node::Single(Box::new(Node::Seq(s)))),
        1 => prop::collection::vec(body_stmt(), 1..3)
            .prop_map(|s| Node::Master(Box::new(Node::Seq(s)))),
        1 => prop::collection::vec(body_stmt(), 1..3).prop_map(|s| Node::Critical {
            name: "c".into(),
            body: Box::new(Node::Seq(s)),
        }),
        1 => index_expr().prop_map(|e| Node::Atomic {
            array: ArrayId(0),
            index: e
        }),
        1 => prop::collection::vec(
            prop::collection::vec(body_stmt(), 1..3).prop_map(Node::Seq),
            1..4
        )
        .prop_map(Node::Sections),
    ]
}

fn arbitrary_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(region_item(), 1..6).prop_map(|items| Program {
        name: "prop".into(),
        arrays: vec![
            ArrayDecl {
                name: "s".into(),
                shared: true,
                len: N_ARRAY,
                elem_bytes: 8,
            },
            ArrayDecl {
                name: "p".into(),
                shared: false,
                len: N_ARRAY,
                elem_bytes: 8,
            },
        ],
        tables: vec![],
        num_vars: 1,
        body: Node::Parallel {
            body: Box::new(Node::Seq(items)),
            slipstream: None,
        },
    })
}

fn machine() -> MachineConfig {
    let mut m = MachineConfig::paper();
    m.num_cmps = 4;
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_are_valid(p in arbitrary_program()) {
        validate(&p).unwrap();
    }

    #[test]
    fn single_mode_matches_oracle(p in arbitrary_program()) {
        let oracle = trace(&p, 4);
        let r = run_program(&p, &RunOptions::new(ExecMode::Single).with_machine(machine()))
            .unwrap();
        prop_assert_eq!(r.raw.user_r.loads, oracle.total.loads);
        prop_assert_eq!(r.raw.user_r.stores, oracle.total.stores);
        prop_assert_eq!(r.raw.user_r.atomics, oracle.total.atomics);
        prop_assert_eq!(r.raw.user_r.compute_cycles, oracle.total.compute_cycles);
    }

    #[test]
    fn slipstream_r_side_equals_single(p in arbitrary_program()) {
        let m = machine();
        let single = run_program(&p, &RunOptions::new(ExecMode::Single).with_machine(m.clone()))
            .unwrap();
        for sync in [SlipSync::G0, SlipSync::L1] {
            let slip = run_program(
                &p,
                &RunOptions::new(ExecMode::Slipstream).with_machine(m.clone()).with_sync(sync),
            )
            .unwrap();
            prop_assert_eq!(slip.raw.user_r.loads, single.raw.user_r.loads);
            prop_assert_eq!(slip.raw.user_r.stores, single.raw.user_r.stores);
            // Every A-stream shared store is converted or skipped, never
            // demand-issued.
            let a_shared_stores = slip.raw.stores_converted + slip.raw.stores_skipped;
            prop_assert!(a_shared_stores <= slip.raw.user_a.stores + slip.raw.user_a.atomics);
        }
    }

    #[test]
    fn double_mode_completes_and_matches(p in arbitrary_program()) {
        let oracle = trace(&p, 8);
        let r = run_program(&p, &RunOptions::new(ExecMode::Double).with_machine(machine()))
            .unwrap();
        prop_assert_eq!(r.raw.user_r.loads, oracle.total.loads);
    }
}
