//! Domain example: an iterative sparse solver under dynamic scheduling.
//!
//! Irregular row lengths motivate `schedule(dynamic)`; the example shows
//! the paper's Section 3.2.2 machinery at work — the R-stream publishes
//! every chunk grab to its A-stream over the pair semaphore — and
//! contrasts static against dynamic scheduling in both single and
//! slipstream modes.
//!
//! ```sh
//! cargo run --release --example sparse_solver
//! ```

use npb_kernels::CgParams;
use omp_ir::node::ScheduleSpec;
use slipstream_openmp::prelude::*;

fn main() {
    let machine = MachineConfig::paper();
    let team = machine.num_cmps as u64;

    // A CG-style solver with strongly imbalanced rows.
    let params = CgParams {
        n: 640,
        min_nnz: 4,
        max_nnz: 40,
        iters: 4,
        compute_per_nnz: 6,
        seed: 0xD1CE,
        sched: None,
    };
    let chunk = params.paper_dynamic_chunk(team);

    println!(
        "sparse solver: n={}, rows 4..40 nnz, dynamic chunk {}\n",
        params.n, chunk
    );
    println!(
        "{:<22} {:>12} {:>10} {:>8}",
        "configuration", "cycles", "sched%", "grabs"
    );
    for (name, sched, mode, sync) in [
        ("static / single", None, ExecMode::Single, None),
        (
            "dynamic / single",
            Some(ScheduleSpec::dynamic(chunk)),
            ExecMode::Single,
            None,
        ),
        (
            "static / slipstream",
            None,
            ExecMode::Slipstream,
            Some(SlipSync::L1),
        ),
        (
            "dynamic / slipstream",
            Some(ScheduleSpec::dynamic(chunk)),
            ExecMode::Slipstream,
            Some(SlipSync::G0),
        ),
    ] {
        let p = params.clone().with_schedule(sched).build();
        let mut o = RunOptions::new(mode).with_machine(machine.clone());
        o.sync = sync;
        let r = run_program(&p, &o).expect("simulation failed");
        println!(
            "{:<22} {:>12} {:>9.1}% {:>8}",
            name,
            r.exec_cycles,
            100.0 * r.r_breakdown.fraction(TimeClass::Scheduling),
            r.raw.sched_grabs,
        );
    }
    println!();
    println!("Under dynamic scheduling the A-stream mirrors its R-stream's");
    println!("chunks through the pair handshake (paper Section 3.2.2), so the");
    println!("irregular assignment stays consistent across the pair.");
}
