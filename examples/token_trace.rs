//! Figure 1 illustration: the token-based A–R synchronization protocol,
//! including divergence detection and recovery.
//!
//! Runs a barrier-dense toy kernel under several synchronizations and
//! reports token traffic and the A-stream wait profile, then injects a
//! divergence fault and shows the recovery path — first the paper's
//! one-way escalation, then the adaptive health controller walking a
//! battered pair through demote → probation → re-promote. Both faulted
//! runs execute with the structured event tracer on and write
//! `token_trace.trace.json` / `token_trace_health.trace.json` — Chrome
//! trace-event files with per-CPU timeline tracks, per-pair token/lead
//! counter tracks, and (for the health run) the per-pair `pairN health`
//! state track, openable in <https://ui.perfetto.dev>.
//!
//! ```sh
//! cargo run --release --example token_trace
//! ```

use slipstream_openmp::prelude::*;

fn toy(phases: i64, work: i64) -> omp_ir::Program {
    let n: i64 = 16 * 512;
    let mut pb = ProgramBuilder::new("token-toy");
    let a = pb.shared_array("a", n as u64, 8);
    let ph = pb.var();
    let i = pb.var();
    pb.parallel(move |region| {
        region.push(omp_ir::node::Node::For {
            var: ph,
            begin: Expr::c(0),
            end: Expr::c(phases),
            step: 1,
            body: Box::new({
                let mut blk = omp_ir::BlockBuilder::default();
                blk.par_for(None, i, 0, n, move |body| {
                    body.load(a, Expr::v(i));
                    body.compute(work);
                    body.store(a, Expr::v(i));
                });
                blk.into_node()
            }),
        });
    });
    pb.build()
}

fn main() {
    let program = toy(8, 12);
    let machine = MachineConfig::paper();

    println!("token protocol sweep (8 barrier phases):\n");
    println!(
        "{:<8} {:>12} {:>14} {:>12}",
        "sync", "cycles", "A-wait cycles", "A busy+mem"
    );
    for (global, tokens) in [(true, 0), (true, 1), (false, 0), (false, 1), (false, 2)] {
        let sync = SlipSync { global, tokens };
        let mut o = RunOptions::new(ExecMode::Slipstream).with_machine(machine.clone());
        o.sync = Some(sync);
        let r = run_program(&program, &o).unwrap();
        println!(
            "{:<8} {:>12} {:>14} {:>12}",
            sync.label(),
            r.exec_cycles,
            r.a_breakdown.get(TimeClass::AStreamWait),
            r.a_breakdown.get(TimeClass::Busy) + r.a_breakdown.get(TimeClass::MemStall),
        );
    }
    println!();
    println!("Local insertion / more tokens => the A-stream waits less and");
    println!("runs further ahead; zero-token global keeps it tightly coupled.");

    // Divergence: the A-stream of pair 3 wanders off at its 4th barrier.
    // Run it with the event tracer on: the recovery episode, every token
    // insert/consume, and the per-pair lead all land in the trace.
    let mut o = RunOptions::new(ExecMode::Slipstream)
        .with_machine(machine)
        .with_trace(TraceConfig::on());
    o.sync = Some(SlipSync::G0);
    o.inject_divergence = vec![(3, 3)];
    let r = run_program(&program, &o).unwrap();
    println!(
        "\nwith an injected divergence on pair 3 at epoch 3:\n  recoveries performed: {}\n  recovery cycles charged: {}\n  run still completes with correct R-side work: {} loads",
        r.raw.recoveries,
        r.a_breakdown.get(TimeClass::Recovery),
        r.raw.user_r.loads,
    );

    let td = r.raw.trace.as_ref().expect("tracing was on");
    println!("\n{}", analyze(td).render());
    let json = chrome_trace_json(td);
    validate_chrome_trace(&json).expect("emitted trace is valid");
    std::fs::write("token_trace.trace.json", &json).expect("write trace");
    println!(
        "wrote token_trace.trace.json ({} events, {} spans) — open it in https://ui.perfetto.dev",
        td.events.len(),
        td.spans.iter().map(|s| s.len()).sum::<usize>()
    );

    // Act three: the adaptive health controller. The same wander fault
    // with a zero retry budget demotes pair 1 to single-stream mode — but
    // under `HealthPolicy::adaptive()` the demotion is probationary: the
    // pair serves a cool-down, re-enters on probation, and earns its way
    // back to full slipstream. The program needs several regions (the
    // controller's clock) with several worksharing loops each (wander
    // hook slots reset per region).
    let mut pb = ProgramBuilder::new("health-demo");
    let n: i64 = 96;
    let x = pb.shared_array("x", n as u64, 8);
    let y = pb.shared_array("y", n as u64, 8);
    let i = pb.var();
    for _ in 0..8 {
        pb.parallel(move |region| {
            for _ in 0..6 {
                region.par_for(None, i, 0, n, move |body| {
                    body.load(x, Expr::v(i));
                    body.compute(2);
                    body.store(y, Expr::v(i));
                });
            }
        });
    }
    let program = pb.build();

    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_machine(MachineConfig::paper())
        .with_sync(SlipSync::G0)
        .with_faults(FaultPlan::wander_at(1, 0))
        .with_recovery(
            RecoveryPolicy::paper()
                .with_watchdog(150_000)
                .with_max_recoveries(0),
        )
        .with_health(HealthPolicy::adaptive().with_breaker(BreakerConfig::disabled()))
        .with_trace(TraceConfig::on());
    let r = run_program(&program, &opts).unwrap();
    println!("\nadaptive health controller — pair 1 wanders, budget 0:\n");
    print!("{}", resilience_table(&r.raw));

    let td = r.raw.trace.as_ref().expect("tracing was on");
    let arc: Vec<String> = td
        .events
        .iter()
        .filter_map(|e| match &e.ev {
            TraceEvent::Health { pair: 1, from, to } => Some(format!("{from}->{to} @{}", e.cycle)),
            _ => None,
        })
        .collect();
    println!("pair 1 health arc: {}", arc.join(", "));
    let json = chrome_trace_json(td);
    validate_chrome_trace(&json).expect("emitted trace is valid");
    std::fs::write("token_trace_health.trace.json", &json).expect("write trace");
    println!(
        "wrote token_trace_health.trace.json — the \"pair1 health\" counter\ntrack steps healthy(0) -> demoted(2) -> probation(3) -> healthy(0)."
    );
}
