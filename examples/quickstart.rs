//! Quickstart: define a kernel with OpenMP-style worksharing, run it in
//! all three execution modes on the paper's 16-CMP machine, and print the
//! comparison the paper's Figure 2 makes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use npb_kernels::Grid3;
use slipstream_openmp::prelude::*;

fn main() {
    // A 3D Jacobi sweep, plane-parallel (`!$omp do` on the outer z loop),
    // ping-ponging between two fields: slab neighbours exchange ghost
    // planes every step — the communication pattern slipstream targets.
    let g = Grid3::cube(20);
    let steps = 4i64;
    let mut pb = ProgramBuilder::new("quickstart");
    let t0 = pb.shared_array("t0", g.len() as u64, 8);
    let t1 = pb.shared_array("t1", g.len() as u64, 8);
    let s = pb.var();
    let q = pb.var();
    let i = pb.var();
    pb.parallel(move |region| {
        region.push(omp_ir::node::Node::For {
            var: s,
            begin: Expr::c(0),
            end: Expr::c(steps),
            step: 1,
            body: Box::new({
                let mut blk = omp_ir::BlockBuilder::default();
                for (src, dst) in [(t0, t1), (t1, t0)] {
                    blk.par_for(None, q, 0, g.nz, move |plane| {
                        plane.for_loop(
                            i,
                            Expr::v(q) * g.dz(),
                            (Expr::v(q) + 1) * g.dz(),
                            move |cell| {
                                cell.load(src, Expr::v(i));
                                for off in g.stencil7_offsets() {
                                    cell.load(src, g.nbr(Expr::v(i), off));
                                }
                                cell.compute(18);
                                cell.store(dst, Expr::v(i));
                            },
                        );
                    });
                }
                blk.into_node()
            }),
        });
    });
    let program = pb.build();

    let machine = MachineConfig::paper();
    println!(
        "machine: {} dual-processor CMPs, remote miss {} ns\n",
        machine.num_cmps,
        machine.remote_miss_ns()
    );

    // One compiled image, four ways to run it (the paper's comparison).
    let rows =
        run_figure2_modes(&program, &machine, &RuntimeEnv::default()).expect("simulation failed");
    println!("{}", breakdown_table(&rows));
    for r in &rows[2..] {
        println!("{}", coverage_line(r));
    }

    let best_slip = rows[2..].iter().map(|r| r.exec_cycles).min().unwrap();
    let best_base = rows[..2].iter().map(|r| r.exec_cycles).min().unwrap();
    println!(
        "\nslipstream gain over best(single, double): {:+.1}%",
        100.0 * (best_base as f64 / best_slip as f64 - 1.0)
    );
}
