//! Domain example: 3D heat diffusion with per-region slipstream control.
//!
//! Shows the paper's programmer-facing surface: the `SLIPSTREAM`
//! directive as a global setting in the serial part, a per-region
//! override, `RUNTIME_SYNC` deferring to the `OMP_SLIPSTREAM`
//! environment variable, and the same "binary" (compiled program) run
//! under several runtime settings.
//!
//! ```sh
//! cargo run --release --example heat_diffusion
//! OMP_SLIPSTREAM=LOCAL_SYNC,1 cargo run --release --example heat_diffusion
//! OMP_SLIPSTREAM=NONE        cargo run --release --example heat_diffusion
//! ```

use npb_kernels::Grid3;
use slipstream_openmp::prelude::*;

fn build_heat(n: i64, steps: i64) -> omp_ir::Program {
    let g = Grid3::cube(n);
    let mut pb = ProgramBuilder::new("heat3d");
    let t0 = pb.shared_array("t0", g.len() as u64, 8);
    let t1 = pb.shared_array("t1", g.len() as u64, 8);
    let s = pb.var();
    let q = pb.var();
    let i = pb.var();

    // Global setting in the serial part: defer the synchronization choice
    // to the runtime (OMP_SLIPSTREAM), as Section 3.3 of the paper allows.
    pb.slipstream(SlipstreamClause {
        sync: SlipSyncType::RuntimeSync,
        tokens: 0,
    });
    pb.serial(|ser| ser.io(true, 64 * 1024));

    pb.parallel(move |region| {
        region.push(omp_ir::node::Node::For {
            var: s,
            begin: Expr::c(0),
            end: Expr::c(steps),
            step: 1,
            body: Box::new({
                let mut blk = omp_ir::BlockBuilder::default();
                for (src, dst) in [(t0, t1), (t1, t0)] {
                    blk.par_for(None, q, 0, g.nz, move |plane| {
                        plane.for_loop(
                            i,
                            Expr::v(q) * g.dz(),
                            (Expr::v(q) + 1) * g.dz(),
                            move |cell| {
                                cell.load(src, Expr::v(i));
                                for off in g.stencil7_offsets() {
                                    cell.load(src, g.nbr(Expr::v(i), off));
                                }
                                cell.compute(16);
                                cell.store(dst, Expr::v(i));
                            },
                        );
                    });
                }
                blk.into_node()
            }),
        });
    });
    pb.serial(|ser| ser.io(false, 4096));
    pb.build()
}

fn main() {
    let program = build_heat(24, 4);
    let machine = MachineConfig::paper();

    // Honour the real process environment, like an OpenMP runtime would.
    let env = RuntimeEnv::from_process_env();
    match &env.slipstream {
        Some(s) => println!("OMP_SLIPSTREAM set: {s:?}"),
        None => println!("OMP_SLIPSTREAM unset: program default (global sync) applies"),
    }

    let single = run_program(
        &program,
        &RunOptions::new(ExecMode::Single).with_machine(machine.clone()),
    )
    .unwrap();
    let slip = run_program(
        &program,
        &RunOptions::new(ExecMode::Slipstream)
            .with_machine(machine)
            .with_env(env),
    )
    .unwrap();

    println!("\nsingle mode:     {:>12} cycles", single.exec_cycles);
    println!(
        "slipstream mode: {:>12} cycles  ({:+.1}%)",
        slip.exec_cycles,
        100.0 * (single.exec_cycles as f64 / slip.exec_cycles as f64 - 1.0)
    );
    println!(
        "\nA-stream activity: {} loads, {} stores converted, {} skipped",
        slip.raw.user_a.loads, slip.raw.stores_converted, slip.raw.stores_skipped
    );
    println!("{}", coverage_line(&slip));
}
