//! Tour of the directive surface: parsing the paper's `SLIPSTREAM`
//! extension in both Fortran and C spellings, the `OMP_SLIPSTREAM`
//! environment variable, and the resolution precedence of Section 3.3.
//!
//! ```sh
//! cargo run --example directive_tour
//! ```

use omp_ir::directive::EnvSlipstream;
use omp_rt::mode::{resolve_region, RegionSlip};
use slipstream_openmp::prelude::*;

fn show(line: &str) {
    match parse_directive(line) {
        Ok(d) => println!("  {line:<55} => {d:?}"),
        Err(e) => println!("  {line:<55} => ERROR: {e}"),
    }
}

fn main() {
    println!("directive parsing (both spellings, case-insensitive):");
    show("!$OMP SLIPSTREAM(GLOBAL_SYNC, 1)");
    show("#pragma omp slipstream(LOCAL_SYNC)");
    show("#pragma omp slipstream(2)");
    show("#pragma omp parallel slipstream(RUNTIME_SYNC)");
    show("#pragma omp for schedule(dynamic, 4) reduction(+: err) nowait");
    show("#pragma omp critical (queue)");
    show("#pragma omp slipstream(SIDEWAYS)"); // rejected

    println!("\nOMP_SLIPSTREAM environment values:");
    for v in ["GLOBAL_SYNC,2", "local_sync", "NONE", "RUNTIME_SYNC"] {
        match parse_omp_slipstream_env(v) {
            Ok(e) => println!("  {v:<20} => {e:?}"),
            Err(e) => println!("  {v:<20} => ERROR: {e}"),
        }
    }

    println!("\nresolution precedence (region > global > default; env via RUNTIME_SYNC):");
    let region = Some(SlipstreamClause {
        sync: SlipSyncType::LocalSync,
        tokens: 1,
    });
    let global = Some(SlipstreamClause {
        sync: SlipSyncType::GlobalSync,
        tokens: 0,
    });
    let env = Some(EnvSlipstream::Enabled {
        sync: SlipSyncType::GlobalSync,
        tokens: 2,
    });
    for (name, r, g, e) in [
        ("region L1 beats global G0", region, global, None),
        ("global G0 when region silent", None, global, None),
        ("default when nothing set", None, None, None),
        (
            "RUNTIME_SYNC defers to env G2",
            Some(SlipstreamClause {
                sync: SlipSyncType::RuntimeSync,
                tokens: 0,
            }),
            None,
            env,
        ),
        (
            "env NONE kills everything",
            region,
            global,
            Some(EnvSlipstream::Disabled),
        ),
    ] {
        let resolved = resolve_region(r, g, e);
        let txt = match resolved {
            RegionSlip::Off => "OFF".to_string(),
            RegionSlip::On(s) => format!("ON ({})", s.label()),
        };
        println!("  {name:<32} => {txt}");
    }
}
