//! # slipstream-openmp
//!
//! A Rust reproduction of *Extending OpenMP to Support Slipstream
//! Execution Mode* (Khaled Z. Ibrahim and Gregory T. Byrd, IPPS 2003):
//! an OpenMP-style runtime with slipstream execution on a simulated
//! CMP-based distributed-shared-memory multiprocessor.
//!
//! The workspace splits along the paper's own structure:
//!
//! * [`dsm_sim`] — the machine: dual-processor CMP nodes with private L1s
//!   and a shared L2, an invalidate-based fully-mapped directory, and a
//!   fixed-delay interconnect with port/controller contention (Table 1
//!   parameters by default).
//! * [`omp_ir`] — the compiler front half: an IR with every OpenMP
//!   construct the paper discusses, a directive parser including the new
//!   `SLIPSTREAM([type][, tokens])` extension and `OMP_SLIPSTREAM`
//!   environment variable, validation, and a reference tracer.
//! * [`omp_rt`] — the Omni-style runtime layer: team layouts for single,
//!   double, and slipstream modes; static/dynamic/guided worksharing;
//!   construct bookkeeping; per-region slipstream resolution.
//! * [`slipstream`] — the paper's contribution: A/R stream pairing, the
//!   token-semaphore synchronization of Figure 1, the per-construct
//!   A-stream policy of Section 3.1, the dynamic-scheduling handshake of
//!   Section 3.2.2, divergence recovery, and the execution engine.
//! * [`npb_kernels`] — scaled, structurally faithful analogues of the
//!   NAS Parallel Benchmarks the paper evaluates (BT, CG, LU, MG, SP).
//!
//! ## Quickstart
//!
//! ```
//! use slipstream_openmp::prelude::*;
//!
//! // A toy kernel: stream through a shared array under OpenMP-style
//! // worksharing.
//! let mut b = ProgramBuilder::new("demo");
//! let data = b.shared_array("data", 4096, 8);
//! let i = b.var();
//! b.parallel(move |r| {
//!     r.par_for(None, i, 0, 4096, move |body| {
//!         body.load(data, Expr::v(i));
//!         body.compute(8);
//!         body.store(data, Expr::v(i));
//!     });
//! });
//! let program = b.build();
//!
//! // Run it in single mode and in slipstream mode on the paper machine.
//! let machine = MachineConfig::paper();
//! let single = run_program(
//!     &program,
//!     &RunOptions::new(ExecMode::Single).with_machine(machine.clone()),
//! )
//! .unwrap();
//! let slip = run_program(
//!     &program,
//!     &RunOptions::new(ExecMode::Slipstream)
//!         .with_machine(machine)
//!         .with_sync(SlipSync::G0),
//! )
//! .unwrap();
//! assert!(single.exec_cycles > 0 && slip.exec_cycles > 0);
//! ```

#![warn(missing_docs)]

pub use dsm_sim;
pub use npb_kernels;
pub use omp_ir;
pub use omp_rt;
pub use slipstream;

/// Everything needed to define and run a program, in one import.
pub mod prelude {
    pub use dsm_sim::{FillClass, MachineConfig, ReqKind, StreamRole, TimeClass};
    pub use npb_kernels::Benchmark;
    pub use omp_ir::expr::Expr;
    pub use omp_ir::node::{ReductionOp, ScheduleSpec, SlipSyncType, SlipstreamClause};
    pub use omp_ir::{parse_directive, parse_omp_slipstream_env, ProgramBuilder};
    pub use omp_rt::{BreakerConfig, ExecMode, HealthState, RuntimeEnv, SlipSync};
    pub use slipstream::faults::{FaultEvent, FaultKind, FaultPlan};
    pub use slipstream::health::HealthPolicy;
    pub use slipstream::policy::{AStreamPolicy, RecoveryPolicy};
    pub use slipstream::report::{breakdown_table, coverage_line, fills_table, resilience_table};
    pub use slipstream::runner::{run_figure2_modes, run_program, RunOptions, RunSummary};
    pub use slipstream::{
        analyze, chrome_trace_json, validate_chrome_trace, TraceAnalytics, TraceConfig, TraceData,
        TraceEvent,
    };
}
