//! Property-style tests of the machine substrate: the cache against a
//! naive reference model, directory state-machine invariants, resource
//! window consistency, classifier conservation, and whole-memory-system
//! coherence. Inputs are generated from seeded [`SplitMix64`] streams so
//! every run is deterministic and reproducible by seed.

use dsm_sim::{
    AccessKind, Addr, CacheConfig, CmpId, CpuId, CpuStats, DirState, Directory, LineAddr,
    LineState, MachineConfig, MemSystem, Resource, SetAssocCache, SplitMix64,
};

// ------------------------------------------------------------- cache ---

/// Naive LRU reference: per set, a vector ordered by recency.
struct RefCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    mask: u64,
}

impl RefCache {
    fn new(num_sets: u64, ways: usize) -> Self {
        RefCache {
            sets: vec![Vec::new(); num_sets as usize],
            ways,
            mask: num_sets - 1,
        }
    }

    /// Returns hit?, evicted line.
    fn access_fill(&mut self, line: u64) -> (bool, Option<u64>) {
        let set = &mut self.sets[(line & self.mask) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            set.push(line);
            (true, None)
        } else {
            let victim = if set.len() == self.ways {
                Some(set.remove(0))
            } else {
                None
            };
            set.push(line);
            (false, victim)
        }
    }
}

#[test]
fn cache_matches_reference_lru() {
    for seed in 0..40u64 {
        let mut g = SplitMix64::new(0xCAC4E ^ seed);
        let n = 1 + g.below(300) as usize;
        // 4 sets x 2 ways.
        let cfg = CacheConfig {
            size_bytes: 512,
            associativity: 2,
            line_bytes: 64,
            hit_latency: 1,
        };
        let mut dut = SetAssocCache::new(&cfg);
        let mut reference = RefCache::new(cfg.num_sets(), 2);
        for _ in 0..n {
            let l = g.below(64);
            let line = LineAddr(l);
            let dut_hit = dut.access(line).is_some();
            let (ref_hit, ref_victim) = reference.access_fill(l);
            assert_eq!(dut_hit, ref_hit, "hit/miss divergence on {l} (seed {seed})");
            if !dut_hit {
                let victim = dut.insert(line, LineState::Shared);
                assert_eq!(
                    victim.map(|v| v.line.0),
                    ref_victim,
                    "victim divergence on {l} (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn directory_invariants_hold() {
    for seed in 0..40u64 {
        let mut g = SplitMix64::new(0xD14 ^ seed);
        let n = 1 + g.below(200) as usize;
        let mut d = Directory::new();
        // Shadow: which cmps believe they hold each line, and in what state.
        let mut holders: std::collections::HashMap<u64, Vec<(usize, bool)>> =
            std::collections::HashMap::new();
        for _ in 0..n {
            let op = g.below(4) as u8;
            let line_raw = g.below(8);
            let cmp = g.below(4) as usize;
            let line = LineAddr(line_raw);
            let h = holders.entry(line_raw).or_default();
            match op {
                0 => {
                    let o = d.get_s(line, CmpId(cmp));
                    assert!(o.invalidate.is_empty(), "GetS never invalidates");
                    // An owner re-reading its own Modified line keeps
                    // ownership (silent); otherwise any dirty owner is
                    // downgraded to a sharer alongside the requester.
                    if *h != vec![(cmp, true)] {
                        for e in h.iter_mut() {
                            e.1 = false;
                        }
                        if !h.iter().any(|(c, _)| *c == cmp) {
                            h.push((cmp, false));
                        }
                    }
                }
                1 => {
                    let o = d.get_x(line, CmpId(cmp));
                    for v in &o.invalidate {
                        assert_ne!(v.0, cmp, "requester never invalidates itself");
                    }
                    h.clear();
                    h.push((cmp, true));
                }
                2 => {
                    d.evict_shared(line, CmpId(cmp));
                    h.retain(|(c, m)| *m || *c != cmp);
                }
                _ => {
                    d.writeback(line, CmpId(cmp));
                    h.retain(|(c, m)| !(*m && *c == cmp));
                }
            }
            // Invariants against the shadow.
            match d.state_of(line) {
                DirState::Uncached => assert!(h.is_empty()),
                DirState::Shared(mask) => {
                    assert!(mask != 0, "Shared with empty sharer set");
                    for (c, m) in h.iter() {
                        assert!(!m, "Modified holder under Shared state");
                        assert!(mask & (1 << c) != 0, "holder missing from mask");
                    }
                }
                DirState::Modified(owner) => {
                    assert_eq!(h.len(), 1);
                    assert_eq!(h[0], (owner.0, true));
                }
            }
        }
    }
}

#[test]
fn resource_windows_never_overlap() {
    for seed in 0..40u64 {
        let mut g = SplitMix64::new(0x4E50 ^ seed);
        let n = 1 + g.below(100) as usize;
        let mut r = Resource::new();
        let mut windows: Vec<(u64, u64)> = Vec::new();
        for _ in 0..n {
            let now = g.below(10_000);
            let occ = 1 + g.below(199);
            let done = r.acquire(now, occ);
            let start = done - occ;
            assert!(start >= now, "service cannot start before the request");
            for &(s, e) in &windows {
                assert!(
                    done <= s || start >= e,
                    "window [{start},{done}) overlaps [{s},{e})"
                );
            }
            windows.push((start, done));
        }
    }
}

#[test]
fn memory_system_coherence_invariant() {
    for seed in 0..24u64 {
        let mut g = SplitMix64::new(0xC0445 ^ seed);
        let n = 1 + g.below(250) as usize;
        let mut cfg = MachineConfig::paper();
        cfg.num_cmps = 4;
        let mut ms = MemSystem::new(&cfg);
        let mut st = CpuStats::default();
        let base = ms.map().shared_base();
        let mut t = 0u64;
        for _ in 0..n {
            let cpu = g.below(8) as usize;
            let line = g.below(32);
            let is_store = g.chance(0.5);
            let addr: Addr = base + line * 64;
            let kind = if is_store {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let res = ms.access(CpuId(cpu), addr, kind, t, &mut st);
            t = res.complete + 1;
            // Single-writer invariant: at most one L2 holds any line
            // Modified, and if one does, no other L2 holds it at all.
            let la = ms.map().line_of(addr);
            let states: Vec<Option<LineState>> =
                (0..4).map(|c| ms.l2_of(CmpId(c)).peek(la)).collect();
            let modified = states
                .iter()
                .filter(|s| **s == Some(LineState::Modified))
                .count();
            assert!(modified <= 1, "two Modified copies: {states:?}");
            if modified == 1 {
                let holders = states.iter().filter(|s| s.is_some()).count();
                assert_eq!(holders, 1, "Modified alongside Shared: {states:?}");
            }
        }
    }
}

#[test]
fn classifier_conserves_fills() {
    use dsm_sim::{Classifier, ReqKind, StreamRole, FILL_CLASSES};
    for seed in 0..40u64 {
        let mut g = SplitMix64::new(0xF111 ^ seed);
        let n = 1 + g.below(200) as usize;
        let mut cl = Classifier::new();
        let mut fills = 0u64;
        let mut t = 0u64;
        for _ in 0..n {
            let op = g.below(3) as u8;
            let line = g.below(16);
            let is_a = g.chance(0.5);
            t += 10;
            let who = if is_a { StreamRole::A } else { StreamRole::R };
            match op {
                0 => {
                    cl.on_fill(CmpId(0), LineAddr(line), who, ReqKind::Read, t + 100);
                    fills += 1;
                }
                1 => cl.on_reference(CmpId(0), LineAddr(line), who, t),
                _ => cl.on_drop(CmpId(0), LineAddr(line)),
            }
        }
        cl.finish();
        let classified: u64 = FILL_CLASSES
            .iter()
            .map(|c| cl.counts.get(ReqKind::Read, *c))
            .sum();
        assert_eq!(classified, fills, "every fill classified exactly once");
        assert_eq!(cl.live_records(), 0);
    }
}
