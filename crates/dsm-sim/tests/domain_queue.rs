//! Differential tests: the per-domain event-queue split must be
//! observationally identical to the flat [`EventQueue`] — same pop
//! sequence for the same schedule history, including interleaved
//! schedule/pop traffic the way the engine actually drives it.

use dsm_sim::{CpuId, Cycle, DomainQueues, EventQueue, SplitMix64};

const NUM_DOMAINS: usize = 8;
const CPUS_PER_DOMAIN: usize = 2;

/// Drive both queues through the same randomized schedule/pop script and
/// assert every pop agrees. Times are drawn from a narrow window around a
/// moving "now" so same-time ties across domains are frequent — the case
/// where only the global sequence stamp keeps the split deterministic.
fn differential(seed: u64, ops: usize) {
    let mut rng = SplitMix64::new(seed);
    let mut flat = EventQueue::new();
    let mut dom = DomainQueues::new(NUM_DOMAINS, CPUS_PER_DOMAIN);
    let num_cpus = (NUM_DOMAINS * CPUS_PER_DOMAIN) as u64;
    let mut now: Cycle = 0;
    for _ in 0..ops {
        if flat.is_empty() || rng.chance(0.6) {
            let t = now + rng.below(4);
            let cpu = CpuId(rng.below(num_cpus) as usize);
            flat.schedule(t, cpu);
            dom.schedule(t, cpu);
        } else {
            let want = flat.pop();
            assert_eq!(dom.pop(), want, "pop diverged (seed {seed})");
            if let Some((t, _)) = want {
                now = t;
            }
        }
        assert_eq!(dom.len(), flat.len());
        assert_eq!(dom.peek_time(), flat.peek_time());
    }
    while let Some(want) = flat.pop() {
        assert_eq!(dom.pop(), Some(want), "drain diverged (seed {seed})");
    }
    assert!(dom.is_empty());
}

#[test]
fn split_matches_flat_queue_across_seeds() {
    for seed in 0..32 {
        differential(seed, 2000);
    }
}

#[test]
fn window_admission_is_consistent_with_domain_fronts() {
    let mut rng = SplitMix64::new(99);
    let mut dom = DomainQueues::new(NUM_DOMAINS, CPUS_PER_DOMAIN);
    for _ in 0..500 {
        dom.schedule(
            rng.below(1000),
            CpuId(rng.below((NUM_DOMAINS * CPUS_PER_DOMAIN) as u64) as usize),
        );
    }
    for lookahead in [0, 1, 84, 10_000] {
        let front = dom.peek_time().unwrap();
        let admitted = dom.domains_within(lookahead);
        assert!(!admitted.is_empty(), "frontier domain always admissible");
        for d in 0..dom.num_domains() {
            let in_window = dom
                .domain_peek_time(d)
                .is_some_and(|t| t <= front + lookahead);
            assert_eq!(admitted.contains(&d), in_window);
        }
    }
}

#[test]
fn single_domain_split_is_exactly_the_flat_queue() {
    // workers=1 (or num_cmps=1) degenerates to one heap; behaviour must
    // still match, trivially.
    let mut flat = EventQueue::new();
    let mut dom = DomainQueues::new(1, 16);
    for (t, c) in [(7u64, 3usize), (7, 1), (2, 9), (7, 3)] {
        flat.schedule(t, CpuId(c));
        dom.schedule(t, CpuId(c));
    }
    while let Some(want) = flat.pop() {
        assert_eq!(dom.pop(), Some(want));
    }
    assert_eq!(dom.pop(), None);
}
