//! Simulated machine parameters (Table 1 of the paper).
//!
//! The paper simulates a DSM multiprocessor built from dual-processor CMP
//! nodes with SimOS. Each node holds a slice of globally shared memory;
//! system-wide coherence is maintained by an invalidate-based fully-mapped
//! directory protocol over a fixed-delay network. The latency parameters
//! below are the SimOS memory-system parameters the paper lists verbatim
//! (in nanoseconds); we convert them to CPU cycles at the configured clock.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Set associativity (ways).
    pub associativity: u32,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Hit latency in CPU cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.associativity as u64)
    }
}

/// Memory-system latency parameters from Table 1, in nanoseconds.
///
/// These are the SimOS parameter names; the derivation of end-to-end miss
/// latencies is documented on [`MachineConfig::local_miss_ns`] and
/// [`MachineConfig::remote_miss_ns`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryTimingNs {
    /// Time on a node's processor/memory bus per transfer.
    pub bus_time: u64,
    /// Processor-interface directory-controller time for a local access.
    pub pi_local_dc_time: u64,
    /// Network-interface directory-controller time on the local node.
    pub ni_local_dc_time: u64,
    /// Network-interface directory-controller time on a remote node.
    pub ni_remote_dc_time: u64,
    /// One-way network traversal time.
    pub net_time: u64,
    /// DRAM access time at the home memory controller.
    pub mem_time: u64,
}

/// Full machine description.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of CMP nodes in the system (the paper simulates 16).
    pub num_cmps: usize,
    /// Processors per CMP (the paper's CMPs are dual-processor).
    pub cpus_per_cmp: usize,
    /// CPU clock in GHz (used to convert the ns memory timings to cycles).
    pub clock_ghz: f64,
    /// Private per-processor L1 (data) cache.
    pub l1: CacheConfig,
    /// Shared per-CMP unified L2 cache.
    pub l2: CacheConfig,
    /// Memory-system latencies in nanoseconds (Table 1).
    pub mem_ns: MemoryTimingNs,
    /// Outstanding-miss registers (MSHRs) per L2 cache. Gates how many misses
    /// a node may have in flight; also gates the A-stream's store-to-prefetch
    /// conversion ("no resource contention exists").
    pub l2_mshrs: usize,
    /// Cycles of busy work charged per interpreted loop iteration to model
    /// induction-variable/branch bookkeeping.
    pub loop_overhead_cycles: u64,
    /// Cost in cycles for a CPU to read/write the on-chip pair-shared
    /// semaphore register used for A-R synchronization (paper Section 2.2:
    /// "a shared register (or memory location) between the two processors").
    pub pair_register_cycles: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl MachineConfig {
    /// The exact configuration of Table 1: 16 dual-processor CMPs, 1.2 GHz,
    /// 16 KB 2-way L1 (1-cycle hit), 1 MB 4-way shared L2 (10-cycle hit),
    /// and the listed SimOS memory timing parameters.
    pub fn paper() -> Self {
        MachineConfig {
            num_cmps: 16,
            cpus_per_cmp: 2,
            clock_ghz: 1.2,
            l1: CacheConfig {
                size_bytes: 16 * 1024,
                associativity: 2,
                line_bytes: 64,
                hit_latency: 1,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                associativity: 4,
                line_bytes: 64,
                hit_latency: 10,
            },
            mem_ns: MemoryTimingNs {
                bus_time: 30,
                pi_local_dc_time: 10,
                ni_local_dc_time: 60,
                ni_remote_dc_time: 10,
                net_time: 50,
                mem_time: 50,
            },
            l2_mshrs: 8,
            loop_overhead_cycles: 2,
            pair_register_cycles: 3,
        }
    }

    /// A scaled-down configuration for fast unit tests: 4 CMPs and small
    /// caches, same latency structure.
    pub fn small_test() -> Self {
        let mut c = Self::paper();
        c.num_cmps = 4;
        c.l1.size_bytes = 2 * 1024;
        c.l2.size_bytes = 16 * 1024;
        c
    }

    /// Total number of processors in the machine.
    pub fn num_cpus(&self) -> usize {
        self.num_cmps * self.cpus_per_cmp
    }

    /// Convert nanoseconds to CPU cycles (rounding up).
    pub fn ns_to_cycles(&self, ns: u64) -> u64 {
        ((ns as f64) * self.clock_ghz).ceil() as u64
    }

    /// End-to-end latency of an L2 miss satisfied by the *local* home node,
    /// in ns, with no contention.
    ///
    /// Derivation (matches the paper's stated 170 ns):
    /// bus to the node controller (30) + local NI/directory lookup (60) +
    /// DRAM access (50) + bus back to the L2 (30) = 170 ns.
    pub fn local_miss_ns(&self) -> u64 {
        let m = &self.mem_ns;
        m.bus_time + m.ni_local_dc_time + m.mem_time + m.bus_time
    }

    /// End-to-end latency of an L2 miss satisfied by a *remote* home node,
    /// in ns, with no contention.
    ///
    /// Derivation (matches the paper's stated minimum of 290 ns):
    /// bus (30) + processor-interface DC (10) + local NI/directory (60) +
    /// network (50) + remote NI DC (10) + DRAM (50) + network back (50) +
    /// bus (30) = 290 ns.
    pub fn remote_miss_ns(&self) -> u64 {
        let m = &self.mem_ns;
        m.bus_time
            + m.pi_local_dc_time
            + m.ni_local_dc_time
            + m.net_time
            + m.ni_remote_dc_time
            + m.mem_time
            + m.net_time
            + m.bus_time
    }

    /// Extra latency when a miss must be forwarded to a third (owner) node
    /// holding the line dirty: one more network hop plus remote NI time.
    pub fn three_hop_extra_ns(&self) -> u64 {
        let m = &self.mem_ns;
        m.net_time + m.ni_remote_dc_time
    }

    /// Local miss latency in CPU cycles.
    pub fn local_miss_cycles(&self) -> u64 {
        self.ns_to_cycles(self.local_miss_ns())
    }

    /// Remote miss latency in CPU cycles.
    pub fn remote_miss_cycles(&self) -> u64 {
        self.ns_to_cycles(self.remote_miss_ns())
    }

    /// Validate internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cmps == 0 {
            return Err("num_cmps must be > 0".into());
        }
        if self.cpus_per_cmp == 0 {
            return Err("cpus_per_cmp must be > 0".into());
        }
        if self.clock_ghz <= 0.0 {
            return Err("clock_ghz must be positive".into());
        }
        for (name, c) in [("l1", &self.l1), ("l2", &self.l2)] {
            if !c.line_bytes.is_power_of_two() {
                return Err(format!("{name} line size must be a power of two"));
            }
            if c.associativity == 0 {
                return Err(format!("{name} associativity must be > 0"));
            }
            if c.size_bytes % (c.line_bytes * c.associativity as u64) != 0 {
                return Err(format!("{name} size must be a multiple of line*ways"));
            }
            if c.num_sets() == 0 || !c.num_sets().is_power_of_two() {
                return Err(format!("{name} set count must be a nonzero power of two"));
            }
        }
        if self.l1.line_bytes != self.l2.line_bytes {
            return Err("L1 and L2 must share a line size".into());
        }
        if self.l2_mshrs == 0 {
            return Err("l2_mshrs must be > 0".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        MachineConfig::paper().validate().unwrap();
    }

    #[test]
    fn paper_miss_latencies_match_table1() {
        let c = MachineConfig::paper();
        assert_eq!(
            c.local_miss_ns(),
            170,
            "Table 1: local miss requires 170 ns"
        );
        assert_eq!(
            c.remote_miss_ns(),
            290,
            "Table 1: minimum remote miss latency is 290 ns"
        );
    }

    #[test]
    fn cycle_conversion_uses_clock() {
        let c = MachineConfig::paper();
        // 1.2 GHz: 290 ns = 348 cycles, 170 ns = 204 cycles.
        assert_eq!(c.remote_miss_cycles(), 348);
        assert_eq!(c.local_miss_cycles(), 204);
        assert_eq!(c.ns_to_cycles(0), 0);
        assert_eq!(c.ns_to_cycles(1), 2); // 1.2 cycles rounds up
    }

    #[test]
    fn geometry_matches_table1() {
        let c = MachineConfig::paper();
        assert_eq!(c.l1.num_sets(), 128); // 16KB / (64B * 2 ways)
        assert_eq!(c.l2.num_sets(), 4096); // 1MB / (64B * 4 ways)
        assert_eq!(c.num_cpus(), 32);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = MachineConfig::paper();
        c.num_cmps = 0;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper();
        c.l1.line_bytes = 48;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper();
        c.l2.line_bytes = 128;
        assert!(c.validate().is_err(), "L1/L2 line size mismatch");

        let mut c = MachineConfig::paper();
        c.l2_mshrs = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn small_test_config_is_valid() {
        MachineConfig::small_test().validate().unwrap();
    }
}
