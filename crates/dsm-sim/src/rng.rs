//! A tiny deterministic PRNG for seeded test inputs and fault plans.
//!
//! The workspace builds with no external dependencies, so randomized
//! components (fault plans, property tests, OS-noise stagger) share this
//! splitmix64 generator instead of the `rand` crate. Streams are fully
//! determined by the seed, stable across platforms, and cheap to fork.

/// A splitmix64 pseudo-random generator.
///
/// Not cryptographic; statistically solid for simulation inputs and the
/// recommended seeder for xoshiro-family generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift range reduction (Lemire); the slight modulo bias
        // of simpler schemes is irrelevant here but this is just as cheap.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform signed value in `[lo, hi]` (inclusive).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// True with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// The raw generator state, for checkpointing.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild a generator from a checkpointed [`state`].
    ///
    /// [`state`]: SplitMix64::state
    pub fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// An independent generator derived from this one's seed and `tag`
    /// (substreams for per-entity randomness that stays stable when other
    /// entities draw more or fewer values).
    pub fn fork(&self, tag: u64) -> SplitMix64 {
        let mut g = SplitMix64::new(self.state ^ tag.wrapping_mul(0xA076_1D64_78BD_642F));
        g.next_u64(); // decorrelate from the parent's next draw
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        let mut c = SplitMix64::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut g = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = g.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn range_i64_is_inclusive() {
        let mut g = SplitMix64::new(3);
        let (mut lo_hit, mut hi_hit) = (false, false);
        for _ in 0..2000 {
            let v = g.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_hit |= v == -3;
            hi_hit |= v == 3;
        }
        assert!(lo_hit && hi_hit);
    }

    #[test]
    fn chance_tracks_probability() {
        let mut g = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| g.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| g.chance(0.0)));
        assert!((0..100).all(|_| g.chance(1.0)));
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let g = SplitMix64::new(5);
        let mut f1 = g.fork(1);
        let mut f1b = g.fork(1);
        let mut f2 = g.fork(2);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }
}
