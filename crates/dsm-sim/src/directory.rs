//! Fully-mapped, invalidate-based directory coherence protocol.
//!
//! One directory per home node tracks, for every line of the memory slice it
//! homes, which CMPs' L2 caches hold the line and in what state (MSI at CMP
//! granularity — within a CMP the shared L2 keeps its two L1s coherent).
//! "Fully-mapped" means an exact sharer set (a bitmask over CMPs) rather
//! than a limited-pointer approximation.

use crate::address::{CmpId, LineAddr};
use crate::util::FastMap;

/// Sharer set: one bit per CMP. 64 CMPs is ample for the paper's 16.
pub type SharerMask = u64;

/// Directory state for one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirState {
    /// No cache holds the line; memory is the only copy.
    Uncached,
    /// One or more L2s hold read-only copies.
    Shared(SharerMask),
    /// Exactly one L2 holds a writable (possibly dirty) copy.
    Modified(CmpId),
}

/// Where the data for a fetch comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSource {
    /// Home memory supplies the data (2-hop for remote requesters).
    Memory,
    /// A dirty owner must forward/writeback (adds a third hop).
    Owner(CmpId),
}

/// Outcome of a directory request: where data comes from and which CMPs
/// must invalidate their copies before the requester may proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirOutcome {
    /// Supplier of the data.
    pub source: DataSource,
    /// CMPs whose copies must be invalidated (GetX only; excludes requester).
    pub invalidate: Vec<CmpId>,
}

/// The directory of a single home node.
#[derive(Debug, Default)]
pub struct Directory {
    entries: FastMap<LineAddr, DirState>,
    /// Count of invalidation messages this directory has issued.
    pub invalidations_sent: u64,
    /// Count of 3-hop (dirty-owner forward) transactions.
    pub three_hop_fetches: u64,
}

fn mask_to_cmps(mask: SharerMask, exclude: CmpId) -> Vec<CmpId> {
    let mut v = Vec::new();
    let mut m = mask;
    while m != 0 {
        let bit = m.trailing_zeros() as usize;
        if bit != exclude.0 {
            v.push(CmpId(bit));
        }
        m &= m - 1;
    }
    v
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current state of a line (Uncached if never referenced).
    pub fn state_of(&self, line: LineAddr) -> DirState {
        self.entries
            .get(&line)
            .copied()
            .unwrap_or(DirState::Uncached)
    }

    /// Read request (GetS) from `req`. Adds `req` to the sharer set; a dirty
    /// owner is downgraded to Shared and supplies the data (3 hops).
    pub fn get_s(&mut self, line: LineAddr, req: CmpId) -> DirOutcome {
        let bit = 1u64 << req.0;
        let state = self.state_of(line);
        match state {
            DirState::Uncached => {
                self.entries.insert(line, DirState::Shared(bit));
                DirOutcome {
                    source: DataSource::Memory,
                    invalidate: Vec::new(),
                }
            }
            DirState::Shared(mask) => {
                self.entries.insert(line, DirState::Shared(mask | bit));
                DirOutcome {
                    source: DataSource::Memory,
                    invalidate: Vec::new(),
                }
            }
            DirState::Modified(owner) if owner == req => {
                // Requester already owns it (e.g., L2 lost and re-requested
                // after an L1-only event); treat as silent ownership keep.
                DirOutcome {
                    source: DataSource::Memory,
                    invalidate: Vec::new(),
                }
            }
            DirState::Modified(owner) => {
                // Owner writes back and downgrades; both end up sharers.
                self.three_hop_fetches += 1;
                self.entries
                    .insert(line, DirState::Shared(bit | (1u64 << owner.0)));
                DirOutcome {
                    source: DataSource::Owner(owner),
                    invalidate: Vec::new(),
                }
            }
        }
    }

    /// Write/ownership request (GetX) from `req`. All other copies are
    /// invalidated and `req` becomes the Modified owner.
    pub fn get_x(&mut self, line: LineAddr, req: CmpId) -> DirOutcome {
        let state = self.state_of(line);
        let outcome = match state {
            DirState::Uncached => DirOutcome {
                source: DataSource::Memory,
                invalidate: Vec::new(),
            },
            DirState::Shared(mask) => {
                let inv = mask_to_cmps(mask, req);
                self.invalidations_sent += inv.len() as u64;
                DirOutcome {
                    source: DataSource::Memory,
                    invalidate: inv,
                }
            }
            DirState::Modified(owner) if owner == req => DirOutcome {
                source: DataSource::Memory,
                invalidate: Vec::new(),
            },
            DirState::Modified(owner) => {
                self.three_hop_fetches += 1;
                self.invalidations_sent += 1;
                DirOutcome {
                    source: DataSource::Owner(owner),
                    invalidate: vec![owner],
                }
            }
        };
        self.entries.insert(line, DirState::Modified(req));
        outcome
    }

    /// A clean sharer silently dropped its copy (L2 eviction of a Shared
    /// line). Keeps the sharer set exact, as a fully-mapped directory with
    /// replacement hints would.
    pub fn evict_shared(&mut self, line: LineAddr, cmp: CmpId) {
        if let Some(DirState::Shared(mask)) = self.entries.get(&line).copied() {
            let new = mask & !(1u64 << cmp.0);
            if new == 0 {
                self.entries.insert(line, DirState::Uncached);
            } else {
                self.entries.insert(line, DirState::Shared(new));
            }
        }
    }

    /// The owner wrote a dirty line back to memory (L2 eviction of a
    /// Modified line).
    pub fn writeback(&mut self, line: LineAddr, cmp: CmpId) {
        if let Some(DirState::Modified(owner)) = self.entries.get(&line).copied() {
            if owner == cmp {
                self.entries.insert(line, DirState::Uncached);
            }
        }
    }

    /// Number of lines with directory state.
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }

    /// Append the coherence-relevant state to a memo digest: non-Uncached
    /// entries sorted by line address. Uncached entries (left behind by
    /// [`Directory::evict_shared`] / [`Directory::writeback`]) are
    /// behaviorally identical to absent ones and are excluded.
    pub fn memo_digest(&self, out: &mut Vec<u64>) {
        let mut entries: Vec<(u64, u64, u64)> = self
            .entries
            .iter()
            .filter_map(|(l, s)| match s {
                DirState::Uncached => None,
                DirState::Shared(mask) => Some((l.0, 1, *mask)),
                DirState::Modified(owner) => Some((l.0, 2, owner.0 as u64)),
            })
            .collect();
        entries.sort_unstable();
        out.push(entries.len() as u64);
        for (l, tag, v) in entries {
            out.push(l);
            out.push(tag);
            out.push(v);
        }
    }

    /// Append the monotone counters to a memo counter vector.
    pub fn memo_counters(&self, out: &mut Vec<u64>) {
        out.push(self.invalidations_sent);
        out.push(self.three_hop_fetches);
    }

    /// Add `k` copies of the deltas at `delta[*idx..]`, advancing `*idx`.
    pub fn memo_apply(&mut self, delta: &[u64], idx: &mut usize, k: u64) {
        self.invalidations_sent += delta[*idx] * k;
        *idx += 1;
        self.three_hop_fetches += delta[*idx] * k;
        *idx += 1;
    }

    /// Serialize the directory. Entries are written sorted by line address
    /// — `FastMap` iteration order is not deterministic, the snapshot must
    /// be.
    pub fn snapshot(&self, w: &mut snap::Writer) {
        let mut entries: Vec<(LineAddr, DirState)> =
            self.entries.iter().map(|(l, s)| (*l, *s)).collect();
        entries.sort_unstable_by_key(|(l, _)| l.0);
        w.seq(&entries, |w, (line, state)| {
            w.u64(line.0);
            match state {
                DirState::Uncached => w.u8(0),
                DirState::Shared(mask) => {
                    w.u8(1);
                    w.u64(*mask);
                }
                DirState::Modified(owner) => {
                    w.u8(2);
                    w.usize(owner.0);
                }
            }
        });
        w.u64(self.invalidations_sent);
        w.u64(self.three_hop_fetches);
    }

    /// Restore a directory written by [`Directory::snapshot`].
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        let entries = r.seq(|r| {
            let line = LineAddr(r.u64()?);
            let state = match r.u8()? {
                0 => DirState::Uncached,
                1 => DirState::Shared(r.u64()?),
                2 => DirState::Modified(CmpId(r.usize()?)),
                _ => return Err(snap::SnapError::Corrupt { what: "DirState" }),
            };
            Ok((line, state))
        })?;
        Ok(Directory {
            entries: entries.into_iter().collect(),
            invalidations_sent: r.u64()?,
            three_hop_fetches: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LineAddr = LineAddr(42);

    #[test]
    fn cold_read_comes_from_memory() {
        let mut d = Directory::new();
        let o = d.get_s(L, CmpId(0));
        assert_eq!(o.source, DataSource::Memory);
        assert!(o.invalidate.is_empty());
        assert_eq!(d.state_of(L), DirState::Shared(1));
    }

    #[test]
    fn multiple_readers_accumulate_sharers() {
        let mut d = Directory::new();
        d.get_s(L, CmpId(0));
        d.get_s(L, CmpId(3));
        d.get_s(L, CmpId(5));
        assert_eq!(d.state_of(L), DirState::Shared(0b101001));
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut d = Directory::new();
        d.get_s(L, CmpId(0));
        d.get_s(L, CmpId(1));
        d.get_s(L, CmpId(2));
        let o = d.get_x(L, CmpId(1));
        assert_eq!(o.source, DataSource::Memory);
        let mut inv = o.invalidate.clone();
        inv.sort();
        assert_eq!(inv, vec![CmpId(0), CmpId(2)]);
        assert_eq!(d.state_of(L), DirState::Modified(CmpId(1)));
        assert_eq!(d.invalidations_sent, 2);
    }

    #[test]
    fn read_of_dirty_line_is_three_hop_and_downgrades() {
        let mut d = Directory::new();
        d.get_x(L, CmpId(7));
        let o = d.get_s(L, CmpId(2));
        assert_eq!(o.source, DataSource::Owner(CmpId(7)));
        assert!(o.invalidate.is_empty());
        assert_eq!(d.state_of(L), DirState::Shared((1 << 7) | (1 << 2)));
        assert_eq!(d.three_hop_fetches, 1);
    }

    #[test]
    fn write_of_dirty_line_transfers_ownership() {
        let mut d = Directory::new();
        d.get_x(L, CmpId(4));
        let o = d.get_x(L, CmpId(9));
        assert_eq!(o.source, DataSource::Owner(CmpId(4)));
        assert_eq!(o.invalidate, vec![CmpId(4)]);
        assert_eq!(d.state_of(L), DirState::Modified(CmpId(9)));
    }

    #[test]
    fn rewrite_by_owner_is_silent() {
        let mut d = Directory::new();
        d.get_x(L, CmpId(4));
        let o = d.get_x(L, CmpId(4));
        assert!(o.invalidate.is_empty());
        assert_eq!(o.source, DataSource::Memory);
        assert_eq!(d.state_of(L), DirState::Modified(CmpId(4)));
    }

    #[test]
    fn shared_eviction_prunes_sharer_set() {
        let mut d = Directory::new();
        d.get_s(L, CmpId(0));
        d.get_s(L, CmpId(1));
        d.evict_shared(L, CmpId(0));
        assert_eq!(d.state_of(L), DirState::Shared(0b10));
        d.evict_shared(L, CmpId(1));
        assert_eq!(d.state_of(L), DirState::Uncached);
        // A subsequent write needs no invalidations.
        let o = d.get_x(L, CmpId(2));
        assert!(o.invalidate.is_empty());
    }

    #[test]
    fn writeback_clears_ownership() {
        let mut d = Directory::new();
        d.get_x(L, CmpId(3));
        d.writeback(L, CmpId(3));
        assert_eq!(d.state_of(L), DirState::Uncached);
        // Writeback from a non-owner is ignored.
        d.get_x(L, CmpId(5));
        d.writeback(L, CmpId(3));
        assert_eq!(d.state_of(L), DirState::Modified(CmpId(5)));
    }
}
