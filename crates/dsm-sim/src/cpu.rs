//! Per-processor execution timeline.
//!
//! A [`CpuTimeline`] tracks where a simulated in-order processor is in time
//! and attributes every elapsed cycle to a [`TimeClass`] bucket. The MIPSY
//! model of the paper is approximated as one operation per cycle plus
//! blocking memory stalls; instruction fetch is folded into busy cycles.

use crate::engine::Cycle;
use crate::stats::{CpuStats, TimeClass};
use sim_trace::{Span, SpanLog};

/// Execution state of one simulated processor.
#[derive(Debug, Default)]
pub struct CpuTimeline {
    now: Cycle,
    /// Counters for this processor.
    pub stats: CpuStats,
    /// Coalesced time-class span log, present only when tracing is on.
    /// Boxed so the untraced timeline stays one pointer wider, and the
    /// hot attribution paths pay a single `Option` check.
    spans: Option<Box<SpanLog>>,
}

impl CpuTimeline {
    /// A processor at cycle 0 with empty counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The processor's current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Execute `cycles` of work attributed to `class`.
    pub fn busy(&mut self, cycles: Cycle, class: TimeClass) {
        let start = self.now;
        self.now += cycles;
        self.stats.time.add(class, cycles);
        if let Some(log) = &mut self.spans {
            log.note(class.label(), start, self.now);
        }
    }

    /// Advance to absolute cycle `to`, attributing the gap to `class`.
    /// `to` values in the past are ignored (no negative time).
    pub fn advance_to(&mut self, to: Cycle, class: TimeClass) {
        if to > self.now {
            self.stats.time.add(class, to - self.now);
            if let Some(log) = &mut self.spans {
                log.note(class.label(), self.now, to);
            }
            self.now = to;
        }
    }

    /// Account a completed memory access: the access busy-executes for
    /// `issue_cycles` (pipeline occupancy) and then stalls until `complete`.
    /// The stall lands in `stall_class` (MemStall in user code, Scheduling
    /// inside the runtime scheduler, ...).
    pub fn mem_access(&mut self, issue_cycles: Cycle, complete: Cycle, stall_class: TimeClass) {
        self.busy(issue_cycles, TimeClass::Busy);
        self.advance_to(complete, stall_class);
    }

    /// Jump the clock without attribution — only for initial placement
    /// before a processor has started executing.
    pub fn place_at(&mut self, t: Cycle) {
        debug_assert_eq!(self.stats.time.total(), 0, "placement after execution");
        self.now = t;
    }

    /// Jump the clock forward by `delta` without attributing the gap to
    /// any time class — the memoized-replay jump, where the skipped
    /// iterations' time is accounted separately as `k` copies of the
    /// measured per-iteration breakdown. Unlike [`place_at`], this is
    /// legal mid-run; span tracing must be off (memo never engages on a
    /// traced run), so no span is recorded.
    ///
    /// [`place_at`]: CpuTimeline::place_at
    pub fn memo_shift(&mut self, delta: Cycle) {
        debug_assert!(self.spans.is_none(), "memo jump on a traced timeline");
        self.now += delta;
    }

    /// Start recording coalesced time-class spans into a log of at most
    /// `capacity` slices. `capacity == 0` leaves tracing off.
    pub fn enable_trace(&mut self, capacity: usize) {
        if capacity > 0 {
            self.spans = Some(Box::new(SpanLog::new(capacity)));
        }
    }

    /// Take the recorded spans (plus the overflow-drop count), if tracing
    /// was enabled. The timeline reverts to untraced.
    pub fn take_spans(&mut self) -> Option<(Vec<Span>, u64)> {
        self.spans.take().map(|log| log.finish())
    }

    /// Serialize the full timeline state (clock, counters, span log).
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.u64(self.now);
        self.stats.snapshot(w);
        w.opt(&self.spans, |w, log| log.snapshot(w));
    }

    /// Overwrite this timeline with snapshot state. Unlike [`place_at`],
    /// this restores mid-run state, so non-zero counters are expected.
    ///
    /// [`place_at`]: CpuTimeline::place_at
    pub fn restore_into(&mut self, r: &mut snap::Reader) -> Result<(), snap::SnapError> {
        self.now = r.u64()?;
        self.stats = CpuStats::restore(r)?;
        self.spans = r.opt(|r| Ok(Box::new(SpanLog::restore(r)?)))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_advances_and_attributes() {
        let mut c = CpuTimeline::new();
        c.busy(100, TimeClass::Busy);
        c.busy(20, TimeClass::Scheduling);
        assert_eq!(c.now(), 120);
        assert_eq!(c.stats.time.get(TimeClass::Busy), 100);
        assert_eq!(c.stats.time.get(TimeClass::Scheduling), 20);
    }

    #[test]
    fn advance_to_ignores_past_targets() {
        let mut c = CpuTimeline::new();
        c.busy(50, TimeClass::Busy);
        c.advance_to(40, TimeClass::MemStall);
        assert_eq!(c.now(), 50);
        assert_eq!(c.stats.time.get(TimeClass::MemStall), 0);
        c.advance_to(80, TimeClass::MemStall);
        assert_eq!(c.now(), 80);
        assert_eq!(c.stats.time.get(TimeClass::MemStall), 30);
    }

    #[test]
    fn mem_access_splits_issue_and_stall() {
        let mut c = CpuTimeline::new();
        // Issue takes 1 cycle; data arrives at cycle 349.
        c.mem_access(1, 349, TimeClass::MemStall);
        assert_eq!(c.now(), 349);
        assert_eq!(c.stats.time.get(TimeClass::Busy), 1);
        assert_eq!(c.stats.time.get(TimeClass::MemStall), 348);
        assert_eq!(c.stats.time.total(), 349);
    }

    #[test]
    fn fast_access_has_no_stall() {
        let mut c = CpuTimeline::new();
        c.busy(10, TimeClass::Busy);
        // L1 hit completing within the issue cycle.
        c.mem_access(1, 11, TimeClass::MemStall);
        assert_eq!(c.stats.time.get(TimeClass::MemStall), 0);
        assert_eq!(c.now(), 11);
    }

    #[test]
    fn placement_sets_start_time() {
        let mut c = CpuTimeline::new();
        c.place_at(500);
        assert_eq!(c.now(), 500);
        assert_eq!(c.stats.time.total(), 0);
    }

    #[test]
    fn traced_timeline_coalesces_spans_without_changing_stats() {
        let mut traced = CpuTimeline::new();
        traced.enable_trace(64);
        let mut plain = CpuTimeline::new();
        for c in [&mut traced, &mut plain] {
            c.busy(10, TimeClass::Busy);
            c.busy(5, TimeClass::Busy);
            c.mem_access(1, 100, TimeClass::MemStall);
            c.advance_to(150, TimeClass::Barrier);
        }
        assert_eq!(traced.now(), plain.now());
        assert_eq!(traced.stats.time, plain.stats.time);
        let (spans, dropped) = traced.take_spans().unwrap();
        assert_eq!(dropped, 0);
        let view: Vec<_> = spans.iter().map(|s| (s.class, s.start, s.end)).collect();
        assert_eq!(
            view,
            [("busy", 0, 16), ("memory", 16, 100), ("barrier", 100, 150)]
        );
        assert!(plain.take_spans().is_none());
    }

    #[test]
    fn enable_trace_with_zero_capacity_stays_off() {
        let mut c = CpuTimeline::new();
        c.enable_trace(0);
        c.busy(10, TimeClass::Busy);
        assert!(c.take_spans().is_none());
    }
}
