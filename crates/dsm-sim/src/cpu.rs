//! Per-processor execution timeline.
//!
//! A [`CpuTimeline`] tracks where a simulated in-order processor is in time
//! and attributes every elapsed cycle to a [`TimeClass`] bucket. The MIPSY
//! model of the paper is approximated as one operation per cycle plus
//! blocking memory stalls; instruction fetch is folded into busy cycles.

use crate::engine::Cycle;
use crate::stats::{CpuStats, TimeClass};

/// Execution state of one simulated processor.
#[derive(Debug, Default)]
pub struct CpuTimeline {
    now: Cycle,
    /// Counters for this processor.
    pub stats: CpuStats,
}

impl CpuTimeline {
    /// A processor at cycle 0 with empty counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The processor's current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Execute `cycles` of work attributed to `class`.
    pub fn busy(&mut self, cycles: Cycle, class: TimeClass) {
        self.now += cycles;
        self.stats.time.add(class, cycles);
    }

    /// Advance to absolute cycle `to`, attributing the gap to `class`.
    /// `to` values in the past are ignored (no negative time).
    pub fn advance_to(&mut self, to: Cycle, class: TimeClass) {
        if to > self.now {
            self.stats.time.add(class, to - self.now);
            self.now = to;
        }
    }

    /// Account a completed memory access: the access busy-executes for
    /// `issue_cycles` (pipeline occupancy) and then stalls until `complete`.
    /// The stall lands in `stall_class` (MemStall in user code, Scheduling
    /// inside the runtime scheduler, ...).
    pub fn mem_access(&mut self, issue_cycles: Cycle, complete: Cycle, stall_class: TimeClass) {
        self.busy(issue_cycles, TimeClass::Busy);
        self.advance_to(complete, stall_class);
    }

    /// Jump the clock without attribution — only for initial placement
    /// before a processor has started executing.
    pub fn place_at(&mut self, t: Cycle) {
        debug_assert_eq!(self.stats.time.total(), 0, "placement after execution");
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_advances_and_attributes() {
        let mut c = CpuTimeline::new();
        c.busy(100, TimeClass::Busy);
        c.busy(20, TimeClass::Scheduling);
        assert_eq!(c.now(), 120);
        assert_eq!(c.stats.time.get(TimeClass::Busy), 100);
        assert_eq!(c.stats.time.get(TimeClass::Scheduling), 20);
    }

    #[test]
    fn advance_to_ignores_past_targets() {
        let mut c = CpuTimeline::new();
        c.busy(50, TimeClass::Busy);
        c.advance_to(40, TimeClass::MemStall);
        assert_eq!(c.now(), 50);
        assert_eq!(c.stats.time.get(TimeClass::MemStall), 0);
        c.advance_to(80, TimeClass::MemStall);
        assert_eq!(c.now(), 80);
        assert_eq!(c.stats.time.get(TimeClass::MemStall), 30);
    }

    #[test]
    fn mem_access_splits_issue_and_stall() {
        let mut c = CpuTimeline::new();
        // Issue takes 1 cycle; data arrives at cycle 349.
        c.mem_access(1, 349, TimeClass::MemStall);
        assert_eq!(c.now(), 349);
        assert_eq!(c.stats.time.get(TimeClass::Busy), 1);
        assert_eq!(c.stats.time.get(TimeClass::MemStall), 348);
        assert_eq!(c.stats.time.total(), 349);
    }

    #[test]
    fn fast_access_has_no_stall() {
        let mut c = CpuTimeline::new();
        c.busy(10, TimeClass::Busy);
        // L1 hit completing within the issue cycle.
        c.mem_access(1, 11, TimeClass::MemStall);
        assert_eq!(c.stats.time.get(TimeClass::MemStall), 0);
        assert_eq!(c.now(), 11);
    }

    #[test]
    fn placement_sets_start_time() {
        let mut c = CpuTimeline::new();
        c.place_at(500);
        assert_eq!(c.now(), 500);
        assert_eq!(c.stats.time.total(), 0);
    }
}
