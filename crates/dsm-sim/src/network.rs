//! Fixed-delay interconnect with port contention.
//!
//! The paper: "The processor interconnect is modeled as a fixed-delay
//! network. Contention is modeled at the network inputs and outputs, and at
//! the memory controller." Each node has one network-input and one
//! network-output port, each a serially reusable [`Resource`]; a message
//! occupies the sender's output port, travels `NetTime`, then occupies the
//! receiver's input port.

use crate::address::CmpId;
use crate::config::MachineConfig;
use crate::engine::{Cycle, Resource};

/// The interconnect between CMP nodes.
#[derive(Debug)]
pub struct Network {
    ni_out: Vec<Resource>,
    ni_in: Vec<Resource>,
    /// One-way wire/switch traversal latency in cycles (NetTime).
    pub net_delay: Cycle,
    /// Port occupancy per message in cycles.
    pub port_occupancy: Cycle,
}

impl Network {
    /// Build the interconnect for a machine.
    pub fn new(cfg: &MachineConfig) -> Self {
        Network {
            ni_out: (0..cfg.num_cmps).map(|_| Resource::new()).collect(),
            ni_in: (0..cfg.num_cmps).map(|_| Resource::new()).collect(),
            net_delay: cfg.ns_to_cycles(cfg.mem_ns.net_time),
            // A port is tied up for roughly the NI directory-controller
            // service time per message.
            port_occupancy: cfg.ns_to_cycles(cfg.mem_ns.ni_remote_dc_time),
        }
    }

    /// Send one message from `from` to `to`, with the first byte ready at
    /// `t`. Returns the cycle at which the message has fully arrived at the
    /// destination (including any port queueing on both ends).
    ///
    /// A message between co-located endpoints (`from == to`) does not touch
    /// the network and arrives immediately.
    pub fn traverse(&mut self, from: CmpId, to: CmpId, t: Cycle) -> Cycle {
        if from == to {
            return t;
        }
        let departed = self.ni_out[from.0].acquire(t, self.port_occupancy);
        let arrived_wire = departed + self.net_delay;
        self.ni_in[to.0].acquire(arrived_wire, self.port_occupancy)
    }

    /// Occupy `node`'s network-output port (which doubles as the node's
    /// directory-controller service point) for `occ` cycles starting no
    /// earlier than `t`. Returns service completion.
    pub fn out_port(&mut self, node: CmpId, t: Cycle, occ: Cycle) -> Cycle {
        self.ni_out[node.0].acquire(t, occ)
    }

    /// Occupy `node`'s network-input port for `occ` cycles starting no
    /// earlier than `t`. Returns service completion.
    pub fn in_port(&mut self, node: CmpId, t: Cycle, occ: Cycle) -> Cycle {
        self.ni_in[node.0].acquire(t, occ)
    }

    /// Total cycles messages spent queueing for ports (diagnostic).
    pub fn total_contention(&self) -> u64 {
        self.ni_out
            .iter()
            .chain(self.ni_in.iter())
            .map(|r| r.contention_cycles)
            .sum()
    }

    /// Total messages sent (diagnostic).
    pub fn total_messages(&self) -> u64 {
        self.ni_out.iter().map(|r| r.transactions).sum()
    }

    /// Append the time-normalized port state to a memo digest (output
    /// ports, then input ports — snapshot order).
    pub fn memo_digest(&self, now: Cycle, out: &mut Vec<u64>) {
        for r in self.ni_out.iter().chain(self.ni_in.iter()) {
            r.memo_digest(now, out);
        }
    }

    /// Advance live port reservations by `delta` (memo jump).
    pub fn memo_shift(&mut self, now: Cycle, delta: Cycle) {
        for r in self.ni_out.iter_mut().chain(self.ni_in.iter_mut()) {
            r.memo_shift(now, delta);
        }
    }

    /// Append the monotone port counters to a memo counter vector.
    pub fn memo_counters(&self, out: &mut Vec<u64>) {
        for r in self.ni_out.iter().chain(self.ni_in.iter()) {
            r.memo_counters(out);
        }
    }

    /// Add `k` copies of the deltas at `delta[*idx..]`, advancing `*idx`.
    pub fn memo_apply(&mut self, delta: &[u64], idx: &mut usize, k: u64) {
        for r in self.ni_out.iter_mut().chain(self.ni_in.iter_mut()) {
            r.memo_apply(delta, idx, k);
        }
    }

    /// Serialize the mutable port state. Derived latencies are rebuilt
    /// from config on restore, so only the resources are written.
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.seq(&self.ni_out, |w, r| r.snapshot(w));
        w.seq(&self.ni_in, |w, r| r.snapshot(w));
    }

    /// Overwrite this network's port state from a snapshot.
    pub fn restore_into(&mut self, r: &mut snap::Reader) -> Result<(), snap::SnapError> {
        self.ni_out = r.seq(Resource::restore)?;
        self.ni_in = r.seq(Resource::restore)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(&MachineConfig::paper())
    }

    #[test]
    fn uncontended_traverse_is_fixed_delay() {
        let mut n = net();
        // port(12) + wire(60) + port(12) at 1.2GHz: NetTime 50ns -> 60cy,
        // NIRemoteDCTime 10ns -> 12cy.
        let arrive = n.traverse(CmpId(0), CmpId(1), 1000);
        assert_eq!(arrive, 1000 + 12 + 60 + 12);
    }

    #[test]
    fn local_messages_bypass_network() {
        let mut n = net();
        assert_eq!(n.traverse(CmpId(3), CmpId(3), 500), 500);
        assert_eq!(n.total_messages(), 0);
    }

    #[test]
    fn output_port_serializes_senders() {
        let mut n = net();
        let a = n.traverse(CmpId(0), CmpId(1), 0);
        let b = n.traverse(CmpId(0), CmpId(2), 0);
        // Second message waits for the shared output port.
        assert!(b > a - 60, "second departure delayed by port occupancy");
        assert_eq!(b - a, 12, "exactly one port occupancy apart");
        assert!(n.total_contention() > 0);
    }

    #[test]
    fn input_port_serializes_receivers() {
        let mut n = net();
        let a = n.traverse(CmpId(0), CmpId(5), 0);
        let b = n.traverse(CmpId(1), CmpId(5), 0);
        assert_eq!(a, 84);
        assert_eq!(b, 96, "second arrival queues at the input port");
    }

    #[test]
    fn distinct_ports_do_not_interfere() {
        let mut n = net();
        let a = n.traverse(CmpId(0), CmpId(1), 0);
        let b = n.traverse(CmpId(2), CmpId(3), 0);
        assert_eq!(a, b);
        assert_eq!(n.total_contention(), 0);
    }
}
