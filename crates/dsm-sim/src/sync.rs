//! Logical synchronization objects of the simulated machine.
//!
//! These structures carry the *bookkeeping* of barriers, locks, and
//! semaphores — who has arrived, who holds, who waits. The *timing* of each
//! operation is charged by the execution layer, which issues the underlying
//! shared-memory or pair-register accesses through [`crate::memsys`] so
//! serialization and data migration emerge from the coherence protocol.
//!
//! The token semaphore of the paper's Figure 1 (A–R synchronization) is a
//! [`Semaphore`]: the R-stream inserts tokens (at barrier entry for local
//! sync, at barrier exit for global sync), the A-stream consumes one per
//! skipped barrier, and blocks when the count is exhausted.

use crate::address::{Addr, CpuId};
use std::collections::VecDeque;

/// A centralized sense-reversing barrier.
#[derive(Debug)]
pub struct Barrier {
    total: usize,
    arrived: usize,
    generation: u64,
    waiters: Vec<CpuId>,
    /// Shared-memory address of the barrier's counter/flag line; arrivals
    /// are atomic updates to this line.
    pub addr: Addr,
}

impl Barrier {
    /// A barrier for `total` participants, backed by the shared line at
    /// `addr`.
    pub fn new(total: usize, addr: Addr) -> Self {
        assert!(total > 0);
        Barrier {
            total,
            arrived: 0,
            generation: 0,
            waiters: Vec::new(),
            addr,
        }
    }

    /// Change the participant count (between episodes only).
    pub fn set_total(&mut self, total: usize) {
        assert!(total > 0);
        assert_eq!(self.arrived, 0, "cannot resize mid-episode");
        self.total = total;
    }

    /// Current participant count.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Completed barrier episodes.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Register an arrival. Returns `Some(waiters)` — the processors to
    /// wake — when this arrival releases the barrier (the arriving
    /// processor is *not* in the list); `None` if the arriver must wait.
    pub fn arrive(&mut self, cpu: CpuId) -> Option<Vec<CpuId>> {
        debug_assert!(!self.waiters.contains(&cpu), "double arrival");
        self.arrived += 1;
        if self.arrived == self.total {
            self.arrived = 0;
            self.generation += 1;
            Some(std::mem::take(&mut self.waiters))
        } else {
            self.waiters.push(cpu);
            None
        }
    }

    /// Number of processors currently parked at the barrier.
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// Arrivals registered in the current episode (0 right after a
    /// release). Trace hooks read this to annotate arrive events.
    pub fn arrived(&self) -> usize {
        self.arrived
    }

    /// Serialize the full barrier state (participants, arrivals, waiters).
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.usize(self.total);
        w.usize(self.arrived);
        w.u64(self.generation);
        w.seq(&self.waiters, |w, c| w.usize(c.0));
        w.u64(self.addr);
    }

    /// Restore a barrier written by [`Barrier::snapshot`].
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        Ok(Barrier {
            total: r.usize()?,
            arrived: r.usize()?,
            generation: r.u64()?,
            waiters: r.seq(|r| Ok(CpuId(r.usize()?)))?,
            addr: r.u64()?,
        })
    }
}

/// A FIFO queueing lock.
#[derive(Debug)]
pub struct Lock {
    holder: Option<CpuId>,
    queue: VecDeque<CpuId>,
    /// Shared-memory address of the lock word.
    pub addr: Addr,
    /// Total acquisitions (diagnostic).
    pub acquisitions: u64,
}

impl Lock {
    /// A free lock backed by the shared line at `addr`.
    pub fn new(addr: Addr) -> Self {
        Lock {
            holder: None,
            queue: VecDeque::new(),
            addr,
            acquisitions: 0,
        }
    }

    /// Try to take the lock. Returns true if granted immediately; false if
    /// the caller is enqueued.
    pub fn acquire(&mut self, cpu: CpuId) -> bool {
        if self.holder.is_none() {
            self.holder = Some(cpu);
            self.acquisitions += 1;
            true
        } else {
            debug_assert!(self.holder != Some(cpu), "recursive acquire");
            self.queue.push_back(cpu);
            false
        }
    }

    /// Release the lock. Returns the next holder to wake, if any.
    pub fn release(&mut self, cpu: CpuId) -> Option<CpuId> {
        assert_eq!(self.holder, Some(cpu), "release by non-holder");
        self.holder = self.queue.pop_front();
        if self.holder.is_some() {
            self.acquisitions += 1;
        }
        self.holder
    }

    /// Current holder.
    pub fn holder(&self) -> Option<CpuId> {
        self.holder
    }

    /// Processors queued behind the holder.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Serialize the full lock state (holder, FIFO queue, counters).
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.opt(&self.holder, |w, c| w.usize(c.0));
        w.deque(&self.queue, |w, c| w.usize(c.0));
        w.u64(self.addr);
        w.u64(self.acquisitions);
    }

    /// Restore a lock written by [`Lock::snapshot`].
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        Ok(Lock {
            holder: r.opt(|r| Ok(CpuId(r.usize()?)))?,
            queue: r.deque(|r| Ok(CpuId(r.usize()?)))?,
            addr: r.u64()?,
            acquisitions: r.u64()?,
        })
    }
}

/// A counting semaphore (the slipstream token semaphore and the syscall /
/// scheduling-handshake semaphores of the paper).
#[derive(Debug)]
pub struct Semaphore {
    count: u64,
    queue: VecDeque<CpuId>,
    /// Address of the backing register/line. For A–R pair semaphores this
    /// is a pair-shared hardware register (cheap access); the execution
    /// layer decides the charge.
    pub addr: Addr,
    /// Total tokens ever inserted (diagnostic; used by divergence checks).
    pub inserted: u64,
    /// Total tokens ever consumed (diagnostic).
    pub consumed: u64,
}

impl Semaphore {
    /// A semaphore with `initial` tokens, backed by `addr`.
    pub fn new(initial: u64, addr: Addr) -> Self {
        Semaphore {
            count: initial,
            queue: VecDeque::new(),
            addr,
            inserted: 0,
            consumed: 0,
        }
    }

    /// Current token count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Consume a token. Returns true if one was available; false if the
    /// caller is parked until a signal.
    pub fn wait(&mut self, cpu: CpuId) -> bool {
        if self.count > 0 {
            self.count -= 1;
            self.consumed += 1;
            true
        } else {
            self.queue.push_back(cpu);
            false
        }
    }

    /// Insert a token. If a processor is parked, it is granted the token
    /// directly and returned for waking.
    pub fn signal(&mut self) -> Option<CpuId> {
        self.inserted += 1;
        if let Some(cpu) = self.queue.pop_front() {
            self.consumed += 1;
            Some(cpu)
        } else {
            self.count += 1;
            None
        }
    }

    /// Reset to `tokens` with no waiters (start of a parallel region).
    pub fn reset(&mut self, tokens: u64) {
        assert!(self.queue.is_empty(), "reset with parked waiters");
        self.count = tokens;
        self.inserted = 0;
        self.consumed = 0;
    }

    /// Reset to `tokens`, evicting any parked waiters. Returns the
    /// evicted processors so the caller can re-dispatch them; none of
    /// them is granted a token. Recovery paths use this when a fault has
    /// left a processor parked in the queue (plain [`Semaphore::reset`]
    /// insists the queue is empty).
    pub fn force_reset(&mut self, tokens: u64) -> Vec<CpuId> {
        let evicted: Vec<CpuId> = self.queue.drain(..).collect();
        self.count = tokens;
        self.inserted = 0;
        self.consumed = 0;
        evicted
    }

    /// Parked processors.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Serialize the full semaphore state (count, parked queue, counters).
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.u64(self.count);
        w.deque(&self.queue, |w, c| w.usize(c.0));
        w.u64(self.addr);
        w.u64(self.inserted);
        w.u64(self.consumed);
    }

    /// Restore a semaphore written by [`Semaphore::snapshot`].
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        Ok(Semaphore {
            count: r.u64()?,
            queue: r.deque(|r| Ok(CpuId(r.usize()?)))?,
            addr: r.u64()?,
            inserted: r.u64()?,
            consumed: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_releases_on_last_arrival() {
        let mut b = Barrier::new(3, 0x1000);
        assert_eq!(b.arrive(CpuId(0)), None);
        assert_eq!(b.arrive(CpuId(1)), None);
        assert_eq!(b.waiting(), 2);
        let woken = b.arrive(CpuId(2)).unwrap();
        assert_eq!(woken, vec![CpuId(0), CpuId(1)]);
        assert_eq!(b.generation(), 1);
        assert_eq!(b.waiting(), 0);
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let mut b = Barrier::new(2, 0);
        assert!(b.arrive(CpuId(0)).is_none());
        assert!(b.arrive(CpuId(1)).is_some());
        assert!(b.arrive(CpuId(1)).is_none());
        assert!(b.arrive(CpuId(0)).is_some());
        assert_eq!(b.generation(), 2);
    }

    #[test]
    fn single_participant_barrier_never_blocks() {
        let mut b = Barrier::new(1, 0);
        assert_eq!(b.arrive(CpuId(5)), Some(vec![]));
        assert_eq!(b.arrive(CpuId(5)), Some(vec![]));
    }

    #[test]
    fn lock_grants_fifo() {
        let mut l = Lock::new(0x2000);
        assert!(l.acquire(CpuId(0)));
        assert!(!l.acquire(CpuId(1)));
        assert!(!l.acquire(CpuId(2)));
        assert_eq!(l.queue_len(), 2);
        assert_eq!(l.release(CpuId(0)), Some(CpuId(1)));
        assert_eq!(l.release(CpuId(1)), Some(CpuId(2)));
        assert_eq!(l.release(CpuId(2)), None);
        assert_eq!(l.holder(), None);
        assert_eq!(l.acquisitions, 3);
    }

    #[test]
    #[should_panic(expected = "release by non-holder")]
    fn lock_release_by_non_holder_panics() {
        let mut l = Lock::new(0);
        l.acquire(CpuId(0));
        l.release(CpuId(1));
    }

    #[test]
    fn semaphore_counts_tokens() {
        let mut s = Semaphore::new(2, 0x3000);
        assert!(s.wait(CpuId(0)));
        assert!(s.wait(CpuId(0)));
        assert!(!s.wait(CpuId(0)), "third wait parks");
        assert_eq!(s.queue_len(), 1);
        assert_eq!(s.signal(), Some(CpuId(0)), "signal hands token to waiter");
        assert_eq!(s.signal(), None, "no waiter: count grows");
        assert_eq!(s.count(), 1);
        assert_eq!(s.inserted, 2);
        assert_eq!(s.consumed, 3);
    }

    #[test]
    fn semaphore_reset_restores_initial_tokens() {
        let mut s = Semaphore::new(0, 0);
        s.signal();
        s.reset(5);
        assert_eq!(s.count(), 5);
        assert_eq!(s.inserted, 0);
    }

    #[test]
    fn semaphore_force_reset_evicts_waiters() {
        let mut s = Semaphore::new(0, 0);
        assert!(!s.wait(CpuId(4)));
        assert!(!s.wait(CpuId(7)));
        let evicted = s.force_reset(3);
        assert_eq!(evicted, vec![CpuId(4), CpuId(7)]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.inserted, 0);
        // The evicted processors were not granted tokens.
        assert_eq!(s.consumed, 0);
    }

    #[test]
    fn zero_token_semaphore_blocks_immediately() {
        let mut s = Semaphore::new(0, 0);
        assert!(!s.wait(CpuId(3)));
        assert_eq!(s.signal(), Some(CpuId(3)));
    }
}
