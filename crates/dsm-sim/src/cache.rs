//! Set-associative cache with LRU replacement.
//!
//! One structure serves both levels: per-processor L1 data caches (which
//! track only line presence — the shared L2 manages coherence between its
//! L1s, as in the paper's CMP model) and the per-CMP shared unified L2
//! (which carries MSI-style coherence state with respect to the directory).

use crate::address::LineAddr;
use crate::config::CacheConfig;

/// Coherence state of a cached line (MSI without the I — absent means
/// invalid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Read-only copy; other caches may also hold it.
    Shared,
    /// Writable, exclusive, possibly dirty copy.
    Modified,
}

/// A line evicted to make room for an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The displaced line.
    pub line: LineAddr,
    /// Its coherence state at eviction (Modified victims need writeback).
    pub state: LineState,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    line: LineAddr,
    state: LineState,
    last_use: u64,
}

/// LRU set-associative cache.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<Way>>,
    ways: usize,
    set_mask: u64,
    lru_clock: u64,
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
}

impl SetAssocCache {
    /// Build an empty cache with the given geometry.
    pub fn new(cfg: &CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        assert!(num_sets.is_power_of_two() && num_sets > 0);
        SetAssocCache {
            sets: vec![Vec::with_capacity(cfg.associativity as usize); num_sets as usize],
            ways: cfg.associativity as usize,
            set_mask: num_sets - 1,
            lru_clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.0 & self.set_mask) as usize
    }

    fn tick(&mut self) -> u64 {
        self.lru_clock += 1;
        self.lru_clock
    }

    /// Look up a line without touching LRU or hit counters.
    pub fn peek(&self, line: LineAddr) -> Option<LineState> {
        let set = &self.sets[self.set_index(line)];
        set.iter().find(|w| w.line == line).map(|w| w.state)
    }

    /// Demand lookup: returns the state on hit and refreshes LRU.
    ///
    /// Hits rotate the way to slot 0 so that the common repeated-access
    /// pattern ends the scan at the first probe. Way order within a set
    /// carries no semantics (ways are identified by line, and the LRU
    /// victim is chosen by the strictly increasing `last_use` stamp), so
    /// the rotation cannot change hit/miss outcomes or victim choice.
    pub fn access(&mut self, line: LineAddr) -> Option<LineState> {
        let t = self.tick();
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|w| w.line == line) {
            if pos != 0 {
                set.swap(0, pos);
            }
            set[0].last_use = t;
            self.hits += 1;
            Some(set[0].state)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Install (or update) a line, evicting the LRU way if the set is full.
    /// Returns the victim, if one was displaced.
    pub fn insert(&mut self, line: LineAddr, state: LineState) -> Option<Victim> {
        let t = self.tick();
        let idx = self.set_index(line);
        let ways = self.ways;
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|w| w.line == line) {
            if pos != 0 {
                set.swap(0, pos);
            }
            set[0].state = state;
            set[0].last_use = t;
            return None;
        }
        let victim = if set.len() == ways {
            let (vi, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_use)
                .expect("full set is non-empty");
            let v = set.swap_remove(vi);
            Some(Victim {
                line: v.line,
                state: v.state,
            })
        } else {
            None
        };
        set.push(Way {
            line,
            state,
            last_use: t,
        });
        victim
    }

    /// Change the state of a resident line (e.g., S→M upgrade, M→S
    /// downgrade). Returns false if the line is not resident.
    pub fn set_state(&mut self, line: LineAddr, state: LineState) -> bool {
        let idx = self.set_index(line);
        if let Some(w) = self.sets[idx].iter_mut().find(|w| w.line == line) {
            w.state = state;
            true
        } else {
            false
        }
    }

    /// Remove a line (external invalidation or inclusion victim). Returns its
    /// state if it was resident.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineState> {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        set.iter()
            .position(|w| w.line == line)
            .map(|pos| set.swap_remove(pos).state)
    }

    /// Number of resident lines (test/diagnostic helper).
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Append the replacement-relevant state to a memo digest: per set,
    /// the resident `(line, state)` pairs ordered most- to
    /// least-recently used. The absolute `last_use` stamps and the LRU
    /// clock are excluded — future hits and victim choices depend only
    /// on the recency *order*, which `tick()`'s strictly increasing
    /// stamps preserve across a time jump.
    pub fn memo_digest(&self, out: &mut Vec<u64>) {
        let mut order: Vec<&Way> = Vec::with_capacity(self.ways);
        for set in &self.sets {
            out.push(set.len() as u64);
            order.clear();
            order.extend(set.iter());
            order.sort_unstable_by_key(|w| std::cmp::Reverse(w.last_use));
            for w in &order {
                out.push(w.line.0);
                out.push(matches!(w.state, LineState::Modified) as u64);
            }
        }
    }

    /// Append the monotone counters to a memo counter vector.
    pub fn memo_counters(&self, out: &mut Vec<u64>) {
        out.push(self.hits);
        out.push(self.misses);
    }

    /// Add `k` copies of the deltas at `delta[*idx..]`, advancing `*idx`.
    pub fn memo_apply(&mut self, delta: &[u64], idx: &mut usize, k: u64) {
        self.hits += delta[*idx] * k;
        *idx += 1;
        self.misses += delta[*idx] * k;
        *idx += 1;
    }

    /// Serialize the full cache state (geometry, LRU clock, every way in
    /// storage order, hit/miss counters).
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.usize(self.ways);
        w.u64(self.set_mask);
        w.u64(self.lru_clock);
        w.usize(self.sets.len());
        for set in &self.sets {
            w.seq(set, |w, way| {
                w.u64(way.line.0);
                w.bool(matches!(way.state, LineState::Modified));
                w.u64(way.last_use);
            });
        }
        w.u64(self.hits);
        w.u64(self.misses);
    }

    /// Restore a cache written by [`SetAssocCache::snapshot`].
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        let ways = r.usize()?;
        let set_mask = r.u64()?;
        let lru_clock = r.u64()?;
        let num_sets = r.usize()?;
        let mut sets = Vec::with_capacity(num_sets);
        for _ in 0..num_sets {
            sets.push(r.seq(|r| {
                Ok(Way {
                    line: LineAddr(r.u64()?),
                    state: if r.bool()? {
                        LineState::Modified
                    } else {
                        LineState::Shared
                    },
                    last_use: r.u64()?,
                })
            })?);
        }
        Ok(SetAssocCache {
            sets,
            ways,
            set_mask,
            lru_clock,
            hits: r.u64()?,
            misses: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways, 64B lines.
        SetAssocCache::new(&CacheConfig {
            size_bytes: 256,
            associativity: 2,
            line_bytes: 64,
            hit_latency: 1,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(LineAddr(4)), None);
        c.insert(LineAddr(4), LineState::Shared);
        assert_eq!(c.access(LineAddr(4)), Some(LineState::Shared));
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line numbers).
        c.insert(LineAddr(0), LineState::Shared);
        c.insert(LineAddr(2), LineState::Shared);
        // Touch 0 so 2 becomes LRU.
        assert!(c.access(LineAddr(0)).is_some());
        let v = c.insert(LineAddr(4), LineState::Shared).unwrap();
        assert_eq!(v.line, LineAddr(2));
        assert!(c.peek(LineAddr(0)).is_some());
        assert!(c.peek(LineAddr(2)).is_none());
        assert!(c.peek(LineAddr(4)).is_some());
    }

    #[test]
    fn insert_existing_updates_state_without_eviction() {
        let mut c = tiny();
        c.insert(LineAddr(0), LineState::Shared);
        c.insert(LineAddr(2), LineState::Shared);
        assert_eq!(c.insert(LineAddr(0), LineState::Modified), None);
        assert_eq!(c.peek(LineAddr(0)), Some(LineState::Modified));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn modified_victim_reported_for_writeback() {
        let mut c = tiny();
        c.insert(LineAddr(0), LineState::Modified);
        c.insert(LineAddr(2), LineState::Shared);
        let v = c.insert(LineAddr(4), LineState::Shared).unwrap();
        assert_eq!(v.line, LineAddr(0));
        assert_eq!(v.state, LineState::Modified);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.insert(LineAddr(1), LineState::Modified);
        assert_eq!(c.invalidate(LineAddr(1)), Some(LineState::Modified));
        assert_eq!(c.invalidate(LineAddr(1)), None);
        assert_eq!(c.peek(LineAddr(1)), None);
    }

    #[test]
    fn set_state_on_missing_line_is_false() {
        let mut c = tiny();
        assert!(!c.set_state(LineAddr(3), LineState::Shared));
        c.insert(LineAddr(3), LineState::Shared);
        assert!(c.set_state(LineAddr(3), LineState::Modified));
        assert_eq!(c.peek(LineAddr(3)), Some(LineState::Modified));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        // Odd lines map to set 1; fill both sets past capacity of one set.
        c.insert(LineAddr(0), LineState::Shared);
        c.insert(LineAddr(2), LineState::Shared);
        c.insert(LineAddr(1), LineState::Shared);
        c.insert(LineAddr(3), LineState::Shared);
        assert_eq!(c.occupancy(), 4);
        // No cross-set eviction happened.
        for l in [0u64, 1, 2, 3] {
            assert!(c.peek(LineAddr(l)).is_some());
        }
    }
}
