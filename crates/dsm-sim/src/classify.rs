//! Shared-data request classification (Figures 3 and 5 of the paper).
//!
//! Every fill of a shared line into a CMP's L2 is attributed to the stream
//! that requested it (A or R) and later judged by what the *other* stream
//! of the pair did with it before the line left the cache:
//!
//! * **A-Timely** — the A-stream brought the line in and the R-stream
//!   referenced it after the fill completed: a successful prefetch.
//! * **A-Late** — the R-stream referenced the line while the A-stream's
//!   fill was still in flight: partially hidden latency.
//! * **A-Only** — the line was evicted or invalidated before the R-stream
//!   ever touched it: harmful traffic (premature prefetch).
//! * **R-Timely / R-Late / R-Only** — the mirror categories for lines the
//!   R-stream fetched (R-Only is the ordinary demand-miss case; R-Timely
//!   and R-Late mean the R-stream effectively prefetched for its A-stream).
//!
//! Read fills and read-exclusive fills are tallied separately, because the
//! paper reports read-exclusive *coverage* (A-stream store-to-prefetch
//! conversions) as its own series.

use crate::address::{CmpId, LineAddr};
use crate::engine::Cycle;
use crate::stats::StreamRole;
use crate::util::FastMap;
use sim_trace::{TraceConfig, TraceEvent, Tracer, TrackDomain};

/// What kind of ownership a fill acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqKind {
    /// GetS: a read (shared) copy.
    Read,
    /// GetX: an exclusive (writable) copy — demand store miss, upgrade, or
    /// A-stream store-conversion prefetch.
    ReadEx,
}

/// Final category of one fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FillClass {
    /// A-stream fill, R-stream used it after completion.
    ATimely,
    /// A-stream fill, R-stream used it while still in flight.
    ALate,
    /// A-stream fill never used by the R-stream (premature/harmful).
    AOnly,
    /// R-stream fill, A-stream used it after completion.
    RTimely,
    /// R-stream fill, A-stream used it while still in flight.
    RLate,
    /// R-stream fill used only by the R-stream (ordinary demand miss).
    ROnly,
}

/// All classes in display order.
pub const FILL_CLASSES: [FillClass; 6] = [
    FillClass::ATimely,
    FillClass::ALate,
    FillClass::AOnly,
    FillClass::RTimely,
    FillClass::RLate,
    FillClass::ROnly,
];

impl FillClass {
    fn index(self) -> usize {
        match self {
            FillClass::ATimely => 0,
            FillClass::ALate => 1,
            FillClass::AOnly => 2,
            FillClass::RTimely => 3,
            FillClass::RLate => 4,
            FillClass::ROnly => 5,
        }
    }

    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FillClass::ATimely => "A-Timely",
            FillClass::ALate => "A-Late",
            FillClass::AOnly => "A-Only",
            FillClass::RTimely => "R-Timely",
            FillClass::RLate => "R-Late",
            FillClass::ROnly => "R-Only",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct FillRecord {
    issuer: StreamRole,
    kind: ReqKind,
    complete: Cycle,
    /// Earliest reference by the stream that did NOT issue the fill.
    other_first_use: Option<Cycle>,
}

/// Counts of fills per (kind, class).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FillCounts {
    counts: [[u64; FILL_CLASSES.len()]; 2],
}

fn kind_index(kind: ReqKind) -> usize {
    match kind {
        ReqKind::Read => 0,
        ReqKind::ReadEx => 1,
    }
}

impl FillCounts {
    /// Count for a (kind, class) cell.
    pub fn get(&self, kind: ReqKind, class: FillClass) -> u64 {
        self.counts[kind_index(kind)][class.index()]
    }

    fn bump(&mut self, kind: ReqKind, class: FillClass) {
        self.counts[kind_index(kind)][class.index()] += 1;
    }

    /// Total fills of a kind.
    pub fn total(&self, kind: ReqKind) -> u64 {
        self.counts[kind_index(kind)].iter().sum()
    }

    /// Rebuild counts from raw per-class cells in [`FILL_CLASSES`]
    /// order — the inverse of reading every [`FillCounts::get`] cell
    /// (used to reconstitute a daemon result payload). Slices must have
    /// one cell per fill class.
    pub fn from_cells(read: &[u64], readex: &[u64]) -> FillCounts {
        assert_eq!(read.len(), FILL_CLASSES.len(), "read cell count");
        assert_eq!(readex.len(), FILL_CLASSES.len(), "readex cell count");
        let mut fc = FillCounts::default();
        fc.counts[0].copy_from_slice(read);
        fc.counts[1].copy_from_slice(readex);
        fc
    }

    /// Fraction of `kind` fills in `class` (0 when no fills).
    pub fn fraction(&self, kind: ReqKind, class: FillClass) -> f64 {
        let t = self.total(kind);
        if t == 0 {
            0.0
        } else {
            self.get(kind, class) as f64 / t as f64
        }
    }

    /// Fraction of `kind` fills issued by the A-stream that the R-stream
    /// consumed (timely or late): the paper's "coverage".
    pub fn a_coverage(&self, kind: ReqKind) -> f64 {
        self.fraction(kind, FillClass::ATimely) + self.fraction(kind, FillClass::ALate)
    }

    /// Fraction of `kind` fills referenced by both streams.
    pub fn both_streams_fraction(&self, kind: ReqKind) -> f64 {
        self.fraction(kind, FillClass::ATimely)
            + self.fraction(kind, FillClass::ALate)
            + self.fraction(kind, FillClass::RTimely)
            + self.fraction(kind, FillClass::RLate)
    }

    /// Append every (kind, class) cell to a memo counter vector.
    pub fn memo_counters(&self, out: &mut Vec<u64>) {
        for row in &self.counts {
            out.extend_from_slice(row);
        }
    }

    /// Add `k` copies of the deltas at `delta[*idx..]`, advancing `*idx`.
    pub fn memo_apply(&mut self, delta: &[u64], idx: &mut usize, k: u64) {
        for row in &mut self.counts {
            for c in row.iter_mut() {
                *c += delta[*idx] * k;
                *idx += 1;
            }
        }
    }

    /// Element-wise accumulate.
    pub fn merge(&mut self, other: &FillCounts) {
        for (row_a, row_b) in self.counts.iter_mut().zip(other.counts.iter()) {
            for (a, b) in row_a.iter_mut().zip(row_b.iter()) {
                *a += *b;
            }
        }
    }
}

/// Per-CMP tallies of A-issued fills, the raw material of the pair-health
/// controller's prefetch-timeliness signal. Cumulative over the run; the
/// consumer windows them by snapshotting at region boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ATally {
    /// A-issued fills classified A-Timely.
    pub timely: u64,
    /// A-issued fills classified A-Only (pollution).
    pub polluted: u64,
    /// All A-issued fills classified so far.
    pub total: u64,
}

/// Tracks live fills per (CMP, line) and classifies them when the line
/// leaves the cache (eviction/invalidation) or the simulation ends.
#[derive(Debug)]
pub struct Classifier {
    live: FastMap<u64, FillRecord>,
    /// Classified fill tallies.
    pub counts: FillCounts,
    /// Per-CMP A-issued fill tallies (lazily sized).
    a_tallies: Vec<ATally>,
    /// Trace sink for final classifications (disabled by default).
    tracer: Tracer,
}

impl Default for Classifier {
    fn default() -> Self {
        Classifier {
            live: FastMap::default(),
            counts: FillCounts::default(),
            a_tallies: Vec::new(),
            tracer: Tracer::disabled(TrackDomain::Cmp),
        }
    }
}

fn key(cmp: CmpId, line: LineAddr) -> u64 {
    // Line addresses fit comfortably below 2^56.
    ((cmp.0 as u64) << 56) | line.0
}

const KEY_LINE_MASK: u64 = (1 << 56) - 1;

impl Classifier {
    /// Empty classifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared-line fill was issued into `cmp`'s L2 by a paired stream.
    /// `complete` is when the data arrives. Any previous live record for the
    /// same line is finalized first (it is being replaced).
    pub fn on_fill(
        &mut self,
        cmp: CmpId,
        line: LineAddr,
        issuer: StreamRole,
        kind: ReqKind,
        complete: Cycle,
    ) {
        debug_assert!(issuer != StreamRole::Solo, "only paired streams classify");
        let k = key(cmp, line);
        if let Some(old) = self.live.insert(
            k,
            FillRecord {
                issuer,
                kind,
                complete,
                other_first_use: None,
            },
        ) {
            self.finalize(k, old);
        }
    }

    /// A stream referenced a shared line resident (or in flight) in `cmp`'s
    /// L2 at time `now`.
    pub fn on_reference(&mut self, cmp: CmpId, line: LineAddr, who: StreamRole, now: Cycle) {
        if who == StreamRole::Solo {
            return;
        }
        if let Some(rec) = self.live.get_mut(&key(cmp, line)) {
            if rec.issuer != who && rec.other_first_use.is_none() {
                rec.other_first_use = Some(now);
            }
        }
    }

    /// The line left `cmp`'s L2 (eviction or invalidation): classify it.
    pub fn on_drop(&mut self, cmp: CmpId, line: LineAddr) {
        let k = key(cmp, line);
        if let Some(rec) = self.live.remove(&k) {
            self.finalize(k, rec);
        }
    }

    /// Classify every still-live fill (call at end of simulation).
    pub fn finish(&mut self) {
        let live = std::mem::take(&mut self.live);
        for (k, rec) in live {
            self.finalize(k, rec);
        }
    }

    fn finalize(&mut self, k: u64, rec: FillRecord) {
        let class = match (rec.issuer, rec.other_first_use) {
            (StreamRole::A, Some(t)) if t >= rec.complete => FillClass::ATimely,
            (StreamRole::A, Some(_)) => FillClass::ALate,
            (StreamRole::A, None) => FillClass::AOnly,
            (StreamRole::R, Some(t)) if t >= rec.complete => FillClass::RTimely,
            (StreamRole::R, Some(_)) => FillClass::RLate,
            (StreamRole::R, None) => FillClass::ROnly,
            (StreamRole::Solo, _) => unreachable!("solo fills are not recorded"),
        };
        self.counts.bump(rec.kind, class);
        if rec.issuer == StreamRole::A {
            let cmp = (k >> 56) as usize;
            if cmp >= self.a_tallies.len() {
                self.a_tallies.resize(cmp + 1, ATally::default());
            }
            let t = &mut self.a_tallies[cmp];
            t.total += 1;
            match class {
                FillClass::ATimely => t.timely += 1,
                FillClass::AOnly => t.polluted += 1,
                _ => {}
            }
        }
        if self.tracer.is_on() {
            self.tracer.record(
                rec.complete,
                (k >> 56) as u32,
                TraceEvent::FillClass {
                    line: k & KEY_LINE_MASK,
                    class: class.label(),
                    complete: rec.complete,
                },
            );
        }
    }

    /// Route final fill classifications to a trace sink (per-CMP tracks).
    pub fn set_trace(&mut self, cfg: &TraceConfig) {
        self.tracer = Tracer::new(cfg, TrackDomain::Cmp);
    }

    /// Drain recorded classification events; tracing reverts to off.
    pub fn take_trace(&mut self) -> (Vec<sim_trace::TimedEvent>, u64) {
        std::mem::replace(&mut self.tracer, Tracer::disabled(TrackDomain::Cmp)).drain()
    }

    /// Number of still-live (unclassified) records.
    pub fn live_records(&self) -> usize {
        self.live.len()
    }

    /// Cumulative A-issued fill tallies for one CMP. Only fills already
    /// classified (dropped, replaced, or finished) are counted, so
    /// boundary snapshots lag in-flight lines — acceptable for a health
    /// signal, which wants settled verdicts anyway.
    pub fn a_tally(&self, cmp: CmpId) -> ATally {
        self.a_tallies.get(cmp.0).copied().unwrap_or_default()
    }

    /// Append the time-normalized live-record state to a memo digest:
    /// records sorted by key, completion and first-use times as offsets
    /// from `now`. In solo modes the live map is always empty (paired
    /// streams are a precondition of recording), so this contributes a
    /// fixed-size prefix there.
    pub fn memo_digest(&self, now: Cycle, out: &mut Vec<u64>) {
        let mut live: Vec<(u64, FillRecord)> = self.live.iter().map(|(k, v)| (*k, *v)).collect();
        live.sort_unstable_by_key(|(k, _)| *k);
        out.push(live.len() as u64);
        for (k, rec) in live {
            out.push(k);
            out.push(match rec.issuer {
                StreamRole::Solo => 0,
                StreamRole::R => 1,
                StreamRole::A => 2,
            });
            out.push(matches!(rec.kind, ReqKind::ReadEx) as u64);
            out.push((rec.complete as i64).wrapping_sub(now as i64) as u64);
            match rec.other_first_use {
                None => out.push(0),
                Some(t) => {
                    out.push(1);
                    out.push((t as i64).wrapping_sub(now as i64) as u64);
                }
            }
        }
    }

    /// Advance every live record's timestamps by `delta` (memo jump).
    pub fn memo_shift(&mut self, delta: Cycle) {
        for rec in self.live.values_mut() {
            rec.complete += delta;
            if let Some(t) = &mut rec.other_first_use {
                *t += delta;
            }
        }
    }

    /// Append the classified tallies to a memo counter vector (fill
    /// counts, then the per-CMP A-tallies behind a length marker — the
    /// tally vector is lazily sized, and a length change between samples
    /// must fail the comparison rather than misalign the deltas).
    pub fn memo_counters(&self, out: &mut Vec<u64>) {
        self.counts.memo_counters(out);
        out.push(self.a_tallies.len() as u64);
        for t in &self.a_tallies {
            out.push(t.timely);
            out.push(t.polluted);
            out.push(t.total);
        }
    }

    /// Add `k` copies of the deltas at `delta[*idx..]`, advancing `*idx`.
    /// The caller guarantees the sample layouts match (same tally count).
    pub fn memo_apply(&mut self, delta: &[u64], idx: &mut usize, k: u64) {
        self.counts.memo_apply(delta, idx, k);
        // The length-marker slot differences to zero when the layouts of
        // the two samples match (the caller already verified they do).
        debug_assert_eq!(delta[*idx], 0, "memo tally layout drift");
        *idx += 1;
        for t in &mut self.a_tallies {
            t.timely += delta[*idx] * k;
            *idx += 1;
            t.polluted += delta[*idx] * k;
            *idx += 1;
            t.total += delta[*idx] * k;
            *idx += 1;
        }
    }

    /// Serialize the full classifier state. Live records are written
    /// sorted by key — `FastMap` iteration order is not deterministic,
    /// the snapshot must be.
    pub fn snapshot(&self, w: &mut snap::Writer) {
        let mut live: Vec<(u64, FillRecord)> = self.live.iter().map(|(k, v)| (*k, *v)).collect();
        live.sort_unstable_by_key(|(k, _)| *k);
        w.seq(&live, |w, (k, rec)| {
            w.u64(*k);
            w.u8(match rec.issuer {
                StreamRole::Solo => 0,
                StreamRole::R => 1,
                StreamRole::A => 2,
            });
            w.bool(matches!(rec.kind, ReqKind::ReadEx));
            w.u64(rec.complete);
            w.opt(&rec.other_first_use, |w, t| w.u64(*t));
        });
        for row in self.counts.counts {
            for c in row {
                w.u64(c);
            }
        }
        w.seq(&self.a_tallies, |w, t| {
            w.u64(t.timely);
            w.u64(t.polluted);
            w.u64(t.total);
        });
        self.tracer.snapshot(w);
    }

    /// Restore a classifier written by [`Classifier::snapshot`].
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        let live_entries = r.seq(|r| {
            let k = r.u64()?;
            let issuer = match r.u8()? {
                0 => StreamRole::Solo,
                1 => StreamRole::R,
                2 => StreamRole::A,
                _ => return Err(snap::SnapError::Corrupt { what: "StreamRole" }),
            };
            Ok((
                k,
                FillRecord {
                    issuer,
                    kind: if r.bool()? {
                        ReqKind::ReadEx
                    } else {
                        ReqKind::Read
                    },
                    complete: r.u64()?,
                    other_first_use: r.opt(|r| r.u64())?,
                },
            ))
        })?;
        let mut counts = FillCounts::default();
        for row in &mut counts.counts {
            for c in row.iter_mut() {
                *c = r.u64()?;
            }
        }
        Ok(Classifier {
            live: live_entries.into_iter().collect(),
            counts,
            a_tallies: r.seq(|r| {
                Ok(ATally {
                    timely: r.u64()?,
                    polluted: r.u64()?,
                    total: r.u64()?,
                })
            })?,
            tracer: Tracer::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: CmpId = CmpId(0);
    const L: LineAddr = LineAddr(100);

    #[test]
    fn a_fill_used_by_r_after_completion_is_timely() {
        let mut cl = Classifier::new();
        cl.on_fill(C, L, StreamRole::A, ReqKind::Read, 500);
        cl.on_reference(C, L, StreamRole::R, 600);
        cl.finish();
        assert_eq!(cl.counts.get(ReqKind::Read, FillClass::ATimely), 1);
        assert_eq!(cl.counts.total(ReqKind::Read), 1);
    }

    #[test]
    fn a_fill_used_by_r_in_flight_is_late() {
        let mut cl = Classifier::new();
        cl.on_fill(C, L, StreamRole::A, ReqKind::Read, 500);
        cl.on_reference(C, L, StreamRole::R, 450);
        cl.finish();
        assert_eq!(cl.counts.get(ReqKind::Read, FillClass::ALate), 1);
    }

    #[test]
    fn a_fill_never_used_by_r_is_a_only() {
        let mut cl = Classifier::new();
        cl.on_fill(C, L, StreamRole::A, ReqKind::Read, 500);
        cl.on_reference(C, L, StreamRole::A, 700); // own use doesn't count
        cl.on_drop(C, L);
        assert_eq!(cl.counts.get(ReqKind::Read, FillClass::AOnly), 1);
        assert_eq!(cl.live_records(), 0);
    }

    #[test]
    fn r_fill_classifies_symmetrically() {
        let mut cl = Classifier::new();
        cl.on_fill(C, L, StreamRole::R, ReqKind::Read, 500);
        cl.on_reference(C, L, StreamRole::A, 800);
        cl.on_fill(C, LineAddr(101), StreamRole::R, ReqKind::Read, 500);
        cl.finish();
        assert_eq!(cl.counts.get(ReqKind::Read, FillClass::RTimely), 1);
        assert_eq!(cl.counts.get(ReqKind::Read, FillClass::ROnly), 1);
    }

    #[test]
    fn only_first_other_reference_matters() {
        let mut cl = Classifier::new();
        cl.on_fill(C, L, StreamRole::A, ReqKind::Read, 500);
        cl.on_reference(C, L, StreamRole::R, 450); // late...
        cl.on_reference(C, L, StreamRole::R, 900); // ...later timely use ignored
        cl.finish();
        assert_eq!(cl.counts.get(ReqKind::Read, FillClass::ALate), 1);
    }

    #[test]
    fn refill_finalizes_previous_record() {
        let mut cl = Classifier::new();
        cl.on_fill(C, L, StreamRole::A, ReqKind::Read, 500);
        // Replaced without ever being used by R: A-Only.
        cl.on_fill(C, L, StreamRole::R, ReqKind::Read, 900);
        cl.on_reference(C, L, StreamRole::A, 1000);
        cl.finish();
        assert_eq!(cl.counts.get(ReqKind::Read, FillClass::AOnly), 1);
        assert_eq!(cl.counts.get(ReqKind::Read, FillClass::RTimely), 1);
    }

    #[test]
    fn read_and_readex_tally_separately() {
        let mut cl = Classifier::new();
        cl.on_fill(C, L, StreamRole::A, ReqKind::ReadEx, 100);
        cl.on_reference(C, L, StreamRole::R, 200);
        cl.on_fill(C, LineAddr(200), StreamRole::A, ReqKind::Read, 100);
        cl.finish();
        assert_eq!(cl.counts.get(ReqKind::ReadEx, FillClass::ATimely), 1);
        assert_eq!(cl.counts.get(ReqKind::Read, FillClass::AOnly), 1);
        assert!((cl.counts.a_coverage(ReqKind::ReadEx) - 1.0).abs() < 1e-12);
        assert_eq!(cl.counts.a_coverage(ReqKind::Read), 0.0);
    }

    #[test]
    fn distinct_cmps_do_not_collide() {
        let mut cl = Classifier::new();
        cl.on_fill(CmpId(0), L, StreamRole::A, ReqKind::Read, 100);
        cl.on_fill(CmpId(1), L, StreamRole::A, ReqKind::Read, 100);
        cl.on_reference(CmpId(0), L, StreamRole::R, 200);
        cl.finish();
        assert_eq!(cl.counts.get(ReqKind::Read, FillClass::ATimely), 1);
        assert_eq!(cl.counts.get(ReqKind::Read, FillClass::AOnly), 1);
    }

    #[test]
    fn per_cmp_a_tallies_track_timeliness_and_pollution() {
        let mut cl = Classifier::new();
        // CMP 0: one timely, one polluted, one late A fill.
        cl.on_fill(CmpId(0), LineAddr(1), StreamRole::A, ReqKind::Read, 500);
        cl.on_reference(CmpId(0), LineAddr(1), StreamRole::R, 600);
        cl.on_fill(CmpId(0), LineAddr(2), StreamRole::A, ReqKind::Read, 500);
        cl.on_fill(CmpId(0), LineAddr(3), StreamRole::A, ReqKind::Read, 500);
        cl.on_reference(CmpId(0), LineAddr(3), StreamRole::R, 450);
        // CMP 2: an R fill must not count; one polluted A fill must.
        cl.on_fill(CmpId(2), LineAddr(1), StreamRole::R, ReqKind::Read, 500);
        cl.on_fill(CmpId(2), LineAddr(2), StreamRole::A, ReqKind::ReadEx, 500);
        cl.finish();
        let t0 = cl.a_tally(CmpId(0));
        assert_eq!((t0.timely, t0.polluted, t0.total), (1, 1, 3));
        let t2 = cl.a_tally(CmpId(2));
        assert_eq!((t2.timely, t2.polluted, t2.total), (0, 1, 1));
        // Untouched CMPs read as empty.
        assert_eq!(cl.a_tally(CmpId(1)), ATally::default());
        assert_eq!(cl.a_tally(CmpId(9)), ATally::default());
    }

    #[test]
    fn fractions_and_merge() {
        let mut a = FillCounts::default();
        a.bump(ReqKind::Read, FillClass::ATimely);
        a.bump(ReqKind::Read, FillClass::ROnly);
        let mut b = FillCounts::default();
        b.bump(ReqKind::Read, FillClass::ATimely);
        a.merge(&b);
        assert_eq!(a.get(ReqKind::Read, FillClass::ATimely), 2);
        assert!((a.fraction(ReqKind::Read, FillClass::ATimely) - 2.0 / 3.0).abs() < 1e-12);
        assert!((a.both_streams_fraction(ReqKind::Read) - 2.0 / 3.0).abs() < 1e-12);
    }
}
