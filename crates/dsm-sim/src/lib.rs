//! # dsm-sim — a CMP-based DSM multiprocessor simulator
//!
//! Deterministic discrete-event simulation of the machine evaluated in
//! *Extending OpenMP to Support Slipstream Execution Mode* (Ibrahim & Byrd,
//! IPPS 2003): dual-processor CMP nodes with private L1 caches and a shared
//! unified L2, a slice of globally shared memory per node, an
//! invalidate-based fully-mapped directory protocol, and a fixed-delay
//! interconnect with contention at the network ports and memory
//! controllers. Latency parameters default to the paper's Table 1.
//!
//! The crate provides the *machine*; the OpenMP-style runtime and the
//! slipstream execution engine that drive it live in the `omp-rt` and
//! `slipstream` crates.
//!
//! ```
//! use dsm_sim::{MachineConfig, MemSystem, AccessKind, CpuId, CpuStats};
//!
//! let cfg = MachineConfig::paper();
//! assert_eq!(cfg.remote_miss_ns(), 290);
//! let mut ms = MemSystem::new(&cfg);
//! let mut stats = CpuStats::default();
//! let addr = ms.map().shared_base();
//! let r = ms.access(CpuId(0), addr, AccessKind::Load, 0, &mut stats);
//! assert!(!r.l1_hit); // cold miss
//! ```

#![warn(missing_docs)]

pub mod address;
pub mod cache;
pub mod classify;
pub mod config;
pub mod cpu;
pub mod directory;
pub mod engine;
pub mod memory;
pub mod memsys;
pub mod network;
pub mod pdes;
pub mod rng;
pub mod stats;
pub mod sync;
mod util;

pub use address::{layout_spans, Addr, AddressMap, ArraySpan, CmpId, CpuId, LineAddr, Space};
pub use cache::{LineState, SetAssocCache};
pub use classify::{ATally, Classifier, FillClass, FillCounts, ReqKind, FILL_CLASSES};
pub use config::{CacheConfig, MachineConfig, MemoryTimingNs};
pub use cpu::CpuTimeline;
pub use directory::{DataSource, DirState, Directory};
pub use engine::{Cycle, DomainQueues, EventQueue, Resource};
pub use memory::MemoryControllers;
pub use memsys::{AccessKind, AccessLocality, AccessResult, MachineCounters, MemSystem};
pub use network::Network;
pub use pdes::{clamp_workers, lookahead_cycles, resolve_workers, PdesConfig};
pub use rng::SplitMix64;
pub use stats::{CpuStats, StreamRole, TimeBreakdown, TimeClass, TIME_CLASSES};
pub use sync::{Barrier, Lock, Semaphore};
