//! Conservative parallel discrete-event simulation (PDES) support.
//!
//! The machine the engine models is sixteen independent CMP nodes joined
//! by a network, but the discrete-event core is serial. This module holds
//! the machine-independent pieces of the conservative parallelization
//! layered over it:
//!
//! * **time domains** — each CMP (its cores, their L1s, the node's L2
//!   bank) is one domain whose events live in a per-domain queue (see
//!   [`crate::engine::DomainQueues`]) and whose clock may run ahead of
//!   the global frontier;
//! * **lookahead** — the Chandy–Misra-style bound on how far ahead of the
//!   frontier a domain may be admitted into a parallel window, derived
//!   from the minimum remote-hop latency of the network ([`
//!   lookahead_cycles`]): no *timed* cross-domain interaction can land
//!   sooner than one remote hop;
//! * **worker configuration** — how many host threads step domains
//!   concurrently ([`PdesConfig`]), with an oversubscription clamp
//!   ([`clamp_workers`]) for engines running inside an already-parallel
//!   harness.
//!
//! The determinism contract is strict: a parallel run must be
//! *bit-identical* to the serial engine — same stats, same fingerprints,
//! for every mode, trace configuration, fault plan, and health policy.
//! Because this simulator applies cross-domain *state* effects (directory
//! transactions, invalidations) synchronously at the moment the crossing
//! event executes, the effective lookahead for shared-state mutation is
//! zero; only work that is provably confined to a single processor's
//! private state may run concurrently. The execution layer therefore
//! parallelizes the pure per-CPU prefix of each domain's work inside a
//! window and commits every boundary-crossing event serially in global
//! `(time, seq, cpu)` order. See `DESIGN.md` §13 for the full argument.

use crate::config::MachineConfig;
use crate::engine::Cycle;

/// Worker configuration for the PDES execution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PdesConfig {
    /// Host threads stepping domains concurrently. `1` (the default)
    /// selects the serial engine fast path, bit-for-bit the pre-PDES
    /// event loop.
    pub workers: usize,
    /// Override the lookahead horizon (cycles). `None` derives it from
    /// the machine's minimum remote-hop latency. `Some(0)` degrades the
    /// window to lockstep admission (events at exactly the frontier
    /// time), which must still make progress — it may never deadlock.
    pub lookahead: Option<Cycle>,
}

impl Default for PdesConfig {
    fn default() -> Self {
        PdesConfig {
            workers: 1,
            lookahead: None,
        }
    }
}

impl PdesConfig {
    /// Serial configuration (the default).
    pub fn serial() -> Self {
        Self::default()
    }

    /// A parallel configuration with `workers` host threads.
    pub fn with_workers(workers: usize) -> Self {
        PdesConfig {
            workers: workers.max(1),
            lookahead: None,
        }
    }

    /// The lookahead horizon in effect for `machine`.
    pub fn lookahead_for(&self, machine: &MachineConfig) -> Cycle {
        self.lookahead.unwrap_or_else(|| lookahead_cycles(machine))
    }
}

/// The conservative lookahead horizon derived from the network: the
/// minimum latency of one remote hop (processor interface + send-side NI
/// occupancy + wire time), i.e. the soonest any *timed* interaction
/// issued by one CMP can complete at another. Domains whose next event
/// lies within this bound of the global frontier are admitted to the
/// same parallel window.
pub fn lookahead_cycles(machine: &MachineConfig) -> Cycle {
    let m = &machine.mem_ns;
    machine.ns_to_cycles(m.pi_local_dc_time + m.ni_remote_dc_time + m.net_time)
}

/// Clamp an engine's worker count so the product of harness workers and
/// engine workers never oversubscribes the host: with `pool_workers`
/// simulations already running concurrently, each engine gets
/// `available / pool_workers` threads (at least one), further capped by
/// the request. `available` should respect `BENCH_WORKERS` when set.
pub fn clamp_workers(requested: usize, pool_workers: usize, available: usize) -> usize {
    let requested = requested.max(1);
    let per_engine = (available.max(1) / pool_workers.max(1)).max(1);
    requested.min(per_engine)
}

/// Resolve a `SIM_WORKERS`-style request: `0` means "use all available
/// parallelism", anything else is taken literally (then clamped by the
/// caller via [`clamp_workers`] when running inside a pool).
pub fn resolve_workers(requested: usize, available: usize) -> usize {
    if requested == 0 {
        available.max(1)
    } else {
        requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookahead_is_one_remote_hop() {
        let m = MachineConfig::paper();
        // 10 + 10 + 50 = 70 ns at 1.2 GHz -> ceil(84.0) = 84 cycles.
        assert_eq!(lookahead_cycles(&m), m.ns_to_cycles(70));
        assert!(lookahead_cycles(&m) > 0);
        assert!(lookahead_cycles(&m) < m.remote_miss_cycles());
    }

    #[test]
    fn config_defaults_to_serial() {
        let c = PdesConfig::default();
        assert_eq!(c.workers, 1);
        let m = MachineConfig::paper();
        assert_eq!(c.lookahead_for(&m), lookahead_cycles(&m));
    }

    #[test]
    fn lookahead_override_wins() {
        let mut c = PdesConfig::with_workers(4);
        c.lookahead = Some(0);
        assert_eq!(c.lookahead_for(&MachineConfig::paper()), 0);
    }

    #[test]
    fn workers_floor_is_one() {
        assert_eq!(PdesConfig::with_workers(0).workers, 1);
    }

    #[test]
    fn clamp_prevents_cores_squared() {
        // 8 cores, pool of 8: each engine gets 1 worker no matter what
        // it asked for.
        assert_eq!(clamp_workers(4, 8, 8), 1);
        // Pool of 2 on 8 cores: up to 4 engine workers.
        assert_eq!(clamp_workers(4, 2, 8), 4);
        assert_eq!(clamp_workers(2, 2, 8), 2);
        // Degenerate inputs never return zero.
        assert_eq!(clamp_workers(0, 0, 0), 1);
        assert_eq!(clamp_workers(16, 1, 1), 1);
    }

    #[test]
    fn resolve_zero_means_available() {
        assert_eq!(resolve_workers(0, 6), 6);
        assert_eq!(resolve_workers(3, 6), 3);
        assert_eq!(resolve_workers(0, 0), 1);
    }
}
