//! The coherent memory hierarchy: L1 → shared L2 → directory/network/memory.
//!
//! This module glues the piece models together into the miss path a request
//! actually takes on the simulated machine:
//!
//! * **L1 hit** — 1 cycle, private per processor.
//! * **L2 hit** — 10 cycles, shared by the two processors of a CMP. This is
//!   where slipstream lives: lines fetched by the A-stream are L2 hits for
//!   its R-stream.
//! * **L2 miss, local home** — bus → node directory controller → DRAM → bus;
//!   170 ns uncontended (Table 1).
//! * **L2 miss, remote home** — bus → processor interface → local NI/DC →
//!   network → remote NI → DRAM → network → bus; 290 ns uncontended.
//! * **Dirty-owner forward** — one extra network hop through the owner's L2.
//!
//! Contention is modelled at node buses, NI ports (which double as the
//! directory-controller service points), and memory controllers. Reply
//! messages ride an unconstrained reply path (cut-through), matching the
//! paper's stated *minimum* latencies exactly.
//!
//! In-flight fills are tracked in per-CMP MSHR tables; a second request to
//! an in-flight line merges with it ("the shared L2 ... merges their
//! requests when appropriate"), which is also how A-Late prefetches are
//! detected.

use crate::address::{Addr, AddressMap, CmpId, CpuId, LineAddr, Space};
use crate::cache::{LineState, SetAssocCache};
use crate::classify::{Classifier, ReqKind};
use crate::config::MachineConfig;
use crate::directory::{DataSource, Directory};
use crate::engine::Cycle;
use crate::memory::MemoryControllers;
use crate::network::Network;
use crate::stats::{CpuStats, StreamRole};
use crate::util::FastMap;
use sim_trace::{TimedEvent, TraceConfig, TraceEvent, Tracer, TrackDomain};

/// The kind of access a processor issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Demand read; blocks the issuing processor until data arrives.
    Load,
    /// Demand write; blocks until ownership (and data) arrive.
    Store,
    /// Non-blocking read-exclusive prefetch: an A-stream shared store
    /// converted per the paper. The processor continues after issue.
    PrefetchEx,
}

/// Machine-wide counter snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineCounters {
    /// Network messages sent.
    pub network_messages: u64,
    /// Cycles messages queued at NI ports.
    pub network_contention: u64,
    /// Cycles requests queued at memory controllers.
    pub memory_contention: u64,
    /// Cycles requests queued on node buses.
    pub bus_contention: u64,
    /// L2 lines evicted.
    pub l2_evictions: u64,
    /// External invalidations applied to L2s.
    pub l2_invalidations: u64,
    /// Dirty-owner (3-hop) fetches.
    pub three_hop_fetches: u64,
    /// Invalidation messages sent by directories.
    pub invalidations_sent: u64,
}

/// Where an access would be satisfied relative to the requesting CPU's
/// CMP time domain (see [`MemSystem::access_locality`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessLocality {
    /// Satisfied by the CPU's L1 or its node's L2 bank — stays inside
    /// one PDES time domain.
    Local,
    /// Requires the directory, network, or another node's caches —
    /// crosses the domain boundary and must commit in global event order.
    Boundary,
}

/// Result of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the issuing processor may proceed.
    pub complete: Cycle,
    /// The access hit in the L1.
    pub l1_hit: bool,
    /// The access hit in the shared L2 (resident or merged with an
    /// in-flight fill).
    pub l2_hit: bool,
    /// A fill crossed the network to a remote home or owner.
    pub remote: bool,
}

/// The full memory system of the machine.
pub struct MemSystem {
    cfg: MachineConfig,
    map: AddressMap,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    dirs: Vec<Directory>,
    net: Network,
    mem: MemoryControllers,
    /// Per-CMP in-flight fills: line → data-arrival cycle.
    mshr: Vec<FastMap<LineAddr, Cycle>>,
    /// Stream role of each processor (set by the execution layer).
    roles: Vec<StreamRole>,
    /// Slipstream self-invalidation hints: an A-stream read of a dirty
    /// remote line makes the owner write back and drop its copy (the
    /// producer "self-invalidates" on the consumer's future-reference
    /// hint), so the producer's next write re-acquires the line from
    /// memory without a 3-hop transfer.
    self_invalidation: bool,
    /// Shared-fill classifier for Figures 3 and 5.
    pub classifier: Classifier,
    /// Trace sink for L2 fill events, one track per CMP (disabled by
    /// default; the hot access path pays one bool check when off).
    tracer: Tracer,
    // Pre-converted latencies (cycles).
    l1_lat: Cycle,
    l2_lat: Cycle,
    pi_local: Cycle,
    ni_local_occ: Cycle,
    ni_remote_occ: Cycle,
    net_delay: Cycle,
    /// Total L2 evictions (diagnostic).
    pub l2_evictions: u64,
    /// Total external invalidations applied to L2s (diagnostic).
    pub l2_invalidations: u64,
}

impl MemSystem {
    /// Build the memory system for a machine.
    pub fn new(cfg: &MachineConfig) -> Self {
        cfg.validate().expect("invalid machine configuration");
        let map = AddressMap::new(cfg);
        MemSystem {
            map,
            l1: (0..cfg.num_cpus())
                .map(|_| SetAssocCache::new(&cfg.l1))
                .collect(),
            l2: (0..cfg.num_cmps)
                .map(|_| SetAssocCache::new(&cfg.l2))
                .collect(),
            dirs: (0..cfg.num_cmps).map(|_| Directory::new()).collect(),
            net: Network::new(cfg),
            mem: MemoryControllers::new(cfg),
            mshr: (0..cfg.num_cmps).map(|_| FastMap::default()).collect(),
            roles: vec![StreamRole::Solo; cfg.num_cpus()],
            self_invalidation: false,
            classifier: Classifier::new(),
            tracer: Tracer::disabled(TrackDomain::Cmp),
            l1_lat: cfg.l1.hit_latency,
            l2_lat: cfg.l2.hit_latency,
            pi_local: cfg.ns_to_cycles(cfg.mem_ns.pi_local_dc_time),
            ni_local_occ: cfg.ns_to_cycles(cfg.mem_ns.ni_local_dc_time),
            ni_remote_occ: cfg.ns_to_cycles(cfg.mem_ns.ni_remote_dc_time),
            net_delay: cfg.ns_to_cycles(cfg.mem_ns.net_time),
            l2_evictions: 0,
            l2_invalidations: 0,
            cfg: cfg.clone(),
        }
    }

    /// The machine configuration this system was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The address map of the machine.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// Set the stream role of a processor (classification and conversion
    /// gating depend on it).
    pub fn set_role(&mut self, cpu: CpuId, role: StreamRole) {
        self.roles[cpu.0] = role;
    }

    /// Stream role of a processor.
    pub fn role(&self, cpu: CpuId) -> StreamRole {
        self.roles[cpu.0]
    }

    /// Enable or disable slipstream self-invalidation hints.
    pub fn set_self_invalidation(&mut self, on: bool) {
        self.self_invalidation = on;
    }

    /// True when `cmp` has a free MSHR at `now` — the resource-contention
    /// gate on A-stream store conversion.
    pub fn mshr_free(&mut self, cmp: CmpId, now: Cycle) -> bool {
        let table = &mut self.mshr[cmp.0];
        if table.is_empty() {
            return self.cfg.l2_mshrs > 0;
        }
        table.retain(|_, arrival| *arrival > now);
        table.len() < self.cfg.l2_mshrs
    }

    /// Finish classification (call once, at end of simulation).
    pub fn finish(&mut self) {
        self.classifier.finish();
    }

    /// Route memory-system events (L2 fills and their final prefetch
    /// classifications) to trace sinks on per-CMP tracks.
    pub fn set_trace(&mut self, cfg: &TraceConfig) {
        self.tracer = Tracer::new(cfg, TrackDomain::Cmp);
        self.classifier.set_trace(cfg);
    }

    /// Drain all recorded memory-system trace events (one batch per
    /// internal tracer); tracing reverts to off.
    pub fn take_trace(&mut self) -> Vec<(Vec<TimedEvent>, u64)> {
        let fills = std::mem::replace(&mut self.tracer, Tracer::disabled(TrackDomain::Cmp));
        vec![fills.drain(), self.classifier.take_trace()]
    }

    /// Perform one access by `cpu` at `now`.
    ///
    /// All machine state (caches, directory, resource schedules) is updated
    /// synchronously; the returned [`AccessResult::complete`] tells the
    /// caller when the processor unblocks. For [`AccessKind::PrefetchEx`]
    /// the processor unblocks after issue, while the fill completes in the
    /// background (tracked by the MSHR).
    pub fn access(
        &mut self,
        cpu: CpuId,
        addr: Addr,
        kind: AccessKind,
        now: Cycle,
        stats: &mut CpuStats,
    ) -> AccessResult {
        let line = self.map.line_of(addr);
        let cmp = cpu.cmp(&self.cfg);
        let shared = self.map.space_of(addr) == Space::Shared;
        let role = self.roles[cpu.0];

        match kind {
            AccessKind::Load => stats.loads += 1,
            AccessKind::Store | AccessKind::PrefetchEx => stats.stores += 1,
        }

        // Record the reference for prefetch classification before any state
        // changes, so an R-store upgrading an A-fetched line credits the A
        // fill first.
        if shared && role != StreamRole::Solo && kind != AccessKind::PrefetchEx {
            self.classifier.on_reference(cmp, line, role, now);
        }

        let needs_m = kind != AccessKind::Load;

        // ---- L1 ----
        let l1_state = self.l1[cpu.0].access(line);
        if let Some(_state) = l1_state {
            // L1 hit. Loads complete immediately; stores additionally need
            // the shared L2 to hold the line in Modified state.
            if !needs_m {
                stats.l1_hits += 1;
                return AccessResult {
                    complete: now + self.l1_lat,
                    l1_hit: true,
                    l2_hit: false,
                    remote: false,
                };
            }
            match self.l2[cmp.0].peek(line) {
                Some(LineState::Modified) => {
                    stats.l1_hits += 1;
                    // In-flight check: ownership may still be arriving. A
                    // demand store waits for it; a prefetch never blocks
                    // (the conversion is already outstanding). Demand
                    // stores also pay the L2 write: the L1s are
                    // write-through under the shared L2 (which is what
                    // makes shared stores "long-latency events" the
                    // A-stream profitably skips).
                    let complete = if kind == AccessKind::PrefetchEx {
                        now + self.l1_lat
                    } else {
                        let arrival = self.inflight_arrival(cmp, line, now);
                        arrival.unwrap_or(now).max(now) + self.l1_lat + self.l2_lat
                    };
                    return AccessResult {
                        complete,
                        l1_hit: true,
                        l2_hit: false,
                        remote: false,
                    };
                }
                _ => {
                    // Upgrade required; fall through to the L2/directory
                    // path. Drop the stale L1 copy (it will be refilled).
                    self.l1[cpu.0].invalidate(line);
                }
            }
        }

        // ---- L2 (shared within the CMP) ----
        let t_lookup = now + self.l1_lat + self.l2_lat;

        // Merge with an in-flight fill for the same line, if any.
        if let Some(arrival) = self.inflight_arrival(cmp, line, now) {
            let resident = self.l2[cmp.0].peek(line);
            let state_ok = match resident {
                Some(LineState::Modified) => true,
                Some(LineState::Shared) => !needs_m,
                None => false,
            };
            if state_ok {
                stats.l2_hits += 1;
                self.l2[cmp.0].access(line);
                if kind != AccessKind::PrefetchEx {
                    self.fill_l1(cpu, line);
                }
                let complete = arrival.max(t_lookup);
                return AccessResult {
                    complete: if kind == AccessKind::PrefetchEx {
                        t_lookup
                    } else {
                        complete
                    },
                    l1_hit: false,
                    l2_hit: true,
                    remote: false,
                };
            }
        }

        match self.l2[cmp.0].access(line) {
            Some(LineState::Modified) => {
                // Fast path: line is already writable (or readable) here.
                stats.l2_hits += 1;
                self.fill_l1(cpu, line);
                return AccessResult {
                    complete: t_lookup,
                    l1_hit: false,
                    l2_hit: true,
                    remote: false,
                };
            }
            Some(LineState::Shared) if !needs_m => {
                stats.l2_hits += 1;
                self.fill_l1(cpu, line);
                return AccessResult {
                    complete: t_lookup,
                    l1_hit: false,
                    l2_hit: true,
                    remote: false,
                };
            }
            Some(LineState::Shared) => {
                // Upgrade: S→M through the directory, no data transfer from
                // DRAM needed.
                stats.l2_misses += 1;
                let (complete, remote) = self.fetch_line(cmp, line, true, true, false, t_lookup);
                self.l2[cmp.0].set_state(line, LineState::Modified);
                self.note_fill(
                    cmp,
                    line,
                    role,
                    shared,
                    ReqKind::ReadEx,
                    remote,
                    complete,
                    now,
                );
                self.mshr[cmp.0].insert(line, complete);
                if kind != AccessKind::PrefetchEx {
                    self.fill_l1(cpu, line);
                }
                return AccessResult {
                    complete: if kind == AccessKind::PrefetchEx {
                        t_lookup
                    } else {
                        complete
                    },
                    l1_hit: false,
                    l2_hit: false,
                    remote,
                };
            }
            _ => {}
        }

        // ---- Full miss: fetch through home directory ----
        stats.l2_misses += 1;
        let hint = self.self_invalidation
            && !needs_m
            && shared
            && role == StreamRole::A
            && kind == AccessKind::Load;
        let (complete, remote) = self.fetch_line(cmp, line, needs_m, false, hint, t_lookup);
        let new_state = if needs_m {
            LineState::Modified
        } else {
            LineState::Shared
        };
        if let Some(victim) = self.l2[cmp.0].insert(line, new_state) {
            self.handle_l2_eviction(cmp, victim.line, victim.state, now);
        }
        let req_kind = if needs_m {
            ReqKind::ReadEx
        } else {
            ReqKind::Read
        };
        self.note_fill(cmp, line, role, shared, req_kind, remote, complete, now);
        self.mshr[cmp.0].insert(line, complete);
        if kind != AccessKind::PrefetchEx {
            self.fill_l1(cpu, line);
        }

        AccessResult {
            complete: if kind == AccessKind::PrefetchEx {
                t_lookup
            } else {
                complete
            },
            l1_hit: false,
            l2_hit: false,
            remote,
        }
    }

    /// Data-arrival time of an in-flight fill for `line` at `cmp`, if later
    /// than `now`.
    fn inflight_arrival(&mut self, cmp: CmpId, line: LineAddr, now: Cycle) -> Option<Cycle> {
        if self.mshr[cmp.0].is_empty() {
            return None;
        }
        match self.mshr[cmp.0].get(&line) {
            Some(&arrival) if arrival > now => Some(arrival),
            Some(_) => {
                self.mshr[cmp.0].remove(&line);
                None
            }
            None => None,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn note_fill(
        &mut self,
        cmp: CmpId,
        line: LineAddr,
        role: StreamRole,
        shared: bool,
        kind: ReqKind,
        remote: bool,
        complete: Cycle,
        now: Cycle,
    ) {
        if self.tracer.is_on() {
            self.tracer.record(
                complete,
                cmp.0 as u32,
                TraceEvent::MemFill {
                    line: line.0,
                    read_ex: kind == ReqKind::ReadEx,
                    remote,
                    issue: now,
                    complete,
                },
            );
        }
        if shared && role != StreamRole::Solo {
            self.classifier.on_fill(cmp, line, role, kind, complete);
            // The issuer's own demand reference follows the fill so that a
            // later same-line fill replacement still sees issuer use.
            self.classifier.on_reference(cmp, line, role, now);
        }
    }

    /// Install a line in `cpu`'s L1 (evictions are silent: L1s are managed
    /// inclusively under the shared L2 and never dirty).
    fn fill_l1(&mut self, cpu: CpuId, line: LineAddr) {
        self.l1[cpu.0].insert(line, LineState::Shared);
    }

    /// Walk the directory protocol for one fetch. `exclusive` selects
    /// GetX/GetS; `upgrade_only` skips the DRAM data access;
    /// `hint_self_invalidation` (A-stream reads when the feature is on)
    /// makes a dirty owner write back and drop the line instead of
    /// keeping a Shared copy. Returns (completion cycle, whether the
    /// network was crossed).
    #[allow(clippy::too_many_arguments)]
    fn fetch_line(
        &mut self,
        cmp: CmpId,
        line: LineAddr,
        exclusive: bool,
        upgrade_only: bool,
        hint_self_invalidation: bool,
        t0: Cycle,
    ) -> (Cycle, bool) {
        let home = self.map.home_of(line);
        let remote_home = home != cmp;

        // Request path: L2 → node bus → (processor interface) →
        // directory controller. The directory-controller service time
        // (NILocalDCTime) is charged where the lookup happens: at the
        // home node — the requester's NI only forwards (NIRemoteDCTime).
        let mut t = self.mem.bus_transfer(cmp, t0);
        if remote_home {
            t += self.pi_local;
            t = self.net.out_port(cmp, t, self.ni_remote_occ);
            t += self.net_delay;
            t = self.net.in_port(home, t, self.ni_local_occ);
        } else {
            t = self.net.out_port(cmp, t, self.ni_local_occ);
        }

        // Directory transaction at the home node.
        let outcome = if exclusive {
            self.dirs[home.0].get_x(line, cmp)
        } else {
            self.dirs[home.0].get_s(line, cmp)
        };

        // Invalidations fan out from the home directory controller; the
        // requester waits for the slowest acknowledgement.
        let mut inval_done = t;
        for victim_cmp in &outcome.invalidate {
            let send = self.net.out_port(home, t, self.ni_remote_occ);
            let arrive = if *victim_cmp == home {
                send
            } else {
                send + self.net_delay
            };
            // Ack returns over the reply path.
            let ack = if *victim_cmp == cmp {
                arrive
            } else {
                arrive + self.net_delay
            };
            inval_done = inval_done.max(ack);
        }
        // Apply invalidations to the victims' caches (`outcome` is an
        // owned local, so no clone of the victim list is needed).
        for &victim_cmp in &outcome.invalidate {
            self.apply_invalidation(victim_cmp, line);
        }

        let mut crossed = remote_home;
        let data_ready = match outcome.source {
            DataSource::Memory => {
                if upgrade_only {
                    t
                } else {
                    self.mem.dram_access(home, t)
                }
            }
            DataSource::Owner(owner) => {
                crossed = crossed || owner != cmp;
                // Forward to the dirty owner, read its L2, send to requester.
                let mut tf = self.net.out_port(home, t, self.ni_remote_occ);
                if owner != home {
                    tf += self.net_delay;
                    tf = self.net.in_port(owner, tf, self.ni_remote_occ);
                }
                tf += self.l2_lat;
                // GetS normally leaves the owner with a Shared copy; GetX
                // invalidated it above (owner is in the invalidate list).
                // With a self-invalidation hint, the owner writes back and
                // drops the line entirely.
                if !exclusive {
                    if hint_self_invalidation && owner != cmp {
                        if self.l2[owner.0].invalidate(line).is_some() {
                            self.l2_invalidations += 1;
                            self.classifier.on_drop(owner, line);
                        }
                        self.invalidate_l1s(owner, line);
                        self.mshr[owner.0].remove(&line);
                        let home2 = self.map.home_of(line);
                        self.dirs[home2.0].evict_shared(line, owner);
                    } else {
                        self.l2[owner.0].set_state(line, LineState::Shared);
                    }
                }
                if owner != cmp {
                    tf += self.net_delay;
                }
                tf
            }
        };

        // Reply path back to the requester: network (already counted for
        // owner forwards) plus the requester's node bus.
        let reply_at = match outcome.source {
            DataSource::Memory if remote_home => data_ready + self.net_delay,
            _ => data_ready,
        };
        let done = self.mem.bus_transfer(cmp, reply_at.max(inval_done));
        (done, crossed)
    }

    /// Remove a line from a CMP's L2 and all its L1s due to an external
    /// invalidation.
    fn apply_invalidation(&mut self, cmp: CmpId, line: LineAddr) {
        if self.l2[cmp.0].invalidate(line).is_some() {
            self.l2_invalidations += 1;
            self.classifier.on_drop(cmp, line);
        }
        self.invalidate_l1s(cmp, line);
        self.mshr[cmp.0].remove(&line);
    }

    fn invalidate_l1s(&mut self, cmp: CmpId, line: LineAddr) {
        for i in 0..self.cfg.cpus_per_cmp {
            let cpu = cmp.cpu(&self.cfg, i);
            self.l1[cpu.0].invalidate(line);
        }
    }

    /// Handle the inclusion consequences of an L2 eviction.
    fn handle_l2_eviction(&mut self, cmp: CmpId, line: LineAddr, state: LineState, now: Cycle) {
        self.l2_evictions += 1;
        self.invalidate_l1s(cmp, line);
        self.classifier.on_drop(cmp, line);
        self.mshr[cmp.0].remove(&line);
        let home = self.map.home_of(line);
        match state {
            LineState::Shared => {
                // Replacement hint keeps the sharer set exact; costless.
                self.dirs[home.0].evict_shared(line, cmp);
            }
            LineState::Modified => {
                // Dirty writeback occupies the bus, network, and home
                // memory in the background (the evicting request does not
                // wait for it).
                self.dirs[home.0].writeback(line, cmp);
                let t = self.mem.bus_transfer(cmp, now);
                let t = if home == cmp {
                    t
                } else {
                    self.net.traverse(cmp, home, t)
                };
                self.mem.dram_access(home, t);
            }
        }
    }

    /// Classify, *without mutating any machine state*, whether an access
    /// by `cpu` would complete inside its own CMP time domain (L1 hit, or
    /// L2-bank hit in a sufficient state) or would cross the
    /// directory/network boundary into other domains (upgrades, misses,
    /// in-flight merges). The PDES layer uses this as a routing
    /// diagnostic — the per-domain speedup ceiling is set by the fraction
    /// of accesses that stay [`AccessLocality::Local`]. The peek is
    /// conservative: anything that would touch the directory, another
    /// node's caches, or an MSHR entry is [`AccessLocality::Boundary`].
    pub fn access_locality(&self, cpu: CpuId, addr: Addr, kind: AccessKind) -> AccessLocality {
        let line = self.map.line_of(addr);
        let cmp = cpu.cmp(&self.cfg);
        let needs_m = kind != AccessKind::Load;
        match self.l1[cpu.0].peek(line) {
            Some(_) if !needs_m => return AccessLocality::Local,
            Some(_) => {
                // A store on an L1 hit is still local only when the CMP's
                // L2 bank already owns the line.
                if self.l2[cmp.0].peek(line) == Some(LineState::Modified) {
                    return AccessLocality::Local;
                }
                return AccessLocality::Boundary;
            }
            None => {}
        }
        match self.l2[cmp.0].peek(line) {
            Some(LineState::Modified) => AccessLocality::Local,
            Some(LineState::Shared) if !needs_m => AccessLocality::Local,
            _ => AccessLocality::Boundary,
        }
    }

    /// Diagnostic access to the per-CPU L1 (tests).
    pub fn l1_of(&self, cpu: CpuId) -> &SetAssocCache {
        &self.l1[cpu.0]
    }

    /// Diagnostic access to the per-CMP L2 (tests).
    pub fn l2_of(&self, cmp: CmpId) -> &SetAssocCache {
        &self.l2[cmp.0]
    }

    /// Diagnostic access to a home directory (tests).
    pub fn dir_of(&self, cmp: CmpId) -> &Directory {
        &self.dirs[cmp.0]
    }

    /// Total network messages sent (diagnostic).
    pub fn network_messages(&self) -> u64 {
        self.net.total_messages()
    }

    /// Append the whole memory system's time-normalized behavioral state
    /// to a memo digest, mirroring [`MemSystem::snapshot`]'s enumeration
    /// minus monotone counters (captured by [`MemSystem::memo_counters`])
    /// and absolute clocks: caches in recency order, non-Uncached
    /// directory entries, live resource windows and MSHR fills as offsets
    /// from `now`, and live classifier records. Roles and the
    /// self-invalidation flag are run constants and excluded.
    pub fn memo_digest(&self, now: Cycle, out: &mut Vec<u64>) {
        for c in &self.l1 {
            c.memo_digest(out);
        }
        for c in &self.l2 {
            c.memo_digest(out);
        }
        for d in &self.dirs {
            d.memo_digest(out);
        }
        self.net.memo_digest(now, out);
        self.mem.memo_digest(now, out);
        for table in &self.mshr {
            let mut live: Vec<(u64, Cycle)> = table
                .iter()
                .filter(|&(_, &arrival)| arrival > now)
                .map(|(l, &arrival)| (l.0, arrival - now))
                .collect();
            live.sort_unstable();
            out.push(live.len() as u64);
            for (l, off) in live {
                out.push(l);
                out.push(off);
            }
        }
        self.classifier.memo_digest(now, out);
    }

    /// Advance every live time-bearing structure by `delta` — the memo
    /// jump. Expired resource windows and dead MSHR entries stay put
    /// (both are behaviorally inert for requests at or after `now`).
    pub fn memo_shift(&mut self, now: Cycle, delta: Cycle) {
        self.net.memo_shift(now, delta);
        self.mem.memo_shift(now, delta);
        for table in &mut self.mshr {
            for arrival in table.values_mut() {
                if *arrival > now {
                    *arrival += delta;
                }
            }
        }
        self.classifier.memo_shift(delta);
    }

    /// Append every monotone memory-system counter to a memo counter
    /// vector, in the same structural order as [`MemSystem::memo_digest`].
    pub fn memo_counters(&self, out: &mut Vec<u64>) {
        for c in &self.l1 {
            c.memo_counters(out);
        }
        for c in &self.l2 {
            c.memo_counters(out);
        }
        for d in &self.dirs {
            d.memo_counters(out);
        }
        self.net.memo_counters(out);
        self.mem.memo_counters(out);
        out.push(self.l2_evictions);
        out.push(self.l2_invalidations);
        self.classifier.memo_counters(out);
    }

    /// Add `k` copies of the deltas at `delta[*idx..]` (layout of
    /// [`MemSystem::memo_counters`]), advancing `*idx`.
    pub fn memo_apply(&mut self, delta: &[u64], idx: &mut usize, k: u64) {
        for c in &mut self.l1 {
            c.memo_apply(delta, idx, k);
        }
        for c in &mut self.l2 {
            c.memo_apply(delta, idx, k);
        }
        for d in &mut self.dirs {
            d.memo_apply(delta, idx, k);
        }
        self.net.memo_apply(delta, idx, k);
        self.mem.memo_apply(delta, idx, k);
        self.l2_evictions += delta[*idx] * k;
        *idx += 1;
        self.l2_invalidations += delta[*idx] * k;
        *idx += 1;
        self.classifier.memo_apply(delta, idx, k);
    }

    /// Serialize the mutable memory-system state. Config-derived fields
    /// (address map, latencies) are rebuilt by [`MemSystem::new`] on
    /// restore, so only caches, directories, resources, MSHRs, roles, the
    /// classifier, and tracers are written. MSHR maps are written sorted
    /// by line address for determinism.
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.seq(&self.l1, |w, c| c.snapshot(w));
        w.seq(&self.l2, |w, c| c.snapshot(w));
        w.seq(&self.dirs, |w, d| d.snapshot(w));
        self.net.snapshot(w);
        self.mem.snapshot(w);
        w.usize(self.mshr.len());
        for table in &self.mshr {
            let mut entries: Vec<(u64, Cycle)> = table.iter().map(|(l, t)| (l.0, *t)).collect();
            entries.sort_unstable();
            w.seq(&entries, |w, &(l, t)| {
                w.u64(l);
                w.u64(t);
            });
        }
        w.seq(&self.roles, |w, role| {
            w.u8(match role {
                StreamRole::Solo => 0,
                StreamRole::R => 1,
                StreamRole::A => 2,
            });
        });
        w.bool(self.self_invalidation);
        self.classifier.snapshot(w);
        self.tracer.snapshot(w);
        w.u64(self.l2_evictions);
        w.u64(self.l2_invalidations);
    }

    /// Overwrite this (freshly built) memory system's mutable state from a
    /// snapshot written by [`MemSystem::snapshot`] of a system with the
    /// same machine configuration.
    pub fn restore_into(&mut self, r: &mut snap::Reader) -> Result<(), snap::SnapError> {
        self.l1 = r.seq(SetAssocCache::restore)?;
        self.l2 = r.seq(SetAssocCache::restore)?;
        self.dirs = r.seq(Directory::restore)?;
        self.net.restore_into(r)?;
        self.mem.restore_into(r)?;
        let num_tables = r.usize()?;
        let mut mshr = Vec::with_capacity(num_tables);
        for _ in 0..num_tables {
            let entries = r.seq(|r| Ok((LineAddr(r.u64()?), r.u64()?)))?;
            mshr.push(entries.into_iter().collect());
        }
        self.mshr = mshr;
        self.roles = r.seq(|r| match r.u8()? {
            0 => Ok(StreamRole::Solo),
            1 => Ok(StreamRole::R),
            2 => Ok(StreamRole::A),
            _ => Err(snap::SnapError::Corrupt { what: "StreamRole" }),
        })?;
        self.self_invalidation = r.bool()?;
        self.classifier = Classifier::restore(r)?;
        self.tracer = Tracer::restore(r)?;
        self.l2_evictions = r.u64()?;
        self.l2_invalidations = r.u64()?;
        Ok(())
    }

    /// Snapshot of machine-wide counters (diagnostics / reports).
    pub fn machine_counters(&self) -> MachineCounters {
        MachineCounters {
            network_messages: self.net.total_messages(),
            network_contention: self.net.total_contention(),
            memory_contention: self.mem.memory_contention(),
            bus_contention: self.mem.bus_contention(),
            l2_evictions: self.l2_evictions,
            l2_invalidations: self.l2_invalidations,
            three_hop_fetches: self.dirs.iter().map(|d| d.three_hop_fetches).sum(),
            invalidations_sent: self.dirs.iter().map(|d| d.invalidations_sent).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemSystem {
        MemSystem::new(&MachineConfig::paper())
    }

    fn shared_addr(ms: &MemSystem, off: u64) -> Addr {
        ms.map().shared_base() + off
    }

    #[test]
    fn cold_remote_load_takes_minimum_remote_latency() {
        let mut ms = sys();
        let mut st = CpuStats::default();
        // Line 1 is homed on CMP 1; request from CPU 0 (CMP 0).
        let addr = shared_addr(&ms, 64);
        let r = ms.access(CpuId(0), addr, AccessKind::Load, 0, &mut st);
        assert!(!r.l1_hit && !r.l2_hit && r.remote);
        // 290 ns = 348 cycles plus L1+L2 lookup (1+10).
        assert_eq!(r.complete, 348 + 11);
        assert_eq!(st.l2_misses, 1);
    }

    #[test]
    fn cold_local_load_takes_minimum_local_latency() {
        let mut ms = sys();
        let mut st = CpuStats::default();
        // Line 0 is homed on CMP 0.
        let addr = shared_addr(&ms, 0);
        let r = ms.access(CpuId(0), addr, AccessKind::Load, 0, &mut st);
        assert!(!r.remote);
        assert_eq!(r.complete, 204 + 11); // 170 ns + lookups
    }

    #[test]
    fn locality_peek_tracks_cache_state_without_mutating() {
        let mut ms = sys();
        let mut st = CpuStats::default();
        let addr = shared_addr(&ms, 0);
        // Cold: everything is a boundary crossing.
        assert_eq!(
            ms.access_locality(CpuId(0), addr, AccessKind::Load),
            AccessLocality::Boundary
        );
        // The peek must not have warmed anything.
        let r = ms.access(CpuId(0), addr, AccessKind::Load, 0, &mut st);
        assert!(!r.l1_hit);
        // Warm load: local. A store still needs M state: boundary.
        assert_eq!(
            ms.access_locality(CpuId(0), addr, AccessKind::Load),
            AccessLocality::Local
        );
        assert_eq!(
            ms.access_locality(CpuId(0), addr, AccessKind::Store),
            AccessLocality::Boundary
        );
        // After a store the line is Modified in the L2 bank: both local.
        let r = ms.access(CpuId(0), addr, AccessKind::Store, r.complete, &mut st);
        assert_eq!(
            ms.access_locality(CpuId(0), addr, AccessKind::Store),
            AccessLocality::Local
        );
        // The sibling CPU has no L1 copy but shares the L2 bank: local.
        assert_eq!(
            ms.access_locality(CpuId(1), addr, AccessKind::Load),
            AccessLocality::Local
        );
        // A CPU on another CMP would cross the boundary.
        let far = CpuId(MachineConfig::paper().cpus_per_cmp * 2);
        assert_eq!(
            ms.access_locality(far, addr, AccessKind::Load),
            AccessLocality::Boundary
        );
        let _ = r;
    }

    #[test]
    fn second_load_hits_l1() {
        let mut ms = sys();
        let mut st = CpuStats::default();
        let addr = shared_addr(&ms, 0);
        let r1 = ms.access(CpuId(0), addr, AccessKind::Load, 0, &mut st);
        let r2 = ms.access(CpuId(0), addr, AccessKind::Load, r1.complete, &mut st);
        assert!(r2.l1_hit);
        assert_eq!(r2.complete, r1.complete + 1);
    }

    #[test]
    fn sibling_cpu_hits_shared_l2() {
        let mut ms = sys();
        let mut st = CpuStats::default();
        let addr = shared_addr(&ms, 0);
        let r1 = ms.access(CpuId(0), addr, AccessKind::Load, 0, &mut st);
        // CPU 1 is on the same CMP: the line is an L2 hit for it.
        let r2 = ms.access(CpuId(1), addr, AccessKind::Load, r1.complete, &mut st);
        assert!(!r2.l1_hit && r2.l2_hit);
        assert_eq!(r2.complete, r1.complete + 11);
    }

    #[test]
    fn store_after_load_upgrades_and_invalidates_sharers() {
        let mut ms = sys();
        let mut st = CpuStats::default();
        let addr = shared_addr(&ms, 0);
        // Two different CMPs read the line.
        let r1 = ms.access(CpuId(0), addr, AccessKind::Load, 0, &mut st);
        let r2 = ms.access(CpuId(2), addr, AccessKind::Load, 0, &mut st);
        let t = r1.complete.max(r2.complete);
        // CMP 0 writes: upgrade + invalidate CMP 1's copy.
        let r3 = ms.access(CpuId(0), addr, AccessKind::Store, t, &mut st);
        assert!(!r3.l2_hit, "upgrade goes through the directory");
        let line = ms.map().line_of(addr);
        assert_eq!(ms.l2_of(CmpId(1)).peek(line), None, "sharer invalidated");
        assert_eq!(ms.l2_of(CmpId(0)).peek(line), Some(LineState::Modified));
        assert_eq!(ms.l2_invalidations, 1);
        // A load from the invalidated CMP now needs a 3-hop fetch.
        let r4 = ms.access(CpuId(2), addr, AccessKind::Load, r3.complete, &mut st);
        assert!(r4.remote);
        assert_eq!(ms.dir_of(CmpId(0)).three_hop_fetches, 1);
    }

    #[test]
    fn store_hit_writes_through_to_l2() {
        let mut ms = sys();
        let mut st = CpuStats::default();
        let addr = shared_addr(&ms, 0);
        let r1 = ms.access(CpuId(0), addr, AccessKind::Store, 0, &mut st);
        let r2 = ms.access(CpuId(0), addr, AccessKind::Store, r1.complete, &mut st);
        assert!(r2.l1_hit);
        // Write-through L1 under the shared L2: a store hit still pays the
        // L2 write (1 + 10 cycles).
        assert_eq!(r2.complete, r1.complete + 11);
    }

    #[test]
    fn prefetch_ex_does_not_block_and_accelerates_partner_store() {
        let mut ms = sys();
        ms.set_role(CpuId(0), StreamRole::R);
        ms.set_role(CpuId(1), StreamRole::A);
        let mut st_a = CpuStats::default();
        let mut st_r = CpuStats::default();
        let addr = shared_addr(&ms, 64); // remote home
                                         // A-stream converts a shared store into a read-ex prefetch at t=0.
        let ra = ms.access(CpuId(1), addr, AccessKind::PrefetchEx, 0, &mut st_a);
        assert_eq!(ra.complete, 11, "prefetch returns after issue");
        // R-stream stores long after the prefetch landed: fast ownership hit.
        let rr = ms.access(CpuId(0), addr, AccessKind::Store, 2000, &mut st_r);
        assert!(rr.l2_hit);
        assert_eq!(rr.complete, 2000 + 11);
        ms.finish();
        use crate::classify::FillClass;
        assert_eq!(
            ms.classifier
                .counts
                .get(ReqKind::ReadEx, FillClass::ATimely),
            1
        );
    }

    #[test]
    fn partner_touch_of_inflight_fill_is_late() {
        let mut ms = sys();
        ms.set_role(CpuId(0), StreamRole::R);
        ms.set_role(CpuId(1), StreamRole::A);
        let mut st = CpuStats::default();
        let addr = shared_addr(&ms, 64);
        // A-stream demand load at t=0 (remote: completes at 359).
        let ra = ms.access(CpuId(1), addr, AccessKind::Load, 0, &mut st);
        assert!(ra.complete > 300);
        // R-stream loads the same line while the fill is in flight.
        let rr = ms.access(CpuId(0), addr, AccessKind::Load, 100, &mut st);
        assert!(rr.l2_hit, "merged with the in-flight fill");
        assert_eq!(rr.complete, ra.complete, "waits only for the remainder");
        ms.finish();
        use crate::classify::FillClass;
        assert_eq!(ms.classifier.counts.get(ReqKind::Read, FillClass::ALate), 1);
    }

    #[test]
    fn eviction_of_unused_a_prefetch_is_a_only() {
        let mut ms = sys();
        ms.set_role(CpuId(0), StreamRole::R);
        ms.set_role(CpuId(1), StreamRole::A);
        let mut st = CpuStats::default();
        let addr = shared_addr(&ms, 0);
        ms.access(CpuId(1), addr, AccessKind::Load, 0, &mut st);
        // Evict by filling the set: L2 is 4-way with 4096 sets; lines that
        // map to the same set are 4096 lines (256 KiB) apart.
        for i in 1..=4 {
            let conflict = shared_addr(&ms, i * 4096 * 64);
            ms.access(CpuId(1), conflict, AccessKind::Load, 10_000 * i, &mut st);
        }
        // The victim is classified at eviction; the conflicting fills are
        // classified as A-Only at finish() since R never touched them
        // either.
        assert!(ms.l2_evictions >= 1);
        use crate::classify::FillClass;
        let before_finish = ms.classifier.counts.get(ReqKind::Read, FillClass::AOnly);
        assert!(
            before_finish >= 1,
            "evicted unused prefetch already counted"
        );
        ms.finish();
        assert_eq!(ms.classifier.counts.get(ReqKind::Read, FillClass::AOnly), 5);
    }

    #[test]
    fn private_addresses_do_not_classify() {
        let mut ms = sys();
        ms.set_role(CpuId(0), StreamRole::R);
        let mut st = CpuStats::default();
        let addr = ms.map().private_base(CpuId(0));
        let r = ms.access(CpuId(0), addr, AccessKind::Load, 0, &mut st);
        assert!(!r.remote, "private data is homed locally");
        ms.finish();
        assert_eq!(ms.classifier.counts.total(ReqKind::Read), 0);
    }

    #[test]
    fn mshr_gate_reflects_inflight_fills() {
        let mut ms = sys();
        let mut st = CpuStats::default();
        assert!(ms.mshr_free(CmpId(0), 0));
        // Fill all 8 MSHRs with in-flight prefetches.
        for i in 0..8u64 {
            let addr = shared_addr(&ms, 64 + i * 64 * 16); // all remote? varies
            ms.access(CpuId(0), addr, AccessKind::PrefetchEx, 0, &mut st);
        }
        assert!(!ms.mshr_free(CmpId(0), 0));
        // Long after everything lands, MSHRs are free again.
        assert!(ms.mshr_free(CmpId(0), 1_000_000));
    }

    #[test]
    fn self_invalidation_hint_drops_the_owner_copy() {
        let mut ms = sys();
        ms.set_self_invalidation(true);
        ms.set_role(CpuId(0), StreamRole::R);
        ms.set_role(CpuId(1), StreamRole::A);
        ms.set_role(CpuId(2), StreamRole::R);
        ms.set_role(CpuId(3), StreamRole::A);
        let mut st = CpuStats::default();
        let addr = shared_addr(&ms, 0);
        let line = ms.map().line_of(addr);
        // Producer (CMP 1) writes the line.
        let w = ms.access(CpuId(2), addr, AccessKind::Store, 0, &mut st);
        assert_eq!(ms.l2_of(CmpId(1)).peek(line), Some(LineState::Modified));
        // Consumer's A-stream (CPU 1, CMP 0) reads it: 3-hop fetch, and
        // the hint makes the producer drop its copy.
        ms.access(CpuId(1), addr, AccessKind::Load, w.complete, &mut st);
        assert_eq!(
            ms.l2_of(CmpId(1)).peek(line),
            None,
            "owner self-invalidated"
        );
        assert_eq!(ms.l2_of(CmpId(0)).peek(line), Some(LineState::Shared));
        // The producer's next write needs only the consumer invalidated —
        // no dirty-owner forward.
        let hops_before = ms.dir_of(CmpId(0)).three_hop_fetches;
        ms.access(
            CpuId(2),
            addr,
            AccessKind::Store,
            w.complete + 5000,
            &mut st,
        );
        assert_eq!(
            ms.dir_of(CmpId(0)).three_hop_fetches,
            hops_before,
            "rewrite is a 2-hop memory fetch"
        );
        // Without the hint, an R-stream read keeps the owner Shared.
        let addr2 = shared_addr(&ms, 64);
        let line2 = ms.map().line_of(addr2);
        let w2 = ms.access(CpuId(2), addr2, AccessKind::Store, 50_000, &mut st);
        ms.access(CpuId(0), addr2, AccessKind::Load, w2.complete, &mut st);
        assert_eq!(ms.l2_of(CmpId(1)).peek(line2), Some(LineState::Shared));
    }

    #[test]
    fn contention_queues_misses_from_many_nodes() {
        let mut ms = sys();
        let mut st = CpuStats::default();
        // 8 different CMPs all miss to the same home at t=0.
        let addr = shared_addr(&ms, 0); // homed on CMP 0
        let mut completes: Vec<Cycle> = Vec::new();
        for c in 1..9usize {
            let cpu = CmpId(c).cpu(&MachineConfig::paper(), 0);
            let r = ms.access(cpu, addr, AccessKind::Load, 0, &mut st);
            completes.push(r.complete);
        }
        // Later requesters queue at the home NI port and memory controller.
        for w in completes.windows(2) {
            assert!(w[1] > w[0], "each subsequent miss completes later");
        }
    }
}
