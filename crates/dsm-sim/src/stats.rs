//! Execution-time accounting.
//!
//! Figures 2 and 4 of the paper break execution time into busy cycles,
//! memory stalls, lock and barrier synchronization, scheduling time, and
//! job-wait time. Every cycle a simulated CPU spends is attributed to
//! exactly one of these buckets; the attribution class is chosen by the
//! code the CPU is conceptually executing (runtime scheduler code stalls
//! count as scheduling, user code stalls as memory, ...).

/// Which redundant stream a processor is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamRole {
    /// Normal execution (single or double mode): not paired.
    Solo,
    /// The real task of a slipstream pair.
    R,
    /// The advanced (speculative, reduced) task of a slipstream pair.
    A,
}

impl StreamRole {
    /// True for the speculative A-stream.
    pub fn is_a(self) -> bool {
        matches!(self, StreamRole::A)
    }
    /// True for the real R-stream.
    pub fn is_r(self) -> bool {
        matches!(self, StreamRole::R)
    }
}

/// Buckets of the execution-time breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeClass {
    /// Instruction execution (compute + cache-hit accesses).
    Busy,
    /// Stalls waiting for the memory system in user code.
    MemStall,
    /// Waiting to acquire locks / critical sections.
    Lock,
    /// Waiting at barriers.
    Barrier,
    /// Runtime scheduling work (chunk grabbing, its serialization, and its
    /// memory stalls).
    Scheduling,
    /// Idle in the slave pool waiting for a parallel region to be
    /// dispatched.
    JobWait,
    /// A-stream waiting for slipstream tokens or scheduling handshakes
    /// (the R-stream's symmetric wait is folded into Barrier, where the
    /// paper reports it is negligible).
    AStreamWait,
    /// Cycles spent in divergence recovery.
    Recovery,
    /// Cycles stolen by the operating system (timer ticks, daemons) when
    /// the OS-noise model is enabled.
    Os,
}

/// All classes, in display order.
pub const TIME_CLASSES: [TimeClass; 9] = [
    TimeClass::Busy,
    TimeClass::MemStall,
    TimeClass::Lock,
    TimeClass::Barrier,
    TimeClass::Scheduling,
    TimeClass::JobWait,
    TimeClass::AStreamWait,
    TimeClass::Recovery,
    TimeClass::Os,
];

impl TimeClass {
    /// Stable index into [`TimeBreakdown`].
    pub fn index(self) -> usize {
        match self {
            TimeClass::Busy => 0,
            TimeClass::MemStall => 1,
            TimeClass::Lock => 2,
            TimeClass::Barrier => 3,
            TimeClass::Scheduling => 4,
            TimeClass::JobWait => 5,
            TimeClass::AStreamWait => 6,
            TimeClass::Recovery => 7,
            TimeClass::Os => 8,
        }
    }

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            TimeClass::Busy => "busy",
            TimeClass::MemStall => "memory",
            TimeClass::Lock => "lock",
            TimeClass::Barrier => "barrier",
            TimeClass::Scheduling => "scheduling",
            TimeClass::JobWait => "job-wait",
            TimeClass::AStreamWait => "astream-wait",
            TimeClass::Recovery => "recovery",
            TimeClass::Os => "os",
        }
    }
}

/// Cycles attributed to each [`TimeClass`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    cycles: [u64; TIME_CLASSES.len()],
}

impl TimeBreakdown {
    /// All-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `cycles` to `class`.
    pub fn add(&mut self, class: TimeClass, cycles: u64) {
        self.cycles[class.index()] += cycles;
    }

    /// Cycles in `class`.
    pub fn get(&self, class: TimeClass) -> u64 {
        self.cycles[class.index()]
    }

    /// Sum over all classes.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Fraction of the total in `class` (0 if empty).
    pub fn fraction(&self, class: TimeClass) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.get(class) as f64 / t as f64
        }
    }

    /// Element-wise accumulate another breakdown.
    pub fn merge(&mut self, other: &TimeBreakdown) {
        for (a, b) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *a += *b;
        }
    }

    /// Append the per-class cycle counters to a memo counter vector
    /// (monotone state captured as per-iteration deltas, not digested).
    pub fn memo_counters(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(&self.cycles);
    }

    /// Add `k` copies of the per-class deltas at `delta[*idx..]`,
    /// advancing `*idx` — the replay of `k` skipped iterations.
    pub fn memo_apply(&mut self, delta: &[u64], idx: &mut usize, k: u64) {
        for c in &mut self.cycles {
            *c += delta[*idx] * k;
            *idx += 1;
        }
    }

    /// Serialize the per-class cycle array.
    pub fn snapshot(&self, w: &mut snap::Writer) {
        for c in self.cycles {
            w.u64(c);
        }
    }

    /// Restore a breakdown written by [`TimeBreakdown::snapshot`].
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        let mut cycles = [0u64; TIME_CLASSES.len()];
        for c in &mut cycles {
            *c = r.u64()?;
        }
        Ok(TimeBreakdown { cycles })
    }
}

/// Per-CPU counters.
#[derive(Debug, Clone, Default)]
pub struct CpuStats {
    /// Time attribution for this CPU.
    pub time: TimeBreakdown,
    /// Demand loads executed.
    pub loads: u64,
    /// Demand stores executed (including converted prefetches on A-streams).
    pub stores: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (after L1 miss).
    pub l2_hits: u64,
    /// L2 misses (fills from local or remote memory).
    pub l2_misses: u64,
    /// Shared stores the A-stream converted to read-exclusive prefetches.
    pub stores_converted: u64,
    /// Shared stores the A-stream skipped outright.
    pub stores_skipped: u64,
    /// Barriers passed (for R/Solo) or token-skipped (for A).
    pub barriers: u64,
    /// Divergence recoveries this CPU underwent.
    pub recoveries: u64,
    /// Recoveries forced by the watchdog timeout (a subset of
    /// `recoveries`): the pair's R side waited at a barrier past the
    /// watchdog deadline and recovery was initiated without the usual
    /// token-slack evidence.
    pub watchdog_recoveries: u64,
    /// Faults the injection framework fired against this CPU's stream.
    pub faults_injected: u64,
    /// 1 if this CPU's pair was demoted to single-stream mode after
    /// exhausting its recovery budget, else 0.
    pub demotions: u64,
}

impl CpuStats {
    /// Append every counter (time breakdown first, then the scalar
    /// counters in declaration order) to a memo counter vector.
    pub fn memo_counters(&self, out: &mut Vec<u64>) {
        self.time.memo_counters(out);
        out.extend_from_slice(&[
            self.loads,
            self.stores,
            self.l1_hits,
            self.l2_hits,
            self.l2_misses,
            self.stores_converted,
            self.stores_skipped,
            self.barriers,
            self.recoveries,
            self.watchdog_recoveries,
            self.faults_injected,
            self.demotions,
        ]);
    }

    /// Add `k` copies of the deltas at `delta[*idx..]` (same order as
    /// [`CpuStats::memo_counters`]), advancing `*idx`.
    pub fn memo_apply(&mut self, delta: &[u64], idx: &mut usize, k: u64) {
        self.time.memo_apply(delta, idx, k);
        let mut take = |field: &mut u64| {
            *field += delta[*idx] * k;
            *idx += 1;
        };
        take(&mut self.loads);
        take(&mut self.stores);
        take(&mut self.l1_hits);
        take(&mut self.l2_hits);
        take(&mut self.l2_misses);
        take(&mut self.stores_converted);
        take(&mut self.stores_skipped);
        take(&mut self.barriers);
        take(&mut self.recoveries);
        take(&mut self.watchdog_recoveries);
        take(&mut self.faults_injected);
        take(&mut self.demotions);
    }

    /// Serialize all counters in declaration order.
    pub fn snapshot(&self, w: &mut snap::Writer) {
        self.time.snapshot(w);
        for v in [
            self.loads,
            self.stores,
            self.l1_hits,
            self.l2_hits,
            self.l2_misses,
            self.stores_converted,
            self.stores_skipped,
            self.barriers,
            self.recoveries,
            self.watchdog_recoveries,
            self.faults_injected,
            self.demotions,
        ] {
            w.u64(v);
        }
    }

    /// Restore counters written by [`CpuStats::snapshot`].
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        Ok(CpuStats {
            time: TimeBreakdown::restore(r)?,
            loads: r.u64()?,
            stores: r.u64()?,
            l1_hits: r.u64()?,
            l2_hits: r.u64()?,
            l2_misses: r.u64()?,
            stores_converted: r.u64()?,
            stores_skipped: r.u64()?,
            barriers: r.u64()?,
            recoveries: r.u64()?,
            watchdog_recoveries: r.u64()?,
            faults_injected: r.u64()?,
            demotions: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_totals() {
        let mut b = TimeBreakdown::new();
        b.add(TimeClass::Busy, 100);
        b.add(TimeClass::MemStall, 50);
        b.add(TimeClass::Busy, 10);
        assert_eq!(b.get(TimeClass::Busy), 110);
        assert_eq!(b.total(), 160);
        assert!((b.fraction(TimeClass::MemStall) - 50.0 / 160.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        let b = TimeBreakdown::new();
        assert_eq!(b.total(), 0);
        assert_eq!(b.fraction(TimeClass::Busy), 0.0);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = TimeBreakdown::new();
        a.add(TimeClass::Lock, 5);
        let mut b = TimeBreakdown::new();
        b.add(TimeClass::Lock, 7);
        b.add(TimeClass::Barrier, 3);
        a.merge(&b);
        assert_eq!(a.get(TimeClass::Lock), 12);
        assert_eq!(a.get(TimeClass::Barrier), 3);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; TIME_CLASSES.len()];
        for c in TIME_CLASSES {
            assert!(!seen[c.index()], "duplicate index");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn roles_classify() {
        assert!(StreamRole::A.is_a());
        assert!(!StreamRole::A.is_r());
        assert!(StreamRole::R.is_r());
        assert!(!StreamRole::Solo.is_a() && !StreamRole::Solo.is_r());
    }
}
