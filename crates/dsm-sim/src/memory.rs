//! Per-node memory controllers and node buses.
//!
//! Each CMP node owns a slice of the globally shared memory behind one
//! memory controller (occupancy `MemTime`) and connects its L2 to the node
//! controller over a bus (occupancy `BusTime`). Both are contention points,
//! per the paper's simulation methodology.

use crate::address::CmpId;
use crate::config::MachineConfig;
use crate::engine::{Cycle, Resource};

/// Memory controllers and buses for all nodes.
#[derive(Debug)]
pub struct MemoryControllers {
    mem: Vec<Resource>,
    bus: Vec<Resource>,
    /// DRAM access latency/occupancy in cycles (MemTime).
    pub mem_cycles: Cycle,
    /// Bus transfer latency/occupancy in cycles (BusTime).
    pub bus_cycles: Cycle,
}

impl MemoryControllers {
    /// Build controllers for a machine.
    pub fn new(cfg: &MachineConfig) -> Self {
        MemoryControllers {
            mem: (0..cfg.num_cmps).map(|_| Resource::new()).collect(),
            bus: (0..cfg.num_cmps).map(|_| Resource::new()).collect(),
            mem_cycles: cfg.ns_to_cycles(cfg.mem_ns.mem_time),
            bus_cycles: cfg.ns_to_cycles(cfg.mem_ns.bus_time),
        }
    }

    /// Perform a DRAM access at `node` starting at `t`; returns completion.
    pub fn dram_access(&mut self, node: CmpId, t: Cycle) -> Cycle {
        self.mem[node.0].acquire(t, self.mem_cycles)
    }

    /// Transfer one line over `node`'s bus starting at `t`; returns
    /// completion.
    pub fn bus_transfer(&mut self, node: CmpId, t: Cycle) -> Cycle {
        self.bus[node.0].acquire(t, self.bus_cycles)
    }

    /// Total cycles requests spent queueing at memory controllers.
    pub fn memory_contention(&self) -> u64 {
        self.mem.iter().map(|r| r.contention_cycles).sum()
    }

    /// Total cycles requests spent queueing on node buses.
    pub fn bus_contention(&self) -> u64 {
        self.bus.iter().map(|r| r.contention_cycles).sum()
    }

    /// Append the time-normalized controller/bus state to a memo digest
    /// (memory controllers, then buses — snapshot order).
    pub fn memo_digest(&self, now: Cycle, out: &mut Vec<u64>) {
        for r in self.mem.iter().chain(self.bus.iter()) {
            r.memo_digest(now, out);
        }
    }

    /// Advance live controller/bus reservations by `delta` (memo jump).
    pub fn memo_shift(&mut self, now: Cycle, delta: Cycle) {
        for r in self.mem.iter_mut().chain(self.bus.iter_mut()) {
            r.memo_shift(now, delta);
        }
    }

    /// Append the monotone counters to a memo counter vector.
    pub fn memo_counters(&self, out: &mut Vec<u64>) {
        for r in self.mem.iter().chain(self.bus.iter()) {
            r.memo_counters(out);
        }
    }

    /// Add `k` copies of the deltas at `delta[*idx..]`, advancing `*idx`.
    pub fn memo_apply(&mut self, delta: &[u64], idx: &mut usize, k: u64) {
        for r in self.mem.iter_mut().chain(self.bus.iter_mut()) {
            r.memo_apply(delta, idx, k);
        }
    }

    /// Serialize the mutable controller/bus state. Derived latencies are
    /// rebuilt from config on restore, so only the resources are written.
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.seq(&self.mem, |w, r| r.snapshot(w));
        w.seq(&self.bus, |w, r| r.snapshot(w));
    }

    /// Overwrite this instance's controller/bus state from a snapshot.
    pub fn restore_into(&mut self, r: &mut snap::Reader) -> Result<(), snap::SnapError> {
        self.mem = r.seq(Resource::restore)?;
        self.bus = r.seq(Resource::restore)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_follow_table1() {
        let mut m = MemoryControllers::new(&MachineConfig::paper());
        // MemTime 50ns -> 60cy, BusTime 30ns -> 36cy at 1.2 GHz.
        assert_eq!(m.dram_access(CmpId(0), 100), 160);
        assert_eq!(m.bus_transfer(CmpId(0), 100), 136);
    }

    #[test]
    fn controller_contention_queues_requests() {
        let mut m = MemoryControllers::new(&MachineConfig::paper());
        let a = m.dram_access(CmpId(2), 0);
        let b = m.dram_access(CmpId(2), 10);
        assert_eq!(a, 60);
        assert_eq!(b, 120, "second DRAM access waits for the controller");
        assert_eq!(m.memory_contention(), 50);
    }

    #[test]
    fn nodes_are_independent() {
        let mut m = MemoryControllers::new(&MachineConfig::paper());
        let a = m.dram_access(CmpId(0), 0);
        let b = m.dram_access(CmpId(1), 0);
        assert_eq!(a, b);
        assert_eq!(m.memory_contention(), 0);
    }
}
