//! Small internal utilities.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A fast multiplicative hasher for `u64` keys (line addresses, ids).
///
/// Simulation state is keyed almost entirely by line addresses; SipHash is
/// needless overhead on this hot path and HashDoS is not a concern for a
/// simulator, so we use a Fibonacci-multiplication mix instead.
#[derive(Default)]
pub struct U64Hasher(u64);

impl Hasher for U64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (rarely used): fold bytes in u64 chunks.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        // 2^64 / golden ratio, the classic Fibonacci hashing constant.
        self.0 = (self.0 ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// HashMap keyed by u64-like values using [`U64Hasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<U64Hasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrips() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i * 977, i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 977)), Some(&(i as u32)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hasher_distinguishes_values() {
        let mut h1 = U64Hasher::default();
        h1.write_u64(1);
        let mut h2 = U64Hasher::default();
        h2.write_u64(2);
        assert_ne!(h1.finish(), h2.finish());
    }
}
