//! Physical address layout of the simulated machine.
//!
//! The paper requires that "the virtual shared space must be either
//! contiguous or non-contiguous but not interleaved with private space, to
//! ease delineation of what is shared and what is not shared" (Section 3.1).
//! We adopt the UNIX-process model the paper's implementation chose: one
//! contiguous shared segment, plus one contiguous private segment per CPU.
//!
//! Shared lines are distributed round-robin (by line) across node memories,
//! which determines each line's *home* directory. Private lines are homed on
//! the owning CPU's node.

use crate::config::MachineConfig;

/// Identifies a processor in the machine (dense, `0..num_cpus`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CpuId(pub usize);

/// Identifies a CMP node (dense, `0..num_cmps`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CmpId(pub usize);

impl CpuId {
    /// The CMP node this processor belongs to. (Named for the chip
    /// multiprocessor, not comparison; `CpuId` also derives `Ord`.)
    #[allow(clippy::should_implement_trait)]
    pub fn cmp(self, cfg: &MachineConfig) -> CmpId {
        CmpId(self.0 / cfg.cpus_per_cmp)
    }

    /// Index of this processor within its CMP (0 or 1 for dual-core nodes).
    pub fn local_index(self, cfg: &MachineConfig) -> usize {
        self.0 % cfg.cpus_per_cmp
    }
}

impl CmpId {
    /// The `i`-th processor of this CMP.
    pub fn cpu(self, cfg: &MachineConfig, i: usize) -> CpuId {
        debug_assert!(i < cfg.cpus_per_cmp);
        CpuId(self.0 * cfg.cpus_per_cmp + i)
    }
}

/// Which segment an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Globally shared data (application arrays, runtime control state).
    Shared,
    /// Per-CPU private data (loop state, stack, private arrays).
    Private,
}

/// A physical byte address in the simulated machine.
pub type Addr = u64;

/// A cache-line-granular address (byte address >> line shift).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineAddr(pub u64);

/// Size of each segment. Generous virtual sizes; only touched lines incur
/// simulator state.
const SHARED_BASE: Addr = 0x0000_0000_0000_0000;
const SHARED_SIZE: Addr = 1 << 40;
const PRIVATE_BASE: Addr = 1 << 44;
const PRIVATE_STRIDE: Addr = 1 << 36;

/// Address-space map for a configured machine.
#[derive(Debug, Clone)]
pub struct AddressMap {
    line_shift: u32,
    num_cmps: usize,
    cpus_per_cmp: usize,
}

impl AddressMap {
    /// Build the map for a machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        debug_assert!(cfg.l1.line_bytes.is_power_of_two());
        AddressMap {
            line_shift: cfg.l1.line_bytes.trailing_zeros(),
            num_cmps: cfg.num_cmps,
            cpus_per_cmp: cfg.cpus_per_cmp,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        1 << self.line_shift
    }

    /// First byte address of the shared segment.
    pub fn shared_base(&self) -> Addr {
        SHARED_BASE
    }

    /// First byte address of `cpu`'s private segment.
    pub fn private_base(&self, cpu: CpuId) -> Addr {
        PRIVATE_BASE + cpu.0 as u64 * PRIVATE_STRIDE
    }

    /// Classify a byte address.
    pub fn space_of(&self, addr: Addr) -> Space {
        if addr < SHARED_BASE + SHARED_SIZE {
            Space::Shared
        } else {
            Space::Private
        }
    }

    /// Which CPU owns a private address. Panics on shared addresses.
    pub fn private_owner(&self, addr: Addr) -> CpuId {
        assert_eq!(self.space_of(addr), Space::Private, "not a private address");
        CpuId(((addr - PRIVATE_BASE) / PRIVATE_STRIDE) as usize)
    }

    /// The cache line containing a byte address.
    pub fn line_of(&self, addr: Addr) -> LineAddr {
        LineAddr(addr >> self.line_shift)
    }

    /// First byte address of a line.
    pub fn line_base(&self, line: LineAddr) -> Addr {
        line.0 << self.line_shift
    }

    /// Home node of a line: shared lines interleave round-robin across node
    /// memories; private lines are homed on the owner's node.
    pub fn home_of(&self, line: LineAddr) -> CmpId {
        let base = self.line_base(line);
        match self.space_of(base) {
            Space::Shared => CmpId((line.0 as usize) % self.num_cmps),
            Space::Private => {
                let cpu = self.private_owner(base);
                CmpId(cpu.0 / self.cpus_per_cmp)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        AddressMap::new(&MachineConfig::paper())
    }

    #[test]
    fn cpu_cmp_mapping_roundtrips() {
        let cfg = MachineConfig::paper();
        for i in 0..cfg.num_cpus() {
            let cpu = CpuId(i);
            let cmp = cpu.cmp(&cfg);
            assert_eq!(cmp.cpu(&cfg, cpu.local_index(&cfg)), cpu);
        }
        assert_eq!(CpuId(0).cmp(&cfg), CmpId(0));
        assert_eq!(CpuId(1).cmp(&cfg), CmpId(0));
        assert_eq!(CpuId(2).cmp(&cfg), CmpId(1));
        assert_eq!(CpuId(31).cmp(&cfg), CmpId(15));
    }

    #[test]
    fn shared_and_private_spaces_do_not_interleave() {
        let m = map();
        assert_eq!(m.space_of(m.shared_base()), Space::Shared);
        assert_eq!(m.space_of(m.shared_base() + 123_456_789), Space::Shared);
        for cpu in [CpuId(0), CpuId(7), CpuId(31)] {
            let b = m.private_base(cpu);
            assert_eq!(m.space_of(b), Space::Private);
            assert_eq!(m.private_owner(b), cpu);
            assert_eq!(m.private_owner(b + 4096), cpu);
        }
    }

    #[test]
    fn shared_lines_interleave_across_homes() {
        let m = map();
        let lb = m.line_bytes();
        let h0 = m.home_of(m.line_of(0));
        let h1 = m.home_of(m.line_of(lb));
        let h16 = m.home_of(m.line_of(16 * lb));
        assert_ne!(h0, h1);
        assert_eq!(h0, h16, "16 CMPs: every 16th line shares a home");
    }

    #[test]
    fn private_lines_are_homed_locally() {
        let m = map();
        let cfg = MachineConfig::paper();
        for i in 0..cfg.num_cpus() {
            let cpu = CpuId(i);
            let line = m.line_of(m.private_base(cpu) + 64 * 10);
            assert_eq!(m.home_of(line), cpu.cmp(&cfg));
        }
    }

    #[test]
    fn line_geometry() {
        let m = map();
        assert_eq!(m.line_bytes(), 64);
        assert_eq!(m.line_of(0), m.line_of(63));
        assert_ne!(m.line_of(63), m.line_of(64));
        assert_eq!(m.line_base(m.line_of(130)), 128);
    }
}
