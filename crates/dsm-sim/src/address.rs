//! Physical address layout of the simulated machine.
//!
//! The paper requires that "the virtual shared space must be either
//! contiguous or non-contiguous but not interleaved with private space, to
//! ease delineation of what is shared and what is not shared" (Section 3.1).
//! We adopt the UNIX-process model the paper's implementation chose: one
//! contiguous shared segment, plus one contiguous private segment per CPU.
//!
//! Shared lines are distributed round-robin (by line) across node memories,
//! which determines each line's *home* directory. Private lines are homed on
//! the owning CPU's node.

use crate::config::MachineConfig;

/// Identifies a processor in the machine (dense, `0..num_cpus`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CpuId(pub usize);

/// Identifies a CMP node (dense, `0..num_cmps`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CmpId(pub usize);

impl CpuId {
    /// The CMP node this processor belongs to. (Named for the chip
    /// multiprocessor, not comparison; `CpuId` also derives `Ord`.)
    #[allow(clippy::should_implement_trait)]
    pub fn cmp(self, cfg: &MachineConfig) -> CmpId {
        CmpId(self.0 / cfg.cpus_per_cmp)
    }

    /// Index of this processor within its CMP (0 or 1 for dual-core nodes).
    pub fn local_index(self, cfg: &MachineConfig) -> usize {
        self.0 % cfg.cpus_per_cmp
    }
}

impl CmpId {
    /// The `i`-th processor of this CMP.
    pub fn cpu(self, cfg: &MachineConfig, i: usize) -> CpuId {
        debug_assert!(i < cfg.cpus_per_cmp);
        CpuId(self.0 * cfg.cpus_per_cmp + i)
    }
}

/// Which segment an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Globally shared data (application arrays, runtime control state).
    Shared,
    /// Per-CPU private data (loop state, stack, private arrays).
    Private,
}

/// A physical byte address in the simulated machine.
pub type Addr = u64;

/// A cache-line-granular address (byte address >> line shift).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineAddr(pub u64);

/// Size of each segment. Generous virtual sizes; only touched lines incur
/// simulator state.
const SHARED_BASE: Addr = 0x0000_0000_0000_0000;
const SHARED_SIZE: Addr = 1 << 40;
const PRIVATE_BASE: Addr = 1 << 44;
const PRIVATE_STRIDE: Addr = 1 << 36;

/// Resolved placement of one application array in the simulated address
/// space — the single source of truth for shared/private classification
/// and element addressing, shared by the compiler backend
/// (`slipstream::compile`) and the static analyzer (`omp-analyze`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArraySpan {
    /// Shared (one copy in the global segment) or private (one copy per
    /// thread at this offset within each private segment).
    pub shared: bool,
    /// Absolute base address for shared arrays; offset from each CPU's
    /// private base for private arrays.
    pub base: Addr,
    /// Bytes per element.
    pub elem_bytes: u64,
    /// Element count.
    pub len: u64,
}

impl ArraySpan {
    /// Byte offset of element `index` within the array's segment
    /// (absolute for shared arrays, private-base-relative otherwise).
    /// Out-of-range indices clamp into the array rather than wandering
    /// into a neighbouring array's lines: timing kernels may probe edges.
    /// Panics on zero-length arrays, exactly like the runtime path.
    pub fn element_offset(&self, index: i64) -> Addr {
        let idx = index.clamp(0, self.len as i64 - 1) as u64;
        self.base + idx * self.elem_bytes
    }

    /// Absolute byte address of `self[index]` for the thread on `cpu`
    /// (private arrays replicate per processor).
    pub fn element_addr(&self, map: &AddressMap, cpu: CpuId, index: i64) -> Addr {
        let off = self.element_offset(index);
        if self.shared {
            off
        } else {
            map.private_base(cpu) + off
        }
    }

    /// Cache-line index of element `index` within the array's segment
    /// (meaningful across threads only for shared arrays).
    pub fn element_line(&self, line_bytes: u64, index: i64) -> u64 {
        self.element_offset(index) / line_bytes
    }
}

/// Lay out arrays in declaration order with the compiler's placement
/// policy: each segment starts after one guard line, every array is
/// line-aligned, and one guard line separates consecutive arrays. Each
/// declaration is `(shared, len, elem_bytes)`. Returns the spans plus the
/// first shared address free for runtime objects (after the user arrays).
pub fn layout_spans(
    decls: impl IntoIterator<Item = (bool, u64, u64)>,
    shared_base: Addr,
    line: u64,
) -> (Vec<ArraySpan>, Addr) {
    let align = |a: Addr| a.div_ceil(line) * line;
    let mut shared_cursor: Addr = shared_base + line;
    let mut private_cursor: Addr = line;
    let mut spans = Vec::new();
    for (shared, len, elem_bytes) in decls {
        let bytes = align(len * elem_bytes);
        let base = if shared {
            let b = shared_cursor;
            shared_cursor += bytes + line; // one guard line between arrays
            b
        } else {
            let b = private_cursor;
            private_cursor += bytes + line;
            b
        };
        spans.push(ArraySpan {
            shared,
            base,
            elem_bytes,
            len,
        });
    }
    (spans, align(shared_cursor + line))
}

/// Address-space map for a configured machine.
#[derive(Debug, Clone)]
pub struct AddressMap {
    line_shift: u32,
    num_cmps: usize,
    cpus_per_cmp: usize,
}

impl AddressMap {
    /// Build the map for a machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        debug_assert!(cfg.l1.line_bytes.is_power_of_two());
        AddressMap {
            line_shift: cfg.l1.line_bytes.trailing_zeros(),
            num_cmps: cfg.num_cmps,
            cpus_per_cmp: cfg.cpus_per_cmp,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        1 << self.line_shift
    }

    /// First byte address of the shared segment.
    pub fn shared_base(&self) -> Addr {
        SHARED_BASE
    }

    /// First byte address of `cpu`'s private segment.
    pub fn private_base(&self, cpu: CpuId) -> Addr {
        PRIVATE_BASE + cpu.0 as u64 * PRIVATE_STRIDE
    }

    /// Classify a byte address.
    pub fn space_of(&self, addr: Addr) -> Space {
        if addr < SHARED_BASE + SHARED_SIZE {
            Space::Shared
        } else {
            Space::Private
        }
    }

    /// Which CPU owns a private address. Panics on shared addresses.
    pub fn private_owner(&self, addr: Addr) -> CpuId {
        assert_eq!(self.space_of(addr), Space::Private, "not a private address");
        CpuId(((addr - PRIVATE_BASE) / PRIVATE_STRIDE) as usize)
    }

    /// The cache line containing a byte address.
    pub fn line_of(&self, addr: Addr) -> LineAddr {
        LineAddr(addr >> self.line_shift)
    }

    /// First byte address of a line.
    pub fn line_base(&self, line: LineAddr) -> Addr {
        line.0 << self.line_shift
    }

    /// Lay out `decls` (`(shared, len, elem_bytes)` per array) in this
    /// machine's address space; see [`layout_spans`].
    pub fn layout_spans(
        &self,
        decls: impl IntoIterator<Item = (bool, u64, u64)>,
    ) -> (Vec<ArraySpan>, Addr) {
        layout_spans(decls, self.shared_base(), self.line_bytes())
    }

    /// Home node of a line: shared lines interleave round-robin across node
    /// memories; private lines are homed on the owner's node.
    pub fn home_of(&self, line: LineAddr) -> CmpId {
        let base = self.line_base(line);
        match self.space_of(base) {
            Space::Shared => CmpId((line.0 as usize) % self.num_cmps),
            Space::Private => {
                let cpu = self.private_owner(base);
                CmpId(cpu.0 / self.cpus_per_cmp)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        AddressMap::new(&MachineConfig::paper())
    }

    #[test]
    fn cpu_cmp_mapping_roundtrips() {
        let cfg = MachineConfig::paper();
        for i in 0..cfg.num_cpus() {
            let cpu = CpuId(i);
            let cmp = cpu.cmp(&cfg);
            assert_eq!(cmp.cpu(&cfg, cpu.local_index(&cfg)), cpu);
        }
        assert_eq!(CpuId(0).cmp(&cfg), CmpId(0));
        assert_eq!(CpuId(1).cmp(&cfg), CmpId(0));
        assert_eq!(CpuId(2).cmp(&cfg), CmpId(1));
        assert_eq!(CpuId(31).cmp(&cfg), CmpId(15));
    }

    #[test]
    fn shared_and_private_spaces_do_not_interleave() {
        let m = map();
        assert_eq!(m.space_of(m.shared_base()), Space::Shared);
        assert_eq!(m.space_of(m.shared_base() + 123_456_789), Space::Shared);
        for cpu in [CpuId(0), CpuId(7), CpuId(31)] {
            let b = m.private_base(cpu);
            assert_eq!(m.space_of(b), Space::Private);
            assert_eq!(m.private_owner(b), cpu);
            assert_eq!(m.private_owner(b + 4096), cpu);
        }
    }

    #[test]
    fn shared_lines_interleave_across_homes() {
        let m = map();
        let lb = m.line_bytes();
        let h0 = m.home_of(m.line_of(0));
        let h1 = m.home_of(m.line_of(lb));
        let h16 = m.home_of(m.line_of(16 * lb));
        assert_ne!(h0, h1);
        assert_eq!(h0, h16, "16 CMPs: every 16th line shares a home");
    }

    #[test]
    fn private_lines_are_homed_locally() {
        let m = map();
        let cfg = MachineConfig::paper();
        for i in 0..cfg.num_cpus() {
            let cpu = CpuId(i);
            let line = m.line_of(m.private_base(cpu) + 64 * 10);
            assert_eq!(m.home_of(line), cpu.cmp(&cfg));
        }
    }

    #[test]
    fn layout_spans_align_and_guard() {
        let m = map();
        let (spans, runtime_base) = m.layout_spans([
            (true, 100, 8), // 800B -> 832 aligned
            (true, 7, 4),   // second shared array
            (false, 33, 8), // private
            (false, 5, 8),  // private
        ]);
        let line = m.line_bytes();
        for s in &spans {
            assert_eq!(s.base % line, 0, "line-aligned");
        }
        assert_eq!(spans[0].base, m.shared_base() + line, "guard page first");
        assert!(
            spans[1].base >= spans[0].base + 100 * 8 + line,
            "guard line between shared arrays"
        );
        assert!(!spans[2].shared);
        assert!(
            spans[3].base >= spans[2].base + 33 * 8 + line,
            "guard line between private arrays"
        );
        assert!(runtime_base > spans[1].base + 7 * 4);
        assert_eq!(runtime_base % line, 0);
    }

    #[test]
    fn span_element_addressing_clamps_and_replicates() {
        let m = map();
        let (spans, _) = m.layout_spans([(true, 4, 8), (false, 4, 8)]);
        let s = spans[0];
        assert_eq!(
            s.element_addr(&m, CpuId(0), 2),
            s.element_addr(&m, CpuId(9), 2),
            "shared elements have one address"
        );
        assert_eq!(s.element_offset(99), s.element_offset(3), "clamps high");
        assert_eq!(s.element_offset(-5), s.element_offset(0), "clamps low");
        let p = spans[1];
        let a0 = p.element_addr(&m, CpuId(0), 1);
        let a1 = p.element_addr(&m, CpuId(1), 1);
        assert_ne!(a0, a1, "private arrays replicate per CPU");
        assert_eq!(m.private_owner(a0), CpuId(0));
        // Line arithmetic agrees with the map.
        assert_eq!(s.element_line(m.line_bytes(), 0), m.line_of(s.base).0);
    }

    #[test]
    fn line_geometry() {
        let m = map();
        assert_eq!(m.line_bytes(), 64);
        assert_eq!(m.line_of(0), m.line_of(63));
        assert_ne!(m.line_of(63), m.line_of(64));
        assert_eq!(m.line_base(m.line_of(130)), 128);
    }
}
