//! Deterministic discrete-event core.
//!
//! The simulator advances a single global clock measured in CPU cycles. The
//! only event kind is "wake processor P at cycle T": all memory-system state
//! changes happen synchronously while a processor executes, and contention
//! is modelled with per-resource occupancy windows ([`Resource`]). Events at
//! equal times are ordered by insertion sequence, making every simulation
//! bit-reproducible.

use crate::address::CpuId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in CPU cycles.
pub type Cycle = u64;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Ev {
    time: Cycle,
    seq: u64,
    cpu: CpuId,
}

/// Min-heap of processor wake events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Ev>>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `cpu` to wake at `time`.
    pub fn schedule(&mut self, time: Cycle, cpu: CpuId) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Ev { time, seq, cpu }));
    }

    /// Remove and return the earliest event as `(time, cpu)`.
    pub fn pop(&mut self) -> Option<(Cycle, CpuId)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.cpu))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A serially reusable hardware resource (bus, NI port, memory controller).
///
/// Transactions acquire the resource for an *occupancy* window; a
/// transaction arriving while the resource is busy queues until a gap is
/// free. Occupied windows are kept as an interval list rather than a single
/// `busy_until` watermark because the event loop allows a bounded amount of
/// time skew between processors (a processor may execute slightly past the
/// next pending event): a request issued at an *earlier* simulated time
/// must be able to slot into a gap before windows already reserved at later
/// times, or skew would masquerade as contention.
#[derive(Debug, Clone, Default)]
pub struct Resource {
    /// Reserved service windows `(start, end)`, sorted by start.
    windows: std::collections::VecDeque<(Cycle, Cycle)>,
    /// Total cycles transactions spent waiting for this resource.
    pub contention_cycles: u64,
    /// Number of transactions served.
    pub transactions: u64,
}

/// Windows ending this far before the newest reservation can no longer
/// receive out-of-order requests (the engine's time skew is far smaller)
/// and are pruned.
const WINDOW_HORIZON: Cycle = 1 << 20;

impl Resource {
    /// A free resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Occupy the resource for `occupancy` cycles starting no earlier than
    /// `now`. Returns the cycle at which service *completes*.
    pub fn acquire(&mut self, now: Cycle, occupancy: Cycle) -> Cycle {
        self.transactions += 1;
        if occupancy == 0 {
            return now;
        }
        // Watermark fast path: a request landing at or after the newest
        // window's start can only be served at max(now, free_at) -- every
        // earlier window ends by the newest start, so no gap at or after
        // `now` precedes it. Back-to-back service extends the newest
        // window in place, so steady contention keeps the list at one
        // entry instead of one per transaction.
        let fast = match self.windows.back() {
            None => {
                self.windows.push_back((now, now + occupancy));
                return now + occupancy;
            }
            Some(&(s, e)) if now >= s => {
                let start = now.max(e);
                self.contention_cycles += start - now;
                if start == e {
                    self.windows.back_mut().expect("nonempty").1 = start + occupancy;
                } else {
                    self.windows.push_back((start, start + occupancy));
                }
                Some(start + occupancy)
            }
            _ => None,
        };
        if let Some(done) = fast {
            self.prune();
            return done;
        }
        // Gap-list slow path: a time-skewed request earlier than the
        // newest window scans for the earliest gap that fits.
        let mut start = now;
        let mut insert_at = 0;
        for (idx, &(s, e)) in self.windows.iter().enumerate() {
            if e <= start {
                insert_at = idx + 1;
                continue;
            }
            if s >= start + occupancy {
                insert_at = idx;
                break; // fits in the gap before this window
            }
            start = start.max(e);
            insert_at = idx + 1;
        }
        self.contention_cycles += start - now;
        self.windows.insert(insert_at, (start, start + occupancy));
        self.prune();
        start + occupancy
    }

    /// Drop windows too old to receive an out-of-order request (the
    /// engine's time skew is far below [`WINDOW_HORIZON`]).
    fn prune(&mut self) {
        if let Some(&(_, newest_end)) = self.windows.back() {
            while let Some(&(_, e)) = self.windows.front() {
                if e + WINDOW_HORIZON < newest_end {
                    self.windows.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// When the resource next becomes free (end of the last reserved
    /// window).
    pub fn free_at(&self) -> Cycle {
        self.windows.back().map_or(0, |&(_, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, CpuId(2));
        q.schedule(10, CpuId(0));
        q.schedule(20, CpuId(1));
        assert_eq!(q.pop(), Some((10, CpuId(0))));
        assert_eq!(q.pop(), Some((20, CpuId(1))));
        assert_eq!(q.pop(), Some((30, CpuId(2))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, CpuId(9));
        q.schedule(5, CpuId(3));
        q.schedule(5, CpuId(7));
        assert_eq!(q.pop(), Some((5, CpuId(9))));
        assert_eq!(q.pop(), Some((5, CpuId(3))));
        assert_eq!(q.pop(), Some((5, CpuId(7))));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(42, CpuId(0));
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn resource_serializes_overlapping_transactions() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(100, 10), 110);
        // Second transaction arrives while busy: waits until 110.
        assert_eq!(r.acquire(105, 10), 120);
        assert_eq!(r.contention_cycles, 5);
        // Third arrives after the resource freed: no waiting.
        assert_eq!(r.acquire(300, 10), 310);
        assert_eq!(r.contention_cycles, 5);
        assert_eq!(r.transactions, 3);
    }

    #[test]
    fn resource_idle_gap_does_not_backdate() {
        let mut r = Resource::new();
        r.acquire(0, 50);
        assert_eq!(r.free_at(), 50);
        assert_eq!(r.acquire(200, 1), 201);
    }

    #[test]
    fn earlier_request_slots_into_past_gap() {
        let mut r = Resource::new();
        // A time-skewed processor reserves far in the future...
        assert_eq!(r.acquire(1000, 10), 1010);
        // ...an earlier-time request must not queue behind it.
        assert_eq!(r.acquire(100, 10), 110);
        assert_eq!(r.contention_cycles, 0);
        // A request overlapping the future window queues after it.
        assert_eq!(r.acquire(1005, 10), 1020);
        assert_eq!(r.contention_cycles, 5);
    }

    #[test]
    fn gap_between_windows_is_used() {
        let mut r = Resource::new();
        r.acquire(0, 10); // [0,10)
        r.acquire(100, 10); // [100,110)
                            // Fits exactly between the two.
        assert_eq!(r.acquire(20, 30), 50);
        // Does not fit before [100,110): 60..160 overlaps -> after.
        assert_eq!(r.acquire(60, 60), 170);
    }

    #[test]
    fn zero_occupancy_is_free() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(5, 0), 5);
        assert_eq!(r.free_at(), 0);
    }

    #[test]
    fn zero_occupancy_while_busy_does_not_queue() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(0, 100), 100);
        // A zero-cycle transaction completes immediately even while the
        // resource is mid-window, records no window, but is counted.
        assert_eq!(r.acquire(50, 0), 50);
        assert_eq!(r.transactions, 2);
        assert_eq!(r.contention_cycles, 0);
        assert_eq!(r.free_at(), 100);
    }

    #[test]
    fn out_of_order_requests_slot_into_gaps() {
        let mut r = Resource::new();
        r.acquire(100, 10); // [100,110)
        r.acquire(200, 10); // [200,210)
                            // A skewed request earlier than everything sits in front.
        assert_eq!(r.acquire(50, 10), 60);
        assert_eq!(r.contention_cycles, 0);
        // One that cannot fit in [60,100) takes the next gap that can
        // hold it: after [100,110).
        assert_eq!(r.acquire(55, 50), 160);
        assert_eq!(r.contention_cycles, 55);
        assert_eq!(r.free_at(), 210);
    }

    #[test]
    fn coalesced_contention_chain_matches_scan_semantics() {
        let mut r = Resource::new();
        // Overlapping arrivals serialize back-to-back exactly as the
        // original gap scan would have placed them.
        assert_eq!(r.acquire(0, 10), 10);
        assert_eq!(r.acquire(3, 10), 20);
        assert_eq!(r.acquire(7, 10), 30);
        assert_eq!(r.contention_cycles, 7 + 13);
        assert_eq!(r.free_at(), 30);
        // The chain occupies [0,30): an earlier-time request overlapping
        // it queues at the end, not inside.
        assert_eq!(r.acquire(1, 5), 35);
    }

    #[test]
    fn window_at_horizon_boundary_is_kept() {
        let mut r = Resource::new();
        r.acquire(0, 10); // [0,10)
                          // Newest end = WINDOW_HORIZON + 10: 10 + HORIZON < HORIZON + 10
                          // is false, so the old window survives exactly at the boundary.
        r.acquire(WINDOW_HORIZON + 9, 1);
        // A request at time 0 still sees [0,10) occupied: a 5-cycle job
        // must wait for the gap after it.
        assert_eq!(r.acquire(0, 5), 15);
    }

    #[test]
    fn window_past_horizon_boundary_is_pruned() {
        let mut r = Resource::new();
        r.acquire(0, 10); // [0,10)
                          // Newest end = WINDOW_HORIZON + 30 > 10 + HORIZON: pruned.
        r.acquire(WINDOW_HORIZON + 20, 10);
        // The ancient window is gone, so an ancient request starts
        // immediately where [0,10) used to be.
        assert_eq!(r.acquire(0, 5), 5);
    }
}
