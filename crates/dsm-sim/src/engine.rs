//! Deterministic discrete-event core.
//!
//! The simulator advances a single global clock measured in CPU cycles. The
//! only event kind is "wake processor P at cycle T": all memory-system state
//! changes happen synchronously while a processor executes, and contention
//! is modelled with per-resource occupancy windows ([`Resource`]). Events at
//! equal times are ordered by insertion sequence, making every simulation
//! bit-reproducible.

use crate::address::CpuId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in CPU cycles.
pub type Cycle = u64;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Ev {
    time: Cycle,
    seq: u64,
    cpu: CpuId,
}

/// Min-heap of processor wake events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Ev>>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `cpu` to wake at `time`.
    pub fn schedule(&mut self, time: Cycle, cpu: CpuId) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Ev { time, seq, cpu }));
    }

    /// Remove and return the earliest event as `(time, cpu)`.
    pub fn pop(&mut self) -> Option<(Cycle, CpuId)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.cpu))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Export the pending events as `(time, seq, cpu)` sorted by
    /// `(time, seq)` plus the next sequence stamp — the queue-neutral
    /// form shared with [`DomainQueues::export`], so a snapshot taken
    /// from either queue kind restores into either.
    pub fn export(&self) -> (Vec<(Cycle, u64, CpuId)>, u64) {
        let mut evs: Vec<_> = self
            .heap
            .iter()
            .map(|Reverse(e)| (e.time, e.seq, e.cpu))
            .collect();
        evs.sort_unstable();
        (evs, self.seq)
    }

    /// Rebuild a queue from an exported event list. Sequence stamps are
    /// preserved, so pop order is exactly the exporter's.
    pub fn import(events: &[(Cycle, u64, CpuId)], next_seq: u64) -> Self {
        EventQueue {
            heap: events
                .iter()
                .map(|&(time, seq, cpu)| Reverse(Ev { time, seq, cpu }))
                .collect(),
            seq: next_seq,
        }
    }
}

/// Per-CMP event queues for the conservative PDES layer (`crate::pdes`).
///
/// The machine's natural time-domain partition is the CMP node: its cores
/// and L1s interact every cycle, but nodes only interact through the
/// network and directories. `DomainQueues` keeps one min-heap per domain
/// while preserving the *global* `(time, seq, cpu)` order of
/// [`EventQueue`]: a single shared sequence counter stamps every
/// `schedule` call, so popping the minimum across domains yields exactly
/// the event the flat queue would have yielded. A wake scheduled for a
/// CPU in another domain (a boundary crossing — e.g. an invalidation
/// completing remotely) simply lands in the *target* CPU's domain heap
/// and keeps its global sequence stamp, so handoff ordering is the same
/// as in the serial engine.
///
/// The per-domain fronts are what the parallel driver needs that the flat
/// queue cannot give it: which domains have work inside the current
/// lookahead window ([`DomainQueues::domains_within`]).
#[derive(Debug)]
pub struct DomainQueues {
    heaps: Vec<BinaryHeap<Reverse<Ev>>>,
    cpus_per_domain: usize,
    seq: u64,
    len: usize,
}

impl DomainQueues {
    /// Empty queues for `num_domains` domains of `cpus_per_domain` CPUs
    /// each (CPU `c` belongs to domain `c / cpus_per_domain`).
    pub fn new(num_domains: usize, cpus_per_domain: usize) -> Self {
        assert!(num_domains > 0, "need at least one domain");
        assert!(cpus_per_domain > 0, "need at least one cpu per domain");
        DomainQueues {
            heaps: (0..num_domains).map(|_| BinaryHeap::new()).collect(),
            cpus_per_domain,
            seq: 0,
            len: 0,
        }
    }

    /// The domain that owns `cpu`.
    pub fn domain_of(&self, cpu: CpuId) -> usize {
        (cpu.0 / self.cpus_per_domain).min(self.heaps.len() - 1)
    }

    /// Number of domains.
    pub fn num_domains(&self) -> usize {
        self.heaps.len()
    }

    /// Schedule `cpu` to wake at `time`. The sequence stamp is global
    /// across domains, so merged pop order matches [`EventQueue`].
    pub fn schedule(&mut self, time: Cycle, cpu: CpuId) {
        let seq = self.seq;
        self.seq += 1;
        let d = self.domain_of(cpu);
        self.heaps[d].push(Reverse(Ev { time, seq, cpu }));
        self.len += 1;
    }

    /// Remove and return the globally earliest event as `(time, cpu)`,
    /// breaking time ties by the global sequence stamp — identical to
    /// [`EventQueue::pop`] over the same schedule history.
    pub fn pop(&mut self) -> Option<(Cycle, CpuId)> {
        let best = self
            .heaps
            .iter()
            .enumerate()
            .filter_map(|(d, h)| h.peek().map(|Reverse(e)| (*e, d)))
            .min()?;
        self.len -= 1;
        self.heaps[best.1].pop().map(|Reverse(e)| (e.time, e.cpu))
    }

    /// Time of the globally earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heaps
            .iter()
            .filter_map(|h| h.peek().map(|Reverse(e)| e.time))
            .min()
    }

    /// Time of domain `d`'s earliest pending event, if any.
    pub fn domain_peek_time(&self, d: usize) -> Option<Cycle> {
        self.heaps[d].peek().map(|Reverse(e)| e.time)
    }

    /// Domain `d`'s earliest pending event as `(time, cpu)`, if any —
    /// the front a PDES scout inspects without disturbing the queue.
    pub fn domain_front(&self, d: usize) -> Option<(Cycle, CpuId)> {
        self.heaps[d].peek().map(|Reverse(e)| (e.time, e.cpu))
    }

    /// Domains whose earliest event lies within `lookahead` cycles of the
    /// global frontier — the conservative admission set for one parallel
    /// window. With `lookahead == 0` this degrades to lockstep: only
    /// domains with events at exactly the frontier time are admitted,
    /// which always includes the frontier domain itself, so progress is
    /// guaranteed (no deadlock), just without overlap.
    pub fn domains_within(&self, lookahead: Cycle) -> Vec<usize> {
        let Some(front) = self.peek_time() else {
            return Vec::new();
        };
        let horizon = front.saturating_add(lookahead);
        (0..self.heaps.len())
            .filter(|&d| self.domain_peek_time(d).is_some_and(|t| t <= horizon))
            .collect()
    }

    /// Allocation-free count of [`domains_within`] — the per-pop hot
    /// path only needs the admitted-domain *count*; the materialized
    /// list is built lazily for the sampled scouted windows.
    ///
    /// [`domains_within`]: DomainQueues::domains_within
    pub fn count_within(&self, lookahead: Cycle) -> usize {
        let Some(front) = self.peek_time() else {
            return 0;
        };
        let horizon = front.saturating_add(lookahead);
        (0..self.heaps.len())
            .filter(|&d| self.domain_peek_time(d).is_some_and(|t| t <= horizon))
            .count()
    }

    /// Number of pending events across all domains.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending in any domain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Export the pending events in the queue-neutral form shared with
    /// [`EventQueue::export`]: `(time, seq, cpu)` sorted by `(time, seq)`
    /// plus the next global sequence stamp. The domain partition is
    /// deliberately *not* part of the export — a snapshot restores into
    /// any worker-count's queue layout.
    pub fn export(&self) -> (Vec<(Cycle, u64, CpuId)>, u64) {
        let mut evs: Vec<_> = self
            .heaps
            .iter()
            .flat_map(|h| h.iter().map(|Reverse(e)| (e.time, e.seq, e.cpu)))
            .collect();
        evs.sort_unstable();
        (evs, self.seq)
    }

    /// Rebuild domain queues from an exported event list, re-partitioning
    /// by this instance's domain layout. Global sequence stamps are
    /// preserved, so merged pop order is exactly the exporter's.
    pub fn import(
        events: &[(Cycle, u64, CpuId)],
        next_seq: u64,
        num_domains: usize,
        cpus_per_domain: usize,
    ) -> Self {
        let mut q = DomainQueues::new(num_domains, cpus_per_domain);
        for &(time, seq, cpu) in events {
            let d = q.domain_of(cpu);
            q.heaps[d].push(Reverse(Ev { time, seq, cpu }));
            q.len += 1;
        }
        q.seq = next_seq;
        q
    }
}

/// A serially reusable hardware resource (bus, NI port, memory controller).
///
/// Transactions acquire the resource for an *occupancy* window; a
/// transaction arriving while the resource is busy queues until a gap is
/// free. Occupied windows are kept as an interval list rather than a single
/// `busy_until` watermark because the event loop allows a bounded amount of
/// time skew between processors (a processor may execute slightly past the
/// next pending event): a request issued at an *earlier* simulated time
/// must be able to slot into a gap before windows already reserved at later
/// times, or skew would masquerade as contention.
#[derive(Debug, Clone, Default)]
pub struct Resource {
    /// Reserved service windows `(start, end)`, sorted by start.
    windows: std::collections::VecDeque<(Cycle, Cycle)>,
    /// Total cycles transactions spent waiting for this resource.
    pub contention_cycles: u64,
    /// Number of transactions served.
    pub transactions: u64,
}

/// Windows ending this far before the newest reservation can no longer
/// receive out-of-order requests (the engine's time skew is far smaller)
/// and are pruned.
const WINDOW_HORIZON: Cycle = 1 << 20;

impl Resource {
    /// A free resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Occupy the resource for `occupancy` cycles starting no earlier than
    /// `now`. Returns the cycle at which service *completes*.
    pub fn acquire(&mut self, now: Cycle, occupancy: Cycle) -> Cycle {
        self.transactions += 1;
        if occupancy == 0 {
            return now;
        }
        // Watermark fast path: a request landing at or after the newest
        // window's start can only be served at max(now, free_at) -- every
        // earlier window ends by the newest start, so no gap at or after
        // `now` precedes it. Back-to-back service extends the newest
        // window in place, so steady contention keeps the list at one
        // entry instead of one per transaction.
        let fast = match self.windows.back() {
            None => {
                self.windows.push_back((now, now + occupancy));
                return now + occupancy;
            }
            Some(&(s, e)) if now >= s => {
                let start = now.max(e);
                self.contention_cycles += start - now;
                if start == e {
                    self.windows.back_mut().expect("nonempty").1 = start + occupancy;
                } else {
                    self.windows.push_back((start, start + occupancy));
                }
                Some(start + occupancy)
            }
            _ => None,
        };
        if let Some(done) = fast {
            self.prune();
            return done;
        }
        // Gap-list slow path: a time-skewed request earlier than the
        // newest window scans for the earliest gap that fits.
        let mut start = now;
        let mut insert_at = 0;
        for (idx, &(s, e)) in self.windows.iter().enumerate() {
            if e <= start {
                insert_at = idx + 1;
                continue;
            }
            if s >= start + occupancy {
                insert_at = idx;
                break; // fits in the gap before this window
            }
            start = start.max(e);
            insert_at = idx + 1;
        }
        self.contention_cycles += start - now;
        self.windows.insert(insert_at, (start, start + occupancy));
        self.prune();
        start + occupancy
    }

    /// Drop windows too old to receive an out-of-order request (the
    /// engine's time skew is far below [`WINDOW_HORIZON`]).
    fn prune(&mut self) {
        if let Some(&(_, newest_end)) = self.windows.back() {
            while let Some(&(_, e)) = self.windows.front() {
                if e + WINDOW_HORIZON < newest_end {
                    self.windows.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// When the resource next becomes free (end of the last reserved
    /// window).
    pub fn free_at(&self) -> Cycle {
        self.windows.back().map_or(0, |&(_, e)| e)
    }

    /// Append the time-normalized behavioral state to a memo digest:
    /// live reservation windows (ending after `now`) as signed offsets
    /// from `now`. Windows are disjoint and sorted by start, so expired
    /// windows form a prefix the gap scan steps over without effect on
    /// any request issued at or after `now` — they are excluded.
    pub fn memo_digest(&self, now: Cycle, out: &mut Vec<u64>) {
        let live = self.windows.iter().filter(|&&(_, e)| e > now);
        out.push(live.clone().count() as u64);
        for &(s, e) in self.windows.iter().filter(|&&(_, e)| e > now) {
            out.push((s as i64).wrapping_sub(now as i64) as u64);
            out.push(e - now);
        }
    }

    /// Advance live windows (ending after `now`) by `delta` — the memo
    /// jump. Expired windows stay where they are (behaviorally inert for
    /// requests at or after `now`), preserving the sorted order.
    pub fn memo_shift(&mut self, now: Cycle, delta: Cycle) {
        for w in self.windows.iter_mut() {
            if w.1 > now {
                w.0 += delta;
                w.1 += delta;
            }
        }
    }

    /// Append the monotone counters to a memo counter vector.
    pub fn memo_counters(&self, out: &mut Vec<u64>) {
        out.push(self.contention_cycles);
        out.push(self.transactions);
    }

    /// Add `k` copies of the deltas at `delta[*idx..]`, advancing `*idx`.
    pub fn memo_apply(&mut self, delta: &[u64], idx: &mut usize, k: u64) {
        self.contention_cycles += delta[*idx] * k;
        *idx += 1;
        self.transactions += delta[*idx] * k;
        *idx += 1;
    }

    /// Serialize the reserved windows and counters.
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.deque(&self.windows, |w, &(s, e)| {
            w.u64(s);
            w.u64(e);
        });
        w.u64(self.contention_cycles);
        w.u64(self.transactions);
    }

    /// Restore a resource written by [`Resource::snapshot`].
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        Ok(Resource {
            windows: r.deque(|r| Ok((r.u64()?, r.u64()?)))?,
            contention_cycles: r.u64()?,
            transactions: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, CpuId(2));
        q.schedule(10, CpuId(0));
        q.schedule(20, CpuId(1));
        assert_eq!(q.pop(), Some((10, CpuId(0))));
        assert_eq!(q.pop(), Some((20, CpuId(1))));
        assert_eq!(q.pop(), Some((30, CpuId(2))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, CpuId(9));
        q.schedule(5, CpuId(3));
        q.schedule(5, CpuId(7));
        assert_eq!(q.pop(), Some((5, CpuId(9))));
        assert_eq!(q.pop(), Some((5, CpuId(3))));
        assert_eq!(q.pop(), Some((5, CpuId(7))));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(42, CpuId(0));
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn domain_split_preserves_global_tie_break() {
        // Same schedule history into a flat queue and a 4-domain split
        // (2 cpus per domain): pop sequences must be identical, including
        // same-time ties across *different* domains, which only the
        // global sequence stamp can order.
        let mut flat = EventQueue::new();
        let mut dom = DomainQueues::new(4, 2);
        let schedule = [
            (5, CpuId(6)), // domain 3
            (5, CpuId(0)), // domain 0 — same time, later seq
            (3, CpuId(2)), // domain 1
            (5, CpuId(1)), // domain 0
            (3, CpuId(7)), // domain 3 — ties with (3, cpu 2) across domains
            (9, CpuId(4)), // domain 2
        ];
        for &(t, c) in &schedule {
            flat.schedule(t, c);
            dom.schedule(t, c);
        }
        assert_eq!(dom.len(), flat.len());
        while let Some(want) = flat.pop() {
            assert_eq!(dom.pop(), Some(want));
        }
        assert_eq!(dom.pop(), None);
        assert!(dom.is_empty());
    }

    #[test]
    fn boundary_handoff_lands_in_target_domain_in_order() {
        // A boundary crossing is a wake scheduled for a CPU owned by a
        // different domain: it must join the *target* domain's heap and
        // keep its global sequence stamp, so it pops exactly where the
        // flat queue would have put it.
        let mut dom = DomainQueues::new(2, 2);
        dom.schedule(10, CpuId(3)); // domain 1's own work
        dom.schedule(10, CpuId(2)); // "sent" to domain 1, later seq
        dom.schedule(10, CpuId(0)); // domain 0, latest seq
        assert_eq!(dom.domain_of(CpuId(2)), 1);
        assert_eq!(dom.domain_peek_time(1), Some(10));
        assert_eq!(dom.pop(), Some((10, CpuId(3))));
        assert_eq!(dom.pop(), Some((10, CpuId(2))));
        assert_eq!(dom.pop(), Some((10, CpuId(0))));
    }

    #[test]
    fn zero_lookahead_admits_frontier_only_but_always_progresses() {
        let mut dom = DomainQueues::new(3, 1);
        dom.schedule(100, CpuId(0));
        dom.schedule(100, CpuId(2));
        dom.schedule(150, CpuId(1));
        // Lockstep: only domains at exactly the frontier time.
        assert_eq!(dom.domains_within(0), vec![0, 2]);
        // A real lookahead admits the near-future domain too.
        assert_eq!(dom.domains_within(50), vec![0, 1, 2]);
        assert_eq!(dom.domains_within(49), vec![0, 2]);
        // Zero lookahead never yields an empty admission set while events
        // remain: the frontier domain is always admissible.
        while !dom.is_empty() {
            assert!(!dom.domains_within(0).is_empty());
            dom.pop();
        }
        assert!(dom.domains_within(0).is_empty());
    }

    #[test]
    fn resource_serializes_overlapping_transactions() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(100, 10), 110);
        // Second transaction arrives while busy: waits until 110.
        assert_eq!(r.acquire(105, 10), 120);
        assert_eq!(r.contention_cycles, 5);
        // Third arrives after the resource freed: no waiting.
        assert_eq!(r.acquire(300, 10), 310);
        assert_eq!(r.contention_cycles, 5);
        assert_eq!(r.transactions, 3);
    }

    #[test]
    fn resource_idle_gap_does_not_backdate() {
        let mut r = Resource::new();
        r.acquire(0, 50);
        assert_eq!(r.free_at(), 50);
        assert_eq!(r.acquire(200, 1), 201);
    }

    #[test]
    fn earlier_request_slots_into_past_gap() {
        let mut r = Resource::new();
        // A time-skewed processor reserves far in the future...
        assert_eq!(r.acquire(1000, 10), 1010);
        // ...an earlier-time request must not queue behind it.
        assert_eq!(r.acquire(100, 10), 110);
        assert_eq!(r.contention_cycles, 0);
        // A request overlapping the future window queues after it.
        assert_eq!(r.acquire(1005, 10), 1020);
        assert_eq!(r.contention_cycles, 5);
    }

    #[test]
    fn gap_between_windows_is_used() {
        let mut r = Resource::new();
        r.acquire(0, 10); // [0,10)
        r.acquire(100, 10); // [100,110)
                            // Fits exactly between the two.
        assert_eq!(r.acquire(20, 30), 50);
        // Does not fit before [100,110): 60..160 overlaps -> after.
        assert_eq!(r.acquire(60, 60), 170);
    }

    #[test]
    fn zero_occupancy_is_free() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(5, 0), 5);
        assert_eq!(r.free_at(), 0);
    }

    #[test]
    fn zero_occupancy_while_busy_does_not_queue() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(0, 100), 100);
        // A zero-cycle transaction completes immediately even while the
        // resource is mid-window, records no window, but is counted.
        assert_eq!(r.acquire(50, 0), 50);
        assert_eq!(r.transactions, 2);
        assert_eq!(r.contention_cycles, 0);
        assert_eq!(r.free_at(), 100);
    }

    #[test]
    fn out_of_order_requests_slot_into_gaps() {
        let mut r = Resource::new();
        r.acquire(100, 10); // [100,110)
        r.acquire(200, 10); // [200,210)
                            // A skewed request earlier than everything sits in front.
        assert_eq!(r.acquire(50, 10), 60);
        assert_eq!(r.contention_cycles, 0);
        // One that cannot fit in [60,100) takes the next gap that can
        // hold it: after [100,110).
        assert_eq!(r.acquire(55, 50), 160);
        assert_eq!(r.contention_cycles, 55);
        assert_eq!(r.free_at(), 210);
    }

    #[test]
    fn coalesced_contention_chain_matches_scan_semantics() {
        let mut r = Resource::new();
        // Overlapping arrivals serialize back-to-back exactly as the
        // original gap scan would have placed them.
        assert_eq!(r.acquire(0, 10), 10);
        assert_eq!(r.acquire(3, 10), 20);
        assert_eq!(r.acquire(7, 10), 30);
        assert_eq!(r.contention_cycles, 7 + 13);
        assert_eq!(r.free_at(), 30);
        // The chain occupies [0,30): an earlier-time request overlapping
        // it queues at the end, not inside.
        assert_eq!(r.acquire(1, 5), 35);
    }

    #[test]
    fn window_at_horizon_boundary_is_kept() {
        let mut r = Resource::new();
        r.acquire(0, 10); // [0,10)
                          // Newest end = WINDOW_HORIZON + 10: 10 + HORIZON < HORIZON + 10
                          // is false, so the old window survives exactly at the boundary.
        r.acquire(WINDOW_HORIZON + 9, 1);
        // A request at time 0 still sees [0,10) occupied: a 5-cycle job
        // must wait for the gap after it.
        assert_eq!(r.acquire(0, 5), 15);
    }

    #[test]
    fn window_past_horizon_boundary_is_pruned() {
        let mut r = Resource::new();
        r.acquire(0, 10); // [0,10)
                          // Newest end = WINDOW_HORIZON + 30 > 10 + HORIZON: pruned.
        r.acquire(WINDOW_HORIZON + 20, 10);
        // The ancient window is gone, so an ancient request starts
        // immediately where [0,10) used to be.
        assert_eq!(r.acquire(0, 5), 5);
    }
}
