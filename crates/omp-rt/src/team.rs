//! Team layout: mapping OpenMP threads onto simulated processors.
//!
//! The Omni-style runtime creates its process pool once at program start
//! ("process creation happens at the start of the program, and processes
//! are kept in an idle pool"). How pool members map onto the machine
//! depends on the execution mode:
//!
//! * **single** — thread *t* runs on processor 0 of CMP *t*; processor 1
//!   of every CMP idles;
//! * **double** — thread *t* runs on processor *t mod 2* of CMP *t/2*;
//! * **slipstream** — thread *t*'s R-stream runs on processor 0 of CMP
//!   *t*, and a shadow A-stream with the *same thread id* runs on
//!   processor 1 (the paper: "the same ID should be returned to processes
//!   sharing a CMP. The thread count used by internal library should be
//!   half of the total available").

use crate::mode::ExecMode;
use dsm_sim::{CmpId, CpuId, MachineConfig};

/// Role of a processor in a laid-out team.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuAssignment {
    /// Runs OpenMP thread `tid` (solo or R-stream).
    Worker {
        /// The OpenMP thread id.
        tid: u64,
    },
    /// Runs the A-stream shadowing OpenMP thread `tid`.
    AStream {
        /// The shadowed thread id.
        tid: u64,
    },
    /// Not used in this mode.
    Idle,
}

/// The static thread↔processor mapping for a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TeamLayout {
    /// Execution mode.
    pub mode: ExecMode,
    /// Number of CMP nodes.
    pub num_cmps: usize,
    /// Processors per CMP (2 for the paper's machine).
    pub cpus_per_cmp: usize,
    /// Optional cap on team size (`OMP_NUM_THREADS`).
    pub max_threads: Option<u64>,
}

impl TeamLayout {
    /// Lay out a team on `cfg` in `mode`.
    pub fn new(cfg: &MachineConfig, mode: ExecMode) -> Self {
        assert!(
            mode != ExecMode::Slipstream || cfg.cpus_per_cmp >= 2,
            "slipstream mode needs dual-processor CMPs"
        );
        TeamLayout {
            mode,
            num_cmps: cfg.num_cmps,
            cpus_per_cmp: cfg.cpus_per_cmp,
            max_threads: None,
        }
    }

    /// Apply an `OMP_NUM_THREADS`-style cap.
    pub fn with_max_threads(mut self, max: Option<u64>) -> Self {
        self.max_threads = max;
        self
    }

    /// The team size visible to `omp_get_num_threads()`.
    pub fn team_size(&self) -> u64 {
        let natural = match self.mode {
            ExecMode::Single | ExecMode::Slipstream => self.num_cmps as u64,
            ExecMode::Double => (self.num_cmps * self.cpus_per_cmp.min(2)) as u64,
        };
        match self.max_threads {
            Some(m) => natural.min(m).max(1),
            None => natural,
        }
    }

    /// Processor running OpenMP thread `tid` (the R-stream in slipstream
    /// mode).
    ///
    /// Double mode *scatters* consecutive thread ids across nodes (thread
    /// t → CMP t mod N), modelling OS process placement that makes no
    /// adjacency promises — consecutive-slab threads do not share an L2,
    /// which matches the double-mode behaviour the paper measured under
    /// IRIX.
    pub fn worker_cpu(&self, tid: u64) -> CpuId {
        debug_assert!(tid < self.team_size());
        match self.mode {
            ExecMode::Single | ExecMode::Slipstream => CmpId(tid as usize).cpu_index(self, 0),
            ExecMode::Double => {
                let cmp = tid as usize % self.num_cmps;
                let local = tid as usize / self.num_cmps;
                CmpId(cmp).cpu_index(self, local)
            }
        }
    }

    /// Processor running the A-stream shadow of thread `tid`
    /// (slipstream mode only).
    pub fn astream_cpu(&self, tid: u64) -> Option<CpuId> {
        match self.mode {
            ExecMode::Slipstream => Some(CmpId(tid as usize).cpu_index(self, 1)),
            _ => None,
        }
    }

    /// What a given processor does in this layout.
    pub fn assignment_of(&self, cpu: CpuId) -> CpuAssignment {
        let cmp = cpu.0 / self.cpus_per_cmp;
        let local = cpu.0 % self.cpus_per_cmp;
        let ts = self.team_size();
        match self.mode {
            ExecMode::Single => {
                if local == 0 && (cmp as u64) < ts {
                    CpuAssignment::Worker { tid: cmp as u64 }
                } else {
                    CpuAssignment::Idle
                }
            }
            ExecMode::Double => {
                let tid = (local * self.num_cmps + cmp) as u64;
                if local < 2 && tid < ts {
                    CpuAssignment::Worker { tid }
                } else {
                    CpuAssignment::Idle
                }
            }
            ExecMode::Slipstream => {
                if (cmp as u64) >= ts || local > 1 {
                    CpuAssignment::Idle
                } else if local == 0 {
                    CpuAssignment::Worker { tid: cmp as u64 }
                } else {
                    CpuAssignment::AStream { tid: cmp as u64 }
                }
            }
        }
    }

    /// The master's processor (thread 0).
    pub fn master_cpu(&self) -> CpuId {
        self.worker_cpu(0)
    }

    /// All processors that execute something in this layout.
    pub fn active_cpus(&self) -> Vec<CpuId> {
        let total = self.num_cmps * self.cpus_per_cmp;
        (0..total)
            .map(CpuId)
            .filter(|c| self.assignment_of(*c) != CpuAssignment::Idle)
            .collect()
    }
}

/// Helper: processor `local` of a CMP under a layout (avoids needing the
/// full MachineConfig).
trait CmpExt {
    fn cpu_index(self, layout: &TeamLayout, local: usize) -> CpuId;
}

impl CmpExt for CmpId {
    fn cpu_index(self, layout: &TeamLayout, local: usize) -> CpuId {
        CpuId(self.0 * layout.cpus_per_cmp + local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::paper()
    }

    #[test]
    fn single_mode_uses_one_cpu_per_cmp() {
        let l = TeamLayout::new(&cfg(), ExecMode::Single);
        assert_eq!(l.team_size(), 16);
        assert_eq!(l.worker_cpu(0), CpuId(0));
        assert_eq!(l.worker_cpu(5), CpuId(10));
        assert_eq!(l.assignment_of(CpuId(10)), CpuAssignment::Worker { tid: 5 });
        assert_eq!(l.assignment_of(CpuId(11)), CpuAssignment::Idle);
        assert_eq!(l.active_cpus().len(), 16);
        assert_eq!(l.astream_cpu(3), None);
    }

    #[test]
    fn double_mode_scatters_threads_across_nodes() {
        let l = TeamLayout::new(&cfg(), ExecMode::Double);
        assert_eq!(l.team_size(), 32);
        // Consecutive thread ids land on different CMPs (OS-style
        // placement with no adjacency promises).
        assert_eq!(l.worker_cpu(0), CpuId(0));
        assert_eq!(l.worker_cpu(1), CpuId(2));
        assert_eq!(l.worker_cpu(16), CpuId(1));
        assert_eq!(l.worker_cpu(17), CpuId(3));
        assert_eq!(l.assignment_of(CpuId(0)), CpuAssignment::Worker { tid: 0 });
        assert_eq!(l.assignment_of(CpuId(1)), CpuAssignment::Worker { tid: 16 });
        assert_eq!(
            l.assignment_of(CpuId(31)),
            CpuAssignment::Worker { tid: 31 }
        );
        // Round-trip: every thread's cpu maps back to it.
        for tid in 0..32 {
            assert_eq!(
                l.assignment_of(l.worker_cpu(tid)),
                CpuAssignment::Worker { tid }
            );
        }
        assert_eq!(l.active_cpus().len(), 32);
    }

    #[test]
    fn slipstream_pairs_share_a_cmp_and_tid() {
        let l = TeamLayout::new(&cfg(), ExecMode::Slipstream);
        assert_eq!(l.team_size(), 16, "thread count is half the processors");
        for tid in 0..16 {
            let r = l.worker_cpu(tid);
            let a = l.astream_cpu(tid).unwrap();
            assert_eq!(r.0 / 2, a.0 / 2, "pair shares a CMP");
            assert_eq!(l.assignment_of(r), CpuAssignment::Worker { tid });
            assert_eq!(l.assignment_of(a), CpuAssignment::AStream { tid });
        }
        assert_eq!(l.active_cpus().len(), 32);
    }

    #[test]
    fn max_threads_caps_team() {
        let l = TeamLayout::new(&cfg(), ExecMode::Single).with_max_threads(Some(4));
        assert_eq!(l.team_size(), 4);
        assert_eq!(l.assignment_of(CpuId(8)), CpuAssignment::Idle);
        assert_eq!(l.active_cpus().len(), 4);
    }

    #[test]
    fn master_is_thread_zero() {
        for mode in [ExecMode::Single, ExecMode::Double, ExecMode::Slipstream] {
            let l = TeamLayout::new(&cfg(), mode);
            assert_eq!(l.master_cpu(), CpuId(0));
        }
    }

    #[test]
    #[should_panic(expected = "dual-processor")]
    fn slipstream_needs_two_cpus_per_cmp() {
        let mut c = cfg();
        c.cpus_per_cmp = 1;
        TeamLayout::new(&c, ExecMode::Slipstream);
    }
}
