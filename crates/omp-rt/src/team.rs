//! Team layout: mapping OpenMP threads onto simulated processors.
//!
//! The Omni-style runtime creates its process pool once at program start
//! ("process creation happens at the start of the program, and processes
//! are kept in an idle pool"). How pool members map onto the machine
//! depends on the execution mode:
//!
//! * **single** — thread *t* runs on processor 0 of CMP *t*; processor 1
//!   of every CMP idles;
//! * **double** — thread *t* runs on processor *t mod 2* of CMP *t/2*;
//! * **slipstream** — thread *t*'s R-stream runs on processor 0 of CMP
//!   *t*, and a shadow A-stream with the *same thread id* runs on
//!   processor 1 (the paper: "the same ID should be returned to processes
//!   sharing a CMP. The thread count used by internal library should be
//!   half of the total available").

use crate::mode::ExecMode;
use dsm_sim::{CmpId, CpuId, MachineConfig};

/// Role of a processor in a laid-out team.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuAssignment {
    /// Runs OpenMP thread `tid` (solo or R-stream).
    Worker {
        /// The OpenMP thread id.
        tid: u64,
    },
    /// Runs the A-stream shadowing OpenMP thread `tid`.
    AStream {
        /// The shadowed thread id.
        tid: u64,
    },
    /// Not used in this mode.
    Idle,
}

/// The static thread↔processor mapping for a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TeamLayout {
    /// Execution mode.
    pub mode: ExecMode,
    /// Number of CMP nodes.
    pub num_cmps: usize,
    /// Processors per CMP (2 for the paper's machine).
    pub cpus_per_cmp: usize,
    /// Optional cap on team size (`OMP_NUM_THREADS`).
    pub max_threads: Option<u64>,
}

impl TeamLayout {
    /// Lay out a team on `cfg` in `mode`.
    pub fn new(cfg: &MachineConfig, mode: ExecMode) -> Self {
        assert!(
            mode != ExecMode::Slipstream || cfg.cpus_per_cmp >= 2,
            "slipstream mode needs dual-processor CMPs"
        );
        TeamLayout {
            mode,
            num_cmps: cfg.num_cmps,
            cpus_per_cmp: cfg.cpus_per_cmp,
            max_threads: None,
        }
    }

    /// Apply an `OMP_NUM_THREADS`-style cap.
    pub fn with_max_threads(mut self, max: Option<u64>) -> Self {
        self.max_threads = max;
        self
    }

    /// The team size visible to `omp_get_num_threads()`.
    pub fn team_size(&self) -> u64 {
        let natural = match self.mode {
            ExecMode::Single | ExecMode::Slipstream => self.num_cmps as u64,
            ExecMode::Double => (self.num_cmps * self.cpus_per_cmp.min(2)) as u64,
        };
        match self.max_threads {
            Some(m) => natural.min(m).max(1),
            None => natural,
        }
    }

    /// Processor running OpenMP thread `tid` (the R-stream in slipstream
    /// mode).
    ///
    /// Double mode *scatters* consecutive thread ids across nodes (thread
    /// t → CMP t mod N), modelling OS process placement that makes no
    /// adjacency promises — consecutive-slab threads do not share an L2,
    /// which matches the double-mode behaviour the paper measured under
    /// IRIX.
    pub fn worker_cpu(&self, tid: u64) -> CpuId {
        debug_assert!(tid < self.team_size());
        match self.mode {
            ExecMode::Single | ExecMode::Slipstream => CmpId(tid as usize).cpu_index(self, 0),
            ExecMode::Double => {
                let cmp = tid as usize % self.num_cmps;
                let local = tid as usize / self.num_cmps;
                CmpId(cmp).cpu_index(self, local)
            }
        }
    }

    /// Processor running the A-stream shadow of thread `tid`
    /// (slipstream mode only).
    pub fn astream_cpu(&self, tid: u64) -> Option<CpuId> {
        match self.mode {
            ExecMode::Slipstream => Some(CmpId(tid as usize).cpu_index(self, 1)),
            _ => None,
        }
    }

    /// What a given processor does in this layout.
    pub fn assignment_of(&self, cpu: CpuId) -> CpuAssignment {
        let cmp = cpu.0 / self.cpus_per_cmp;
        let local = cpu.0 % self.cpus_per_cmp;
        let ts = self.team_size();
        match self.mode {
            ExecMode::Single => {
                if local == 0 && (cmp as u64) < ts {
                    CpuAssignment::Worker { tid: cmp as u64 }
                } else {
                    CpuAssignment::Idle
                }
            }
            ExecMode::Double => {
                let tid = (local * self.num_cmps + cmp) as u64;
                if local < 2 && tid < ts {
                    CpuAssignment::Worker { tid }
                } else {
                    CpuAssignment::Idle
                }
            }
            ExecMode::Slipstream => {
                if (cmp as u64) >= ts || local > 1 {
                    CpuAssignment::Idle
                } else if local == 0 {
                    CpuAssignment::Worker { tid: cmp as u64 }
                } else {
                    CpuAssignment::AStream { tid: cmp as u64 }
                }
            }
        }
    }

    /// The master's processor (thread 0).
    pub fn master_cpu(&self) -> CpuId {
        self.worker_cpu(0)
    }

    /// All processors that execute something in this layout.
    pub fn active_cpus(&self) -> Vec<CpuId> {
        let total = self.num_cmps * self.cpus_per_cmp;
        (0..total)
            .map(CpuId)
            .filter(|c| self.assignment_of(*c) != CpuAssignment::Idle)
            .collect()
    }
}

/// State of the team-level circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Normal operation: regions resolve slipstream as directed.
    #[default]
    Closed,
    /// Tripped: every region runs with slipstream forced off until the
    /// hold (measured in region completions) elapses.
    Open,
    /// Hold elapsed: the next region probes with slipstream re-enabled;
    /// its outcome decides between re-closing and re-tripping.
    HalfOpen,
}

impl BreakerState {
    /// Short label for reports and traces.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Tuning knobs of the team circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Unhealthy-pair fraction, in thousandths of the team, at or above
    /// which the breaker trips. `0` disables the breaker entirely.
    pub trip_threshold_milli: u32,
    /// Base number of regions the breaker stays open before half-opening.
    pub hold_regions: u32,
    /// Cap on the left-shift applied to `hold_regions` on consecutive
    /// re-trips (exponential hold growth).
    pub max_hold_shift: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            // Half the team unhealthy trips the breaker.
            trip_threshold_milli: 500,
            hold_regions: 2,
            max_hold_shift: 4,
        }
    }
}

impl BreakerConfig {
    /// A breaker that never trips.
    pub fn disabled() -> Self {
        BreakerConfig {
            trip_threshold_milli: 0,
            ..Self::default()
        }
    }

    /// True when the breaker can trip at all.
    pub fn enabled(&self) -> bool {
        self.trip_threshold_milli > 0
    }
}

/// Team-level circuit breaker over pair health.
///
/// Evaluated once per region boundary with the number of unhealthy pairs
/// (the caller decides which health states count — the execution layer
/// counts `Suspect` and `Demoted`, leaving `Probation` out so pairs on
/// their recovery path do not hold the breaker open). When the unhealthy
/// fraction reaches `trip_threshold_milli`, the breaker opens and the
/// caller must force slipstream off for whole regions until the hold
/// expires; the breaker then half-opens for one probe region and either
/// re-closes or re-trips with a doubled hold.
#[derive(Debug, Clone)]
pub struct TeamBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Regions left before an open breaker half-opens.
    hold_left: u32,
    /// Consecutive trips without an intervening re-close (drives the
    /// exponential hold growth).
    consecutive_trips: u32,
    /// Total trips over the run.
    pub trips: u64,
    /// Total successful re-closures (half-open probe passed).
    pub reclosures: u64,
}

impl TeamBreaker {
    /// New breaker in the closed state.
    pub fn new(cfg: BreakerConfig) -> Self {
        TeamBreaker {
            cfg,
            state: BreakerState::Closed,
            hold_left: 0,
            consecutive_trips: 0,
            trips: 0,
            reclosures: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// True when the caller must force slipstream off for this region.
    pub fn forces_off(&self) -> bool {
        self.state == BreakerState::Open
    }

    fn over_threshold(&self, unhealthy: usize, team: usize) -> bool {
        self.cfg.enabled()
            && team > 0
            && (unhealthy as u64) * 1000 >= u64::from(self.cfg.trip_threshold_milli) * team as u64
            && unhealthy > 0
    }

    fn trip(&mut self) {
        let shift = self.consecutive_trips.min(self.cfg.max_hold_shift);
        self.hold_left = self.cfg.hold_regions.max(1) << shift;
        self.consecutive_trips += 1;
        self.trips += 1;
        self.state = BreakerState::Open;
    }

    /// Advance the breaker at a region boundary given the unhealthy-pair
    /// count, returning the state the upcoming region runs under.
    pub fn on_region_boundary(&mut self, unhealthy: usize, team: usize) -> BreakerState {
        match self.state {
            BreakerState::Closed => {
                if self.over_threshold(unhealthy, team) {
                    self.trip();
                }
            }
            BreakerState::Open => {
                self.hold_left = self.hold_left.saturating_sub(1);
                if self.hold_left == 0 {
                    self.state = BreakerState::HalfOpen;
                }
            }
            BreakerState::HalfOpen => {
                if self.over_threshold(unhealthy, team) {
                    // Probe failed: re-trip with a grown hold.
                    self.trip();
                } else {
                    self.state = BreakerState::Closed;
                    self.consecutive_trips = 0;
                    self.reclosures += 1;
                }
            }
        }
        self.state
    }

    /// Serialize the breaker's dynamic state (config is rebuilt from the
    /// run options on restore).
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.u8(match self.state {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        });
        w.u32(self.hold_left);
        w.u32(self.consecutive_trips);
        w.u64(self.trips);
        w.u64(self.reclosures);
    }

    /// Overwrite this breaker's dynamic state from a snapshot written by
    /// [`TeamBreaker::snapshot`] (keeping this instance's config).
    pub fn restore_into(&mut self, r: &mut snap::Reader) -> Result<(), snap::SnapError> {
        self.state = match r.u8()? {
            0 => BreakerState::Closed,
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            _ => {
                return Err(snap::SnapError::Corrupt {
                    what: "BreakerState",
                })
            }
        };
        self.hold_left = r.u32()?;
        self.consecutive_trips = r.u32()?;
        self.trips = r.u64()?;
        self.reclosures = r.u64()?;
        Ok(())
    }
}

/// Helper: processor `local` of a CMP under a layout (avoids needing the
/// full MachineConfig).
trait CmpExt {
    fn cpu_index(self, layout: &TeamLayout, local: usize) -> CpuId;
}

impl CmpExt for CmpId {
    fn cpu_index(self, layout: &TeamLayout, local: usize) -> CpuId {
        CpuId(self.0 * layout.cpus_per_cmp + local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::paper()
    }

    #[test]
    fn single_mode_uses_one_cpu_per_cmp() {
        let l = TeamLayout::new(&cfg(), ExecMode::Single);
        assert_eq!(l.team_size(), 16);
        assert_eq!(l.worker_cpu(0), CpuId(0));
        assert_eq!(l.worker_cpu(5), CpuId(10));
        assert_eq!(l.assignment_of(CpuId(10)), CpuAssignment::Worker { tid: 5 });
        assert_eq!(l.assignment_of(CpuId(11)), CpuAssignment::Idle);
        assert_eq!(l.active_cpus().len(), 16);
        assert_eq!(l.astream_cpu(3), None);
    }

    #[test]
    fn double_mode_scatters_threads_across_nodes() {
        let l = TeamLayout::new(&cfg(), ExecMode::Double);
        assert_eq!(l.team_size(), 32);
        // Consecutive thread ids land on different CMPs (OS-style
        // placement with no adjacency promises).
        assert_eq!(l.worker_cpu(0), CpuId(0));
        assert_eq!(l.worker_cpu(1), CpuId(2));
        assert_eq!(l.worker_cpu(16), CpuId(1));
        assert_eq!(l.worker_cpu(17), CpuId(3));
        assert_eq!(l.assignment_of(CpuId(0)), CpuAssignment::Worker { tid: 0 });
        assert_eq!(l.assignment_of(CpuId(1)), CpuAssignment::Worker { tid: 16 });
        assert_eq!(
            l.assignment_of(CpuId(31)),
            CpuAssignment::Worker { tid: 31 }
        );
        // Round-trip: every thread's cpu maps back to it.
        for tid in 0..32 {
            assert_eq!(
                l.assignment_of(l.worker_cpu(tid)),
                CpuAssignment::Worker { tid }
            );
        }
        assert_eq!(l.active_cpus().len(), 32);
    }

    #[test]
    fn slipstream_pairs_share_a_cmp_and_tid() {
        let l = TeamLayout::new(&cfg(), ExecMode::Slipstream);
        assert_eq!(l.team_size(), 16, "thread count is half the processors");
        for tid in 0..16 {
            let r = l.worker_cpu(tid);
            let a = l.astream_cpu(tid).unwrap();
            assert_eq!(r.0 / 2, a.0 / 2, "pair shares a CMP");
            assert_eq!(l.assignment_of(r), CpuAssignment::Worker { tid });
            assert_eq!(l.assignment_of(a), CpuAssignment::AStream { tid });
        }
        assert_eq!(l.active_cpus().len(), 32);
    }

    #[test]
    fn max_threads_caps_team() {
        let l = TeamLayout::new(&cfg(), ExecMode::Single).with_max_threads(Some(4));
        assert_eq!(l.team_size(), 4);
        assert_eq!(l.assignment_of(CpuId(8)), CpuAssignment::Idle);
        assert_eq!(l.active_cpus().len(), 4);
    }

    #[test]
    fn master_is_thread_zero() {
        for mode in [ExecMode::Single, ExecMode::Double, ExecMode::Slipstream] {
            let l = TeamLayout::new(&cfg(), mode);
            assert_eq!(l.master_cpu(), CpuId(0));
        }
    }

    #[test]
    #[should_panic(expected = "dual-processor")]
    fn slipstream_needs_two_cpus_per_cmp() {
        let mut c = cfg();
        c.cpus_per_cmp = 1;
        TeamLayout::new(&c, ExecMode::Slipstream);
    }

    #[test]
    fn breaker_trips_at_threshold_and_holds() {
        let mut b = TeamBreaker::new(BreakerConfig {
            trip_threshold_milli: 500,
            hold_regions: 2,
            max_hold_shift: 4,
        });
        // 3 of 8 unhealthy: below half, stays closed.
        assert_eq!(b.on_region_boundary(3, 8), BreakerState::Closed);
        assert!(!b.forces_off());
        // 4 of 8: exactly at the threshold, trips.
        assert_eq!(b.on_region_boundary(4, 8), BreakerState::Open);
        assert!(b.forces_off());
        assert_eq!(b.trips, 1);
        // Hold of 2 regions: one more open boundary, then half-open.
        assert_eq!(b.on_region_boundary(0, 8), BreakerState::Open);
        assert_eq!(b.on_region_boundary(0, 8), BreakerState::HalfOpen);
        assert!(!b.forces_off(), "half-open probes with slipstream on");
        // Probe sees a healthy team: re-close.
        assert_eq!(b.on_region_boundary(0, 8), BreakerState::Closed);
        assert_eq!(b.reclosures, 1);
    }

    #[test]
    fn breaker_retrip_doubles_the_hold() {
        let mut b = TeamBreaker::new(BreakerConfig {
            trip_threshold_milli: 500,
            hold_regions: 1,
            max_hold_shift: 2,
        });
        assert_eq!(b.on_region_boundary(2, 2), BreakerState::Open);
        assert_eq!(b.on_region_boundary(2, 2), BreakerState::HalfOpen);
        // Probe still unhealthy: hold doubles to 2.
        assert_eq!(b.on_region_boundary(2, 2), BreakerState::Open);
        assert_eq!(b.trips, 2);
        assert_eq!(b.on_region_boundary(0, 2), BreakerState::Open);
        assert_eq!(b.on_region_boundary(0, 2), BreakerState::HalfOpen);
        // Re-trip again: hold 4, capped by max_hold_shift at 1 << 2.
        assert_eq!(b.on_region_boundary(2, 2), BreakerState::Open);
        for _ in 0..3 {
            assert_eq!(b.on_region_boundary(0, 2), BreakerState::Open);
        }
        assert_eq!(b.on_region_boundary(0, 2), BreakerState::HalfOpen);
        assert_eq!(b.on_region_boundary(0, 2), BreakerState::Closed);
        // A fresh trip after re-closing starts from the base hold again.
        assert_eq!(b.on_region_boundary(2, 2), BreakerState::Open);
        assert_eq!(b.on_region_boundary(0, 2), BreakerState::HalfOpen);
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let mut b = TeamBreaker::new(BreakerConfig::disabled());
        for _ in 0..10 {
            assert_eq!(b.on_region_boundary(8, 8), BreakerState::Closed);
        }
        assert_eq!(b.trips, 0);
        assert!(!BreakerConfig::disabled().enabled());
        assert!(BreakerConfig::default().enabled());
    }

    #[test]
    fn breaker_ignores_empty_teams_and_zero_unhealthy() {
        let mut b = TeamBreaker::new(BreakerConfig::default());
        assert_eq!(b.on_region_boundary(0, 0), BreakerState::Closed);
        assert_eq!(b.on_region_boundary(0, 4), BreakerState::Closed);
        assert_eq!(BreakerState::HalfOpen.label(), "half-open");
    }
}
