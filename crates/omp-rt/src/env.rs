//! Runtime environment control.
//!
//! OpenMP exposes runtime knobs through environment variables; the paper
//! adds `OMP_SLIPSTREAM` in the same spirit so that "a single executable
//! image can be used with and without slipstream support". This module
//! holds the parsed environment ([`RuntimeEnv`]) and can populate it from
//! real process environment variables or from explicit strings (the way
//! the benchmark harness drives it).

use omp_ir::directive::{parse_omp_slipstream_env, DirectiveError, EnvSlipstream};
use omp_ir::node::{ScheduleKind, ScheduleSpec};

/// Parsed runtime environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeEnv {
    /// `OMP_NUM_THREADS`: requested team size (`None` = one per processor,
    /// adjusted for the execution mode).
    pub num_threads: Option<u64>,
    /// `OMP_SCHEDULE`: the schedule used by `schedule(runtime)` loops.
    pub schedule: ScheduleSpec,
    /// `OMP_SLIPSTREAM`: runtime slipstream control (None = variable
    /// unset; slipstream directives with `RUNTIME_SYNC` then fall back to
    /// the implementation default).
    pub slipstream: Option<EnvSlipstream>,
}

impl Default for RuntimeEnv {
    fn default() -> Self {
        RuntimeEnv {
            num_threads: None,
            schedule: ScheduleSpec {
                kind: ScheduleKind::Static,
                chunk: None,
            },
            slipstream: None,
        }
    }
}

impl RuntimeEnv {
    /// Parse `OMP_SCHEDULE`-style text (`"dynamic,4"`, `"static"`, ...).
    pub fn parse_schedule(value: &str) -> Result<ScheduleSpec, DirectiveError> {
        let mut parts = value.split(',').map(str::trim);
        let kind = match parts
            .next()
            .unwrap_or_default()
            .to_ascii_lowercase()
            .as_str()
        {
            "static" => ScheduleKind::Static,
            "dynamic" => ScheduleKind::Dynamic,
            "guided" => ScheduleKind::Guided,
            "affinity" => ScheduleKind::Affinity,
            other => return Err(DirectiveError(format!("bad OMP_SCHEDULE kind {other:?}"))),
        };
        let chunk = match parts.next() {
            None | Some("") => None,
            Some(n) => {
                let v: u64 = n
                    .parse()
                    .map_err(|_| DirectiveError(format!("bad OMP_SCHEDULE chunk {n:?}")))?;
                if v == 0 {
                    return Err(DirectiveError("OMP_SCHEDULE chunk must be positive".into()));
                }
                Some(v)
            }
        };
        if parts.next().is_some() {
            return Err(DirectiveError("trailing OMP_SCHEDULE fields".into()));
        }
        Ok(ScheduleSpec { kind, chunk })
    }

    /// Apply one variable by name. Unknown names are ignored (they belong
    /// to other subsystems), bad values are errors.
    pub fn set_var(&mut self, name: &str, value: &str) -> Result<(), DirectiveError> {
        match name {
            "OMP_NUM_THREADS" => {
                let v: u64 = value
                    .trim()
                    .parse()
                    .map_err(|_| DirectiveError(format!("bad OMP_NUM_THREADS {value:?}")))?;
                if v == 0 {
                    return Err(DirectiveError("OMP_NUM_THREADS must be positive".into()));
                }
                self.num_threads = Some(v);
            }
            "OMP_SCHEDULE" => self.schedule = Self::parse_schedule(value)?,
            "OMP_SLIPSTREAM" => self.slipstream = Some(parse_omp_slipstream_env(value)?),
            _ => {}
        }
        Ok(())
    }

    /// Build from the real process environment (used by example binaries).
    pub fn from_process_env() -> Self {
        let mut env = RuntimeEnv::default();
        for name in ["OMP_NUM_THREADS", "OMP_SCHEDULE", "OMP_SLIPSTREAM"] {
            if let Ok(v) = std::env::var(name) {
                // Ignore malformed real-environment values rather than
                // failing startup, mirroring libgomp behaviour.
                let _ = env.set_var(name, &v);
            }
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_ir::node::SlipSyncType;

    #[test]
    fn defaults() {
        let e = RuntimeEnv::default();
        assert_eq!(e.num_threads, None);
        assert_eq!(e.schedule.kind, ScheduleKind::Static);
        assert_eq!(e.slipstream, None);
    }

    #[test]
    fn schedule_parsing() {
        assert_eq!(
            RuntimeEnv::parse_schedule("dynamic,4").unwrap(),
            ScheduleSpec::dynamic(4)
        );
        assert_eq!(
            RuntimeEnv::parse_schedule("GUIDED").unwrap().kind,
            ScheduleKind::Guided
        );
        assert!(RuntimeEnv::parse_schedule("dynamic,0").is_err());
        assert!(RuntimeEnv::parse_schedule("fancy").is_err());
        assert!(RuntimeEnv::parse_schedule("static,2,3").is_err());
    }

    #[test]
    fn set_var_routes_values() {
        let mut e = RuntimeEnv::default();
        e.set_var("OMP_NUM_THREADS", "16").unwrap();
        e.set_var("OMP_SCHEDULE", "guided, 8").unwrap();
        e.set_var("OMP_SLIPSTREAM", "LOCAL_SYNC,1").unwrap();
        e.set_var("PATH", "/usr/bin").unwrap(); // ignored
        assert_eq!(e.num_threads, Some(16));
        assert_eq!(e.schedule.chunk, Some(8));
        assert_eq!(
            e.slipstream,
            Some(EnvSlipstream::Enabled {
                sync: SlipSyncType::LocalSync,
                tokens: 1
            })
        );
    }

    #[test]
    fn invalid_values_error() {
        let mut e = RuntimeEnv::default();
        assert!(e.set_var("OMP_NUM_THREADS", "0").is_err());
        assert!(e.set_var("OMP_NUM_THREADS", "lots").is_err());
        assert!(e.set_var("OMP_SLIPSTREAM", "SIDEWAYS").is_err());
    }
}
