//! Per-region bookkeeping for single/sections constructs and dynamic
//! loops.
//!
//! Within one execution of a parallel region, every *dynamic encounter* of
//! a `single`, `sections`, or scheduler-driven `for` needs a shared state
//! object that all team members agree on. Because the programs are SPMD
//! (all threads execute the same construct sequence — validated IR
//! guarantees this), each thread can identify a construct instance by its
//! per-thread encounter index; the arena materializes state on first
//! touch.

use crate::schedule::{AffinityState, DynLoopState};

/// Claim state of one `single` instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SingleState {
    claimed: bool,
}

impl SingleState {
    /// Attempt to claim execution; true for the first caller only.
    pub fn claim(&mut self) -> bool {
        !std::mem::replace(&mut self.claimed, true)
    }
}

/// Assignment state of one `sections` instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SectionsState {
    next: usize,
}

impl SectionsState {
    /// Claim the next unexecuted section of `total`; `None` when all are
    /// claimed.
    pub fn claim(&mut self, total: usize) -> Option<usize> {
        if self.next < total {
            let s = self.next;
            self.next += 1;
            Some(s)
        } else {
            None
        }
    }
}

/// Shared construct state for one region execution.
#[derive(Debug, Default)]
pub struct ConstructArena {
    singles: Vec<SingleState>,
    sections: Vec<SectionsState>,
    dyn_loops: Vec<DynLoopState>,
    affinity_loops: Vec<AffinityState>,
}

fn get_or_grow<T: Default>(v: &mut Vec<T>, idx: usize) -> &mut T {
    if idx >= v.len() {
        v.resize_with(idx + 1, T::default);
    }
    &mut v[idx]
}

impl ConstructArena {
    /// Fresh arena (start of a region execution).
    pub fn new() -> Self {
        Self::default()
    }

    /// State of the `idx`-th `single` encounter in this region.
    pub fn single(&mut self, idx: usize) -> &mut SingleState {
        get_or_grow(&mut self.singles, idx)
    }

    /// State of the `idx`-th `sections` encounter.
    pub fn sections(&mut self, idx: usize) -> &mut SectionsState {
        get_or_grow(&mut self.sections, idx)
    }

    /// State of the `idx`-th scheduler-driven loop encounter.
    pub fn dyn_loop(&mut self, idx: usize) -> &mut DynLoopState {
        get_or_grow(&mut self.dyn_loops, idx)
    }

    /// State of the `idx`-th affinity-scheduled loop encounter.
    pub fn affinity_loop(&mut self, idx: usize) -> &mut AffinityState {
        get_or_grow(&mut self.affinity_loops, idx)
    }

    /// Total chunk grabs across all dynamic and affinity loops
    /// (diagnostic).
    pub fn total_grabs(&self) -> u64 {
        self.dyn_loops.iter().map(|d| d.grabs).sum::<u64>()
            + self.affinity_loops.iter().map(|a| a.grabs).sum::<u64>()
    }

    /// Total steals across all affinity loops (diagnostic).
    pub fn total_steals(&self) -> u64 {
        self.affinity_loops.iter().map(|a| a.steals).sum()
    }

    /// Serialize the arena (all construct instances touched so far).
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.seq(&self.singles, |w, s| w.bool(s.claimed));
        w.seq(&self.sections, |w, s| w.usize(s.next));
        w.seq(&self.dyn_loops, |w, d| d.snapshot(w));
        w.seq(&self.affinity_loops, |w, a| a.snapshot(w));
    }

    /// Restore an arena written by [`ConstructArena::snapshot`].
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        Ok(ConstructArena {
            singles: r.seq(|r| Ok(SingleState { claimed: r.bool()? }))?,
            sections: r.seq(|r| Ok(SectionsState { next: r.usize()? }))?,
            dyn_loops: r.seq(DynLoopState::restore)?,
            affinity_loops: r.seq(AffinityState::restore)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ResolvedSchedule;

    #[test]
    fn single_claims_once() {
        let mut a = ConstructArena::new();
        assert!(a.single(0).claim());
        assert!(!a.single(0).claim());
        assert!(a.single(1).claim(), "distinct encounters are independent");
    }

    #[test]
    fn sections_assign_each_once() {
        let mut a = ConstructArena::new();
        let s = a.sections(0);
        assert_eq!(s.claim(3), Some(0));
        assert_eq!(s.claim(3), Some(1));
        assert_eq!(s.claim(3), Some(2));
        assert_eq!(s.claim(3), None);
    }

    #[test]
    fn dyn_loops_are_per_encounter() {
        let mut a = ConstructArena::new();
        let c0 = a
            .dyn_loop(0)
            .next_chunk(ResolvedSchedule::Dynamic(5), 0, 10, 1, 2)
            .unwrap();
        assert_eq!((c0.lo, c0.hi), (0, 5));
        // A different encounter starts fresh.
        let c1 = a
            .dyn_loop(1)
            .next_chunk(ResolvedSchedule::Dynamic(5), 0, 10, 1, 2)
            .unwrap();
        assert_eq!((c1.lo, c1.hi), (0, 5));
        assert_eq!(a.total_grabs(), 2);
    }

    #[test]
    fn arena_grows_sparsely() {
        let mut a = ConstructArena::new();
        assert!(a.single(5).claim());
        assert!(a.single(2).claim());
        assert!(!a.single(5).claim());
    }
}
