//! Execution modes and per-region slipstream resolution.
//!
//! The paper's evaluation compares three ways to use a machine of N
//! dual-processor CMPs on a fixed problem:
//!
//! * **single** — one task per CMP, the second processor idles (N tasks);
//! * **double** — two tasks per CMP (2N tasks);
//! * **slipstream** — one task per CMP executed redundantly by an
//!   R-stream/A-stream pair.
//!
//! Within slipstream mode, each parallel region resolves its A–R
//! synchronization from (a) the region's own `SLIPSTREAM` clause, which
//! takes precedence, (b) the prevailing program-global setting, and (c)
//! the `OMP_SLIPSTREAM` environment variable when the clause says
//! `RUNTIME_SYNC` (paper Section 3.3).

use omp_ir::directive::EnvSlipstream;
use omp_ir::node::{SlipSyncType, SlipstreamClause};

/// How the machine's processors are used for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// One task per CMP; the sibling processor idles.
    Single,
    /// Two independent tasks per CMP.
    Double,
    /// One task per CMP, run redundantly as an A–R pair.
    Slipstream,
}

impl ExecMode {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::Single => "single",
            ExecMode::Double => "double",
            ExecMode::Slipstream => "slipstream",
        }
    }
}

/// Fully resolved A–R synchronization for one parallel region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlipSync {
    /// True: tokens inserted when the R-stream *exits* the barrier
    /// (global). False: inserted at barrier *entry* (local).
    pub global: bool,
    /// Initial token count.
    pub tokens: u64,
}

impl SlipSync {
    /// The paper's "zero-token global" (G0) synchronization.
    pub const G0: SlipSync = SlipSync {
        global: true,
        tokens: 0,
    };
    /// The paper's "one-token local" (L1) synchronization.
    pub const L1: SlipSync = SlipSync {
        global: false,
        tokens: 1,
    };

    /// Short label: `G<k>` or `L<k>`.
    pub fn label(self) -> String {
        format!("{}{}", if self.global { "G" } else { "L" }, self.tokens)
    }
}

/// Runtime operating mode of one A–R pair.
///
/// A run starts every pair in [`PairMode::Slipstream`]. When a pair
/// exhausts its divergence-recovery budget (see the execution layer's
/// `RecoveryPolicy`), the runtime demotes it to
/// [`PairMode::DegradedSingle`]: the R-stream keeps executing the program
/// normally, while the A-stream stays in lockstep through region dispatch
/// and the region-end barrier but skips region bodies — exactly the
/// behaviour of a region with slipstream resolved [`RegionSlip::Off`],
/// applied to one pair instead of the whole team. Demotion is no longer
/// one-way: the pair-health controller (execution layer `HealthPolicy`)
/// may re-promote a demoted pair back to [`PairMode::Slipstream`] on
/// probation at a region boundary after a cool-down, because the A-stream
/// is reseeded from the R-stream's architectural state at every region
/// start and therefore needs no separate re-validation. A pair whose
/// probation attempts are exhausted stays demoted for good.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairMode {
    /// Healthy: the A-stream runs ahead and the pair cooperates.
    Slipstream,
    /// Demoted after exceeding the recovery budget: the pair runs its task
    /// single-stream; the A processor idles through region bodies.
    DegradedSingle,
}

impl PairMode {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PairMode::Slipstream => "slipstream",
            PairMode::DegradedSingle => "degraded-single",
        }
    }

    /// True once the pair has been demoted.
    pub fn is_demoted(self) -> bool {
        matches!(self, PairMode::DegradedSingle)
    }
}

/// Health of one A–R pair as judged by the pair-health controller.
///
/// The controller advances this state machine at region boundaries:
///
/// ```text
///   Healthy <-> Suspect -> Demoted -> Probation -> Healthy
///                  ^                      |
///                  +---- (any recovery) --+--> Demoted (cool-down doubles)
/// ```
///
/// * **Healthy** — recoveries are rare; the pair runs full slipstream.
/// * **Suspect** — the recovery-rate EWMA (or the prefetch-pollution
///   signal, when enabled) crossed its threshold; still in slipstream but
///   counted as unhealthy by the team circuit breaker.
/// * **Demoted** — retry budget exhausted; the pair runs degraded-single
///   while a cool-down measured in region completions elapses.
/// * **Probation** — cool-down expired and a re-promotion attempt is in
///   flight: back in slipstream, but one recovery re-demotes the pair and
///   doubles the next cool-down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HealthState {
    /// Operating normally in slipstream mode.
    #[default]
    Healthy,
    /// Elevated recovery rate or polluted prefetches; under observation.
    Suspect,
    /// Out of retry budget; running degraded-single during cool-down.
    Demoted,
    /// Re-promoted on trial; one recovery sends it back to Demoted.
    Probation,
}

/// All health states in display order.
pub const HEALTH_STATES: [HealthState; 4] = [
    HealthState::Healthy,
    HealthState::Suspect,
    HealthState::Demoted,
    HealthState::Probation,
];

impl HealthState {
    /// Short label for reports and traces.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Demoted => "demoted",
            HealthState::Probation => "probation",
        }
    }

    /// Stable ordinal used by counter tracks in trace exports.
    pub fn ordinal(self) -> u32 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Suspect => 1,
            HealthState::Demoted => 2,
            HealthState::Probation => 3,
        }
    }

    /// True for states the team circuit breaker counts against its
    /// unhealthy-fraction threshold.
    pub fn is_unhealthy(self) -> bool {
        !matches!(self, HealthState::Healthy)
    }

    /// Legal controller transitions (used by the chaos-soak invariant
    /// checker to validate emitted health-transition events).
    pub fn can_transition_to(self, next: HealthState) -> bool {
        use HealthState::*;
        matches!(
            (self, next),
            (Healthy, Suspect)        // EWMA / pollution threshold crossed
                | (Suspect, Healthy)  // clean regions cleared the suspicion
                | (Healthy, Demoted)  // budget blown inside one window
                | (Suspect, Demoted)  // budget blown while under watch
                | (Probation, Demoted) // probation failed
                | (Demoted, Probation) // cool-down expired, trial re-entry
                | (Probation, Healthy) // probation served clean
        )
    }
}

/// Outcome of resolving a region's slipstream behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionSlip {
    /// Slipstream disabled for this region: A-streams idle through it.
    Off,
    /// Slipstream active with the given synchronization.
    On(SlipSync),
}

/// Resolve the slipstream behaviour of one region.
///
/// * `region` — the clause on the region's own directive, if any;
/// * `global` — the prevailing serial-part `SLIPSTREAM` setting, if any;
/// * `env` — parsed `OMP_SLIPSTREAM`, if set.
///
/// Precedence: region clause > global setting > implementation default
/// (global sync, zero tokens). A clause of `RUNTIME_SYNC` defers to the
/// environment; if the environment is unset, the implementation default
/// applies. The environment value `NONE` disables slipstream regardless of
/// clauses (it is the run-time kill switch).
///
/// ```
/// use omp_rt::mode::{resolve_region, RegionSlip, SlipSync};
///
/// // No directives anywhere: the implementation default is G0.
/// assert_eq!(resolve_region(None, None, None), RegionSlip::On(SlipSync::G0));
///
/// // OMP_SLIPSTREAM=NONE kills slipstream for every region.
/// use omp_ir::directive::EnvSlipstream;
/// assert_eq!(
///     resolve_region(None, None, Some(EnvSlipstream::Disabled)),
///     RegionSlip::Off
/// );
/// ```
pub fn resolve_region(
    region: Option<SlipstreamClause>,
    global: Option<SlipstreamClause>,
    env: Option<EnvSlipstream>,
) -> RegionSlip {
    if env == Some(EnvSlipstream::Disabled) {
        return RegionSlip::Off;
    }
    // With no directive anywhere, the environment variable alone controls
    // slipstream behaviour (that is its purpose: runtime selection without
    // recompiling); programs with directives defer to the environment only
    // through RUNTIME_SYNC.
    let clause = match region.or(global) {
        Some(c) => c,
        None => match env {
            Some(EnvSlipstream::Enabled { sync, tokens }) => SlipstreamClause { sync, tokens },
            _ => SlipstreamClause::default(),
        },
    };
    match clause.sync {
        SlipSyncType::None => RegionSlip::Off,
        SlipSyncType::GlobalSync => RegionSlip::On(SlipSync {
            global: true,
            tokens: clause.tokens,
        }),
        SlipSyncType::LocalSync => RegionSlip::On(SlipSync {
            global: false,
            tokens: clause.tokens,
        }),
        SlipSyncType::RuntimeSync => match env {
            Some(EnvSlipstream::Enabled { sync, tokens }) => match sync {
                SlipSyncType::LocalSync => RegionSlip::On(SlipSync {
                    global: false,
                    tokens,
                }),
                // GlobalSync and anything else concrete resolve to global.
                _ => RegionSlip::On(SlipSync {
                    global: true,
                    tokens,
                }),
            },
            Some(EnvSlipstream::Disabled) => RegionSlip::Off,
            // Unset environment: implementation default (the paper's
            // implementation assumes global synchronization).
            None => RegionSlip::On(SlipSync {
                global: true,
                tokens: clause.tokens,
            }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(sync: SlipSyncType, tokens: u64) -> SlipstreamClause {
        SlipstreamClause { sync, tokens }
    }

    #[test]
    fn default_is_global_zero() {
        assert_eq!(
            resolve_region(None, None, None),
            RegionSlip::On(SlipSync::G0)
        );
    }

    #[test]
    fn region_clause_beats_global_setting() {
        let r = resolve_region(
            Some(clause(SlipSyncType::LocalSync, 1)),
            Some(clause(SlipSyncType::GlobalSync, 5)),
            None,
        );
        assert_eq!(r, RegionSlip::On(SlipSync::L1));
    }

    #[test]
    fn global_setting_applies_when_region_is_silent() {
        let r = resolve_region(None, Some(clause(SlipSyncType::LocalSync, 2)), None);
        assert_eq!(
            r,
            RegionSlip::On(SlipSync {
                global: false,
                tokens: 2
            })
        );
    }

    #[test]
    fn runtime_sync_defers_to_environment() {
        let r = resolve_region(
            Some(clause(SlipSyncType::RuntimeSync, 9)),
            None,
            Some(EnvSlipstream::Enabled {
                sync: SlipSyncType::LocalSync,
                tokens: 1,
            }),
        );
        assert_eq!(r, RegionSlip::On(SlipSync::L1));
        // Environment tokens win over the clause's when deferring.
        let r = resolve_region(
            Some(clause(SlipSyncType::RuntimeSync, 9)),
            None,
            Some(EnvSlipstream::Enabled {
                sync: SlipSyncType::GlobalSync,
                tokens: 3,
            }),
        );
        assert_eq!(
            r,
            RegionSlip::On(SlipSync {
                global: true,
                tokens: 3
            })
        );
    }

    #[test]
    fn runtime_sync_with_unset_env_uses_default() {
        let r = resolve_region(Some(clause(SlipSyncType::RuntimeSync, 2)), None, None);
        assert_eq!(
            r,
            RegionSlip::On(SlipSync {
                global: true,
                tokens: 2
            })
        );
    }

    #[test]
    fn env_none_is_a_kill_switch() {
        let r = resolve_region(
            Some(clause(SlipSyncType::GlobalSync, 1)),
            Some(clause(SlipSyncType::LocalSync, 1)),
            Some(EnvSlipstream::Disabled),
        );
        assert_eq!(r, RegionSlip::Off);
    }

    #[test]
    fn bare_environment_controls_when_no_directives() {
        let r = resolve_region(
            None,
            None,
            Some(EnvSlipstream::Enabled {
                sync: SlipSyncType::LocalSync,
                tokens: 1,
            }),
        );
        assert_eq!(r, RegionSlip::On(SlipSync::L1));
        let r = resolve_region(None, None, Some(EnvSlipstream::Disabled));
        assert_eq!(r, RegionSlip::Off);
    }

    #[test]
    fn directives_override_bare_environment() {
        // A concrete directive wins over the environment (only
        // RUNTIME_SYNC defers).
        let r = resolve_region(
            Some(clause(SlipSyncType::GlobalSync, 0)),
            None,
            Some(EnvSlipstream::Enabled {
                sync: SlipSyncType::LocalSync,
                tokens: 1,
            }),
        );
        assert_eq!(r, RegionSlip::On(SlipSync::G0));
    }

    #[test]
    fn labels() {
        assert_eq!(SlipSync::G0.label(), "G0");
        assert_eq!(SlipSync::L1.label(), "L1");
        assert_eq!(ExecMode::Slipstream.label(), "slipstream");
    }

    #[test]
    fn pair_mode_demotion_classifies() {
        assert!(!PairMode::Slipstream.is_demoted());
        assert!(PairMode::DegradedSingle.is_demoted());
        assert_eq!(PairMode::DegradedSingle.label(), "degraded-single");
    }

    #[test]
    fn health_state_labels_and_ordinals_are_stable() {
        for (i, st) in HEALTH_STATES.iter().enumerate() {
            assert_eq!(st.ordinal() as usize, i);
        }
        assert_eq!(HealthState::default(), HealthState::Healthy);
        assert_eq!(HealthState::Probation.label(), "probation");
        assert!(!HealthState::Healthy.is_unhealthy());
        assert!(HealthState::Suspect.is_unhealthy());
        assert!(HealthState::Demoted.is_unhealthy());
        assert!(HealthState::Probation.is_unhealthy());
    }

    #[test]
    fn health_transitions_follow_the_state_machine() {
        use HealthState::*;
        // Every legal edge.
        for (a, b) in [
            (Healthy, Suspect),
            (Suspect, Healthy),
            (Healthy, Demoted),
            (Suspect, Demoted),
            (Probation, Demoted),
            (Demoted, Probation),
            (Probation, Healthy),
        ] {
            assert!(a.can_transition_to(b), "{a:?} -> {b:?} should be legal");
        }
        // A demoted pair can only leave through probation, and nothing
        // skips straight from demoted back to healthy or suspect.
        assert!(!Demoted.can_transition_to(Healthy));
        assert!(!Demoted.can_transition_to(Suspect));
        assert!(!Healthy.can_transition_to(Probation));
        assert!(!Suspect.can_transition_to(Probation));
        // Self-loops are not transitions.
        for st in HEALTH_STATES {
            assert!(!st.can_transition_to(st));
        }
    }
}
