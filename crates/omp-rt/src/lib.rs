//! # omp-rt — the OpenMP runtime library layer
//!
//! Modelled on the Omni OpenMP runtime the paper extends: a process pool
//! created at program start, parallel regions dispatched as functions to
//! spinning slaves, worksharing schedules (static computed independently
//! per thread; dynamic/guided serialized through a scheduler lock), and
//! construct bookkeeping. This crate holds the runtime's *logical* state
//! and policy — pure and unit-testable; the cycle-accurate protocol
//! execution on the simulated machine lives in the `slipstream` crate.
//!
//! Slipstream-specific runtime policy also resolves here:
//! [`mode::resolve_region`] implements the directive/environment
//! precedence of paper Section 3.3, and [`team::TeamLayout`] implements
//! the single/double/slipstream processor mappings of Section 5.

#![warn(missing_docs)]

pub mod constructs;
pub mod env;
pub mod mode;
pub mod schedule;
pub mod team;

pub use constructs::{ConstructArena, SectionsState, SingleState};
pub use env::RuntimeEnv;
pub use mode::{resolve_region, ExecMode, HealthState, PairMode, RegionSlip, SlipSync};
pub use schedule::{
    resolve_schedule, static_chunks, AffinityGrab, AffinityState, DynLoopState, ResolvedSchedule,
};
pub use team::{BreakerConfig, BreakerState, CpuAssignment, TeamBreaker, TeamLayout};
