//! Worksharing schedule resolution and dynamic-loop state.
//!
//! Static schedules are pure arithmetic (each thread computes its chunks
//! independently — "scheduling under this model does not involve any
//! additional synchronization", paper Section 3.2.1) and reuse
//! [`omp_ir::wsloop`]. Dynamic and guided schedules serialize through a
//! shared counter protected by the scheduler lock; [`DynLoopState`] is
//! that counter's logical state.

use omp_ir::node::{ScheduleKind, ScheduleSpec};
use omp_ir::wsloop::{self, Chunk};

/// A schedule with all runtime defaults applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedSchedule {
    /// One contiguous block per thread.
    StaticBlock,
    /// Fixed-size chunks dealt round-robin.
    StaticChunked(u64),
    /// First-come chunks of the given size from a shared counter.
    Dynamic(u64),
    /// Decreasing chunks, bounded below by the given minimum.
    Guided(u64),
    /// Affinity scheduling: own static block first (in chunks of the
    /// given size), then steal from the most-loaded thread.
    Affinity(u64),
}

impl ResolvedSchedule {
    /// True when chunk assignment requires shared scheduler state.
    pub fn needs_scheduler(self) -> bool {
        matches!(
            self,
            ResolvedSchedule::Dynamic(_)
                | ResolvedSchedule::Guided(_)
                | ResolvedSchedule::Affinity(_)
        )
    }

    /// True for the affinity extension (per-thread queues + stealing).
    pub fn is_affinity(self) -> bool {
        matches!(self, ResolvedSchedule::Affinity(_))
    }
}

/// Resolve a loop's schedule clause against the environment default.
///
/// * no clause → the compiler default (static block, as in Omni);
/// * `schedule(runtime)` → the `OMP_SCHEDULE` environment value;
/// * missing chunk sizes get the OpenMP defaults (dynamic: 1, guided
///   minimum: 1, static: block).
pub fn resolve_schedule(spec: Option<ScheduleSpec>, env_default: ScheduleSpec) -> ResolvedSchedule {
    let spec = match spec {
        None => ScheduleSpec {
            kind: ScheduleKind::Static,
            chunk: None,
        },
        Some(s) if s.kind == ScheduleKind::Runtime => env_default,
        Some(s) => s,
    };
    match spec.kind {
        ScheduleKind::Static => match spec.chunk {
            None => ResolvedSchedule::StaticBlock,
            Some(c) => ResolvedSchedule::StaticChunked(c),
        },
        ScheduleKind::Dynamic => ResolvedSchedule::Dynamic(spec.chunk.unwrap_or(1)),
        ScheduleKind::Guided => ResolvedSchedule::Guided(spec.chunk.unwrap_or(1)),
        ScheduleKind::Affinity => ResolvedSchedule::Affinity(spec.chunk.unwrap_or(1)),
        // A runtime default of `runtime` is nonsensical; fall back to
        // static.
        ScheduleKind::Runtime => ResolvedSchedule::StaticBlock,
    }
}

/// Shared state of one dynamic/guided loop instance: the index of the
/// first unassigned iteration. Lives behind the scheduler lock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DynLoopState {
    next_iter: u64,
    /// Chunks handed out so far (diagnostic; drives the Fig. 4 scheduling
    /// counters).
    pub grabs: u64,
}

impl DynLoopState {
    /// Fresh loop state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grab the next chunk under `sched` for a loop over
    /// `begin..end` (step `step`) with `nthreads` workers. `None` when the
    /// space is exhausted.
    pub fn next_chunk(
        &mut self,
        sched: ResolvedSchedule,
        begin: i64,
        end: i64,
        step: u64,
        nthreads: u64,
    ) -> Option<Chunk> {
        let r = match sched {
            ResolvedSchedule::Dynamic(c) => {
                wsloop::dynamic_next(begin, end, step, self.next_iter, c)
            }
            ResolvedSchedule::Guided(c) => {
                wsloop::guided_next(begin, end, step, self.next_iter, nthreads, c)
            }
            _ => panic!("next_chunk on a static schedule"),
        };
        if let Some((chunk, next)) = r {
            self.next_iter = next;
            self.grabs += 1;
            Some(chunk)
        } else {
            None
        }
    }

    /// First unassigned iteration index.
    pub fn position(&self) -> u64 {
        self.next_iter
    }

    /// Serialize this loop counter.
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.u64(self.next_iter);
        w.u64(self.grabs);
    }

    /// Restore a loop counter written by [`DynLoopState::snapshot`].
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        Ok(DynLoopState {
            next_iter: r.u64()?,
            grabs: r.u64()?,
        })
    }
}

/// Shared state of one affinity-scheduled loop (the extension the paper
/// cites as [16]): every thread owns the iteration range of its static
/// block and drains it from the front in chunks; a thread whose range is
/// empty steals a chunk from the *tail* of the most-loaded thread's
/// range, preserving the victim's front-of-queue affinity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AffinityState {
    /// Per-thread remaining iteration-index ranges `(next, end)`.
    per_thread: Vec<(u64, u64)>,
    /// Chunks handed out.
    pub grabs: u64,
    /// Chunks that were steals.
    pub steals: u64,
}

/// Outcome of one affinity grab.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffinityGrab {
    /// The iteration-value chunk to execute.
    pub chunk: Chunk,
    /// Which thread's queue supplied it.
    pub victim: u64,
    /// True when `victim != self` (a steal).
    pub stolen: bool,
}

impl AffinityState {
    /// Initialize per-thread ranges for a loop of `n` iterations split
    /// over `nthreads` static blocks.
    pub fn init(n: u64, nthreads: u64) -> Self {
        let per = n.div_ceil(nthreads);
        let per_thread = (0..nthreads)
            .map(|t| ((t * per).min(n), ((t + 1) * per).min(n)))
            .collect();
        AffinityState {
            per_thread,
            grabs: 0,
            steals: 0,
        }
    }

    /// True once `init` ran (the engine initializes lazily on first grab).
    pub fn is_initialized(&self) -> bool {
        !self.per_thread.is_empty()
    }

    /// Iterations remaining in `tid`'s own queue.
    pub fn remaining(&self, tid: u64) -> u64 {
        let (next, end) = self.per_thread[tid as usize];
        end - next
    }

    /// Grab the next chunk for `tid`: own queue first, else steal from
    /// the most-loaded thread. Returns `None` when the whole space is
    /// drained. `begin`/`step` map iteration indices to values.
    pub fn next_chunk(
        &mut self,
        tid: u64,
        chunk: u64,
        begin: i64,
        step: u64,
    ) -> Option<AffinityGrab> {
        debug_assert!(self.is_initialized() && chunk > 0);
        let t = tid as usize;
        let to_values = |lo: u64, hi: u64| Chunk {
            lo: begin + lo as i64 * step as i64,
            hi: begin + hi as i64 * step as i64,
        };
        // Own queue: take from the front.
        let (next, end) = self.per_thread[t];
        if next < end {
            let hi = (next + chunk).min(end);
            self.per_thread[t].0 = hi;
            self.grabs += 1;
            return Some(AffinityGrab {
                chunk: to_values(next, hi),
                victim: tid,
                stolen: false,
            });
        }
        // Steal: from the tail of the most-loaded queue.
        let victim = (0..self.per_thread.len())
            .max_by_key(|&v| self.per_thread[v].1 - self.per_thread[v].0)?;
        let (vnext, vend) = self.per_thread[victim];
        if vnext >= vend {
            return None; // everything drained
        }
        let lo = vend.saturating_sub(chunk).max(vnext);
        self.per_thread[victim].1 = lo;
        self.grabs += 1;
        self.steals += 1;
        Some(AffinityGrab {
            chunk: to_values(lo, vend),
            victim: victim as u64,
            stolen: true,
        })
    }

    /// Serialize the per-thread ranges and counters.
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.seq(&self.per_thread, |w, &(next, end)| {
            w.u64(next);
            w.u64(end);
        });
        w.u64(self.grabs);
        w.u64(self.steals);
    }

    /// Restore state written by [`AffinityState::snapshot`].
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        Ok(AffinityState {
            per_thread: r.seq(|r| Ok((r.u64()?, r.u64()?)))?,
            grabs: r.u64()?,
            steals: r.u64()?,
        })
    }
}

/// Static chunks for one thread (no shared state needed).
pub fn static_chunks(
    sched: ResolvedSchedule,
    begin: i64,
    end: i64,
    step: u64,
    nthreads: u64,
    tid: u64,
) -> Vec<Chunk> {
    match sched {
        ResolvedSchedule::StaticBlock => {
            vec![wsloop::static_block(begin, end, step, nthreads, tid)]
        }
        ResolvedSchedule::StaticChunked(c) => {
            wsloop::static_chunked(begin, end, step, nthreads, tid, c)
        }
        _ => panic!("static_chunks on a dynamic schedule"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_static() -> ScheduleSpec {
        ScheduleSpec {
            kind: ScheduleKind::Static,
            chunk: None,
        }
    }

    #[test]
    fn resolution_defaults() {
        assert_eq!(
            resolve_schedule(None, env_static()),
            ResolvedSchedule::StaticBlock
        );
        assert_eq!(
            resolve_schedule(Some(ScheduleSpec::dynamic(4)), env_static()),
            ResolvedSchedule::Dynamic(4)
        );
        assert_eq!(
            resolve_schedule(
                Some(ScheduleSpec {
                    kind: ScheduleKind::Dynamic,
                    chunk: None
                }),
                env_static()
            ),
            ResolvedSchedule::Dynamic(1),
            "OpenMP default dynamic chunk is 1"
        );
        assert_eq!(
            resolve_schedule(
                Some(ScheduleSpec {
                    kind: ScheduleKind::Guided,
                    chunk: None
                }),
                env_static()
            ),
            ResolvedSchedule::Guided(1)
        );
    }

    #[test]
    fn runtime_kind_uses_environment() {
        let spec = Some(ScheduleSpec {
            kind: ScheduleKind::Runtime,
            chunk: None,
        });
        assert_eq!(
            resolve_schedule(spec, ScheduleSpec::dynamic(8)),
            ResolvedSchedule::Dynamic(8)
        );
    }

    #[test]
    fn needs_scheduler_flags() {
        assert!(!ResolvedSchedule::StaticBlock.needs_scheduler());
        assert!(!ResolvedSchedule::StaticChunked(2).needs_scheduler());
        assert!(ResolvedSchedule::Dynamic(1).needs_scheduler());
        assert!(ResolvedSchedule::Guided(1).needs_scheduler());
    }

    #[test]
    fn dynamic_state_hands_out_disjoint_chunks() {
        let mut st = DynLoopState::new();
        let mut seen = [false; 10];
        while let Some(c) = st.next_chunk(ResolvedSchedule::Dynamic(3), 0, 10, 1, 4) {
            for i in c.lo..c.hi {
                assert!(!seen[i as usize]);
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(st.grabs, 4); // 3+3+3+1
        assert_eq!(st.position(), 10);
    }

    #[test]
    fn guided_state_decreases() {
        let mut st = DynLoopState::new();
        let mut last = u64::MAX;
        while let Some(c) = st.next_chunk(ResolvedSchedule::Guided(2), 0, 64, 1, 4) {
            let sz = c.trip_count(1);
            assert!(sz <= last);
            last = sz;
        }
        assert!(st.grabs > 4);
    }

    #[test]
    fn affinity_drains_own_block_then_steals() {
        let mut st = AffinityState::init(40, 4);
        assert!(st.is_initialized());
        assert_eq!(st.remaining(0), 10);
        // Thread 0 drains its own 10 iterations in chunks of 4.
        let g1 = st.next_chunk(0, 4, 0, 1).unwrap();
        assert!(!g1.stolen);
        assert_eq!((g1.chunk.lo, g1.chunk.hi), (0, 4));
        let g2 = st.next_chunk(0, 4, 0, 1).unwrap();
        assert_eq!((g2.chunk.lo, g2.chunk.hi), (4, 8));
        let g3 = st.next_chunk(0, 4, 0, 1).unwrap();
        assert_eq!((g3.chunk.lo, g3.chunk.hi), (8, 10));
        // Own block empty: the next grab steals from a full queue's tail.
        let g4 = st.next_chunk(0, 4, 0, 1).unwrap();
        assert!(g4.stolen);
        assert_ne!(g4.victim, 0);
        assert_eq!(g4.chunk.hi - g4.chunk.lo, 4);
        assert_eq!(st.steals, 1);
    }

    #[test]
    fn affinity_covers_the_space_exactly_under_any_interleaving() {
        // Threads grab in a rotating order; every iteration must execute
        // exactly once.
        let n = 57u64;
        let t = 5u64;
        let mut st = AffinityState::init(n, t);
        let mut seen = vec![0u32; n as usize];
        let mut active = true;
        let mut turn = 0u64;
        while active {
            active = false;
            for k in 0..t {
                let tid = (turn + k) % t;
                if let Some(g) = st.next_chunk(tid, 3, 0, 1) {
                    for i in g.chunk.lo..g.chunk.hi {
                        seen[i as usize] += 1;
                    }
                    active = true;
                }
            }
            turn += 1;
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
        assert_eq!(st.grabs, st.steals + st.grabs - st.steals);
    }

    #[test]
    fn affinity_maps_iteration_space_with_begin_offset() {
        let mut st = AffinityState::init(8, 2);
        let g = st.next_chunk(1, 8, 100, 1).unwrap();
        // Thread 1's block is iterations 4..8 -> values 104..108.
        assert_eq!((g.chunk.lo, g.chunk.hi), (104, 108));
    }

    #[test]
    fn affinity_resolution() {
        assert_eq!(
            resolve_schedule(Some(ScheduleSpec::affinity(6)), env_static()),
            ResolvedSchedule::Affinity(6)
        );
        assert!(ResolvedSchedule::Affinity(1).needs_scheduler());
        assert!(ResolvedSchedule::Affinity(1).is_affinity());
        assert!(!ResolvedSchedule::Dynamic(1).is_affinity());
    }

    #[test]
    fn static_chunks_cover_space() {
        let mut seen = [0u32; 37];
        for tid in 0..5 {
            for c in static_chunks(ResolvedSchedule::StaticChunked(3), 0, 37, 1, 5, tid) {
                for i in c.lo..c.hi {
                    seen[i as usize] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&s| s == 1));
    }
}
