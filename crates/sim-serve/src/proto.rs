//! Line-protocol helpers.
//!
//! The wire format is newline-delimited JSON: one request object per
//! line in, one response object per line out. Requests carry an `"op"`
//! field naming the verb; responses always carry `"ok"` (and, when
//! `false`, an `"error"` string). Result payloads travel as JSON
//! *strings* (the embedder's payload text, escaped), so the bytes a
//! client receives are exactly the bytes the runner produced — the
//! property the content-addressed cache is built on.

use sim_trace::json::JsonValue;

/// Escape a string for embedding in a JSON document.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// String field lookup on a parsed request object.
pub fn field_str<'a>(v: &'a JsonValue, key: &str) -> Option<&'a str> {
    v.get(key).and_then(|x| x.as_str())
}

/// Unsigned-integer field lookup on a parsed request object.
pub fn field_u64(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key).and_then(|x| x.as_num()).map(|n| n as u64)
}

/// Signed-integer field lookup on a parsed request object.
pub fn field_i64(v: &JsonValue, key: &str) -> Option<i64> {
    v.get(key).and_then(|x| x.as_num()).map(|n| n as i64)
}

/// Boolean field lookup on a parsed request object.
pub fn field_bool(v: &JsonValue, key: &str) -> Option<bool> {
    v.get(key).and_then(|x| x.as_bool())
}

/// The uniform failure response.
pub fn err_line(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", esc(msg))
}
