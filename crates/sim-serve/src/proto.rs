//! Line-protocol helpers.
//!
//! The wire format is newline-delimited JSON: one request object per
//! line in, one response object per line out. Requests carry an `"op"`
//! field naming the verb; responses always carry `"ok"` (and, when
//! `false`, an `"error"` string). Result payloads travel as JSON
//! *strings* (the embedder's payload text, escaped), so the bytes a
//! client receives are exactly the bytes the runner produced — the
//! property the content-addressed cache is built on.

use sim_trace::json::JsonValue;

/// Escape a string for embedding in a JSON document.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// String field lookup on a parsed request object.
pub fn field_str<'a>(v: &'a JsonValue, key: &str) -> Option<&'a str> {
    v.get(key).and_then(|x| x.as_str())
}

/// Unsigned-integer field lookup on a parsed request object.
pub fn field_u64(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key).and_then(|x| x.as_num()).map(|n| n as u64)
}

/// Signed-integer field lookup on a parsed request object.
pub fn field_i64(v: &JsonValue, key: &str) -> Option<i64> {
    v.get(key).and_then(|x| x.as_num()).map(|n| n as i64)
}

/// Boolean field lookup on a parsed request object.
pub fn field_bool(v: &JsonValue, key: &str) -> Option<bool> {
    v.get(key).and_then(|x| x.as_bool())
}

/// The uniform failure response.
pub fn err_line(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", esc(msg))
}

/// The structured backpressure rejection: `"busy":true` marks the
/// request as safe to retry, `"retry_after_ms"` is the daemon's hint
/// for how long to back off first.
pub fn busy_line(msg: &str, retry_after_ms: u64) -> String {
    format!(
        "{{\"ok\":false,\"busy\":true,\"retry_after_ms\":{retry_after_ms},\"error\":\"{}\"}}",
        esc(msg)
    )
}

/// Render a parsed [`JsonValue`] back to JSON text.
///
/// Used to journal job specs: the wire carries the spec as a JSON
/// subtree of the request, and the journal needs it back as standalone
/// text. Integers render without a fractional part so a spec
/// round-trips through parse → render → parse unchanged.
pub fn render(v: &JsonValue) -> String {
    let mut out = String::new();
    render_into(v, &mut out);
    out
}

fn render_into(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        JsonValue::Str(s) => {
            out.push('"');
            out.push_str(&esc(s));
            out.push('"');
        }
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        JsonValue::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&esc(k));
                out.push_str("\":");
                render_into(val, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_round_trips_a_spec() {
        let src = "{\"kind\":\"run\",\"bench\":\"cg\",\"workers\":4,\"trace\":false,\
                   \"note\":\"a \\\"quoted\\\" name\",\"list\":[1,-2,0.5],\"nul\":null}";
        let v = sim_trace::json::parse(src).unwrap();
        let rendered = render(&v);
        assert_eq!(sim_trace::json::parse(&rendered).unwrap(), v);
        // Idempotent once canonicalized.
        assert_eq!(
            render(&sim_trace::json::parse(&rendered).unwrap()),
            rendered
        );
    }
}
