//! Batch simulation daemon.
//!
//! A deterministic simulator spends most of a sweep re-deriving answers
//! it has already computed: the same (kernel, mode, workers, fault
//! seed) tuple is requested by `all_experiments`, by `analyze`, by a
//! soak shard, and by a developer at a prompt — four cold runs of one
//! bit-reproducible result. `sim-serve` turns the simulator into a
//! long-lived service so that work is shared:
//!
//! - **Line protocol** ([`server`], [`client`], [`proto`]): one JSON
//!   object per line over TCP (`submit` / `status` / `result` /
//!   `cancel` / `stats` / `shutdown`). The format reuses the
//!   workspace's dependency-free JSON parser from `sim-trace`.
//! - **Job queue** ([`server`]): higher `priority` first, FIFO within a
//!   priority level; per-job timeouts; panic isolation per job;
//!   duplicate in-flight submissions coalesce onto one execution.
//! - **Result cache** ([`cache`]): content-addressed by the canonical
//!   config string the embedder derives from a job spec. A hit returns
//!   the stored payload *verbatim* — byte-identical to the run that
//!   populated it — from an in-memory LRU backed by an optional
//!   on-disk store.
//!
//! The crate is simulation-agnostic: the embedder implements
//! [`JobRunner`] (derive a canonical cache key from a spec; run a spec
//! to a payload string). The `bench` crate's `serve` binary wires this
//! to the slipstream engine, including snapshot warm-starts.
//!
//! ## Crash safety and chaos
//!
//! The daemon is built to preserve byte-parity under failure:
//!
//! - **Write-ahead journal** ([`wal`]): with [`ServeOptions::journal`]
//!   set, accepted jobs are journaled before their ack and replayed on
//!   restart, so `kill -9` mid-batch loses no acknowledged work.
//! - **Resilient client** ([`client`]): socket deadlines, transparent
//!   reconnect, seeded jittered exponential backoff, and idempotent
//!   resends keyed by the daemon's cache/coalescing.
//! - **Backpressure** ([`server`]): bounded queue with priority
//!   shedding and structured `busy` + `retry_after_ms` rejections,
//!   per-connection live-job limits, and a graceful `drain` verb.
//! - **Deterministic chaos proxy** ([`chaos`]): a seeded TCP proxy that
//!   resets, garbles, truncates, splits, and delays traffic on a
//!   schedule that is a pure function of its seed, for reproducible
//!   fault-injection soaks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod proto;
pub mod server;
pub mod wal;

pub use cache::ResultCache;
pub use chaos::{ChaosConfig, ChaosCounters, ChaosProxy, Dir, FaultAction};
pub use client::{Client, JobOutcome, RetryPolicy, ServeStats, SubmitAck};
pub use server::{JobControl, JobId, JobRunner, JobState, ServeOptions, Server};
pub use wal::{Replay, ReplayJob, Wal, WalRecord};
