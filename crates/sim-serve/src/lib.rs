//! Batch simulation daemon.
//!
//! A deterministic simulator spends most of a sweep re-deriving answers
//! it has already computed: the same (kernel, mode, workers, fault
//! seed) tuple is requested by `all_experiments`, by `analyze`, by a
//! soak shard, and by a developer at a prompt — four cold runs of one
//! bit-reproducible result. `sim-serve` turns the simulator into a
//! long-lived service so that work is shared:
//!
//! - **Line protocol** ([`server`], [`client`], [`proto`]): one JSON
//!   object per line over TCP (`submit` / `status` / `result` /
//!   `cancel` / `stats` / `shutdown`). The format reuses the
//!   workspace's dependency-free JSON parser from `sim-trace`.
//! - **Job queue** ([`server`]): higher `priority` first, FIFO within a
//!   priority level; per-job timeouts; panic isolation per job;
//!   duplicate in-flight submissions coalesce onto one execution.
//! - **Result cache** ([`cache`]): content-addressed by the canonical
//!   config string the embedder derives from a job spec. A hit returns
//!   the stored payload *verbatim* — byte-identical to the run that
//!   populated it — from an in-memory LRU backed by an optional
//!   on-disk store.
//!
//! The crate is simulation-agnostic: the embedder implements
//! [`JobRunner`] (derive a canonical cache key from a spec; run a spec
//! to a payload string). The `bench` crate's `serve` binary wires this
//! to the slipstream engine, including snapshot warm-starts.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod proto;
pub mod server;

pub use cache::ResultCache;
pub use client::{Client, JobOutcome, ServeStats, SubmitAck};
pub use server::{JobControl, JobId, JobRunner, JobState, ServeOptions, Server};
