//! Durable write-ahead job journal.
//!
//! The daemon's queue lives in memory; without a journal a `kill -9`
//! loses every accepted-but-unfinished job. The WAL records the three
//! events that matter for recovery — a job was **accepted**
//! ([`WalRecord::Submit`]), a job reached a **terminal state**
//! ([`WalRecord::Complete`]), and a **cancel was requested** for a
//! running job ([`WalRecord::CancelIntent`]) — so a restarted daemon
//! can rebuild exactly the set of jobs it still owes work for.
//!
//! ## On-disk format
//!
//! The journal is a flat file of concatenated `snap` envelopes, one per
//! record: `magic | version | len | fnv1a | payload`, with the payload
//! encoded by [`snap::Writer`] (a record-type tag byte followed by the
//! record's fields in declaration order). The envelope does all the
//! heavy lifting for crash safety:
//!
//! - records are **self-delimiting** (the envelope carries its length),
//!   so no separate index is needed;
//! - a record torn by a crash mid-`write` fails the length or checksum
//!   test and [`replay`] stops there — the torn tail is discarded on
//!   the next compaction, never misparsed;
//! - a version bump invalidates old journals loudly instead of letting
//!   them deserialize under a different layout.
//!
//! Records are appended with a single `write_all` *before* the submit
//! is acknowledged, so an acked job is always recoverable after a
//! process crash (the OS page cache survives `kill -9`). Against power
//! loss, [`Wal::open`] takes a `sync` flag that additionally
//! `sync_data`s every append.
//!
//! ## Replay semantics
//!
//! [`replay`] folds the record stream into one [`ReplayJob`] per
//! submitted id:
//!
//! - the **first terminal [`WalRecord::Complete`] wins** — a
//!   [`WalRecord::CancelIntent`] (or a second `Complete`) logged after
//!   a job completed is ignored, so the `cancel`-after-`complete` race
//!   is resolved identically no matter how the records interleave;
//! - a `CancelIntent` on a still-pending job marks it
//!   `cancel_requested`, so a cancel issued against a running job is
//!   honoured across a restart instead of resurrecting the job;
//! - `next_id` / `next_seq` are recovered as maxima over everything
//!   seen (including a [`WalRecord::Meta`] floor written by
//!   compaction), so restarted daemons never reuse a journaled id.
//!
//! The server applies its own policy on top (see `Server::bind`):
//! pending jobs re-enter the queue at their original priority and
//! submit order, completed jobs are restored from the result cache when
//! possible and re-enqueued otherwise — re-execution is safe because
//! job payloads are deterministic, which is the crate's byte-parity
//! contract.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::server::JobState;

/// Journal format version, gating [`snap::open_prefix`] on every record.
pub const WAL_VERSION: u32 = 1;

const TAG_META: u8 = 0;
const TAG_SUBMIT: u8 = 1;
const TAG_COMPLETE: u8 = 2;
const TAG_CANCEL: u8 = 3;

/// One journal record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// Floor for id/seq allocation, written by compaction so dropped
    /// history can never lead to id reuse.
    Meta {
        /// Next job id a restarted daemon may allocate.
        next_id: u64,
        /// Next queue sequence number.
        next_seq: u64,
    },
    /// A job was accepted into the queue. Written before the submit is
    /// acknowledged.
    Submit {
        /// The job id the ack will carry.
        id: u64,
        /// Queue priority (higher first).
        priority: i64,
        /// FIFO sequence within a priority level.
        seq: u64,
        /// Per-job timeout, if any (re-armed from zero on replay).
        timeout_ms: Option<u64>,
        /// Canonical cache key (None for uncacheable specs).
        key: Option<String>,
        /// The spec, serialized back to JSON text.
        spec_json: String,
    },
    /// A job reached a terminal state.
    Complete {
        /// The job id.
        id: u64,
        /// The terminal state (must satisfy `JobState::is_terminal`).
        state: JobState,
        /// The error message, for failure-shaped terminals.
        error: Option<String>,
    },
    /// A cancel was requested for a job that was already running; the
    /// terminal `Complete` follows when the worker observes the flag.
    CancelIntent {
        /// The job id.
        id: u64,
    },
}

fn state_code(state: JobState) -> u8 {
    match state {
        JobState::Done => 0,
        JobState::Failed => 1,
        JobState::Cancelled => 2,
        JobState::TimedOut => 3,
        JobState::Shed => 4,
        // Non-terminal states are never journaled as completions.
        JobState::Queued | JobState::Running => u8::MAX,
    }
}

fn state_from_code(code: u8) -> Result<JobState, snap::SnapError> {
    Ok(match code {
        0 => JobState::Done,
        1 => JobState::Failed,
        2 => JobState::Cancelled,
        3 => JobState::TimedOut,
        4 => JobState::Shed,
        _ => return Err(snap::SnapError::Corrupt { what: "job state" }),
    })
}

impl WalRecord {
    /// Encode the record as one sealed envelope.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = snap::Writer::new();
        match self {
            WalRecord::Meta { next_id, next_seq } => {
                w.u8(TAG_META);
                w.u64(*next_id);
                w.u64(*next_seq);
            }
            WalRecord::Submit {
                id,
                priority,
                seq,
                timeout_ms,
                key,
                spec_json,
            } => {
                w.u8(TAG_SUBMIT);
                w.u64(*id);
                w.i64(*priority);
                w.u64(*seq);
                w.opt(timeout_ms, |w, v| w.u64(*v));
                w.opt(key, |w, v| w.str(v));
                w.str(spec_json);
            }
            WalRecord::Complete { id, state, error } => {
                w.u8(TAG_COMPLETE);
                w.u64(*id);
                w.u8(state_code(*state));
                w.opt(error, |w, v| w.str(v));
            }
            WalRecord::CancelIntent { id } => {
                w.u8(TAG_CANCEL);
                w.u64(*id);
            }
        }
        snap::seal(WAL_VERSION, &w.into_bytes())
    }

    fn decode(payload: &[u8]) -> Result<WalRecord, snap::SnapError> {
        let mut r = snap::Reader::new(payload);
        let rec = match r.u8()? {
            TAG_META => WalRecord::Meta {
                next_id: r.u64()?,
                next_seq: r.u64()?,
            },
            TAG_SUBMIT => WalRecord::Submit {
                id: r.u64()?,
                priority: r.i64()?,
                seq: r.u64()?,
                timeout_ms: r.opt(|r| r.u64())?,
                key: r.opt(|r| r.string())?,
                spec_json: r.string()?,
            },
            TAG_COMPLETE => WalRecord::Complete {
                id: r.u64()?,
                state: state_from_code(r.u8()?)?,
                error: r.opt(|r| r.string())?,
            },
            TAG_CANCEL => WalRecord::CancelIntent { id: r.u64()? },
            _ => return Err(snap::SnapError::Corrupt { what: "record tag" }),
        };
        r.expect_end()?;
        Ok(rec)
    }
}

/// One submitted job as reconstructed by [`replay`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayJob {
    /// The journaled job id.
    pub id: u64,
    /// Queue priority.
    pub priority: i64,
    /// FIFO sequence.
    pub seq: u64,
    /// Per-job timeout (relative; re-armed on restore).
    pub timeout_ms: Option<u64>,
    /// Canonical cache key.
    pub key: Option<String>,
    /// The job spec as JSON text.
    pub spec_json: String,
    /// First journaled terminal state, with its error.
    pub terminal: Option<(JobState, Option<String>)>,
    /// A cancel was requested before any terminal record.
    pub cancel_requested: bool,
}

/// The fold of a journal's record stream.
#[derive(Clone, Debug, Default)]
pub struct Replay {
    /// Jobs in submit order.
    pub jobs: Vec<ReplayJob>,
    /// Max job id seen plus one (at least 1).
    pub next_id: u64,
    /// Max queue sequence seen plus one.
    pub next_seq: u64,
    /// A torn or corrupt tail was found and discarded.
    pub torn: bool,
    /// Bytes of tail discarded as torn.
    pub torn_bytes: usize,
    /// Whole records successfully applied.
    pub records: u64,
}

/// Fold a journal byte stream into its [`Replay`]. Stops cleanly at the
/// first defective record: everything before it is applied, everything
/// from it on is reported as the torn tail.
pub fn replay(bytes: &[u8]) -> Replay {
    let mut out = Replay {
        next_id: 1,
        ..Replay::default()
    };
    let mut index: HashMap<u64, usize> = HashMap::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let rec = match snap::open_prefix(&bytes[pos..], WAL_VERSION) {
            Ok((payload, used)) => match WalRecord::decode(payload) {
                Ok(rec) => {
                    pos += used;
                    rec
                }
                Err(_) => break,
            },
            Err(_) => break,
        };
        out.records += 1;
        match rec {
            WalRecord::Meta { next_id, next_seq } => {
                out.next_id = out.next_id.max(next_id);
                out.next_seq = out.next_seq.max(next_seq);
            }
            WalRecord::Submit {
                id,
                priority,
                seq,
                timeout_ms,
                key,
                spec_json,
            } => {
                out.next_id = out.next_id.max(id + 1);
                out.next_seq = out.next_seq.max(seq + 1);
                // A duplicate submit id (should not happen) keeps the
                // first record rather than silently forking the job.
                if let std::collections::hash_map::Entry::Vacant(e) = index.entry(id) {
                    e.insert(out.jobs.len());
                    out.jobs.push(ReplayJob {
                        id,
                        priority,
                        seq,
                        timeout_ms,
                        key,
                        spec_json,
                        terminal: None,
                        cancel_requested: false,
                    });
                }
            }
            WalRecord::Complete { id, state, error } => {
                if let Some(&i) = index.get(&id) {
                    let job = &mut out.jobs[i];
                    // First terminal record wins; a cancel (or second
                    // completion) after the fact is a no-op.
                    if job.terminal.is_none() {
                        job.terminal = Some((state, error));
                    }
                }
            }
            WalRecord::CancelIntent { id } => {
                if let Some(&i) = index.get(&id) {
                    let job = &mut out.jobs[i];
                    if job.terminal.is_none() {
                        job.cancel_requested = true;
                    }
                }
            }
        }
    }
    if pos < bytes.len() {
        out.torn = true;
        out.torn_bytes = bytes.len() - pos;
    }
    out
}

/// An open journal: an append handle plus the path for compaction.
pub struct Wal {
    file: File,
    path: PathBuf,
    sync: bool,
    appended: u64,
}

impl Wal {
    /// Open (creating if absent) the journal at `path`, replay its
    /// contents, and position for appending. With `sync`, every append
    /// is additionally `sync_data`ed for power-loss durability; without
    /// it a plain `write` still survives any process crash.
    pub fn open(path: &Path, sync: bool) -> Result<(Wal, Replay), String> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("journal dir {}: {e}", parent.display()))?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| format!("journal {}: {e}", path.display()))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| format!("journal read {}: {e}", path.display()))?;
        let rep = replay(&bytes);
        if rep.torn {
            // Drop the torn tail now: appends land at EOF, and a record
            // appended after unreadable bytes would be unreachable on
            // the next replay.
            file.set_len((bytes.len() - rep.torn_bytes) as u64)
                .map_err(|e| format!("journal truncate {}: {e}", path.display()))?;
        }
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                sync,
                appended: 0,
            },
            rep,
        ))
    }

    /// Append one record durably (single `write_all`, plus `sync_data`
    /// when the journal was opened with `sync`). Must complete before
    /// the effect it records is acknowledged to a client.
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), String> {
        self.file
            .write_all(&rec.encode())
            .map_err(|e| format!("journal append {}: {e}", self.path.display()))?;
        if self.sync {
            self.file
                .sync_data()
                .map_err(|e| format!("journal sync {}: {e}", self.path.display()))?;
        }
        self.appended += 1;
        Ok(())
    }

    /// Records appended through this handle (not counting replayed
    /// history).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Atomically replace the journal's contents with `records` (via
    /// temp file + rename) and reopen for appending. Called once at
    /// startup to drop finished history and any torn tail.
    pub fn compact(&mut self, records: &[WalRecord]) -> Result<(), String> {
        let tmp = self
            .path
            .with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut out = File::create(&tmp).map_err(|e| format!("journal tmp: {e}"))?;
            for rec in records {
                out.write_all(&rec.encode())
                    .map_err(|e| format!("journal compact write: {e}"))?;
            }
            out.sync_data()
                .map_err(|e| format!("journal compact sync: {e}"))?;
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| format!("journal compact rename: {e}"))?;
        self.file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| format!("journal reopen {}: {e}", self.path.display()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit(id: u64, seq: u64) -> WalRecord {
        WalRecord::Submit {
            id,
            priority: 0,
            seq,
            timeout_ms: None,
            key: Some(format!("k{id}")),
            spec_json: format!("{{\"x\":{id}}}"),
        }
    }

    #[test]
    fn records_round_trip_through_the_envelope() {
        for rec in [
            WalRecord::Meta {
                next_id: 7,
                next_seq: 3,
            },
            WalRecord::Submit {
                id: 4,
                priority: -2,
                seq: 9,
                timeout_ms: Some(250),
                key: None,
                spec_json: "{\"bench\":\"cg\"}".into(),
            },
            WalRecord::Complete {
                id: 4,
                state: JobState::Failed,
                error: Some("boom".into()),
            },
            WalRecord::CancelIntent { id: 4 },
        ] {
            let bytes = rec.encode();
            let (payload, used) = snap::open_prefix(&bytes, WAL_VERSION).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(WalRecord::decode(payload).unwrap(), rec);
        }
    }

    #[test]
    fn replay_of_an_empty_stream_is_empty() {
        let rep = replay(&[]);
        assert!(rep.jobs.is_empty());
        assert_eq!(rep.next_id, 1);
        assert_eq!(rep.next_seq, 0);
        assert!(!rep.torn);
    }

    #[test]
    fn first_terminal_record_wins_over_later_cancel() {
        let mut bytes = Vec::new();
        bytes.extend(submit(1, 0).encode());
        bytes.extend(
            WalRecord::Complete {
                id: 1,
                state: JobState::Done,
                error: None,
            }
            .encode(),
        );
        bytes.extend(WalRecord::CancelIntent { id: 1 }.encode());
        let rep = replay(&bytes);
        assert_eq!(rep.jobs.len(), 1);
        assert_eq!(rep.jobs[0].terminal, Some((JobState::Done, None)));
        assert!(
            !rep.jobs[0].cancel_requested,
            "cancel after complete must be a no-op"
        );
    }

    #[test]
    fn cancel_before_terminal_marks_the_job() {
        let mut bytes = Vec::new();
        bytes.extend(submit(1, 0).encode());
        bytes.extend(WalRecord::CancelIntent { id: 1 }.encode());
        let rep = replay(&bytes);
        assert!(rep.jobs[0].cancel_requested);
        assert!(rep.jobs[0].terminal.is_none());
    }

    #[test]
    fn meta_floors_id_allocation() {
        let mut bytes = WalRecord::Meta {
            next_id: 100,
            next_seq: 40,
        }
        .encode();
        bytes.extend(submit(3, 1).encode());
        let rep = replay(&bytes);
        assert_eq!(rep.next_id, 100);
        assert_eq!(rep.next_seq, 40);
    }
}
