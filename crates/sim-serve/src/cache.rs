//! Content-addressed result cache.
//!
//! Results are keyed by the *canonical config string* the embedder
//! derives from a job spec (field order, defaults, and formatting are
//! the embedder's responsibility — two specs that mean the same
//! simulation must canonicalize to the same string). The cache stores
//! payloads verbatim, so a hit is byte-identical to the run that
//! populated it.
//!
//! Two tiers: a bounded in-memory LRU map, and an optional on-disk
//! store (one file per key, named by the FNV-1a hash of the key) that
//! survives daemon restarts. The disk tier is **crash-safe**:
//!
//! - entries are written to a temp file and published with an atomic
//!   `rename`, so a crash mid-write can never leave a half-written
//!   entry under a live name;
//! - each entry is a sealed `snap` envelope (magic, version, length,
//!   FNV-1a checksum) wrapping the full key plus the payload, so a torn
//!   or corrupt file — however it got there — fails validation and
//!   reads as a *miss*, never as a wrong payload that would poison a
//!   byte-parity check;
//! - the full key is stored inside the envelope and compared on read,
//!   so a hash collision also reads as a miss.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

/// Disk-entry format version; bump on any layout change so stale
/// entries from an older daemon read as misses instead of misparsing.
pub const CACHE_VERSION: u32 = 1;

/// Hash a canonical config string to its content address.
pub fn key_hash(key: &str) -> u64 {
    snap::fnv1a(key.as_bytes())
}

/// In-memory LRU over an optional on-disk store. Not internally
/// synchronized — the daemon holds it inside its state mutex.
pub struct ResultCache {
    cap: usize,
    map: HashMap<String, (u64, Arc<String>)>,
    tick: u64,
    dir: Option<PathBuf>,
}

impl ResultCache {
    /// A cache holding at most `cap` payloads in memory (0 disables the
    /// memory tier), spilling to `dir` when given.
    pub fn new(cap: usize, dir: Option<PathBuf>) -> ResultCache {
        if let Some(d) = &dir {
            // Best-effort: a cache dir that cannot be created simply
            // means every cross-restart lookup misses.
            let _ = fs::create_dir_all(d);
        }
        ResultCache {
            cap,
            map: HashMap::new(),
            tick: 0,
            dir,
        }
    }

    fn disk_path(&self, key: &str) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{:016x}.snap", key_hash(key))))
    }

    /// Look up a payload, promoting it to most-recently-used.
    pub fn get(&mut self, key: &str) -> Option<Arc<String>> {
        self.tick += 1;
        let tick = self.tick;
        if let Some((used, payload)) = self.map.get_mut(key) {
            *used = tick;
            return Some(payload.clone());
        }
        let path = self.disk_path(key)?;
        let bytes = fs::read(path).ok()?;
        // Any defect — torn write that dodged the rename, bit rot,
        // stale format — fails the envelope and reads as a miss.
        let payload = snap::open(&bytes, CACHE_VERSION).ok()?;
        let mut r = snap::Reader::new(payload);
        let stored_key = r.string().ok()?;
        let payload = r.string().ok()?;
        r.expect_end().ok()?;
        if stored_key != key {
            return None; // hash collision — treat as a miss
        }
        let payload = Arc::new(payload);
        self.insert_mem(key.to_string(), payload.clone());
        Some(payload)
    }

    /// Store a payload under `key` in both tiers. The disk write is
    /// temp-file + atomic rename; a crash at any point leaves either
    /// the old entry or the new one, never a torn hybrid.
    pub fn put(&mut self, key: String, payload: Arc<String>) {
        if let Some(path) = self.disk_path(&key) {
            let mut w = snap::Writer::new();
            w.str(&key);
            w.str(&payload);
            let sealed = snap::seal(CACHE_VERSION, &w.into_bytes());
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            // Best-effort, like the rest of the disk tier: a failed
            // write means a future miss, not a failed job.
            if fs::write(&tmp, sealed).is_ok() {
                let _ = fs::rename(&tmp, &path);
            } else {
                let _ = fs::remove_file(&tmp);
            }
        }
        self.insert_mem(key, payload);
    }

    fn insert_mem(&mut self, key: String, payload: Arc<String>) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        self.map.insert(key, (self.tick, payload));
        while self.map.len() > self.cap {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (used, _))| *used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map");
            self.map.remove(&oldest);
        }
    }

    /// Number of payloads in the memory tier.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2, None);
        c.put("a".into(), arc("1"));
        c.put("b".into(), arc("2"));
        assert!(c.get("a").is_some()); // a is now fresher than b
        c.put("c".into(), arc("3"));
        assert_eq!(c.len(), 2);
        assert!(c.get("b").is_none(), "b was least recently used");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
    }

    #[test]
    fn zero_capacity_disables_memory_tier() {
        let mut c = ResultCache::new(0, None);
        c.put("a".into(), arc("1"));
        assert!(c.is_empty());
        assert!(c.get("a").is_none());
    }

    #[test]
    fn disk_tier_survives_a_new_cache_instance() {
        let dir = std::env::temp_dir().join(format!("sim-serve-cache-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut c = ResultCache::new(4, Some(dir.clone()));
            c.put("k1".into(), arc("{\"v\":1}\nwith\nnewlines"));
        }
        let mut c = ResultCache::new(4, Some(dir.clone()));
        let hit = c.get("k1").expect("disk hit");
        assert_eq!(hit.as_str(), "{\"v\":1}\nwith\nnewlines");
        assert!(c.get("k2").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_disk_entries_read_as_misses_at_every_truncation() {
        let dir = std::env::temp_dir().join(format!("sim-serve-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut c = ResultCache::new(0, Some(dir.clone()));
        c.put("k".into(), arc("payload bytes"));
        let path = dir.join(format!("{:016x}.snap", key_hash("k")));
        let full = fs::read(&path).unwrap();
        assert!(
            ResultCache::new(0, Some(dir.clone())).get("k").is_some(),
            "intact entry must hit"
        );
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let mut fresh = ResultCache::new(0, Some(dir.clone()));
            assert!(
                fresh.get("k").is_none(),
                "cut at {cut} must miss, not panic"
            );
        }
        // Arbitrary corruption (bit flip) also misses.
        let mut flipped = full.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        assert!(ResultCache::new(0, Some(dir.clone())).get("k").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_tmp_files_left_behind_after_put() {
        let dir = std::env::temp_dir().join(format!("sim-serve-tmp-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut c = ResultCache::new(2, Some(dir.clone()));
        for i in 0..8 {
            c.put(format!("k{i}"), arc("v"));
        }
        let stray: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x != "snap"))
            .collect();
        assert!(
            stray.is_empty(),
            "tmp files must be renamed away: {stray:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
