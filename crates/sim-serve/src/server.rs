//! The daemon: job queue, worker pool, and the TCP accept loop.
//!
//! All shared state lives behind one mutex with two condition
//! variables: `work_cv` wakes workers when a job is queued, `done_cv`
//! wakes result-waiters when any job reaches a terminal state. Worker
//! threads run jobs with per-job panic isolation; connection handler
//! threads speak the line protocol and never hold the state lock
//! across a blocking wait except through the condvars.
//!
//! ## Crash safety
//!
//! With [`ServeOptions::journal`] set, every accepted job is recorded
//! in a write-ahead journal ([`crate::wal`]) *before* its submit is
//! acknowledged, and every terminal transition is journaled after it.
//! On startup the journal is replayed: still-pending jobs re-enter the
//! queue at their original priority and submit order, completed jobs
//! are restored from the result cache when possible and re-executed
//! otherwise (payloads are deterministic, so re-execution returns the
//! same bytes), and the journal is compacted to just the live set. A
//! `kill -9` therefore loses no acknowledged work.
//!
//! ## Backpressure
//!
//! With [`ServeOptions::max_queue`] set, a submit that would overflow
//! the queue either sheds the lowest-priority queued job (when the
//! newcomer outranks it — the shed job terminates in
//! [`JobState::Shed`]) or is rejected with a structured `busy` response
//! carrying a `retry_after_ms` hint. [`ServeOptions::max_live_per_conn`]
//! bounds how many unfinished jobs one connection may have in flight.
//! The `drain` verb stops job intake and new claims: running jobs
//! finish, queued jobs stay journaled for the next incarnation, and the
//! embedder exits once [`Server::drained`] reports true.

use std::collections::{BinaryHeap, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sim_trace::json::{parse, JsonValue};

use crate::cache::ResultCache;
use crate::proto::{busy_line, err_line, esc, field_i64, field_str, field_u64, render};
use crate::wal::{Wal, WalRecord};

/// Identifies a submitted job for `status` / `result` / `cancel`.
pub type JobId = u64;

/// Cooperative cancellation and deadline signal handed to a running
/// job. Long-running runners should poll [`JobControl::should_stop`]
/// at convenient boundaries (e.g. between simulation slices) and bail
/// early; the daemon discards the result of a job whose control was
/// tripped either way.
pub struct JobControl {
    cancel: AtomicBool,
    deadline: Option<Instant>,
}

impl JobControl {
    fn new(timeout_ms: Option<u64>) -> JobControl {
        JobControl {
            cancel: AtomicBool::new(false),
            deadline: timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
        }
    }

    /// True once the job has been cancelled or its deadline has passed.
    pub fn should_stop(&self) -> bool {
        self.cancel.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// True once the job has been explicitly cancelled.
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }
}

/// What the daemon serves. Implemented by the embedder (`bench`'s
/// `serve` binary wires this to the slipstream engine).
pub trait JobRunner: Send + Sync + 'static {
    /// Derive the *canonical config string* for a spec — the cache key.
    /// Two specs describing the same simulation must canonicalize
    /// identically (fixed field order, defaults filled in). Return
    /// `Ok(None)` to mark the spec uncacheable, `Err` to reject a
    /// malformed spec at submit time.
    fn config_key(&self, spec: &JsonValue) -> Result<Option<String>, String>;

    /// Execute the spec and return the result payload as JSON text.
    /// The daemon stores and serves the returned string *verbatim*, so
    /// equal work must produce byte-equal payloads.
    fn run(&self, spec: &JsonValue, ctl: &JobControl) -> Result<String, String>;
}

impl<T: JobRunner> JobRunner for Arc<T> {
    fn config_key(&self, spec: &JsonValue) -> Result<Option<String>, String> {
        (**self).config_key(spec)
    }
    fn run(&self, spec: &JsonValue, ctl: &JobControl) -> Result<String, String> {
        (**self).run(spec, ctl)
    }
}

/// Lifecycle of a job. `Done`, `Failed`, `Cancelled`, `TimedOut`, and
/// `Shed` are terminal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the priority queue.
    Queued,
    /// Claimed by a worker and executing.
    Running,
    /// Completed; the payload is available.
    Done,
    /// The runner returned an error or panicked.
    Failed,
    /// Cancelled before completion.
    Cancelled,
    /// Its deadline passed before completion.
    TimedOut,
    /// Evicted from a full queue to make room for higher-priority work.
    Shed,
}

impl JobState {
    /// Wire name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::TimedOut => "timed_out",
            JobState::Shed => "shed",
        }
    }

    fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

struct Job {
    spec: JsonValue,
    key: Option<String>,
    priority: i64,
    seq: u64,
    timeout_ms: Option<u64>,
    state: JobState,
    payload: Option<Arc<String>>,
    error: Option<String>,
    cached: bool,
    ctl: Arc<JobControl>,
}

/// Max-heap entry: higher priority first, FIFO (lower sequence number)
/// within a priority level.
#[derive(PartialEq, Eq)]
struct QueueEntry {
    priority: i64,
    seq: u64,
    id: JobId,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &QueueEntry) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &QueueEntry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    timed_out: u64,
    shed: u64,
    busy_rejected: u64,
    cache_hits: u64,
    cache_misses: u64,
    coalesced: u64,
    replayed: u64,
    journal_errors: u64,
}

struct State {
    jobs: HashMap<JobId, Job>,
    queue: BinaryHeap<QueueEntry>,
    /// Live queued jobs — `queue.len()` over-counts because entries of
    /// cancelled/shed jobs are retired lazily at claim time.
    queued_count: usize,
    /// key -> id of the queued/running job computing it; duplicate
    /// submissions attach to this id instead of re-executing.
    inflight: HashMap<String, JobId>,
    cache: ResultCache,
    wal: Option<Wal>,
    next_id: JobId,
    next_seq: u64,
    counters: Counters,
    shutting_down: bool,
    draining: bool,
}

impl State {
    /// Append to the journal, if one is configured. Completion records
    /// are best-effort (the state transition already happened); submit
    /// records are required and checked by the caller.
    fn journal(&mut self, rec: &WalRecord) -> Result<(), String> {
        if let Some(wal) = &mut self.wal {
            if let Err(e) = wal.append(rec) {
                self.counters.journal_errors += 1;
                return Err(e);
            }
        }
        Ok(())
    }

    /// Move a non-terminal job to a terminal state, with all the
    /// bookkeeping: counters, live-queue count, in-flight retirement,
    /// and the journal record.
    fn finish(&mut self, id: JobId, state: JobState, error: Option<String>) {
        debug_assert!(state.is_terminal());
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        if job.state.is_terminal() {
            return;
        }
        if job.state == JobState::Queued {
            self.queued_count = self.queued_count.saturating_sub(1);
        }
        job.state = state;
        job.error = error.clone();
        match state {
            JobState::Done => self.counters.completed += 1,
            JobState::Failed => self.counters.failed += 1,
            JobState::Cancelled => self.counters.cancelled += 1,
            JobState::TimedOut => self.counters.timed_out += 1,
            JobState::Shed => self.counters.shed += 1,
            JobState::Queued | JobState::Running => unreachable!("terminal states only"),
        }
        retire(self, id);
        let _ = self.journal(&WalRecord::Complete { id, state, error });
    }
}

struct Inner {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    runner: Box<dyn JobRunner>,
    workers: usize,
    max_queue: usize,
    max_live_per_conn: usize,
}

/// Daemon configuration. Environment-variable parsing belongs to the
/// embedder; the daemon takes resolved values.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Concurrent job executions.
    pub workers: usize,
    /// In-memory result-cache capacity (payload count; 0 disables).
    pub cache_cap: usize,
    /// On-disk result-cache directory (None disables the disk tier).
    pub cache_dir: Option<PathBuf>,
    /// Write-ahead job journal path (None disables crash recovery).
    pub journal: Option<PathBuf>,
    /// `sync_data` every journal append (power-loss durability; a
    /// plain write already survives process crashes).
    pub journal_sync: bool,
    /// Max live queued jobs; 0 is unbounded. Overflow sheds the
    /// lowest-priority queued job when the newcomer outranks it, and
    /// rejects with a structured `busy` response otherwise.
    pub max_queue: usize,
    /// Max unfinished jobs one connection may have submitted; 0 is
    /// unbounded. Overflow rejects with `busy`.
    pub max_live_per_conn: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            workers: 2,
            cache_cap: 256,
            cache_dir: None,
            journal: None,
            journal_sync: false,
            max_queue: 0,
            max_live_per_conn: 0,
        }
    }
}

/// A running daemon: worker pool plus TCP accept loop. Dropping the
/// handle does *not* stop the daemon; call [`Server::shutdown`].
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving `runner`.
    /// With a journal configured, replays and compacts it first; jobs
    /// accepted by a previous incarnation re-enter the queue here.
    pub fn bind(
        addr: &str,
        runner: Box<dyn JobRunner>,
        opts: ServeOptions,
    ) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;

        let mut state = State {
            jobs: HashMap::new(),
            queue: BinaryHeap::new(),
            queued_count: 0,
            inflight: HashMap::new(),
            cache: ResultCache::new(opts.cache_cap, opts.cache_dir.clone()),
            wal: None,
            next_id: 1,
            next_seq: 0,
            counters: Counters::default(),
            shutting_down: false,
            draining: false,
        };
        if let Some(path) = &opts.journal {
            let (mut wal, rep) = Wal::open(path, opts.journal_sync)?;
            state.next_id = rep.next_id;
            state.next_seq = rep.next_seq;
            restore_replayed_jobs(&mut state, rep.jobs);
            // Compact to the live set: a floor for id allocation plus
            // one submit record per still-pending job. Terminal history
            // is dropped — completed payloads live in the result cache.
            let mut records = vec![WalRecord::Meta {
                next_id: state.next_id,
                next_seq: state.next_seq,
            }];
            let mut pending: Vec<(JobId, &Job)> = state
                .jobs
                .iter()
                .filter(|(_, j)| j.state == JobState::Queued)
                .map(|(id, j)| (*id, j))
                .collect();
            pending.sort_by_key(|(_, j)| j.seq);
            for (id, job) in pending {
                records.push(WalRecord::Submit {
                    id,
                    priority: job.priority,
                    seq: job.seq,
                    timeout_ms: job.timeout_ms,
                    key: job.key.clone(),
                    spec_json: render(&job.spec),
                });
            }
            wal.compact(&records)?;
            state.wal = Some(wal);
        }

        let inner = Arc::new(Inner {
            state: Mutex::new(state),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            runner,
            workers: opts.workers.max(1),
            max_queue: opts.max_queue,
            max_live_per_conn: opts.max_live_per_conn,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        for w in 0..inner.workers {
            let inner = inner.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&inner))
                    .map_err(|e| format!("spawn worker: {e}"))?,
            );
        }
        {
            let inner = inner.clone();
            let stop = stop.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept".into())
                    .spawn(move || accept_loop(listener, &inner, &stop))
                    .map_err(|e| format!("spawn accept loop: {e}"))?,
            );
        }
        Ok(Server {
            inner,
            addr: local,
            stop,
            threads,
        })
    }

    /// The bound address (resolves the port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting work, wait for running jobs and the accept loop
    /// to finish, and tear the daemon down.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutting_down = true;
            self.inner.work_cv.notify_all();
            self.inner.done_cv.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// True once a client has issued the `shutdown` verb.
    pub fn shutdown_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// True once a client has issued the `drain` verb.
    pub fn drain_requested(&self) -> bool {
        self.inner.state.lock().unwrap().draining
    }

    /// True once a requested drain has finished: no job is running.
    /// Queued jobs remain journaled for the next incarnation.
    pub fn drained(&self) -> bool {
        let st = self.inner.state.lock().unwrap();
        st.draining && !st.jobs.values().any(|j| j.state == JobState::Running)
    }
}

/// Rebuild in-memory job state from replayed journal records.
fn restore_replayed_jobs(state: &mut State, jobs: Vec<crate::wal::ReplayJob>) {
    for rj in jobs {
        state.counters.replayed += 1;
        let spec = match parse(&rj.spec_json) {
            Ok(v) => v,
            Err(e) => {
                // A journaled spec that no longer parses (it was
                // rendered by us, so this means corruption that dodged
                // the checksum) fails the job rather than the daemon.
                state.jobs.insert(
                    rj.id,
                    Job {
                        spec: JsonValue::Null,
                        key: rj.key,
                        priority: rj.priority,
                        seq: rj.seq,
                        timeout_ms: rj.timeout_ms,
                        state: JobState::Failed,
                        payload: None,
                        error: Some(format!("journaled spec unparsable: {e}")),
                        cached: false,
                        ctl: Arc::new(JobControl::new(None)),
                    },
                );
                continue;
            }
        };
        let (state_now, payload, error, cached) = match &rj.terminal {
            Some((JobState::Done, _)) => {
                // Completed before the crash: serve the cached payload
                // if the disk tier still has it, re-execute otherwise —
                // payloads are deterministic, so both return the bytes
                // an uninterrupted run would have.
                let hit = rj.key.as_deref().and_then(|k| state.cache.get(k));
                match hit {
                    Some(p) => (JobState::Done, Some(p), None, true),
                    None => (JobState::Queued, None, None, false),
                }
            }
            Some((s, err)) => (*s, None, err.clone(), false),
            None if rj.cancel_requested => (
                JobState::Cancelled,
                None,
                Some("cancelled before restart".to_string()),
                false,
            ),
            None => (JobState::Queued, None, None, false),
        };
        let job = Job {
            spec,
            key: rj.key.clone(),
            priority: rj.priority,
            seq: rj.seq,
            timeout_ms: rj.timeout_ms,
            state: state_now,
            payload,
            error,
            cached,
            // Deadlines are re-armed from restart: the journal stores
            // the relative budget, not an absolute instant.
            ctl: Arc::new(JobControl::new(if state_now == JobState::Queued {
                rj.timeout_ms
            } else {
                None
            })),
        };
        if state_now == JobState::Queued {
            state.queue.push(QueueEntry {
                priority: rj.priority,
                seq: rj.seq,
                id: rj.id,
            });
            state.queued_count += 1;
            if let Some(k) = &rj.key {
                state.inflight.entry(k.clone()).or_insert(rj.id);
            }
        }
        state.jobs.insert(rj.id, job);
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        // Claim the highest-priority queued job, retiring queue entries
        // whose job was cancelled or timed out while waiting.
        let (id, spec, ctl) = {
            let mut st = inner.state.lock().unwrap();
            'claim: loop {
                if st.shutting_down || st.draining {
                    return;
                }
                while let Some(entry) = st.queue.pop() {
                    let id = entry.id;
                    // A missing job for a queued entry means state was
                    // corrupted by a bug elsewhere; skip the entry
                    // rather than poisoning the mutex for every client.
                    let Some(job) = st.jobs.get_mut(&id) else {
                        continue;
                    };
                    if job.state != JobState::Queued {
                        continue; // cancelled/shed while queued
                    }
                    if job.ctl.should_stop() {
                        st.finish(
                            id,
                            JobState::TimedOut,
                            Some("timed out while queued".into()),
                        );
                        inner.done_cv.notify_all();
                        continue;
                    }
                    job.state = JobState::Running;
                    let claimed = (id, job.spec.clone(), job.ctl.clone());
                    st.queued_count = st.queued_count.saturating_sub(1);
                    break 'claim claimed;
                }
                st = inner.work_cv.wait(st).unwrap();
            }
        };

        // Run outside the lock, with per-job panic isolation.
        let outcome = catch_unwind(AssertUnwindSafe(|| inner.runner.run(&spec, &ctl)));

        let mut st = inner.state.lock().unwrap();
        let timed_out = ctl.deadline.is_some_and(|d| Instant::now() >= d);
        let Some(job) = st.jobs.get_mut(&id) else {
            // Same defensive stance as the claim path.
            retire(&mut st, id);
            inner.done_cv.notify_all();
            continue;
        };
        if job.state == JobState::Running {
            let (state, payload, error) = match outcome {
                Err(_) => (JobState::Failed, None, Some("job panicked".to_string())),
                Ok(Err(e)) if ctl.cancelled() => (JobState::Cancelled, None, Some(e)),
                Ok(Err(e)) if timed_out => (JobState::TimedOut, None, Some(e)),
                Ok(Err(e)) => (JobState::Failed, None, Some(e)),
                Ok(Ok(_)) if ctl.cancelled() => (JobState::Cancelled, None, None),
                Ok(Ok(_)) if timed_out => (JobState::TimedOut, None, None),
                Ok(Ok(payload)) => (JobState::Done, Some(Arc::new(payload)), None),
            };
            job.payload = payload.clone();
            let key = job.key.clone();
            st.finish(id, state, error);
            if let (JobState::Done, Some(key), Some(payload)) = (state, key, payload) {
                st.cache.put(key, payload);
            }
        } else {
            retire(&mut st, id);
        }
        inner.done_cv.notify_all();
    }
}

/// Drop the job's in-flight claim so future submissions of the same key
/// re-execute (or hit the cache).
fn retire(st: &mut State, id: JobId) {
    let key = st.jobs.get(&id).and_then(|j| j.key.clone());
    if let Some(k) = key {
        if st.inflight.get(&k) == Some(&id) {
            st.inflight.remove(&k);
        }
    }
}

fn accept_loop(listener: TcpListener, inner: &Arc<Inner>, stop: &Arc<AtomicBool>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = inner.clone();
                let stop = stop.clone();
                let _ = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(stream, &inner, &stop);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Per-connection request context: the jobs this connection put into
/// the queue, for the live-per-connection bound.
#[derive(Default)]
struct ConnCtx {
    submitted: Vec<JobId>,
}

fn handle_connection(
    stream: TcpStream,
    inner: &Arc<Inner>,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    // One small response line per request: without TCP_NODELAY (and
    // with the line and its terminator written separately) Nagle plus
    // delayed ACK would add ~40-200ms to every round trip.
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    let mut ctx = ConnCtx::default();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut response = match parse(line.trim()) {
            Ok(req) => dispatch(&req, inner, stop, &mut ctx),
            Err(e) => err_line(&format!("bad request: {e}")),
        };
        response.push('\n');
        writer.write_all(response.as_bytes())?;
        writer.flush()?;
    }
}

fn dispatch(
    req: &JsonValue,
    inner: &Arc<Inner>,
    stop: &Arc<AtomicBool>,
    ctx: &mut ConnCtx,
) -> String {
    match field_str(req, "op") {
        Some("submit") => op_submit(req, inner, ctx),
        Some("status") => op_status(req, inner),
        Some("result") => op_result(req, inner),
        Some("cancel") => op_cancel(req, inner),
        Some("stats") => op_stats(inner),
        Some("drain") => {
            let mut st = inner.state.lock().unwrap();
            st.draining = true;
            inner.work_cv.notify_all();
            inner.done_cv.notify_all();
            let running = st
                .jobs
                .values()
                .filter(|j| j.state == JobState::Running)
                .count();
            format!(
                "{{\"ok\":true,\"draining\":true,\"running\":{running},\"queued\":{}}}",
                st.queued_count
            )
        }
        Some("shutdown") => {
            stop.store(true, Ordering::SeqCst);
            let mut st = inner.state.lock().unwrap();
            st.shutting_down = true;
            inner.work_cv.notify_all();
            inner.done_cv.notify_all();
            "{\"ok\":true}".to_string()
        }
        Some(other) => err_line(&format!("unknown op {other:?}")),
        None => err_line("missing op field"),
    }
}

/// Backoff hint for busy rejections: scale with how many queue slots
/// each worker has to clear before new work runs.
fn retry_after_ms(st: &State, workers: usize) -> u64 {
    (25 * (st.queued_count as u64 / workers.max(1) as u64 + 1)).clamp(25, 2000)
}

fn op_submit(req: &JsonValue, inner: &Arc<Inner>, ctx: &mut ConnCtx) -> String {
    let Some(spec) = req.get("spec") else {
        return err_line("submit: missing spec field");
    };
    let priority = field_i64(req, "priority").unwrap_or(0);
    let timeout_ms = field_u64(req, "timeout_ms");
    let key = match inner.runner.config_key(spec) {
        Ok(k) => k,
        Err(e) => return err_line(&format!("submit: {e}")),
    };

    let mut st = inner.state.lock().unwrap();
    if st.shutting_down {
        return err_line("server is shutting down");
    }
    if st.draining {
        return busy_line(
            "draining: not accepting new jobs",
            retry_after_ms(&st, inner.workers),
        );
    }
    st.counters.submitted += 1;

    if let Some(k) = &key {
        if let Some(payload) = st.cache.get(k) {
            st.counters.cache_hits += 1;
            let id = st.next_id;
            st.next_id += 1;
            let seq = st.next_seq;
            st.next_seq += 1;
            // Even a cache-served id must survive kill -9: clients hold
            // the id across a daemon restart and poll it there. Journal
            // the submit and its immediate completion; if a crash lands
            // between the two, replay re-enqueues and deterministic
            // re-execution returns the same bytes.
            if let Err(e) = st.journal(&WalRecord::Submit {
                id,
                priority,
                seq,
                timeout_ms: None,
                key: key.clone(),
                spec_json: render(spec),
            }) {
                return err_line(&format!("journal append failed: {e}"));
            }
            let _ = st.journal(&WalRecord::Complete {
                id,
                state: JobState::Done,
                error: None,
            });
            st.jobs.insert(
                id,
                Job {
                    spec: spec.clone(),
                    key: key.clone(),
                    priority,
                    seq,
                    timeout_ms: None,
                    state: JobState::Done,
                    payload: Some(payload),
                    error: None,
                    cached: true,
                    ctl: Arc::new(JobControl::new(None)),
                },
            );
            inner.done_cv.notify_all();
            return format!("{{\"ok\":true,\"id\":{id},\"cached\":true,\"coalesced\":false}}");
        }
        if let Some(&primary) = st.inflight.get(k) {
            st.counters.coalesced += 1;
            // The duplicate attaches to the primary's id — this is also
            // what makes a client's submit retry after a lost ack
            // idempotent: the retry lands here (or on the cache above)
            // instead of executing the work twice.
            return format!("{{\"ok\":true,\"id\":{primary},\"cached\":false,\"coalesced\":true}}");
        }
    }

    // Backpressure gates, cheapest first: the per-connection bound,
    // then the global queue bound with priority shedding.
    if inner.max_live_per_conn > 0 {
        ctx.submitted
            .retain(|id| st.jobs.get(id).is_some_and(|j| !j.state.is_terminal()));
        if ctx.submitted.len() >= inner.max_live_per_conn {
            st.counters.busy_rejected += 1;
            let hint = retry_after_ms(&st, inner.workers);
            return busy_line(
                &format!(
                    "connection has {} unfinished jobs (limit {})",
                    ctx.submitted.len(),
                    inner.max_live_per_conn
                ),
                hint,
            );
        }
    }
    if inner.max_queue > 0 && st.queued_count >= inner.max_queue {
        // Shed the lowest-priority queued job if the newcomer outranks
        // it (newest-first within the lowest level, preserving FIFO
        // fairness among survivors); otherwise reject with a hint.
        let victim = st
            .jobs
            .iter()
            .filter(|(_, j)| j.state == JobState::Queued)
            .min_by_key(|(_, j)| (j.priority, std::cmp::Reverse(j.seq)))
            .map(|(id, j)| (*id, j.priority));
        match victim {
            Some((vid, vprio)) if vprio < priority => {
                st.finish(
                    vid,
                    JobState::Shed,
                    Some("shed: queue full, preempted by higher-priority work".into()),
                );
                inner.done_cv.notify_all();
            }
            _ => {
                st.counters.busy_rejected += 1;
                let hint = retry_after_ms(&st, inner.workers);
                return busy_line(&format!("queue full ({} jobs)", st.queued_count), hint);
            }
        }
    }

    let id = st.next_id;
    st.next_id += 1;
    let seq = st.next_seq;
    st.next_seq += 1;
    if let Some(k) = &key {
        st.counters.cache_misses += 1;
        st.inflight.insert(k.clone(), id);
    }
    // Journal before acknowledging: an acked job must survive kill -9.
    if let Err(e) = st.journal(&WalRecord::Submit {
        id,
        priority,
        seq,
        timeout_ms,
        key: key.clone(),
        spec_json: render(spec),
    }) {
        // The job never entered the map; drop its in-flight claim
        // directly so later submissions of the key are not orphaned.
        if let Some(k) = &key {
            if st.inflight.get(k) == Some(&id) {
                st.inflight.remove(k);
            }
        }
        return err_line(&format!("journal append failed: {e}"));
    }
    st.jobs.insert(
        id,
        Job {
            spec: spec.clone(),
            key,
            priority,
            seq,
            timeout_ms,
            state: JobState::Queued,
            payload: None,
            error: None,
            cached: false,
            ctl: Arc::new(JobControl::new(timeout_ms)),
        },
    );
    st.queue.push(QueueEntry { priority, seq, id });
    st.queued_count += 1;
    ctx.submitted.push(id);
    inner.work_cv.notify_one();
    format!("{{\"ok\":true,\"id\":{id},\"cached\":false,\"coalesced\":false}}")
}

fn job_response(id: JobId, job: &Job, include_payload: bool) -> String {
    let mut out = format!(
        "{{\"ok\":true,\"id\":{id},\"state\":\"{}\",\"cached\":{}",
        job.state.name(),
        job.cached
    );
    if let Some(e) = &job.error {
        out.push_str(&format!(",\"error\":\"{}\"", esc(e)));
    }
    if include_payload {
        if let Some(p) = &job.payload {
            out.push_str(&format!(",\"payload\":\"{}\"", esc(p)));
        }
    }
    out.push('}');
    out
}

fn op_status(req: &JsonValue, inner: &Arc<Inner>) -> String {
    let Some(id) = field_u64(req, "id") else {
        return err_line("status: missing id field");
    };
    let st = inner.state.lock().unwrap();
    match st.jobs.get(&id) {
        Some(job) => job_response(id, job, false),
        None => err_line(&format!("unknown job id {id}")),
    }
}

fn op_result(req: &JsonValue, inner: &Arc<Inner>) -> String {
    let Some(id) = field_u64(req, "id") else {
        return err_line("result: missing id field");
    };
    let wait = crate::proto::field_bool(req, "wait").unwrap_or(true);
    // A bounded wait lets clients with read deadlines long-poll: the
    // server answers with the current (possibly non-terminal) state
    // when the slice expires, and the client polls again.
    let wait_deadline =
        field_u64(req, "wait_ms").map(|ms| Instant::now() + Duration::from_millis(ms));
    let mut st = inner.state.lock().unwrap();
    loop {
        let Some(job) = st.jobs.get(&id) else {
            return err_line(&format!("unknown job id {id}"));
        };
        // A queued job whose deadline lapses with every worker busy
        // would otherwise wait forever; the waiter trips it.
        if job.state == JobState::Queued && job.ctl.should_stop() {
            st.finish(
                id,
                JobState::TimedOut,
                Some("timed out while queued".into()),
            );
            inner.done_cv.notify_all();
            continue;
        }
        let Some(job) = st.jobs.get(&id) else {
            return err_line(&format!("unknown job id {id}"));
        };
        if job.state.is_terminal() {
            return job_response(id, job, true);
        }
        if !wait {
            return job_response(id, job, false);
        }
        if let Some(d) = wait_deadline {
            if Instant::now() >= d {
                return job_response(id, job, false);
            }
        }
        if st.shutting_down {
            return err_line("server is shutting down");
        }
        let (guard, _) = inner
            .done_cv
            .wait_timeout(st, Duration::from_millis(100))
            .unwrap();
        st = guard;
    }
}

fn op_cancel(req: &JsonValue, inner: &Arc<Inner>) -> String {
    let Some(id) = field_u64(req, "id") else {
        return err_line("cancel: missing id field");
    };
    let mut st = inner.state.lock().unwrap();
    let Some(job) = st.jobs.get_mut(&id) else {
        return err_line(&format!("unknown job id {id}"));
    };
    if job.state.is_terminal() {
        return format!("{{\"ok\":true,\"id\":{id},\"cancelled\":false}}");
    }
    job.ctl.cancel.store(true, Ordering::Relaxed);
    if job.state == JobState::Queued {
        // The worker's lazy pop skips it; mark it now.
        st.finish(id, JobState::Cancelled, None);
    } else {
        // A running job stays Running until its worker observes the
        // flag and returns; journal the intent so the cancel survives
        // a crash before that happens.
        let _ = st.journal(&WalRecord::CancelIntent { id });
    }
    inner.done_cv.notify_all();
    format!("{{\"ok\":true,\"id\":{id},\"cancelled\":true}}")
}

fn op_stats(inner: &Arc<Inner>) -> String {
    let st = inner.state.lock().unwrap();
    let running = st
        .jobs
        .values()
        .filter(|j| j.state == JobState::Running)
        .count();
    let c = &st.counters;
    format!(
        "{{\"ok\":true,\"submitted\":{},\"completed\":{},\"failed\":{},\"cancelled\":{},\
         \"timed_out\":{},\"shed\":{},\"busy_rejected\":{},\"cache_hits\":{},\
         \"cache_misses\":{},\"coalesced\":{},\"replayed\":{},\"journal_errors\":{},\
         \"journal_appends\":{},\"queue_depth\":{},\"queue_cap\":{},\"running\":{},\
         \"workers\":{},\"cache_len\":{},\"draining\":{}}}",
        c.submitted,
        c.completed,
        c.failed,
        c.cancelled,
        c.timed_out,
        c.shed,
        c.busy_rejected,
        c.cache_hits,
        c.cache_misses,
        c.coalesced,
        c.replayed,
        c.journal_errors,
        st.wal.as_ref().map_or(0, |w| w.appended()),
        st.queued_count,
        inner.max_queue,
        running,
        inner.workers,
        st.cache.len(),
        st.draining,
    )
}
