//! The daemon: job queue, worker pool, and the TCP accept loop.
//!
//! All shared state lives behind one mutex with two condition
//! variables: `work_cv` wakes workers when a job is queued, `done_cv`
//! wakes result-waiters when any job reaches a terminal state. Worker
//! threads run jobs with per-job panic isolation; connection handler
//! threads speak the line protocol and never hold the state lock
//! across a blocking wait except through the condvars.

use std::collections::{BinaryHeap, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sim_trace::json::{parse, JsonValue};

use crate::cache::ResultCache;
use crate::proto::{err_line, esc, field_i64, field_str, field_u64};

/// Identifies a submitted job for `status` / `result` / `cancel`.
pub type JobId = u64;

/// Cooperative cancellation and deadline signal handed to a running
/// job. Long-running runners should poll [`JobControl::should_stop`]
/// at convenient boundaries (e.g. between simulation slices) and bail
/// early; the daemon discards the result of a job whose control was
/// tripped either way.
pub struct JobControl {
    cancel: AtomicBool,
    deadline: Option<Instant>,
}

impl JobControl {
    fn new(timeout_ms: Option<u64>) -> JobControl {
        JobControl {
            cancel: AtomicBool::new(false),
            deadline: timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
        }
    }

    /// True once the job has been cancelled or its deadline has passed.
    pub fn should_stop(&self) -> bool {
        self.cancel.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// True once the job has been explicitly cancelled.
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }
}

/// What the daemon serves. Implemented by the embedder (`bench`'s
/// `serve` binary wires this to the slipstream engine).
pub trait JobRunner: Send + Sync + 'static {
    /// Derive the *canonical config string* for a spec — the cache key.
    /// Two specs describing the same simulation must canonicalize
    /// identically (fixed field order, defaults filled in). Return
    /// `Ok(None)` to mark the spec uncacheable, `Err` to reject a
    /// malformed spec at submit time.
    fn config_key(&self, spec: &JsonValue) -> Result<Option<String>, String>;

    /// Execute the spec and return the result payload as JSON text.
    /// The daemon stores and serves the returned string *verbatim*, so
    /// equal work must produce byte-equal payloads.
    fn run(&self, spec: &JsonValue, ctl: &JobControl) -> Result<String, String>;
}

impl<T: JobRunner> JobRunner for Arc<T> {
    fn config_key(&self, spec: &JsonValue) -> Result<Option<String>, String> {
        (**self).config_key(spec)
    }
    fn run(&self, spec: &JsonValue, ctl: &JobControl) -> Result<String, String> {
        (**self).run(spec, ctl)
    }
}

/// Lifecycle of a job. `Done`, `Failed`, `Cancelled`, and `TimedOut`
/// are terminal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the priority queue.
    Queued,
    /// Claimed by a worker and executing.
    Running,
    /// Completed; the payload is available.
    Done,
    /// The runner returned an error or panicked.
    Failed,
    /// Cancelled before completion.
    Cancelled,
    /// Its deadline passed before completion.
    TimedOut,
}

impl JobState {
    /// Wire name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::TimedOut => "timed_out",
        }
    }

    fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

struct Job {
    spec: JsonValue,
    key: Option<String>,
    state: JobState,
    payload: Option<Arc<String>>,
    error: Option<String>,
    cached: bool,
    ctl: Arc<JobControl>,
}

/// Max-heap entry: higher priority first, FIFO (lower sequence number)
/// within a priority level.
#[derive(PartialEq, Eq)]
struct QueueEntry {
    priority: i64,
    seq: u64,
    id: JobId,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &QueueEntry) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &QueueEntry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    timed_out: u64,
    cache_hits: u64,
    cache_misses: u64,
    coalesced: u64,
}

struct State {
    jobs: HashMap<JobId, Job>,
    queue: BinaryHeap<QueueEntry>,
    /// key -> id of the queued/running job computing it; duplicate
    /// submissions attach to this id instead of re-executing.
    inflight: HashMap<String, JobId>,
    cache: ResultCache,
    next_id: JobId,
    next_seq: u64,
    counters: Counters,
    shutting_down: bool,
}

struct Inner {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    runner: Box<dyn JobRunner>,
    workers: usize,
}

/// Daemon configuration. Environment-variable parsing belongs to the
/// embedder; the daemon takes resolved values.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Concurrent job executions.
    pub workers: usize,
    /// In-memory result-cache capacity (payload count; 0 disables).
    pub cache_cap: usize,
    /// On-disk result-cache directory (None disables the disk tier).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            workers: 2,
            cache_cap: 256,
            cache_dir: None,
        }
    }
}

/// A running daemon: worker pool plus TCP accept loop. Dropping the
/// handle does *not* stop the daemon; call [`Server::shutdown`].
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving `runner`.
    pub fn bind(
        addr: &str,
        runner: Box<dyn JobRunner>,
        opts: ServeOptions,
    ) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                jobs: HashMap::new(),
                queue: BinaryHeap::new(),
                inflight: HashMap::new(),
                cache: ResultCache::new(opts.cache_cap, opts.cache_dir),
                next_id: 1,
                next_seq: 0,
                counters: Counters::default(),
                shutting_down: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            runner,
            workers: opts.workers.max(1),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        for w in 0..inner.workers {
            let inner = inner.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&inner))
                    .map_err(|e| format!("spawn worker: {e}"))?,
            );
        }
        {
            let inner = inner.clone();
            let stop = stop.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept".into())
                    .spawn(move || accept_loop(listener, &inner, &stop))
                    .map_err(|e| format!("spawn accept loop: {e}"))?,
            );
        }
        Ok(Server {
            inner,
            addr: local,
            stop,
            threads,
        })
    }

    /// The bound address (resolves the port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting work, wait for running jobs and the accept loop
    /// to finish, and tear the daemon down.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutting_down = true;
            self.inner.work_cv.notify_all();
            self.inner.done_cv.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// True once a client has issued the `shutdown` verb.
    pub fn shutdown_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        // Claim the highest-priority queued job, retiring queue entries
        // whose job was cancelled or timed out while waiting.
        let (id, spec, ctl) = {
            let mut st = inner.state.lock().unwrap();
            'claim: loop {
                if st.shutting_down {
                    return;
                }
                while let Some(entry) = st.queue.pop() {
                    let id = entry.id;
                    let job = st.jobs.get_mut(&id).expect("queued job exists");
                    if job.state != JobState::Queued {
                        continue; // cancelled while queued
                    }
                    if job.ctl.should_stop() {
                        job.state = JobState::TimedOut;
                        job.error = Some("timed out while queued".into());
                        st.counters.timed_out += 1;
                        retire(&mut st, id);
                        inner.done_cv.notify_all();
                        continue;
                    }
                    job.state = JobState::Running;
                    break 'claim (id, job.spec.clone(), job.ctl.clone());
                }
                st = inner.work_cv.wait(st).unwrap();
            }
        };

        // Run outside the lock, with per-job panic isolation.
        let outcome = catch_unwind(AssertUnwindSafe(|| inner.runner.run(&spec, &ctl)));

        let mut st = inner.state.lock().unwrap();
        let timed_out = ctl.deadline.is_some_and(|d| Instant::now() >= d);
        let job = st.jobs.get_mut(&id).expect("running job exists");
        if job.state == JobState::Running {
            let (state, payload, error) = match outcome {
                Err(_) => (JobState::Failed, None, Some("job panicked".to_string())),
                Ok(Err(e)) if ctl.cancelled() => (JobState::Cancelled, None, Some(e)),
                Ok(Err(e)) if timed_out => (JobState::TimedOut, None, Some(e)),
                Ok(Err(e)) => (JobState::Failed, None, Some(e)),
                Ok(Ok(_)) if ctl.cancelled() => (JobState::Cancelled, None, None),
                Ok(Ok(_)) if timed_out => (JobState::TimedOut, None, None),
                Ok(Ok(payload)) => (JobState::Done, Some(Arc::new(payload)), None),
            };
            job.state = state;
            job.payload = payload.clone();
            job.error = error;
            let key = job.key.clone();
            match state {
                JobState::Done => st.counters.completed += 1,
                JobState::Failed => st.counters.failed += 1,
                JobState::Cancelled => st.counters.cancelled += 1,
                JobState::TimedOut => st.counters.timed_out += 1,
                JobState::Queued | JobState::Running => unreachable!(),
            }
            if let (JobState::Done, Some(key), Some(payload)) = (state, key, payload) {
                st.cache.put(key, payload);
            }
        }
        retire(&mut st, id);
        inner.done_cv.notify_all();
    }
}

/// Drop the job's in-flight claim so future submissions of the same key
/// re-execute (or hit the cache).
fn retire(st: &mut State, id: JobId) {
    let key = st.jobs.get(&id).and_then(|j| j.key.clone());
    if let Some(k) = key {
        if st.inflight.get(&k) == Some(&id) {
            st.inflight.remove(&k);
        }
    }
}

fn accept_loop(listener: TcpListener, inner: &Arc<Inner>, stop: &Arc<AtomicBool>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = inner.clone();
                let stop = stop.clone();
                let _ = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(stream, &inner, &stop);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    inner: &Arc<Inner>,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    // One small response line per request: without TCP_NODELAY (and
    // with the line and its terminator written separately) Nagle plus
    // delayed ACK would add ~40-200ms to every round trip.
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut response = match parse(line.trim()) {
            Ok(req) => dispatch(&req, inner, stop),
            Err(e) => err_line(&format!("bad request: {e}")),
        };
        response.push('\n');
        writer.write_all(response.as_bytes())?;
        writer.flush()?;
    }
}

fn dispatch(req: &JsonValue, inner: &Arc<Inner>, stop: &Arc<AtomicBool>) -> String {
    match field_str(req, "op") {
        Some("submit") => op_submit(req, inner),
        Some("status") => op_status(req, inner),
        Some("result") => op_result(req, inner),
        Some("cancel") => op_cancel(req, inner),
        Some("stats") => op_stats(inner),
        Some("shutdown") => {
            stop.store(true, Ordering::SeqCst);
            let mut st = inner.state.lock().unwrap();
            st.shutting_down = true;
            inner.work_cv.notify_all();
            inner.done_cv.notify_all();
            "{\"ok\":true}".to_string()
        }
        Some(other) => err_line(&format!("unknown op {other:?}")),
        None => err_line("missing op field"),
    }
}

fn op_submit(req: &JsonValue, inner: &Arc<Inner>) -> String {
    let Some(spec) = req.get("spec") else {
        return err_line("submit: missing spec field");
    };
    let priority = field_i64(req, "priority").unwrap_or(0);
    let timeout_ms = field_u64(req, "timeout_ms");
    let key = match inner.runner.config_key(spec) {
        Ok(k) => k,
        Err(e) => return err_line(&format!("submit: {e}")),
    };

    let mut st = inner.state.lock().unwrap();
    if st.shutting_down {
        return err_line("server is shutting down");
    }
    st.counters.submitted += 1;
    let id = st.next_id;
    st.next_id += 1;

    if let Some(k) = &key {
        if let Some(payload) = st.cache.get(k) {
            st.counters.cache_hits += 1;
            st.jobs.insert(
                id,
                Job {
                    spec: spec.clone(),
                    key: key.clone(),
                    state: JobState::Done,
                    payload: Some(payload),
                    error: None,
                    cached: true,
                    ctl: Arc::new(JobControl::new(None)),
                },
            );
            inner.done_cv.notify_all();
            return format!("{{\"ok\":true,\"id\":{id},\"cached\":true,\"coalesced\":false}}");
        }
        if let Some(&primary) = st.inflight.get(k) {
            st.counters.coalesced += 1;
            // The duplicate attaches to the primary's id; the fresh id
            // allocated above is simply never used.
            return format!("{{\"ok\":true,\"id\":{primary},\"cached\":false,\"coalesced\":true}}");
        }
        st.counters.cache_misses += 1;
        st.inflight.insert(k.clone(), id);
    }

    let seq = st.next_seq;
    st.next_seq += 1;
    st.jobs.insert(
        id,
        Job {
            spec: spec.clone(),
            key,
            state: JobState::Queued,
            payload: None,
            error: None,
            cached: false,
            ctl: Arc::new(JobControl::new(timeout_ms)),
        },
    );
    st.queue.push(QueueEntry { priority, seq, id });
    inner.work_cv.notify_one();
    format!("{{\"ok\":true,\"id\":{id},\"cached\":false,\"coalesced\":false}}")
}

fn job_response(id: JobId, job: &Job, include_payload: bool) -> String {
    let mut out = format!(
        "{{\"ok\":true,\"id\":{id},\"state\":\"{}\",\"cached\":{}",
        job.state.name(),
        job.cached
    );
    if let Some(e) = &job.error {
        out.push_str(&format!(",\"error\":\"{}\"", esc(e)));
    }
    if include_payload {
        if let Some(p) = &job.payload {
            out.push_str(&format!(",\"payload\":\"{}\"", esc(p)));
        }
    }
    out.push('}');
    out
}

fn op_status(req: &JsonValue, inner: &Arc<Inner>) -> String {
    let Some(id) = field_u64(req, "id") else {
        return err_line("status: missing id field");
    };
    let st = inner.state.lock().unwrap();
    match st.jobs.get(&id) {
        Some(job) => job_response(id, job, false),
        None => err_line(&format!("unknown job id {id}")),
    }
}

fn op_result(req: &JsonValue, inner: &Arc<Inner>) -> String {
    let Some(id) = field_u64(req, "id") else {
        return err_line("result: missing id field");
    };
    let wait = crate::proto::field_bool(req, "wait").unwrap_or(true);
    let mut st = inner.state.lock().unwrap();
    loop {
        let Some(job) = st.jobs.get_mut(&id) else {
            return err_line(&format!("unknown job id {id}"));
        };
        // A queued job whose deadline lapses with every worker busy
        // would otherwise wait forever; the waiter trips it.
        if !job.state.is_terminal() && job.ctl.should_stop() {
            let was_queued = job.state == JobState::Queued;
            if was_queued {
                job.state = JobState::TimedOut;
                job.error = Some("timed out while queued".into());
                st.counters.timed_out += 1;
                retire(&mut st, id);
                inner.done_cv.notify_all();
                continue;
            }
        }
        let job = st.jobs.get(&id).expect("checked above");
        if job.state.is_terminal() {
            return job_response(id, job, true);
        }
        if !wait {
            return job_response(id, job, false);
        }
        if st.shutting_down {
            return err_line("server is shutting down");
        }
        let (guard, _) = inner
            .done_cv
            .wait_timeout(st, Duration::from_millis(100))
            .unwrap();
        st = guard;
    }
}

fn op_cancel(req: &JsonValue, inner: &Arc<Inner>) -> String {
    let Some(id) = field_u64(req, "id") else {
        return err_line("cancel: missing id field");
    };
    let mut st = inner.state.lock().unwrap();
    let Some(job) = st.jobs.get_mut(&id) else {
        return err_line(&format!("unknown job id {id}"));
    };
    if job.state.is_terminal() {
        return format!("{{\"ok\":true,\"id\":{id},\"cancelled\":false}}");
    }
    job.ctl.cancel.store(true, Ordering::Relaxed);
    if job.state == JobState::Queued {
        // The worker's lazy pop skips it; mark it now.
        job.state = JobState::Cancelled;
        st.counters.cancelled += 1;
        retire(&mut st, id);
    }
    // A running job stays Running until its worker observes the flag
    // and returns; the worker then records Cancelled.
    inner.done_cv.notify_all();
    format!("{{\"ok\":true,\"id\":{id},\"cancelled\":true}}")
}

fn op_stats(inner: &Arc<Inner>) -> String {
    let st = inner.state.lock().unwrap();
    let running = st
        .jobs
        .values()
        .filter(|j| j.state == JobState::Running)
        .count();
    let queued = st
        .jobs
        .values()
        .filter(|j| j.state == JobState::Queued)
        .count();
    let c = &st.counters;
    format!(
        "{{\"ok\":true,\"submitted\":{},\"completed\":{},\"failed\":{},\"cancelled\":{},\
         \"timed_out\":{},\"cache_hits\":{},\"cache_misses\":{},\"coalesced\":{},\
         \"queue_depth\":{},\"running\":{},\"workers\":{},\"cache_len\":{}}}",
        c.submitted,
        c.completed,
        c.failed,
        c.cancelled,
        c.timed_out,
        c.cache_hits,
        c.cache_misses,
        c.coalesced,
        queued,
        running,
        inner.workers,
        st.cache.len(),
    )
}
