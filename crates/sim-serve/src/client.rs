//! Resilient blocking client for the line protocol.
//!
//! One request line out, one response line back, per call — but unlike
//! the protocol it speaks, the client assumes the transport is hostile:
//! every socket has read/write deadlines, a dropped or garbled
//! connection is rebuilt transparently, failed requests are resent with
//! seeded jittered exponential backoff, and structured `busy`
//! rejections honor the daemon's `retry_after_ms` hint.
//!
//! ## Why resending is safe
//!
//! A retried `submit` whose first ack was lost lands on the daemon's
//! result cache (the work finished) or coalesces onto the still-running
//! job (it did not), so cacheable work is never executed twice and the
//! returned payload is byte-identical either way. `status`, `result`,
//! `cancel`, `stats`, and `shutdown` are idempotent by construction.
//! The one caveat: an *uncacheable* spec (one whose `config_key` is
//! `None`) may re-execute on a resent submit — payloads are
//! deterministic, so the bytes still match, but side effects and run
//! counters see the extra execution.
//!
//! Any response that cannot be parsed, and any `bad request` rejection,
//! makes the client drop the connection before retrying: a corrupted
//! line means request/response pairing on that connection can no longer
//! be trusted, and resynchronizing on a fresh connection is the only
//! safe move.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use sim_trace::json::{parse, JsonValue};

use crate::chaos::splitmix64_mix;
use crate::proto::{field_bool, field_str, field_u64};
use crate::server::JobId;

/// Acknowledgement of a `submit`.
#[derive(Clone, Debug)]
pub struct SubmitAck {
    /// Job id to poll; for a coalesced submit, the primary job's id.
    pub id: JobId,
    /// The result was served from the cache without running anything.
    pub cached: bool,
    /// The submit attached to an identical in-flight job.
    pub coalesced: bool,
}

/// Terminal outcome of a job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job id.
    pub id: JobId,
    /// Terminal state name: `done`, `failed`, `cancelled`, `timed_out`,
    /// `shed`.
    pub state: String,
    /// The payload, byte-identical to what the runner produced
    /// (present when `state == "done"`).
    pub payload: Option<String>,
    /// The error message (present for `failed` and some `timed_out`).
    pub error: Option<String>,
    /// The payload came from the result cache.
    pub cached: bool,
}

/// Daemon counters from the `stats` verb.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Jobs submitted (including cache hits and coalesced submits).
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs that failed or panicked.
    pub failed: u64,
    /// Jobs cancelled before completion.
    pub cancelled: u64,
    /// Jobs whose deadline passed before completion.
    pub timed_out: u64,
    /// Queued jobs evicted to make room for higher-priority work.
    pub shed: u64,
    /// Submits rejected with a structured `busy` response.
    pub busy_rejected: u64,
    /// Submissions answered from the result cache.
    pub cache_hits: u64,
    /// Submissions that had to execute.
    pub cache_misses: u64,
    /// Submissions that attached to an identical in-flight job.
    pub coalesced: u64,
    /// Jobs restored from the journal at startup.
    pub replayed: u64,
    /// Journal appends that failed (should be zero).
    pub journal_errors: u64,
    /// Records appended to the journal by this incarnation.
    pub journal_appends: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: u64,
    /// Configured queue bound (0 = unbounded).
    pub queue_cap: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Worker threads serving the queue.
    pub workers: u64,
    /// Payloads in the in-memory cache tier.
    pub cache_len: u64,
    /// The daemon is draining: running jobs finish, submits bounce.
    pub draining: bool,
}

/// Retry, deadline, and backoff knobs for [`Client`]. All durations
/// are generous defaults tuned for a daemon on the same host; tests
/// that want fail-fast behavior shrink them.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Deadline for establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Read/write deadline on an established connection. Result waits
    /// stay under it by long-polling in bounded slices.
    pub io_timeout: Duration,
    /// Transport-failure retries per request (connect errors, resets,
    /// truncated or garbled responses) before giving up.
    pub max_attempts: u32,
    /// First backoff delay; doubles per attempt (with jitter).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Structured-`busy` retries per request. Counted separately from
    /// transport failures: a loaded-but-honest daemon should not eat
    /// the budget reserved for a broken network.
    pub busy_attempts: u32,
    /// Seed for the jitter stream, so a test run's retry timing is
    /// reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(5),
            max_attempts: 8,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            busy_attempts: 64,
            seed: 0x5eed_0fc0_ffee,
        }
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A blocking connection to a `sim-serve` daemon that survives the
/// daemon restarting, the connection resetting, and responses arriving
/// torn or garbled. See the module docs for the resend-safety argument.
pub struct Client {
    addr: String,
    policy: RetryPolicy,
    rng: u64,
    conn: Option<Conn>,
}

impl Client {
    /// Connect to a daemon at `addr` (e.g. `"127.0.0.1:4999"`) with the
    /// default [`RetryPolicy`]. Fails fast when nothing is listening.
    pub fn connect(addr: &str) -> Result<Client, String> {
        Client::connect_with(addr, RetryPolicy::default())
    }

    /// [`Client::connect`] with explicit retry/deadline knobs.
    pub fn connect_with(addr: &str, policy: RetryPolicy) -> Result<Client, String> {
        let mut client = Client {
            addr: addr.to_string(),
            policy,
            rng: splitmix64_mix(policy.seed ^ 0x9e37_79b9_7f4a_7c15),
            conn: None,
        };
        client.conn = Some(client.dial()?);
        Ok(client)
    }

    fn dial(&self) -> Result<Conn, String> {
        let addrs: Vec<_> = self
            .addr
            .to_socket_addrs()
            .map_err(|e| format!("resolve {}: {e}", self.addr))?
            .collect();
        let mut last = format!("resolve {}: no addresses", self.addr);
        for sa in addrs {
            match TcpStream::connect_timeout(&sa, self.policy.connect_timeout) {
                Ok(stream) => {
                    // One small request line per round trip: Nagle +
                    // delayed ACK would add ~40-200ms to every call.
                    stream
                        .set_nodelay(true)
                        .map_err(|e| format!("set_nodelay: {e}"))?;
                    stream
                        .set_read_timeout(Some(self.policy.io_timeout))
                        .map_err(|e| format!("set_read_timeout: {e}"))?;
                    stream
                        .set_write_timeout(Some(self.policy.io_timeout))
                        .map_err(|e| format!("set_write_timeout: {e}"))?;
                    let reader = BufReader::new(
                        stream
                            .try_clone()
                            .map_err(|e| format!("clone stream: {e}"))?,
                    );
                    return Ok(Conn {
                        reader,
                        writer: stream,
                    });
                }
                Err(e) => last = format!("connect {sa}: {e}"),
            }
        }
        Err(last)
    }

    /// Next jittered backoff delay for `attempt` (0-based): the
    /// classic halved-then-randomized exponential, from a seeded
    /// SplitMix64 stream so test timing is reproducible.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let base = self.policy.backoff_base.as_millis() as u64;
        let cap = self.policy.backoff_cap.as_millis() as u64;
        let full = base.saturating_mul(1u64 << attempt.min(20)).min(cap).max(1);
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let draw = splitmix64_mix(self.rng);
        Duration::from_millis(full / 2 + draw % (full / 2 + 1))
    }

    /// One request/response exchange on the current connection.
    fn exchange(conn: &mut Conn, request: &str) -> Result<JsonValue, String> {
        // Single write per request: two small writes would hand Nagle a
        // partial segment to sit on.
        let mut line = String::with_capacity(request.len() + 1);
        line.push_str(request);
        line.push('\n');
        conn.writer
            .write_all(line.as_bytes())
            .and_then(|()| conn.writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut line = String::new();
        let n = conn
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("receive: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        parse(line.trim()).map_err(|e| format!("bad response: {e}"))
    }

    /// Issue a request, retrying transport failures (with reconnect and
    /// backoff) and `busy` rejections (honoring the daemon's hint).
    /// Only a definitive application-level error comes back as `Err`
    /// without exhausting a retry budget.
    fn call(&mut self, request: &str) -> Result<JsonValue, String> {
        let mut transport_failures = 0u32;
        let mut busy_rejections = 0u32;
        let mut last;
        loop {
            if self.conn.is_none() {
                match self.dial() {
                    Ok(c) => self.conn = Some(c),
                    Err(e) => {
                        last = e;
                        transport_failures += 1;
                        if transport_failures >= self.policy.max_attempts {
                            return Err(format!(
                                "request failed after {transport_failures} attempts: {last}"
                            ));
                        }
                        let delay = self.backoff(transport_failures);
                        std::thread::sleep(delay);
                        continue;
                    }
                }
            }
            let conn = self.conn.as_mut().expect("dialed above");
            match Self::exchange(conn, request) {
                Ok(v) => {
                    if field_bool(&v, "ok") == Some(true) {
                        return Ok(v);
                    }
                    let error = field_str(&v, "error")
                        .unwrap_or("unknown error")
                        .to_string();
                    if field_bool(&v, "busy") == Some(true) {
                        busy_rejections += 1;
                        if busy_rejections >= self.policy.busy_attempts {
                            return Err(format!(
                                "still busy after {busy_rejections} attempts: {error}"
                            ));
                        }
                        let hint = field_u64(&v, "retry_after_ms").unwrap_or(50);
                        let jitter = self.backoff(0);
                        std::thread::sleep(Duration::from_millis(hint) + jitter);
                        continue;
                    }
                    if error.starts_with("bad request") {
                        // The daemon rejected a line we did not send as
                        // written — transport corruption. The response
                        // stream may now be misaligned with our
                        // requests; resynchronize on a new connection.
                        self.conn = None;
                        last = error;
                        transport_failures += 1;
                        if transport_failures >= self.policy.max_attempts {
                            return Err(format!(
                                "request failed after {transport_failures} attempts: {last}"
                            ));
                        }
                        let delay = self.backoff(transport_failures);
                        std::thread::sleep(delay);
                        continue;
                    }
                    return Err(error);
                }
                Err(e) => {
                    self.conn = None;
                    last = e;
                    transport_failures += 1;
                    if transport_failures >= self.policy.max_attempts {
                        return Err(format!(
                            "request failed after {transport_failures} attempts: {last}"
                        ));
                    }
                    let delay = self.backoff(transport_failures);
                    std::thread::sleep(delay);
                }
            }
        }
    }

    /// Submit a job spec (a JSON object as text). Higher `priority`
    /// runs first; `timeout_ms` bounds queue wait plus execution.
    pub fn submit(
        &mut self,
        spec_json: &str,
        priority: i64,
        timeout_ms: Option<u64>,
    ) -> Result<SubmitAck, String> {
        let timeout = match timeout_ms {
            Some(ms) => format!(",\"timeout_ms\":{ms}"),
            None => String::new(),
        };
        let v = self.call(&format!(
            "{{\"op\":\"submit\",\"priority\":{priority}{timeout},\"spec\":{spec_json}}}"
        ))?;
        Ok(SubmitAck {
            id: field_u64(&v, "id").ok_or("submit ack missing id")?,
            cached: field_bool(&v, "cached").unwrap_or(false),
            coalesced: field_bool(&v, "coalesced").unwrap_or(false),
        })
    }

    /// Current state name of a job, without waiting.
    pub fn status(&mut self, id: JobId) -> Result<String, String> {
        let v = self.call(&format!("{{\"op\":\"status\",\"id\":{id}}}"))?;
        Ok(field_str(&v, "state").unwrap_or("unknown").to_string())
    }

    /// Block until the job reaches a terminal state and return it.
    ///
    /// Implemented as a long-poll loop: each round trip asks the daemon
    /// to wait a bounded slice (comfortably under the socket read
    /// deadline) and returns the current state, so a job that runs for
    /// minutes never trips the transport timeout and a daemon restart
    /// mid-wait is survived by the next poll.
    pub fn result(&mut self, id: JobId) -> Result<JobOutcome, String> {
        let slice_ms = (self.policy.io_timeout.as_millis() as u64 / 2).clamp(50, 2000);
        loop {
            let v = self.call(&format!(
                "{{\"op\":\"result\",\"id\":{id},\"wait\":true,\"wait_ms\":{slice_ms}}}"
            ))?;
            let state = field_str(&v, "state").unwrap_or("unknown").to_string();
            if matches!(state.as_str(), "queued" | "running") {
                continue;
            }
            return Ok(JobOutcome {
                id,
                state,
                payload: field_str(&v, "payload").map(|s| s.to_string()),
                error: field_str(&v, "error").map(|s| s.to_string()),
                cached: field_bool(&v, "cached").unwrap_or(false),
            });
        }
    }

    /// Submit and wait; error unless the job completes with a payload.
    pub fn run_to_payload(
        &mut self,
        spec_json: &str,
        priority: i64,
        timeout_ms: Option<u64>,
    ) -> Result<(SubmitAck, String), String> {
        let ack = self.submit(spec_json, priority, timeout_ms)?;
        let outcome = self.result(ack.id)?;
        match (outcome.state.as_str(), outcome.payload) {
            ("done", Some(p)) => Ok((ack, p)),
            (state, _) => Err(format!(
                "job {} ended {state}{}",
                ack.id,
                outcome.error.map(|e| format!(": {e}")).unwrap_or_default()
            )),
        }
    }

    /// Cancel a job. Returns true when the job was still live.
    pub fn cancel(&mut self, id: JobId) -> Result<bool, String> {
        let v = self.call(&format!("{{\"op\":\"cancel\",\"id\":{id}}}"))?;
        Ok(field_bool(&v, "cancelled").unwrap_or(false))
    }

    /// Fetch daemon counters, plus the raw response line for logging.
    pub fn stats(&mut self) -> Result<(ServeStats, String), String> {
        let v = self.call("{\"op\":\"stats\"}")?;
        let g = |k: &str| field_u64(&v, k).unwrap_or(0);
        let stats = ServeStats {
            submitted: g("submitted"),
            completed: g("completed"),
            failed: g("failed"),
            cancelled: g("cancelled"),
            timed_out: g("timed_out"),
            shed: g("shed"),
            busy_rejected: g("busy_rejected"),
            cache_hits: g("cache_hits"),
            cache_misses: g("cache_misses"),
            coalesced: g("coalesced"),
            replayed: g("replayed"),
            journal_errors: g("journal_errors"),
            journal_appends: g("journal_appends"),
            queue_depth: g("queue_depth"),
            queue_cap: g("queue_cap"),
            running: g("running"),
            workers: g("workers"),
            cache_len: g("cache_len"),
            draining: field_bool(&v, "draining").unwrap_or(false),
        };
        let mut line = String::from("{");
        let mut first = true;
        for (k, val) in [
            ("submitted", stats.submitted),
            ("completed", stats.completed),
            ("failed", stats.failed),
            ("cancelled", stats.cancelled),
            ("timed_out", stats.timed_out),
            ("shed", stats.shed),
            ("busy_rejected", stats.busy_rejected),
            ("cache_hits", stats.cache_hits),
            ("cache_misses", stats.cache_misses),
            ("coalesced", stats.coalesced),
            ("replayed", stats.replayed),
            ("journal_errors", stats.journal_errors),
            ("journal_appends", stats.journal_appends),
            ("queue_depth", stats.queue_depth),
            ("queue_cap", stats.queue_cap),
            ("running", stats.running),
            ("workers", stats.workers),
            ("cache_len", stats.cache_len),
            ("draining", stats.draining as u64),
        ] {
            if !first {
                line.push(',');
            }
            first = false;
            line.push_str(&format!("\"{k}\":{val}"));
        }
        line.push('}');
        Ok((stats, line))
    }

    /// Ask the daemon to stop claiming new jobs and finish the running
    /// ones; queued jobs stay journaled for the next incarnation.
    pub fn drain(&mut self) -> Result<(), String> {
        self.call("{\"op\":\"drain\"}").map(|_| ())
    }

    /// Ask the daemon to stop accepting work and shut down.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.call("{\"op\":\"shutdown\"}").map(|_| ())
    }
}
