//! Thin blocking client for the line protocol.
//!
//! One request line out, one response line back, per call. The client
//! is deliberately dumb: it does not retry, pool connections, or
//! interpret payloads — payload text is handed back exactly as the
//! daemon stored it.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use sim_trace::json::{parse, JsonValue};

use crate::proto::{field_bool, field_str, field_u64};
use crate::server::JobId;

/// Acknowledgement of a `submit`.
#[derive(Clone, Debug)]
pub struct SubmitAck {
    /// Job id to poll; for a coalesced submit, the primary job's id.
    pub id: JobId,
    /// The result was served from the cache without running anything.
    pub cached: bool,
    /// The submit attached to an identical in-flight job.
    pub coalesced: bool,
}

/// Terminal outcome of a job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job id.
    pub id: JobId,
    /// Terminal state name: `done`, `failed`, `cancelled`, `timed_out`.
    pub state: String,
    /// The payload, byte-identical to what the runner produced
    /// (present when `state == "done"`).
    pub payload: Option<String>,
    /// The error message (present for `failed` and some `timed_out`).
    pub error: Option<String>,
    /// The payload came from the result cache.
    pub cached: bool,
}

/// Daemon counters from the `stats` verb.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Jobs submitted (including cache hits and coalesced submits).
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs that failed or panicked.
    pub failed: u64,
    /// Jobs cancelled before completion.
    pub cancelled: u64,
    /// Jobs whose deadline passed before completion.
    pub timed_out: u64,
    /// Submissions answered from the result cache.
    pub cache_hits: u64,
    /// Submissions that had to execute.
    pub cache_misses: u64,
    /// Submissions that attached to an identical in-flight job.
    pub coalesced: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Worker threads serving the queue.
    pub workers: u64,
    /// Payloads in the in-memory cache tier.
    pub cache_len: u64,
}

/// A blocking connection to a `sim-serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a daemon at `addr` (e.g. `"127.0.0.1:4999"`).
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        // One small request line per round trip: Nagle + delayed ACK
        // would add ~40-200ms to every call.
        stream
            .set_nodelay(true)
            .map_err(|e| format!("set_nodelay: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("clone stream: {e}"))?,
        );
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    fn call(&mut self, request: &str) -> Result<JsonValue, String> {
        // Single write per request: two small writes would hand Nagle a
        // partial segment to sit on.
        let mut line = String::with_capacity(request.len() + 1);
        line.push_str(request);
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("receive: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        let v = parse(line.trim()).map_err(|e| format!("bad response: {e}"))?;
        if field_bool(&v, "ok") != Some(true) {
            return Err(field_str(&v, "error")
                .unwrap_or("unknown error")
                .to_string());
        }
        Ok(v)
    }

    /// Submit a job spec (a JSON object as text). Higher `priority`
    /// runs first; `timeout_ms` bounds queue wait plus execution.
    pub fn submit(
        &mut self,
        spec_json: &str,
        priority: i64,
        timeout_ms: Option<u64>,
    ) -> Result<SubmitAck, String> {
        let timeout = match timeout_ms {
            Some(ms) => format!(",\"timeout_ms\":{ms}"),
            None => String::new(),
        };
        let v = self.call(&format!(
            "{{\"op\":\"submit\",\"priority\":{priority}{timeout},\"spec\":{spec_json}}}"
        ))?;
        Ok(SubmitAck {
            id: field_u64(&v, "id").ok_or("submit ack missing id")?,
            cached: field_bool(&v, "cached").unwrap_or(false),
            coalesced: field_bool(&v, "coalesced").unwrap_or(false),
        })
    }

    /// Current state name of a job, without waiting.
    pub fn status(&mut self, id: JobId) -> Result<String, String> {
        let v = self.call(&format!("{{\"op\":\"status\",\"id\":{id}}}"))?;
        Ok(field_str(&v, "state").unwrap_or("unknown").to_string())
    }

    /// Block until the job reaches a terminal state and return it.
    pub fn result(&mut self, id: JobId) -> Result<JobOutcome, String> {
        let v = self.call(&format!("{{\"op\":\"result\",\"id\":{id},\"wait\":true}}"))?;
        Ok(JobOutcome {
            id,
            state: field_str(&v, "state").unwrap_or("unknown").to_string(),
            payload: field_str(&v, "payload").map(|s| s.to_string()),
            error: field_str(&v, "error").map(|s| s.to_string()),
            cached: field_bool(&v, "cached").unwrap_or(false),
        })
    }

    /// Submit and wait; error unless the job completes with a payload.
    pub fn run_to_payload(
        &mut self,
        spec_json: &str,
        priority: i64,
        timeout_ms: Option<u64>,
    ) -> Result<(SubmitAck, String), String> {
        let ack = self.submit(spec_json, priority, timeout_ms)?;
        let outcome = self.result(ack.id)?;
        match (outcome.state.as_str(), outcome.payload) {
            ("done", Some(p)) => Ok((ack, p)),
            (state, _) => Err(format!(
                "job {} ended {state}{}",
                ack.id,
                outcome.error.map(|e| format!(": {e}")).unwrap_or_default()
            )),
        }
    }

    /// Cancel a job. Returns true when the job was still live.
    pub fn cancel(&mut self, id: JobId) -> Result<bool, String> {
        let v = self.call(&format!("{{\"op\":\"cancel\",\"id\":{id}}}"))?;
        Ok(field_bool(&v, "cancelled").unwrap_or(false))
    }

    /// Fetch daemon counters, plus the raw response line for logging.
    pub fn stats(&mut self) -> Result<(ServeStats, String), String> {
        let v = self.call("{\"op\":\"stats\"}")?;
        let g = |k: &str| field_u64(&v, k).unwrap_or(0);
        let stats = ServeStats {
            submitted: g("submitted"),
            completed: g("completed"),
            failed: g("failed"),
            cancelled: g("cancelled"),
            timed_out: g("timed_out"),
            cache_hits: g("cache_hits"),
            cache_misses: g("cache_misses"),
            coalesced: g("coalesced"),
            queue_depth: g("queue_depth"),
            running: g("running"),
            workers: g("workers"),
            cache_len: g("cache_len"),
        };
        let mut line = String::from("{");
        let mut first = true;
        for (k, val) in [
            ("submitted", stats.submitted),
            ("completed", stats.completed),
            ("failed", stats.failed),
            ("cancelled", stats.cancelled),
            ("timed_out", stats.timed_out),
            ("cache_hits", stats.cache_hits),
            ("cache_misses", stats.cache_misses),
            ("coalesced", stats.coalesced),
            ("queue_depth", stats.queue_depth),
            ("running", stats.running),
            ("workers", stats.workers),
            ("cache_len", stats.cache_len),
        ] {
            if !first {
                line.push(',');
            }
            first = false;
            line.push_str(&format!("\"{k}\":{val}"));
        }
        line.push('}');
        Ok((stats, line))
    }

    /// Ask the daemon to stop accepting work and shut down.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.call("{\"op\":\"shutdown\"}").map(|_| ())
    }
}
