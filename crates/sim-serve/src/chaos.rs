//! Deterministic chaos proxy for the line protocol.
//!
//! A TCP forwarder that sits between a client and the daemon and
//! injects transport faults — connection resets, partial writes,
//! garbage lines, truncated lines, latency — on a schedule derived
//! *purely* from a seed. The same seed produces the same fault schedule
//! on every run, so a chaos campaign that finds a bug is replayable
//! from its seed alone.
//!
//! ## Determinism model
//!
//! The proxy never consults a clock or an OS random source to decide
//! *what* to inject. Each forwarded line is an **event**, identified by
//! `(connection index, direction, event index)`; the action for an
//! event is a pure function of that triple and the seed
//! ([`ChaosConfig::action`]), computed by hashing the triple through
//! SplitMix64. Connections are numbered in accept order, so a client
//! that opens connections sequentially (every harness in this repo
//! does) sees an identical fault schedule on every run with the same
//! seed. What *timing* the faults produce still depends on the host;
//! determinism is of the schedule, not the wall clock — which is
//! exactly what replayability needs, since the protocol's correctness
//! contract is timing-independent.
//!
//! ## Fault vocabulary
//!
//! - [`FaultAction::Reset`] — both sockets are shut down mid-line: the
//!   client sees a dropped connection, the daemon sees EOF.
//! - [`FaultAction::Garbage`] — a line of non-JSON bytes is injected
//!   before the real line, exercising the peer's parse-error path.
//! - [`FaultAction::Truncate`] — the line's tail (including its
//!   newline) is dropped, so it merges with the next line on the peer.
//! - [`FaultAction::Split`] — the line is written in two halves with a
//!   flush and a tiny pause between, exercising partial-read handling.
//! - [`FaultAction::Delay`] — the line is forwarded after a bounded
//!   sleep, exercising client read deadlines.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// SplitMix64 step: the workspace's standard small deterministic RNG.
pub fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

/// SplitMix64 output function over a state word.
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Direction of a forwarded line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Request bytes, client → daemon.
    ClientToServer,
    /// Response bytes, daemon → client.
    ServerToClient,
}

/// What to do with one forwarded line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Forward unchanged.
    Forward,
    /// Shut the connection down without forwarding.
    Reset,
    /// Inject a garbage line, then forward the real line.
    Garbage,
    /// Forward only the first half of the line, without its newline.
    Truncate,
    /// Forward in two flushed halves with a short pause between.
    Split,
    /// Sleep for the given milliseconds, then forward.
    Delay(u64),
}

/// Fault rates (per-mille per event) and the schedule seed.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Schedule seed: same seed, same fault schedule.
    pub seed: u64,
    /// Connection resets per 1000 events.
    pub reset_per_mille: u32,
    /// Garbage-line injections per 1000 events.
    pub garbage_per_mille: u32,
    /// Line truncations per 1000 events.
    pub truncate_per_mille: u32,
    /// Partial (split) writes per 1000 events.
    pub split_per_mille: u32,
    /// Latency injections per 1000 events.
    pub delay_per_mille: u32,
    /// Upper bound on injected latency, milliseconds.
    pub max_delay_ms: u64,
}

impl ChaosConfig {
    /// Mild chaos: mostly delays and splits, occasional resets.
    pub fn calm(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            reset_per_mille: 20,
            garbage_per_mille: 20,
            truncate_per_mille: 10,
            split_per_mille: 100,
            delay_per_mille: 100,
            max_delay_ms: 5,
        }
    }

    /// Aggressive chaos: every fault class frequent. Roughly one event
    /// in three is faulted.
    pub fn storm(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            reset_per_mille: 60,
            garbage_per_mille: 80,
            truncate_per_mille: 60,
            split_per_mille: 100,
            delay_per_mille: 60,
            max_delay_ms: 10,
        }
    }

    /// The action for event `idx` of direction `dir` on connection
    /// `conn` — a pure function of `(self, conn, dir, idx)`.
    pub fn action(&self, conn: u64, dir: Dir, idx: u64) -> FaultAction {
        // Derive an independent state word per event by walking the
        // SplitMix64 sequence from a triple-specific offset; mixing
        // decorrelates neighbouring triples.
        let dir_bit = match dir {
            Dir::ClientToServer => 0u64,
            Dir::ServerToClient => 1u64,
        };
        let mut state = self
            .seed
            .wrapping_add(conn.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(dir_bit.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(idx.wrapping_mul(0x94D0_49BB_1331_11EB));
        splitmix64(&mut state);
        let draw = splitmix64_mix(state) % 1000;
        // Fixed check order; bands are disjoint so the per-mille rates
        // compose additively (their sum should stay under 1000).
        let mut floor = 0u64;
        for (rate, act) in [
            (self.reset_per_mille, FaultAction::Reset),
            (self.garbage_per_mille, FaultAction::Garbage),
            (self.truncate_per_mille, FaultAction::Truncate),
            (self.split_per_mille, FaultAction::Split),
        ] {
            if draw < floor + rate as u64 {
                return act;
            }
            floor += rate as u64;
        }
        if draw < floor + self.delay_per_mille as u64 {
            let ms = splitmix64_mix(state.wrapping_add(1)) % self.max_delay_ms.max(1);
            return FaultAction::Delay(ms + 1);
        }
        FaultAction::Forward
    }
}

/// Counts of injected faults, for reporting and for asserting that a
/// campaign actually exercised every fault class.
#[derive(Debug, Default)]
pub struct ChaosCounters {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Resets injected.
    pub resets: AtomicU64,
    /// Garbage lines injected.
    pub garbage: AtomicU64,
    /// Lines truncated.
    pub truncates: AtomicU64,
    /// Split writes performed.
    pub splits: AtomicU64,
    /// Delays injected.
    pub delays: AtomicU64,
}

impl ChaosCounters {
    /// Total faults injected across all classes.
    pub fn total_faults(&self) -> u64 {
        self.resets.load(Ordering::Relaxed)
            + self.garbage.load(Ordering::Relaxed)
            + self.truncates.load(Ordering::Relaxed)
            + self.splits.load(Ordering::Relaxed)
            + self.delays.load(Ordering::Relaxed)
    }
}

/// A running chaos proxy. Dropping the handle does not stop it; call
/// [`ChaosProxy::stop`].
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<ChaosCounters>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Listen on `listen` (e.g. `"127.0.0.1:0"`) and forward every
    /// connection to `upstream` with faults injected per `cfg`.
    pub fn bind(listen: &str, upstream: &str, cfg: ChaosConfig) -> Result<ChaosProxy, String> {
        let listener =
            TcpListener::bind(listen).map_err(|e| format!("chaos bind {listen}: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("chaos local_addr: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("chaos set_nonblocking: {e}"))?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ChaosCounters::default());
        let upstream = upstream.to_string();
        let accept_thread = {
            let stop = stop.clone();
            let counters = counters.clone();
            std::thread::Builder::new()
                .name("chaos-accept".into())
                .spawn(move || accept_loop(listener, &upstream, cfg, &stop, &counters))
                .map_err(|e| format!("chaos spawn: {e}"))?
        };
        Ok(ChaosProxy {
            addr,
            stop,
            counters,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Fault counters.
    pub fn counters(&self) -> &ChaosCounters {
        &self.counters
    }

    /// Stop accepting connections and join the accept loop. In-flight
    /// forwarder threads die when their sockets close.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: &str,
    cfg: ChaosConfig,
    stop: &Arc<AtomicBool>,
    counters: &Arc<ChaosCounters>,
) {
    let mut conn_index = 0u64;
    loop {
        match listener.accept() {
            Ok((client, _)) => {
                let conn = conn_index;
                conn_index += 1;
                counters.connections.fetch_add(1, Ordering::Relaxed);
                match TcpStream::connect(upstream) {
                    Ok(server) => {
                        let _ = client.set_nodelay(true);
                        let _ = server.set_nodelay(true);
                        spawn_forwarder(
                            client.try_clone(),
                            server.try_clone(),
                            cfg,
                            conn,
                            Dir::ClientToServer,
                            counters.clone(),
                        );
                        spawn_forwarder(
                            Ok(server),
                            Ok(client),
                            cfg,
                            conn,
                            Dir::ServerToClient,
                            counters.clone(),
                        );
                    }
                    Err(_) => {
                        // Upstream down (e.g. daemon mid-restart): the
                        // client sees an immediate close and retries.
                        let _ = client.shutdown(Shutdown::Both);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn spawn_forwarder(
    from: std::io::Result<TcpStream>,
    to: std::io::Result<TcpStream>,
    cfg: ChaosConfig,
    conn: u64,
    dir: Dir,
    counters: Arc<ChaosCounters>,
) {
    let (Ok(from), Ok(to)) = (from, to) else {
        return;
    };
    let _ = std::thread::Builder::new()
        .name(format!("chaos-fwd-{conn}"))
        .spawn(move || forward(from, to, cfg, conn, dir, &counters));
}

/// Cap on a single buffered line; protocol lines are far smaller, and a
/// run-away peer should not make the proxy balloon.
const MAX_LINE: usize = 1 << 22;

fn forward(
    from: TcpStream,
    mut to: TcpStream,
    cfg: ChaosConfig,
    conn: u64,
    dir: Dir,
    counters: &ChaosCounters,
) {
    let raw_from = match from.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(from);
    let mut line: Vec<u8> = Vec::new();
    let mut idx = 0u64;
    loop {
        line.clear();
        match read_capped_line(&mut reader, &mut line) {
            Ok(0) | Err(_) => {
                // Upstream EOF or error: propagate the close.
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
            Ok(_) => {}
        }
        let action = cfg.action(conn, dir, idx);
        idx += 1;
        let ok = match action {
            FaultAction::Forward => to.write_all(&line).is_ok(),
            FaultAction::Reset => {
                counters.resets.fetch_add(1, Ordering::Relaxed);
                let _ = to.shutdown(Shutdown::Both);
                let _ = raw_from.shutdown(Shutdown::Both);
                return;
            }
            FaultAction::Garbage => {
                counters.garbage.fetch_add(1, Ordering::Relaxed);
                to.write_all(b"\x01!chaos-garbage!!\n").is_ok() && to.write_all(&line).is_ok()
            }
            FaultAction::Truncate => {
                counters.truncates.fetch_add(1, Ordering::Relaxed);
                to.write_all(&line[..line.len() / 2]).is_ok()
            }
            FaultAction::Split => {
                counters.splits.fetch_add(1, Ordering::Relaxed);
                let mid = line.len() / 2;
                to.write_all(&line[..mid]).is_ok() && to.flush().is_ok() && {
                    std::thread::sleep(Duration::from_millis(1));
                    to.write_all(&line[mid..]).is_ok()
                }
            }
            FaultAction::Delay(ms) => {
                counters.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(ms));
                to.write_all(&line).is_ok()
            }
        };
        if !ok || to.flush().is_err() {
            let _ = raw_from.shutdown(Shutdown::Both);
            return;
        }
    }
}

/// `read_until(b'\n')` with a size cap; oversized lines are forwarded
/// in capped chunks (they count as one event each).
fn read_capped_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
) -> std::io::Result<usize> {
    let mut total = 0;
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(total);
        }
        let take = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => i + 1,
            None => buf.len(),
        };
        let take = take.min(MAX_LINE - line.len());
        let done = buf[..take].last() == Some(&b'\n');
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        total += take;
        if done || line.len() >= MAX_LINE {
            return Ok(total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_triple() {
        let a = ChaosConfig::storm(42);
        let b = ChaosConfig::storm(42);
        for conn in 0..4 {
            for dir in [Dir::ClientToServer, Dir::ServerToClient] {
                for idx in 0..256 {
                    assert_eq!(a.action(conn, dir, idx), b.action(conn, dir, idx));
                }
            }
        }
    }

    #[test]
    fn different_seeds_diverge_and_all_classes_occur() {
        let a = ChaosConfig::storm(1);
        let b = ChaosConfig::storm(2);
        let mut diverged = false;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..4096 {
            let act = a.action(0, Dir::ClientToServer, idx);
            seen.insert(std::mem::discriminant(&act));
            if act != b.action(0, Dir::ClientToServer, idx) {
                diverged = true;
            }
        }
        assert!(diverged, "seeds 1 and 2 must produce different schedules");
        assert!(
            seen.len() >= 5,
            "storm must exercise every fault class: {seen:?}"
        );
    }

    #[test]
    fn zero_rates_never_fault() {
        let cfg = ChaosConfig {
            seed: 7,
            reset_per_mille: 0,
            garbage_per_mille: 0,
            truncate_per_mille: 0,
            split_per_mille: 0,
            delay_per_mille: 0,
            max_delay_ms: 0,
        };
        for idx in 0..1000 {
            assert_eq!(
                cfg.action(3, Dir::ServerToClient, idx),
                FaultAction::Forward
            );
        }
    }
}
