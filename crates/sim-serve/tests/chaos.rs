//! Chaos soak suite: seeded fault-injection campaigns through the
//! chaos proxy, with and without daemon crash/restart cycles.
//!
//! Every case drives real TCP traffic through a [`ChaosProxy`] whose
//! fault schedule is a pure function of the case's seed, so a failure
//! is replayable by rerunning with the printed seed. The correctness
//! bar is the crate's byte-parity contract: whatever the transport
//! does, a batch must complete with every payload byte-identical to an
//! undisturbed run, no job lost and no job executed twice (for
//! cacheable specs).
//!
//! Knobs: `CHAOS_CASES` overrides the campaign size (default 200);
//! `CHAOS_DIR`, when set, receives a `failing-seed.txt` artifact before
//! any panic, so CI can upload the repro.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sim_serve::chaos::{ChaosConfig, ChaosProxy};
use sim_serve::server::{JobControl, JobRunner, Server};
use sim_serve::{Client, RetryPolicy, ServeOptions};
use sim_trace::json::JsonValue;

/// Doubles `spec.x`, optionally sleeping `spec.sleep_ms` first so jobs
/// can be caught mid-flight by a crash.
struct ChaosRunner {
    runs: AtomicU64,
}

fn num(spec: &JsonValue, key: &str) -> Option<u64> {
    spec.get(key).and_then(|v| v.as_num()).map(|n| n as u64)
}

impl JobRunner for ChaosRunner {
    fn config_key(&self, spec: &JsonValue) -> Result<Option<String>, String> {
        let x = num(spec, "x").ok_or("spec needs a numeric x")?;
        Ok(Some(format!(
            "chaos|x={x}|sleep={}",
            num(spec, "sleep_ms").unwrap_or(0)
        )))
    }

    fn run(&self, spec: &JsonValue, _ctl: &JobControl) -> Result<String, String> {
        let x = num(spec, "x").ok_or("spec needs a numeric x")?;
        if let Some(ms) = num(spec, "sleep_ms") {
            std::thread::sleep(Duration::from_millis(ms));
        }
        self.runs.fetch_add(1, Ordering::SeqCst);
        Ok(format!("{{\"doubled\":{}}}", x * 2))
    }
}

fn cases() -> u64 {
    std::env::var("CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Record the failing seed for CI artifact upload, then panic.
fn fail_with_seed(seed: u64, context: &str) -> ! {
    if let Ok(dir) = std::env::var("CHAOS_DIR") {
        let _ = std::fs::create_dir_all(&dir);
        let _ = std::fs::write(
            std::path::Path::new(&dir).join("failing-seed.txt"),
            format!("seed={seed:#x}\ncontext={context}\n"),
        );
    }
    panic!("chaos case failed (seed {seed:#x}): {context}");
}

fn chaos_client(addr: &str, seed: u64) -> Result<Client, String> {
    Client::connect_with(
        addr,
        RetryPolicy {
            connect_timeout: Duration::from_secs(2),
            // Short enough that a truncated response stalls the case
            // for a fraction of a second, long enough that an honest
            // slow response never trips it.
            io_timeout: Duration::from_millis(250),
            max_attempts: 16,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(50),
            busy_attempts: 64,
            seed,
        },
    )
}

#[test]
fn seeded_chaos_campaign_preserves_byte_parity_with_no_lost_or_duplicate_jobs() {
    let runner = Arc::new(ChaosRunner {
        runs: AtomicU64::new(0),
    });
    let server = Server::bind(
        "127.0.0.1:0",
        Box::new(runner.clone()),
        ServeOptions {
            workers: 2,
            cache_cap: 8192, // every case's key stays resident
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let upstream = server.local_addr().to_string();

    let n = cases();
    let mut faults_injected = 0u64;
    for case in 0..n {
        let seed = 0xC0FF_EE00u64 + case;
        let proxy = match ChaosProxy::bind("127.0.0.1:0", &upstream, ChaosConfig::storm(seed)) {
            Ok(p) => p,
            Err(e) => fail_with_seed(seed, &format!("proxy bind: {e}")),
        };
        let addr = proxy.local_addr().to_string();
        let mut c = match chaos_client(&addr, seed) {
            Ok(c) => c,
            Err(e) => fail_with_seed(seed, &format!("connect: {e}")),
        };
        let expected = format!("{{\"doubled\":{}}}", case * 2);
        match c.run_to_payload(&format!("{{\"x\":{case}}}"), 0, None) {
            Ok((_, payload)) => {
                if payload != expected {
                    fail_with_seed(
                        seed,
                        &format!("parity divergence: got {payload:?}, want {expected:?}"),
                    );
                }
            }
            Err(e) => fail_with_seed(seed, &format!("batch lost a job: {e}")),
        }
        faults_injected += proxy.counters().total_faults();
        proxy.stop();
    }

    // Zero lost (every case produced its payload, checked above) and
    // zero duplicated: each distinct spec executed exactly once even
    // though submits were retried through resets and garbage.
    assert_eq!(
        runner.runs.load(Ordering::SeqCst),
        n,
        "each case's job must execute exactly once"
    );
    assert!(
        faults_injected > 0,
        "the campaign must actually have injected faults"
    );
    println!("chaos campaign: {n} cases, {faults_injected} faults injected, 0 divergences");
    server.shutdown();
}

#[test]
fn batches_survive_daemon_crash_restart_cycles_under_chaos() {
    let seed = 0xDEAD_BEEFu64;
    let dir = std::env::temp_dir().join(format!("sim-serve-chaos-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ServeOptions {
        workers: 2,
        cache_cap: 64,
        cache_dir: Some(dir.join("cache")),
        journal: Some(dir.join("jobs.wal")),
        ..ServeOptions::default()
    };
    let jobs: Vec<(String, String)> = (0..10u64)
        .map(|x| {
            (
                format!("{{\"x\":{x},\"sleep_ms\":20}}"),
                format!("{{\"doubled\":{}}}", x * 2),
            )
        })
        .collect();

    for cycle in 0..3u64 {
        // Incarnation A: accept the whole batch through chaos, then
        // vanish without teardown while jobs are still in flight.
        let mut ids = Vec::new();
        {
            let runner = Arc::new(ChaosRunner {
                runs: AtomicU64::new(0),
            });
            let server = Server::bind("127.0.0.1:0", Box::new(runner), opts.clone()).unwrap();
            let upstream = server.local_addr().to_string();
            let proxy = ChaosProxy::bind(
                "127.0.0.1:0",
                &upstream,
                ChaosConfig::storm(seed + cycle * 2),
            )
            .unwrap();
            let mut c = chaos_client(&proxy.local_addr().to_string(), seed + cycle).unwrap();
            for (spec, _) in &jobs {
                match c.submit(spec, 0, None) {
                    Ok(ack) => ids.push(ack.id),
                    Err(e) => fail_with_seed(seed + cycle, &format!("submit: {e}")),
                }
            }
            std::mem::forget(server); // crash mid-batch
            proxy.stop();
        }
        // Incarnation B: same journal and cache, fresh port, fresh
        // chaos. Every acknowledged job must reach `done` under its
        // original id with the exact payload an undisturbed run gives.
        let runner = Arc::new(ChaosRunner {
            runs: AtomicU64::new(0),
        });
        let server = Server::bind("127.0.0.1:0", Box::new(runner), opts.clone()).unwrap();
        let upstream = server.local_addr().to_string();
        let proxy = ChaosProxy::bind(
            "127.0.0.1:0",
            &upstream,
            ChaosConfig::calm(seed + cycle * 2 + 1),
        )
        .unwrap();
        let mut c = chaos_client(&proxy.local_addr().to_string(), seed + cycle + 100).unwrap();
        for (id, (spec, expected)) in ids.iter().zip(&jobs) {
            let outcome = match c.result(*id) {
                Ok(o) => o,
                Err(e) => fail_with_seed(seed + cycle, &format!("cycle {cycle} job {id}: {e}")),
            };
            if outcome.state != "done" || outcome.payload.as_deref() != Some(expected.as_str()) {
                fail_with_seed(
                    seed + cycle,
                    &format!(
                        "cycle {cycle} job {id} (spec {spec}): state {} payload {:?}, want done {expected:?}",
                        outcome.state, outcome.payload
                    ),
                );
            }
        }
        // Resubmitting the batch hits the cache byte-identically.
        for (spec, expected) in &jobs {
            match c.run_to_payload(spec, 0, None) {
                Ok((_, payload)) if payload == *expected => {}
                Ok((_, payload)) => fail_with_seed(
                    seed + cycle,
                    &format!("resubmit divergence: got {payload:?}, want {expected:?}"),
                ),
                Err(e) => fail_with_seed(seed + cycle, &format!("resubmit: {e}")),
            }
        }
        proxy.stop();
        server.shutdown();
        // The journal is compacted each restart; leftover state in
        // `dir` is exactly what the next cycle should recover from.
        let _ = std::fs::remove_dir_all(&dir);
    }
}
