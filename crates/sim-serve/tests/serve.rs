//! End-to-end daemon tests over loopback TCP with a toy runner.
//!
//! The toy runner doubles a number; what is under test is everything
//! around it — cache byte-identity, single-field-change misses,
//! duplicate-submit coalescing, priority/FIFO ordering, cancellation,
//! timeouts, panic isolation, and the disk cache tier.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use sim_serve::server::{JobControl, JobRunner, Server};
use sim_serve::{Client, ServeOptions};
use sim_trace::json::JsonValue;

/// Doubles `spec.x`. Cache key covers every spec field; `spec.tag`
/// changes the key without changing the payload. A `spec.gate` makes
/// the run block until released (for queue-ordering and coalescing
/// tests); `spec.spin` makes it poll `ctl.should_stop()` (for
/// cancellation and timeout tests); `spec.panic` panics.
struct ToyRunner {
    runs: AtomicU64,
    order: Mutex<Vec<u64>>,
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl ToyRunner {
    fn new() -> (Arc<ToyRunner>, Arc<(Mutex<bool>, Condvar)>) {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let r = Arc::new(ToyRunner {
            runs: AtomicU64::new(0),
            order: Mutex::new(Vec::new()),
            gate: gate.clone(),
        });
        (r, gate)
    }
}

fn open_gate(gate: &(Mutex<bool>, Condvar)) {
    *gate.0.lock().unwrap() = true;
    gate.1.notify_all();
}

fn num(spec: &JsonValue, key: &str) -> Option<u64> {
    spec.get(key).and_then(|v| v.as_num()).map(|n| n as u64)
}

impl JobRunner for ToyRunner {
    fn config_key(&self, spec: &JsonValue) -> Result<Option<String>, String> {
        let x = num(spec, "x").ok_or("spec needs a numeric x")?;
        let tag = spec
            .get("tag")
            .and_then(|v| v.as_str())
            .unwrap_or("default");
        if spec.get("uncacheable").is_some() {
            return Ok(None);
        }
        Ok(Some(format!(
            "toy|x={x}|tag={tag}|gate={}|spin={}|panic={}",
            spec.get("gate").is_some(),
            spec.get("spin").is_some(),
            spec.get("panic").is_some(),
        )))
    }

    fn run(&self, spec: &JsonValue, ctl: &JobControl) -> Result<String, String> {
        let x = num(spec, "x").ok_or("spec needs a numeric x")?;
        if spec.get("panic").is_some() {
            panic!("toy panic");
        }
        if spec.get("gate").is_some() {
            let (lock, cv) = &*self.gate;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        }
        if spec.get("spin").is_some() {
            while !ctl.should_stop() {
                std::thread::sleep(Duration::from_millis(5));
            }
            return Err("stopped".into());
        }
        self.runs.fetch_add(1, Ordering::SeqCst);
        self.order.lock().unwrap().push(x);
        Ok(format!("{{\"doubled\":{}}}", x * 2))
    }
}

type Gate = Arc<(Mutex<bool>, Condvar)>;

fn serve(workers: usize) -> (Server, Arc<ToyRunner>, Gate, String) {
    let (runner, gate) = ToyRunner::new();
    let server = Server::bind(
        "127.0.0.1:0",
        Box::new(runner.clone()),
        ServeOptions {
            workers,
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().to_string();
    (server, runner, gate, addr)
}

#[test]
fn cache_hit_returns_byte_identical_payload_without_rerunning() {
    let (server, runner, _gate, addr) = serve(2);
    let mut c = Client::connect(&addr).unwrap();
    let (ack1, p1) = c.run_to_payload("{\"x\":21}", 0, None).unwrap();
    assert!(!ack1.cached);
    assert_eq!(p1, "{\"doubled\":42}");
    let (ack2, p2) = c.run_to_payload("{\"x\":21}", 0, None).unwrap();
    assert!(ack2.cached, "second submit must hit the cache");
    assert_eq!(p1, p2, "cached payload must be byte-identical");
    assert_eq!(runner.runs.load(Ordering::SeqCst), 1, "only one execution");
    let (stats, _) = c.stats().unwrap();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    server.shutdown();
}

#[test]
fn any_single_field_change_is_a_cache_miss() {
    let (server, runner, _gate, addr) = serve(2);
    let mut c = Client::connect(&addr).unwrap();
    c.run_to_payload("{\"x\":3}", 0, None).unwrap();
    // Different value and different tag (same value) both miss.
    c.run_to_payload("{\"x\":4}", 0, None).unwrap();
    c.run_to_payload("{\"x\":3,\"tag\":\"other\"}", 0, None)
        .unwrap();
    assert_eq!(runner.runs.load(Ordering::SeqCst), 3);
    // The original is still cached.
    let (ack, _) = c.run_to_payload("{\"x\":3}", 0, None).unwrap();
    assert!(ack.cached);
    server.shutdown();
}

#[test]
fn uncacheable_specs_always_run() {
    let (server, runner, _gate, addr) = serve(1);
    let mut c = Client::connect(&addr).unwrap();
    c.run_to_payload("{\"x\":5,\"uncacheable\":true}", 0, None)
        .unwrap();
    let (ack, _) = c
        .run_to_payload("{\"x\":5,\"uncacheable\":true}", 0, None)
        .unwrap();
    assert!(!ack.cached && !ack.coalesced);
    assert_eq!(runner.runs.load(Ordering::SeqCst), 2);
    server.shutdown();
}

#[test]
fn duplicate_inflight_submits_coalesce_onto_one_execution() {
    let (server, runner, gate, addr) = serve(2);
    let mut c = Client::connect(&addr).unwrap();
    let ack1 = c.submit("{\"x\":7,\"gate\":true}", 0, None).unwrap();
    assert!(!ack1.coalesced);
    let ack2 = c.submit("{\"x\":7,\"gate\":true}", 0, None).unwrap();
    assert!(ack2.coalesced, "identical in-flight submit must coalesce");
    assert_eq!(ack1.id, ack2.id, "coalesced submit shares the primary id");
    open_gate(&gate);
    let o1 = c.result(ack1.id).unwrap();
    let o2 = c.result(ack2.id).unwrap();
    assert_eq!(o1.state, "done");
    assert_eq!(o1.payload, o2.payload);
    assert_eq!(runner.runs.load(Ordering::SeqCst), 1, "one execution total");
    let (stats, _) = c.stats().unwrap();
    assert_eq!(stats.coalesced, 1);
    server.shutdown();
}

#[test]
fn higher_priority_jobs_run_first_fifo_within_a_level() {
    // One worker, blocked on a gated job while we stack the queue.
    let (server, _runner, gate, addr) = serve(1);
    let mut c = Client::connect(&addr).unwrap();
    let blocker = c.submit("{\"x\":1,\"gate\":true}", 0, None).unwrap();
    // Wait until the blocker is actually running so the rest queue up.
    while c.status(blocker.id).unwrap() != "running" {
        std::thread::sleep(Duration::from_millis(5));
    }
    let low_a = c.submit("{\"x\":10}", 1, None).unwrap();
    let low_b = c.submit("{\"x\":11}", 1, None).unwrap();
    let high = c.submit("{\"x\":20}", 5, None).unwrap();
    open_gate(&gate);
    for id in [blocker.id, low_a.id, low_b.id, high.id] {
        assert_eq!(c.result(id).unwrap().state, "done");
    }
    let order = _runner.order.lock().unwrap().clone();
    assert_eq!(
        order,
        vec![1, 20, 10, 11],
        "priority first, then FIFO within the level"
    );
    server.shutdown();
}

#[test]
fn cancel_of_a_queued_job_prevents_execution() {
    let (server, runner, gate, addr) = serve(1);
    let mut c = Client::connect(&addr).unwrap();
    let blocker = c.submit("{\"x\":1,\"gate\":true}", 0, None).unwrap();
    while c.status(blocker.id).unwrap() != "running" {
        std::thread::sleep(Duration::from_millis(5));
    }
    let doomed = c.submit("{\"x\":2}", 0, None).unwrap();
    assert!(c.cancel(doomed.id).unwrap());
    open_gate(&gate);
    assert_eq!(c.result(blocker.id).unwrap().state, "done");
    assert_eq!(c.result(doomed.id).unwrap().state, "cancelled");
    assert_eq!(
        runner.order.lock().unwrap().as_slice(),
        &[1],
        "the cancelled job must never run"
    );
    server.shutdown();
}

#[test]
fn running_job_observes_cancellation_through_job_control() {
    let (server, _runner, _gate, addr) = serve(1);
    let mut c = Client::connect(&addr).unwrap();
    let spinner = c.submit("{\"x\":1,\"spin\":true}", 0, None).unwrap();
    while c.status(spinner.id).unwrap() != "running" {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(c.cancel(spinner.id).unwrap());
    let out = c.result(spinner.id).unwrap();
    assert_eq!(out.state, "cancelled");
    server.shutdown();
}

#[test]
fn per_job_timeout_trips_a_running_job() {
    let (server, _runner, _gate, addr) = serve(1);
    let mut c = Client::connect(&addr).unwrap();
    let spinner = c.submit("{\"x\":1,\"spin\":true}", 0, Some(80)).unwrap();
    let out = c.result(spinner.id).unwrap();
    assert_eq!(out.state, "timed_out");
    server.shutdown();
}

#[test]
fn a_panicking_job_fails_without_taking_the_daemon_down() {
    let (server, _runner, _gate, addr) = serve(1);
    let mut c = Client::connect(&addr).unwrap();
    let bad = c.submit("{\"x\":1,\"panic\":true}", 0, None).unwrap();
    let out = c.result(bad.id).unwrap();
    assert_eq!(out.state, "failed");
    assert!(out.error.unwrap().contains("panicked"));
    // The worker survived the panic and serves the next job.
    let (_, p) = c.run_to_payload("{\"x\":6}", 0, None).unwrap();
    assert_eq!(p, "{\"doubled\":12}");
    server.shutdown();
}

#[test]
fn disk_cache_survives_a_daemon_restart() {
    let dir = std::env::temp_dir().join(format!("sim-serve-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let first;
    {
        let (runner, _gate) = ToyRunner::new();
        let server = Server::bind(
            "127.0.0.1:0",
            Box::new(runner),
            ServeOptions {
                workers: 1,
                cache_cap: 8,
                cache_dir: Some(dir.clone()),
            },
        )
        .unwrap();
        let mut c = Client::connect(&server.local_addr().to_string()).unwrap();
        first = c.run_to_payload("{\"x\":9}", 0, None).unwrap().1;
        server.shutdown();
    }
    let (runner, _gate) = ToyRunner::new();
    let server = Server::bind(
        "127.0.0.1:0",
        Box::new(runner.clone()),
        ServeOptions {
            workers: 1,
            cache_cap: 8,
            cache_dir: Some(dir.clone()),
        },
    )
    .unwrap();
    let mut c = Client::connect(&server.local_addr().to_string()).unwrap();
    let (ack, payload) = c.run_to_payload("{\"x\":9}", 0, None).unwrap();
    assert!(ack.cached, "restarted daemon must hit the disk tier");
    assert_eq!(payload, first, "disk-tier payload must be byte-identical");
    assert_eq!(runner.runs.load(Ordering::SeqCst), 0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_get_error_responses_not_disconnects() {
    let (server, _runner, _gate, addr) = serve(1);
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    for bad in [
        "this is not json",
        "{\"op\":\"frobnicate\"}",
        "{\"no_op\":1}",
        "{\"op\":\"submit\"}",
        "{\"op\":\"result\",\"id\":999}",
    ] {
        stream.write_all(bad.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.starts_with("{\"ok\":false"),
            "expected error for {bad:?}, got {line:?}"
        );
    }
    // The connection still works after every error.
    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(
        c.run_to_payload("{\"x\":8}", 0, None).unwrap().1,
        "{\"doubled\":16}"
    );
    server.shutdown();
}

#[test]
fn shutdown_verb_rejects_new_submissions() {
    let (server, _runner, _gate, addr) = serve(1);
    let mut c = Client::connect(&addr).unwrap();
    c.shutdown().unwrap();
    assert!(server.shutdown_requested());
    let err = c.submit("{\"x\":1}", 0, None).unwrap_err();
    assert!(err.contains("shutting down"), "got: {err}");
    server.shutdown();
}
