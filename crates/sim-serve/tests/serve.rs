//! End-to-end daemon tests over loopback TCP with a toy runner.
//!
//! The toy runner doubles a number; what is under test is everything
//! around it — cache byte-identity, single-field-change misses,
//! duplicate-submit coalescing, priority/FIFO ordering, cancellation,
//! timeouts, panic isolation, and the disk cache tier.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use sim_serve::server::{JobControl, JobRunner, Server};
use sim_serve::{Client, ServeOptions};
use sim_trace::json::JsonValue;

/// Doubles `spec.x`. Cache key covers every spec field; `spec.tag`
/// changes the key without changing the payload. A `spec.gate` makes
/// the run block until released (for queue-ordering and coalescing
/// tests); `spec.spin` makes it poll `ctl.should_stop()` (for
/// cancellation and timeout tests); `spec.panic` panics.
struct ToyRunner {
    runs: AtomicU64,
    order: Mutex<Vec<u64>>,
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl ToyRunner {
    fn new() -> (Arc<ToyRunner>, Arc<(Mutex<bool>, Condvar)>) {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let r = Arc::new(ToyRunner {
            runs: AtomicU64::new(0),
            order: Mutex::new(Vec::new()),
            gate: gate.clone(),
        });
        (r, gate)
    }
}

fn open_gate(gate: &(Mutex<bool>, Condvar)) {
    *gate.0.lock().unwrap() = true;
    gate.1.notify_all();
}

fn num(spec: &JsonValue, key: &str) -> Option<u64> {
    spec.get(key).and_then(|v| v.as_num()).map(|n| n as u64)
}

impl JobRunner for ToyRunner {
    fn config_key(&self, spec: &JsonValue) -> Result<Option<String>, String> {
        let x = num(spec, "x").ok_or("spec needs a numeric x")?;
        let tag = spec
            .get("tag")
            .and_then(|v| v.as_str())
            .unwrap_or("default");
        if spec.get("uncacheable").is_some() {
            return Ok(None);
        }
        Ok(Some(format!(
            "toy|x={x}|tag={tag}|gate={}|spin={}|panic={}",
            spec.get("gate").is_some(),
            spec.get("spin").is_some(),
            spec.get("panic").is_some(),
        )))
    }

    fn run(&self, spec: &JsonValue, ctl: &JobControl) -> Result<String, String> {
        let x = num(spec, "x").ok_or("spec needs a numeric x")?;
        if spec.get("panic").is_some() {
            panic!("toy panic");
        }
        if spec.get("gate").is_some() {
            let (lock, cv) = &*self.gate;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        }
        if spec.get("spin").is_some() {
            while !ctl.should_stop() {
                std::thread::sleep(Duration::from_millis(5));
            }
            return Err("stopped".into());
        }
        self.runs.fetch_add(1, Ordering::SeqCst);
        self.order.lock().unwrap().push(x);
        Ok(format!("{{\"doubled\":{}}}", x * 2))
    }
}

type Gate = Arc<(Mutex<bool>, Condvar)>;

fn serve(workers: usize) -> (Server, Arc<ToyRunner>, Gate, String) {
    let (runner, gate) = ToyRunner::new();
    let server = Server::bind(
        "127.0.0.1:0",
        Box::new(runner.clone()),
        ServeOptions {
            workers,
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().to_string();
    (server, runner, gate, addr)
}

#[test]
fn cache_hit_returns_byte_identical_payload_without_rerunning() {
    let (server, runner, _gate, addr) = serve(2);
    let mut c = Client::connect(&addr).unwrap();
    let (ack1, p1) = c.run_to_payload("{\"x\":21}", 0, None).unwrap();
    assert!(!ack1.cached);
    assert_eq!(p1, "{\"doubled\":42}");
    let (ack2, p2) = c.run_to_payload("{\"x\":21}", 0, None).unwrap();
    assert!(ack2.cached, "second submit must hit the cache");
    assert_eq!(p1, p2, "cached payload must be byte-identical");
    assert_eq!(runner.runs.load(Ordering::SeqCst), 1, "only one execution");
    let (stats, _) = c.stats().unwrap();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    server.shutdown();
}

#[test]
fn any_single_field_change_is_a_cache_miss() {
    let (server, runner, _gate, addr) = serve(2);
    let mut c = Client::connect(&addr).unwrap();
    c.run_to_payload("{\"x\":3}", 0, None).unwrap();
    // Different value and different tag (same value) both miss.
    c.run_to_payload("{\"x\":4}", 0, None).unwrap();
    c.run_to_payload("{\"x\":3,\"tag\":\"other\"}", 0, None)
        .unwrap();
    assert_eq!(runner.runs.load(Ordering::SeqCst), 3);
    // The original is still cached.
    let (ack, _) = c.run_to_payload("{\"x\":3}", 0, None).unwrap();
    assert!(ack.cached);
    server.shutdown();
}

#[test]
fn uncacheable_specs_always_run() {
    let (server, runner, _gate, addr) = serve(1);
    let mut c = Client::connect(&addr).unwrap();
    c.run_to_payload("{\"x\":5,\"uncacheable\":true}", 0, None)
        .unwrap();
    let (ack, _) = c
        .run_to_payload("{\"x\":5,\"uncacheable\":true}", 0, None)
        .unwrap();
    assert!(!ack.cached && !ack.coalesced);
    assert_eq!(runner.runs.load(Ordering::SeqCst), 2);
    server.shutdown();
}

#[test]
fn duplicate_inflight_submits_coalesce_onto_one_execution() {
    let (server, runner, gate, addr) = serve(2);
    let mut c = Client::connect(&addr).unwrap();
    let ack1 = c.submit("{\"x\":7,\"gate\":true}", 0, None).unwrap();
    assert!(!ack1.coalesced);
    let ack2 = c.submit("{\"x\":7,\"gate\":true}", 0, None).unwrap();
    assert!(ack2.coalesced, "identical in-flight submit must coalesce");
    assert_eq!(ack1.id, ack2.id, "coalesced submit shares the primary id");
    open_gate(&gate);
    let o1 = c.result(ack1.id).unwrap();
    let o2 = c.result(ack2.id).unwrap();
    assert_eq!(o1.state, "done");
    assert_eq!(o1.payload, o2.payload);
    assert_eq!(runner.runs.load(Ordering::SeqCst), 1, "one execution total");
    let (stats, _) = c.stats().unwrap();
    assert_eq!(stats.coalesced, 1);
    server.shutdown();
}

#[test]
fn higher_priority_jobs_run_first_fifo_within_a_level() {
    // One worker, blocked on a gated job while we stack the queue.
    let (server, _runner, gate, addr) = serve(1);
    let mut c = Client::connect(&addr).unwrap();
    let blocker = c.submit("{\"x\":1,\"gate\":true}", 0, None).unwrap();
    // Wait until the blocker is actually running so the rest queue up.
    while c.status(blocker.id).unwrap() != "running" {
        std::thread::sleep(Duration::from_millis(5));
    }
    let low_a = c.submit("{\"x\":10}", 1, None).unwrap();
    let low_b = c.submit("{\"x\":11}", 1, None).unwrap();
    let high = c.submit("{\"x\":20}", 5, None).unwrap();
    open_gate(&gate);
    for id in [blocker.id, low_a.id, low_b.id, high.id] {
        assert_eq!(c.result(id).unwrap().state, "done");
    }
    let order = _runner.order.lock().unwrap().clone();
    assert_eq!(
        order,
        vec![1, 20, 10, 11],
        "priority first, then FIFO within the level"
    );
    server.shutdown();
}

#[test]
fn cancel_of_a_queued_job_prevents_execution() {
    let (server, runner, gate, addr) = serve(1);
    let mut c = Client::connect(&addr).unwrap();
    let blocker = c.submit("{\"x\":1,\"gate\":true}", 0, None).unwrap();
    while c.status(blocker.id).unwrap() != "running" {
        std::thread::sleep(Duration::from_millis(5));
    }
    let doomed = c.submit("{\"x\":2}", 0, None).unwrap();
    assert!(c.cancel(doomed.id).unwrap());
    open_gate(&gate);
    assert_eq!(c.result(blocker.id).unwrap().state, "done");
    assert_eq!(c.result(doomed.id).unwrap().state, "cancelled");
    assert_eq!(
        runner.order.lock().unwrap().as_slice(),
        &[1],
        "the cancelled job must never run"
    );
    server.shutdown();
}

#[test]
fn running_job_observes_cancellation_through_job_control() {
    let (server, _runner, _gate, addr) = serve(1);
    let mut c = Client::connect(&addr).unwrap();
    let spinner = c.submit("{\"x\":1,\"spin\":true}", 0, None).unwrap();
    while c.status(spinner.id).unwrap() != "running" {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(c.cancel(spinner.id).unwrap());
    let out = c.result(spinner.id).unwrap();
    assert_eq!(out.state, "cancelled");
    server.shutdown();
}

#[test]
fn per_job_timeout_trips_a_running_job() {
    let (server, _runner, _gate, addr) = serve(1);
    let mut c = Client::connect(&addr).unwrap();
    let spinner = c.submit("{\"x\":1,\"spin\":true}", 0, Some(80)).unwrap();
    let out = c.result(spinner.id).unwrap();
    assert_eq!(out.state, "timed_out");
    server.shutdown();
}

#[test]
fn a_panicking_job_fails_without_taking_the_daemon_down() {
    let (server, _runner, _gate, addr) = serve(1);
    let mut c = Client::connect(&addr).unwrap();
    let bad = c.submit("{\"x\":1,\"panic\":true}", 0, None).unwrap();
    let out = c.result(bad.id).unwrap();
    assert_eq!(out.state, "failed");
    assert!(out.error.unwrap().contains("panicked"));
    // The worker survived the panic and serves the next job.
    let (_, p) = c.run_to_payload("{\"x\":6}", 0, None).unwrap();
    assert_eq!(p, "{\"doubled\":12}");
    server.shutdown();
}

#[test]
fn disk_cache_survives_a_daemon_restart() {
    let dir = std::env::temp_dir().join(format!("sim-serve-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let first;
    {
        let (runner, _gate) = ToyRunner::new();
        let server = Server::bind(
            "127.0.0.1:0",
            Box::new(runner),
            ServeOptions {
                workers: 1,
                cache_cap: 8,
                cache_dir: Some(dir.clone()),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let mut c = Client::connect(&server.local_addr().to_string()).unwrap();
        first = c.run_to_payload("{\"x\":9}", 0, None).unwrap().1;
        server.shutdown();
    }
    let (runner, _gate) = ToyRunner::new();
    let server = Server::bind(
        "127.0.0.1:0",
        Box::new(runner.clone()),
        ServeOptions {
            workers: 1,
            cache_cap: 8,
            cache_dir: Some(dir.clone()),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let mut c = Client::connect(&server.local_addr().to_string()).unwrap();
    let (ack, payload) = c.run_to_payload("{\"x\":9}", 0, None).unwrap();
    assert!(ack.cached, "restarted daemon must hit the disk tier");
    assert_eq!(payload, first, "disk-tier payload must be byte-identical");
    assert_eq!(runner.runs.load(Ordering::SeqCst), 0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_get_error_responses_not_disconnects() {
    let (server, _runner, _gate, addr) = serve(1);
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    for bad in [
        "this is not json",
        "{\"op\":\"frobnicate\"}",
        "{\"no_op\":1}",
        "{\"op\":\"submit\"}",
        "{\"op\":\"result\",\"id\":999}",
    ] {
        stream.write_all(bad.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.starts_with("{\"ok\":false"),
            "expected error for {bad:?}, got {line:?}"
        );
    }
    // The connection still works after every error.
    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(
        c.run_to_payload("{\"x\":8}", 0, None).unwrap().1,
        "{\"doubled\":16}"
    );
    server.shutdown();
}

#[test]
fn shutdown_verb_rejects_new_submissions() {
    let (server, _runner, _gate, addr) = serve(1);
    let mut c = Client::connect(&addr).unwrap();
    c.shutdown().unwrap();
    assert!(server.shutdown_requested());
    let err = c.submit("{\"x\":1}", 0, None).unwrap_err();
    assert!(err.contains("shutting down"), "got: {err}");
    server.shutdown();
}

/// Bind with explicit options, on an OS-assigned port.
fn serve_opts(opts: ServeOptions) -> (Server, Arc<ToyRunner>, Gate, String) {
    let (runner, gate) = ToyRunner::new();
    let server = Server::bind("127.0.0.1:0", Box::new(runner.clone()), opts).expect("bind");
    let addr = server.local_addr().to_string();
    (server, runner, gate, addr)
}

/// One raw request/response exchange, bypassing the client's retry
/// machinery so rejection lines can be inspected verbatim.
fn raw_call(addr: &str, request: &str) -> sim_trace::json::JsonValue {
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    sim_trace::json::parse(line.trim()).unwrap()
}

/// A client that gives up quickly instead of honoring long busy loops,
/// for tests that assert on rejections.
fn impatient(addr: &str) -> Client {
    Client::connect_with(
        addr,
        sim_serve::RetryPolicy {
            busy_attempts: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
            ..sim_serve::RetryPolicy::default()
        },
    )
    .unwrap()
}

fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    for _ in 0..500 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn bounded_queue_rejects_submits_with_busy_and_retry_hint() {
    let (server, _runner, gate, addr) = serve_opts(ServeOptions {
        workers: 1,
        max_queue: 1,
        ..ServeOptions::default()
    });
    let mut c = Client::connect(&addr).unwrap();
    c.submit("{\"x\":1,\"gate\":1}", 0, None).unwrap();
    {
        let mut probe = Client::connect(&addr).unwrap();
        wait_until(
            || probe.stats().unwrap().0.running == 1,
            "gated job to start running",
        );
    }
    c.submit("{\"x\":2}", 0, None).unwrap(); // fills the one queue slot
    let v = raw_call(
        &addr,
        "{\"op\":\"submit\",\"priority\":0,\"spec\":{\"x\":3}}",
    );
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false));
    assert_eq!(v.get("busy").and_then(|b| b.as_bool()), Some(true));
    let hint = v
        .get("retry_after_ms")
        .and_then(|n| n.as_num())
        .expect("busy rejection carries a retry hint") as u64;
    assert!(hint >= 25, "hint should be a real backoff: {hint}");
    open_gate(&gate);
    let (stats, _) = c.stats().unwrap();
    assert!(stats.busy_rejected >= 1);
    assert_eq!(stats.queue_cap, 1);
    server.shutdown();
}

#[test]
fn full_queue_sheds_lowest_priority_for_higher_priority_work() {
    let (server, runner, gate, addr) = serve_opts(ServeOptions {
        workers: 1,
        max_queue: 2,
        ..ServeOptions::default()
    });
    let mut c = Client::connect(&addr).unwrap();
    c.submit("{\"x\":1,\"gate\":1}", 0, None).unwrap();
    {
        let mut probe = Client::connect(&addr).unwrap();
        wait_until(
            || probe.stats().unwrap().0.running == 1,
            "gated job to start running",
        );
    }
    let mid = c.submit("{\"x\":2}", 1, None).unwrap();
    let low = c.submit("{\"x\":3}", 0, None).unwrap();
    // Queue is full; a higher-priority submit evicts the lowest.
    let high = c.submit("{\"x\":4}", 5, None).unwrap();
    assert_eq!(c.status(low.id).unwrap(), "shed");
    let outcome = c.result(low.id).unwrap();
    assert_eq!(outcome.state, "shed");
    assert!(outcome.error.unwrap().contains("shed"));
    open_gate(&gate);
    assert_eq!(c.result(mid.id).unwrap().state, "done");
    assert_eq!(c.result(high.id).unwrap().state, "done");
    // The survivors ran in priority order after the gated job.
    assert_eq!(runner.order.lock().unwrap().as_slice(), &[1, 4, 2]);
    let (stats, _) = c.stats().unwrap();
    assert_eq!(stats.shed, 1);
    // A same-priority submit against a full queue is rejected, not shed.
    server.shutdown();
}

#[test]
fn per_connection_live_limit_bounces_excess_submits() {
    let (server, _runner, gate, addr) = serve_opts(ServeOptions {
        workers: 1,
        max_live_per_conn: 2,
        ..ServeOptions::default()
    });
    let mut a = impatient(&addr);
    a.submit("{\"x\":1,\"gate\":1}", 0, None).unwrap();
    {
        let mut probe = Client::connect(&addr).unwrap();
        wait_until(
            || probe.stats().unwrap().0.running == 1,
            "gated job to start running",
        );
    }
    a.submit("{\"x\":2}", 0, None).unwrap();
    let err = a.submit("{\"x\":3}", 0, None).unwrap_err();
    assert!(err.contains("unfinished jobs"), "got: {err}");
    // Another connection has its own budget.
    let mut b = Client::connect(&addr).unwrap();
    let ok = b.submit("{\"x\":4}", 0, None).unwrap();
    open_gate(&gate);
    b.result(ok.id).unwrap();
    // Once its jobs finish, the first connection can submit again.
    wait_until(
        || b.stats().unwrap().0.completed == 3,
        "all live jobs to finish",
    );
    assert!(a.submit("{\"x\":5}", 0, None).is_ok());
    server.shutdown();
}

#[test]
fn drain_finishes_running_work_and_bounces_new_submits() {
    let (server, _runner, gate, addr) = serve_opts(ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    });
    let mut c = impatient(&addr);
    let running = c.submit("{\"x\":1,\"gate\":1}", 0, None).unwrap();
    {
        let mut probe = Client::connect(&addr).unwrap();
        wait_until(
            || probe.stats().unwrap().0.running == 1,
            "gated job to start running",
        );
    }
    let queued = c.submit("{\"x\":2}", 0, None).unwrap();
    c.drain().unwrap();
    assert!(server.drain_requested());
    assert!(!server.drained(), "a job is still running");
    let err = c.submit("{\"x\":3}", 0, None).unwrap_err();
    assert!(err.contains("draining"), "got: {err}");
    open_gate(&gate);
    assert_eq!(c.result(running.id).unwrap().state, "done");
    wait_until(|| server.drained(), "drain to complete");
    // The queued job was never claimed; it waits for the next
    // incarnation (or its journal replay).
    assert_eq!(c.status(queued.id).unwrap(), "queued");
    let (stats, _) = c.stats().unwrap();
    assert!(stats.draining);
    server.shutdown();
}

fn crash_dirs(tag: &str) -> (std::path::PathBuf, ServeOptions) {
    let dir = std::env::temp_dir().join(format!("sim-serve-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ServeOptions {
        workers: 1,
        cache_cap: 16,
        cache_dir: Some(dir.join("cache")),
        journal: Some(dir.join("jobs.wal")),
        ..ServeOptions::default()
    };
    (dir, opts)
}

#[test]
fn journal_replays_pending_jobs_after_an_abrupt_restart() {
    let (dir, opts) = crash_dirs("pending");
    let (id_a, id_b, id_c);
    {
        let (runner, _gate_never_opened) = ToyRunner::new();
        let server = Server::bind("127.0.0.1:0", Box::new(runner), opts.clone()).unwrap();
        let addr = server.local_addr().to_string();
        let mut c = Client::connect(&addr).unwrap();
        id_a = c.submit("{\"x\":5,\"gate\":1}", 0, None).unwrap().id;
        wait_until(
            || c.stats().unwrap().0.running == 1,
            "gated job to start running",
        );
        id_b = c.submit("{\"x\":6}", 0, None).unwrap().id;
        id_c = c.submit("{\"x\":7}", 2, None).unwrap().id;
        // Crash: the daemon vanishes without any orderly teardown. The
        // leaked worker stays blocked on the never-opened gate, so this
        // incarnation can never finish or journal anything further.
        std::mem::forget(server);
    }
    let (runner2, gate2) = ToyRunner::new();
    let server = Server::bind("127.0.0.1:0", Box::new(runner2.clone()), opts).unwrap();
    let mut c = Client::connect(&server.local_addr().to_string()).unwrap();
    open_gate(&gate2);
    // All three acknowledged jobs survive, under their original ids —
    // including the one that was mid-execution when the daemon died.
    for (id, expect) in [
        (id_a, "{\"doubled\":10}"),
        (id_b, "{\"doubled\":12}"),
        (id_c, "{\"doubled\":14}"),
    ] {
        let outcome = c.result(id).unwrap();
        assert_eq!(outcome.state, "done", "job {id}");
        assert_eq!(outcome.payload.as_deref(), Some(expect), "job {id}");
    }
    // The higher-priority replayed job ran before the lower ones.
    let order = runner2.order.lock().unwrap().clone();
    assert_eq!(order.len(), 3, "each replayed job runs exactly once");
    assert!(
        order.iter().position(|&x| x == 7) < order.iter().position(|&x| x == 6),
        "replay preserves priority order: {order:?}"
    );
    let (stats, _) = c.stats().unwrap();
    assert_eq!(stats.replayed, 3);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_restores_completed_jobs_from_the_cache_after_restart() {
    let (dir, opts) = crash_dirs("done");
    let (id, first);
    {
        let (runner, _gate) = ToyRunner::new();
        let server = Server::bind("127.0.0.1:0", Box::new(runner), opts.clone()).unwrap();
        let mut c = Client::connect(&server.local_addr().to_string()).unwrap();
        let (ack, payload) = c.run_to_payload("{\"x\":9}", 0, None).unwrap();
        id = ack.id;
        first = payload;
        std::mem::forget(server); // crash after completion
    }
    let (runner2, _gate2) = ToyRunner::new();
    let server = Server::bind("127.0.0.1:0", Box::new(runner2.clone()), opts).unwrap();
    let mut c = Client::connect(&server.local_addr().to_string()).unwrap();
    let outcome = c.result(id).unwrap();
    assert_eq!(outcome.state, "done");
    assert!(outcome.cached, "payload must come from the disk cache");
    assert_eq!(outcome.payload.as_deref(), Some(first.as_str()));
    assert_eq!(
        runner2.runs.load(Ordering::SeqCst),
        0,
        "a completed job must not re-execute"
    );
    // A fresh submit of the same spec is a byte-identical cache hit.
    let (ack2, p2) = c.run_to_payload("{\"x\":9}", 0, None).unwrap();
    assert!(ack2.cached);
    assert_eq!(p2, first);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_of_a_running_job_survives_a_restart() {
    let (dir, opts) = crash_dirs("cancel");
    let id;
    {
        let (runner, _gate) = ToyRunner::new();
        let server = Server::bind("127.0.0.1:0", Box::new(runner), opts.clone()).unwrap();
        let mut c = Client::connect(&server.local_addr().to_string()).unwrap();
        id = c.submit("{\"x\":3,\"gate\":1}", 0, None).unwrap().id;
        wait_until(
            || c.stats().unwrap().0.running == 1,
            "gated job to start running",
        );
        // Cancel while running: the journal records the intent even
        // though the worker (blocked on the gate) never observes it.
        assert!(c.cancel(id).unwrap());
        std::mem::forget(server);
    }
    let (runner2, _gate2) = ToyRunner::new();
    let server = Server::bind("127.0.0.1:0", Box::new(runner2.clone()), opts).unwrap();
    let mut c = Client::connect(&server.local_addr().to_string()).unwrap();
    let outcome = c.result(id).unwrap();
    assert_eq!(
        outcome.state, "cancelled",
        "a journaled cancel intent must not resurrect the job"
    );
    assert_eq!(runner2.runs.load(Ordering::SeqCst), 0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
