//! Journal-file tests: replay over real files, torn tails at every
//! byte offset, append-after-recovery, and compaction.

use std::path::PathBuf;

use sim_serve::server::JobState;
use sim_serve::wal::{replay, Wal, WalRecord};

fn tmp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sim-serve-wal-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.join("jobs.wal")
}

fn submit(id: u64, seq: u64) -> WalRecord {
    WalRecord::Submit {
        id,
        priority: (id % 3) as i64,
        seq,
        timeout_ms: if id.is_multiple_of(2) {
            Some(500)
        } else {
            None
        },
        key: Some(format!("key-{id}")),
        spec_json: format!("{{\"x\":{id},\"bench\":\"cg\"}}"),
    }
}

#[test]
fn open_on_a_fresh_path_is_an_empty_journal() {
    let path = tmp_journal("fresh");
    let (wal, rep) = Wal::open(&path, false).unwrap();
    assert!(rep.jobs.is_empty());
    assert_eq!(rep.next_id, 1);
    assert_eq!(rep.next_seq, 0);
    assert!(!rep.torn);
    assert_eq!(wal.appended(), 0);
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn append_then_reopen_round_trips_every_record_type() {
    let path = tmp_journal("roundtrip");
    {
        let (mut wal, _) = Wal::open(&path, true).unwrap();
        wal.append(&submit(1, 0)).unwrap();
        wal.append(&submit(2, 1)).unwrap();
        wal.append(&WalRecord::CancelIntent { id: 2 }).unwrap();
        wal.append(&WalRecord::Complete {
            id: 1,
            state: JobState::Done,
            error: None,
        })
        .unwrap();
        assert_eq!(wal.appended(), 4);
    }
    let (_, rep) = Wal::open(&path, false).unwrap();
    assert_eq!(rep.records, 4);
    assert_eq!(rep.jobs.len(), 2);
    assert_eq!(rep.jobs[0].terminal, Some((JobState::Done, None)));
    assert!(!rep.jobs[0].cancel_requested);
    assert!(rep.jobs[1].terminal.is_none());
    assert!(rep.jobs[1].cancel_requested, "cancel on pending job sticks");
    assert_eq!(rep.next_id, 3);
    assert_eq!(rep.next_seq, 2);
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn truncation_at_every_byte_offset_recovers_whole_records_only() {
    let records = [
        submit(1, 0),
        WalRecord::Complete {
            id: 1,
            state: JobState::Done,
            error: None,
        },
        submit(2, 1),
    ];
    let mut full = Vec::new();
    let mut boundaries = vec![0usize];
    for rec in &records {
        full.extend(rec.encode());
        boundaries.push(full.len());
    }
    for cut in 0..=full.len() {
        let rep = replay(&full[..cut]);
        let whole = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        assert_eq!(
            rep.records, whole as u64,
            "cut at byte {cut}: exactly the whole records before the cut apply"
        );
        assert_eq!(rep.torn, !boundaries.contains(&cut), "cut at byte {cut}");
        // Whatever the cut, replay never panics and never invents jobs.
        assert!(rep.jobs.len() <= 2);
        if whole >= 2 {
            assert_eq!(rep.jobs[0].terminal, Some((JobState::Done, None)));
        }
    }
}

#[test]
fn append_after_opening_a_torn_journal_is_replayable() {
    let path = tmp_journal("torn-append");
    {
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        wal.append(&submit(1, 0)).unwrap();
        wal.append(&submit(2, 1)).unwrap();
    }
    // Tear the final record mid-envelope, as a crash mid-write would.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
    let (mut wal, rep) = Wal::open(&path, false).unwrap();
    assert!(rep.torn);
    assert_eq!(rep.jobs.len(), 1, "only the whole record survives");
    wal.append(&WalRecord::Complete {
        id: 1,
        state: JobState::Failed,
        error: Some("post-recovery".into()),
    })
    .unwrap();
    // The torn tail was truncated at open, so the new record is
    // reachable on the next replay.
    let (_, rep) = Wal::open(&path, false).unwrap();
    assert!(!rep.torn);
    assert_eq!(rep.records, 2);
    assert_eq!(
        rep.jobs[0].terminal,
        Some((JobState::Failed, Some("post-recovery".into())))
    );
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn garbage_prefix_discards_the_whole_stream_without_panicking() {
    let mut bytes = b"not a journal at all\n".to_vec();
    bytes.extend(submit(1, 0).encode());
    let rep = replay(&bytes);
    assert_eq!(rep.records, 0);
    assert!(rep.torn);
    assert_eq!(rep.torn_bytes, bytes.len());
}

#[test]
fn compaction_drops_history_and_keeps_the_id_floor() {
    let path = tmp_journal("compact");
    let (mut wal, _) = Wal::open(&path, false).unwrap();
    for i in 1..=5u64 {
        wal.append(&submit(i, i - 1)).unwrap();
    }
    for i in 1..=4u64 {
        wal.append(&WalRecord::Complete {
            id: i,
            state: JobState::Done,
            error: None,
        })
        .unwrap();
    }
    // Compact to the live set: the id floor plus the one pending job.
    wal.compact(&[
        WalRecord::Meta {
            next_id: 6,
            next_seq: 5,
        },
        submit(5, 4),
    ])
    .unwrap();
    // The handle stays usable for appends after compaction.
    wal.append(&WalRecord::Complete {
        id: 5,
        state: JobState::Cancelled,
        error: None,
    })
    .unwrap();
    let (_, rep) = Wal::open(&path, false).unwrap();
    assert_eq!(rep.records, 3);
    assert_eq!(rep.jobs.len(), 1);
    assert_eq!(rep.jobs[0].id, 5);
    assert_eq!(rep.jobs[0].terminal, Some((JobState::Cancelled, None)));
    assert_eq!(rep.next_id, 6, "meta floor survives compaction");
    assert_eq!(rep.next_seq, 5);
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn cancel_after_complete_is_resolved_identically_across_restarts() {
    let path = tmp_journal("cancel-order");
    {
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        wal.append(&submit(1, 0)).unwrap();
        wal.append(&WalRecord::Complete {
            id: 1,
            state: JobState::Done,
            error: None,
        })
        .unwrap();
        wal.append(&WalRecord::CancelIntent { id: 1 }).unwrap();
    }
    // However many times the journal is reopened, the first terminal
    // record wins and the late cancel stays a no-op.
    for _ in 0..3 {
        let (_, rep) = Wal::open(&path, false).unwrap();
        assert_eq!(rep.jobs[0].terminal, Some((JobState::Done, None)));
        assert!(!rep.jobs[0].cancel_requested);
    }
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}
