//! Timing bench over A-stream policy ablations (SP tiny preset).

use bench::{bench_point, small_machine};
use npb_kernels::Benchmark;
use omp_rt::mode::{ExecMode, SlipSync};
use slipstream::policy::AStreamPolicy;
use slipstream::runner::{run_program, RunOptions};

fn main() {
    let machine = small_machine();
    let p = Benchmark::Sp.build_tiny();
    for (name, policy) in [
        ("paper", AStreamPolicy::paper()),
        (
            "no-conversion",
            AStreamPolicy::paper().without_store_conversion(),
        ),
        (
            "exec-critical",
            AStreamPolicy::paper().with_critical_execution(),
        ),
    ] {
        bench_point(&format!("ablation_policies/{name}"), 10, || {
            let mut o = RunOptions::new(ExecMode::Slipstream)
                .with_machine(machine.clone())
                .with_policy(policy);
            o.sync = Some(SlipSync::G0);
            run_program(&p, &o).unwrap().exec_cycles
        });
    }
}
