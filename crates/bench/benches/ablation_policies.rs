//! Criterion bench over A-stream policy ablations (SP tiny preset).

use bench::small_machine;
use criterion::{criterion_group, criterion_main, Criterion};
use npb_kernels::Benchmark;
use omp_rt::mode::{ExecMode, SlipSync};
use slipstream::policy::AStreamPolicy;
use slipstream::runner::{run_program, RunOptions};
use std::hint::black_box;

fn policies(c: &mut Criterion) {
    let machine = small_machine();
    let p = Benchmark::Sp.build_tiny();
    let mut g = c.benchmark_group("ablation_policies");
    g.sample_size(10);
    for (name, policy) in [
        ("paper", AStreamPolicy::paper()),
        ("no-conversion", AStreamPolicy::paper().without_store_conversion()),
        ("exec-critical", AStreamPolicy::paper().with_critical_execution()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut o = RunOptions::new(ExecMode::Slipstream)
                    .with_machine(machine.clone())
                    .with_policy(policy);
                o.sync = Some(SlipSync::G0);
                black_box(run_program(black_box(&p), &o).unwrap().exec_cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, policies);
criterion_main!(benches);
