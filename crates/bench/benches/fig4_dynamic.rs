//! Timing bench over the Figure 4 dynamic-scheduling comparison
//! (tiny presets, 4-CMP machine; the figure binary runs full scale).

use bench::{bench_point, run_modes, small_machine, DYNAMIC_MODES};
use npb_kernels::Benchmark;
use omp_ir::node::ScheduleSpec;

fn main() {
    let machine = small_machine();
    for bm in Benchmark::ALL {
        if !bm.in_dynamic_experiment() {
            continue;
        }
        // Tiny presets with a small dynamic chunk.
        let p = match bm {
            Benchmark::Cg => npb_kernels::CgParams::tiny()
                .with_schedule(Some(ScheduleSpec::dynamic(8)))
                .build(),
            Benchmark::Mg => npb_kernels::MgParams::tiny()
                .with_schedule(Some(ScheduleSpec::dynamic(1)))
                .build(),
            Benchmark::Bt => npb_kernels::BtParams::tiny()
                .with_schedule(Some(ScheduleSpec::dynamic(1)))
                .build(),
            Benchmark::Sp => npb_kernels::SpParams::tiny()
                .with_schedule(Some(ScheduleSpec::dynamic(1)))
                .build(),
            Benchmark::Lu => unreachable!(),
        };
        for (label, mode, sync) in DYNAMIC_MODES {
            bench_point(&format!("fig4_dynamic/{}/{}", bm.name(), label), 10, || {
                run_modes(&p, &machine, &[(label, mode, sync)])[0].exec_cycles
            });
        }
    }
}
