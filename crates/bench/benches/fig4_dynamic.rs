//! Criterion bench over the Figure 4 dynamic-scheduling comparison
//! (tiny presets, 4-CMP machine; the figure binary runs full scale).

use bench::{run_modes, small_machine, DYNAMIC_MODES};
use criterion::{criterion_group, criterion_main, Criterion};
use npb_kernels::Benchmark;
use omp_ir::node::ScheduleSpec;
use std::hint::black_box;

fn fig4(c: &mut Criterion) {
    let machine = small_machine();
    let mut g = c.benchmark_group("fig4_dynamic");
    g.sample_size(10);
    for bm in Benchmark::ALL {
        if !bm.in_dynamic_experiment() {
            continue;
        }
        // Tiny presets with a small dynamic chunk.
        let p = match bm {
            Benchmark::Cg => npb_kernels::CgParams::tiny()
                .with_schedule(Some(ScheduleSpec::dynamic(8)))
                .build(),
            Benchmark::Mg => npb_kernels::MgParams::tiny()
                .with_schedule(Some(ScheduleSpec::dynamic(1)))
                .build(),
            Benchmark::Bt => npb_kernels::BtParams::tiny()
                .with_schedule(Some(ScheduleSpec::dynamic(1)))
                .build(),
            Benchmark::Sp => npb_kernels::SpParams::tiny()
                .with_schedule(Some(ScheduleSpec::dynamic(1)))
                .build(),
            Benchmark::Lu => unreachable!(),
        };
        for (label, mode, sync) in DYNAMIC_MODES {
            g.bench_function(format!("{}/{}", bm.name(), label), |b| {
                b.iter(|| {
                    let rows =
                        run_modes(black_box(&p), &machine, &[(label, mode, sync)]);
                    black_box(rows[0].exec_cycles)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
