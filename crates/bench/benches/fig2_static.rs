//! Criterion bench over the Figure 2 static-scheduling comparison.
//!
//! Each benchmark point simulates one NPB analogue under one execution
//! mode on a 4-CMP machine with the tiny workload preset (so `cargo
//! bench` completes quickly); the figure binaries run the full-scale
//! machine. The measured quantity is simulator wall time; the simulated
//! cycle counts are what the figure reports.

use bench::{run_modes, small_machine, STATIC_MODES};
use criterion::{criterion_group, criterion_main, Criterion};
use npb_kernels::Benchmark;
use std::hint::black_box;

fn fig2(c: &mut Criterion) {
    let machine = small_machine();
    let mut g = c.benchmark_group("fig2_static");
    g.sample_size(10);
    for bm in Benchmark::ALL {
        let p = bm.build_tiny();
        for (label, mode, sync) in STATIC_MODES {
            g.bench_function(format!("{}/{}", bm.name(), label), |b| {
                b.iter(|| {
                    let rows =
                        run_modes(black_box(&p), &machine, &[(label, mode, sync)]);
                    black_box(rows[0].exec_cycles)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
