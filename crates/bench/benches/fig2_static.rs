//! Timing bench over the Figure 2 static-scheduling comparison.
//!
//! Each benchmark point simulates one NPB analogue under one execution
//! mode on a 4-CMP machine with the tiny workload preset (so `cargo
//! bench` completes quickly); the figure binaries run the full-scale
//! machine. The measured quantity is simulator wall time; the simulated
//! cycle counts are what the figure reports.

use bench::{bench_point, run_modes, small_machine, STATIC_MODES};
use npb_kernels::Benchmark;

fn main() {
    let machine = small_machine();
    for bm in Benchmark::ALL {
        let p = bm.build_tiny();
        for (label, mode, sync) in STATIC_MODES {
            bench_point(&format!("fig2_static/{}/{}", bm.name(), label), 10, || {
                run_modes(&p, &machine, &[(label, mode, sync)])[0].exec_cycles
            });
        }
    }
}
