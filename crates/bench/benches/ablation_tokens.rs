//! Criterion bench over the token-synchronization sweep (MG tiny preset).

use bench::{run_modes, small_machine};
use criterion::{criterion_group, criterion_main, Criterion};
use npb_kernels::Benchmark;
use omp_rt::mode::{ExecMode, SlipSync};
use std::hint::black_box;

fn tokens(c: &mut Criterion) {
    let machine = small_machine();
    let p = Benchmark::Mg.build_tiny();
    let mut g = c.benchmark_group("ablation_tokens");
    g.sample_size(10);
    for (global, tokens) in [(true, 0), (true, 1), (false, 1), (false, 4)] {
        let s = SlipSync { global, tokens };
        g.bench_function(s.label(), |b| {
            b.iter(|| {
                let rows = run_modes(
                    black_box(&p),
                    &machine,
                    &[("slip", ExecMode::Slipstream, Some(s))],
                );
                black_box(rows[0].exec_cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, tokens);
criterion_main!(benches);
