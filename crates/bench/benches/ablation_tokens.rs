//! Timing bench over the token-synchronization sweep (MG tiny preset).

use bench::{bench_point, run_modes, small_machine};
use npb_kernels::Benchmark;
use omp_rt::mode::{ExecMode, SlipSync};

fn main() {
    let machine = small_machine();
    let p = Benchmark::Mg.build_tiny();
    for (global, tokens) in [(true, 0), (true, 1), (false, 1), (false, 4)] {
        let s = SlipSync { global, tokens };
        bench_point(&format!("ablation_tokens/{}", s.label()), 10, || {
            run_modes(&p, &machine, &[("slip", ExecMode::Slipstream, Some(s))])[0].exec_cycles
        });
    }
}
