//! Figure 5 — dynamic scheduling: breakdown of shared-data memory
//! requests for slipstream (zero-token global).
//!
//! Paper averages: reads A-timely 28%, A-late 26%; read-exclusive
//! A-timely 59%, A-late 2%.

use bench::dynamic_suite;
use dsm_sim::{FillClass, ReqKind};
use slipstream::report::fills_table;
use slipstream::MachineConfig;

fn main() {
    let machine = MachineConfig::paper();
    println!("Figure 5: shared-request classification under dynamic scheduling\n");
    let suite = dynamic_suite(&machine);
    let mut rd = [0.0f64; 2];
    let mut rx = [0.0f64; 2];
    for (bm, rows) in &suite {
        println!("--- {} ---", bm.name());
        let slip = &rows[1..2];
        println!("{}", fills_table(slip));
        let f = &slip[0].fills;
        rd[0] += f.fraction(ReqKind::Read, FillClass::ATimely);
        rd[1] += f.fraction(ReqKind::Read, FillClass::ALate);
        rx[0] += f.fraction(ReqKind::ReadEx, FillClass::ATimely);
        rx[1] += f.fraction(ReqKind::ReadEx, FillClass::ALate);
    }
    let n = suite.len() as f64;
    println!("==========================================================");
    println!(
        "read averages:    A-timely {:.0}%, A-late {:.0}%   (paper: 28%, 26%)",
        100.0 * rd[0] / n,
        100.0 * rd[1] / n
    );
    println!(
        "read-ex averages: A-timely {:.0}%, A-late {:.0}%   (paper: 59%, 2%)",
        100.0 * rx[0] / n,
        100.0 * rx[1] / n
    );
}
