//! Ablation — the A-stream construct-policy table (paper Section 3.1).
//!
//! Flips individual rows of the policy: disable the store→read-exclusive
//! conversion, or make the A-stream execute critical sections. Both are
//! design choices the paper argues for; the ablation quantifies them.

use npb_kernels::Benchmark;
use omp_rt::mode::{ExecMode, SlipSync};
use slipstream::policy::AStreamPolicy;
use slipstream::runner::{run_program, RunOptions};
use slipstream::MachineConfig;

fn run(bm: Benchmark, policy: AStreamPolicy, sync: SlipSync) -> u64 {
    let p = bm.build_paper(None);
    let mut o = RunOptions::new(ExecMode::Slipstream)
        .with_machine(MachineConfig::paper())
        .with_policy(policy);
    o.sync = Some(sync);
    run_program(&p, &o).expect("simulation failed").exec_cycles
}

fn main() {
    println!("A-stream policy ablation (slipstream G0, paper machine)\n");
    println!(
        "{:<6} {:>12} {:>14} {:>16}",
        "bench", "paper", "no-conversion", "exec-critical"
    );
    for bm in [Benchmark::Sp, Benchmark::Mg, Benchmark::Cg] {
        let base = run(bm, AStreamPolicy::paper(), SlipSync::G0);
        let noconv = run(
            bm,
            AStreamPolicy::paper().without_store_conversion(),
            SlipSync::G0,
        );
        let crit = run(
            bm,
            AStreamPolicy::paper().with_critical_execution(),
            SlipSync::G0,
        );
        println!(
            "{:<6} {:>12} {:>11} ({:+.1}%) {:>11} ({:+.1}%)",
            bm.name(),
            base,
            noconv,
            100.0 * (noconv as f64 / base as f64 - 1.0),
            crit,
            100.0 * (crit as f64 / base as f64 - 1.0),
        );
    }
    println!();
    println!("no-conversion: A-stream skips shared stores outright — read-");
    println!("exclusive coverage disappears, R-stream store upgrades return.");
    println!("exec-critical: A-stream runs critical bodies — protected data");
    println!("migrates to the consumer's node early (the paper advises not to).");
}
