//! Differential fuzzing campaign driver.
//!
//! Generates seeded random `omp_ir` programs, runs each under all four
//! processor-usage modes with the trace oracle and the analyzer-backed
//! gate expectation, deduplicates failures by structural fingerprint,
//! auto-shrinks each unique failure to a 1-minimal repro, and writes
//! replayable artifacts. Clean, structurally rich exact-class programs
//! are promoted into a corpus directory the soak harness can consume
//! via `SOAK_CORPUS`.
//!
//! Environment:
//!
//! * `FUZZ_ITERS` — cases to run (default 500);
//! * `FUZZ_SEED` — master seed (default 1); the campaign is a pure
//!   function of `(FUZZ_SEED, FUZZ_ITERS)` regardless of host threads;
//! * `FUZZ_OUT` — output directory (default `fuzz-out`): receives
//!   `repro-<fingerprint>.json`, `failures.json`, and `corpus/`;
//! * `FUZZ_SELFCHECK` — when `1`, instead of a campaign, verify that
//!   every seeded engine-mutation class is caught, minimized to ≤ 25 IR
//!   nodes, and reproducible from its serialized artifact alone;
//! * `FUZZ_FAULT_EVERY` — run every n-th case's slipstream modes under
//!   a seeded fault plan (default 5; 0 disables).
//!
//! Exit status is non-zero when any failure (or self-check problem) was
//! found.

use bench::{env, pool};
use omp_fuzz::{run_campaign, self_check_mutation, CampaignConfig, CampaignResult};
use omp_ir::program_to_json;
use slipstream::EngineMutation;
use std::path::Path;

/// Deterministic shard seeds: shard `k` of master seed `s` runs its own
/// campaign from `s + k`, so the merged result does not depend on how
/// many host threads executed the shards.
fn shard_iters(total: u64, shards: u64) -> Vec<u64> {
    (0..shards)
        .map(|k| total / shards + u64::from(k < total % shards))
        .filter(|&n| n > 0)
        .collect()
}

fn merge(shards: Vec<CampaignResult>) -> CampaignResult {
    let mut out = CampaignResult {
        cases: 0,
        class_counts: [0; 3],
        faulted_cases: 0,
        repros: Vec::new(),
        fingerprint_counts: Vec::new(),
        survivors: Vec::new(),
    };
    for r in shards {
        out.cases += r.cases;
        for (i, c) in r.class_counts.iter().enumerate() {
            out.class_counts[i] += c;
        }
        out.faulted_cases += r.faulted_cases;
        for ((fp, n), repro) in r.fingerprint_counts.into_iter().zip(r.repros) {
            match out.fingerprint_counts.iter_mut().find(|(k, _)| *k == fp) {
                Some(entry) => entry.1 += n,
                None => {
                    out.fingerprint_counts.push((fp, n));
                    out.repros.push(repro);
                }
            }
        }
        out.survivors.extend(r.survivors);
    }
    out.survivors.truncate(32);
    out
}

fn write(path: &Path, contents: &str) {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

fn self_check(seed: u64, out_dir: &Path) -> bool {
    let mut ok = true;
    for mutation in EngineMutation::ALL_BROKEN {
        match self_check_mutation(mutation, seed, 40) {
            Ok(repro) => {
                let nodes = repro.program.node_count();
                let small_enough = nodes <= 25;
                println!(
                    "fuzz self-check: {} caught as `{}`, minimized to {} nodes{}",
                    mutation.label(),
                    repro.failure.fingerprint_key(),
                    nodes,
                    if small_enough { "" } else { " (TOO LARGE)" }
                );
                write(
                    &out_dir.join(format!("selfcheck-{}.json", mutation.label())),
                    &repro.to_json(),
                );
                ok &= small_enough;
            }
            Err(e) => {
                eprintln!("fuzz self-check FAILURE for {}: {e}", mutation.label());
                ok = false;
            }
        }
    }
    ok
}

fn main() {
    let iters = env::get_or("FUZZ_ITERS", 500);
    let seed = env::get_or("FUZZ_SEED", 1);
    let fault_every = env::get_or("FUZZ_FAULT_EVERY", 5);
    let out_dir = env::string_or("FUZZ_OUT", "fuzz-out");
    let out_dir = Path::new(&out_dir);

    if env::get_or("FUZZ_SELFCHECK", 0) == 1 {
        if self_check(seed, out_dir) {
            println!("fuzz self-check: all mutation classes caught, minimized, and replayable");
            return;
        }
        std::process::exit(1);
    }

    let shards = shard_iters(iters, (pool::worker_bound() as u64).clamp(1, 16));
    eprintln!(
        "fuzz: {iters} cases from seed {seed} across {} shards…",
        shards.len()
    );
    type Task = Box<dyn FnOnce() -> CampaignResult + Send>;
    let tasks: Vec<Task> = shards
        .iter()
        .enumerate()
        .map(|(k, &n)| {
            let mut cfg = CampaignConfig::new(n, seed + k as u64);
            cfg.fault_every = (fault_every > 0).then_some(fault_every);
            Box::new(move || run_campaign(&cfg)) as Task
        })
        .collect();
    let mut results = Vec::new();
    let mut harness_failures = 0;
    for (k, res) in pool::run_all_caught(tasks).into_iter().enumerate() {
        match res {
            Ok(r) => results.push(r),
            Err(e) => {
                eprintln!("fuzz: shard {k} panicked: {e}");
                harness_failures += 1;
            }
        }
    }
    let merged = merge(results);

    for repro in &merged.repros {
        write(&out_dir.join(repro.file_name()), &repro.to_json());
    }
    write(&out_dir.join("failures.json"), &merged.summary_json());
    // Always materialize the corpus directory so downstream consumers
    // (`SOAK_CORPUS`) can point at it even on a survivor-free run.
    std::fs::create_dir_all(out_dir.join("corpus")).expect("create corpus directory");
    for p in &merged.survivors {
        write(
            &out_dir.join("corpus").join(format!("{}.json", p.name)),
            &program_to_json(p),
        );
    }

    println!(
        "fuzz: {} cases ({} exact / {} converge-only / {} deny, {} faulted), \
         {} unique failures, {} survivors promoted",
        merged.cases,
        merged.class_counts[0],
        merged.class_counts[1],
        merged.class_counts[2],
        merged.faulted_cases,
        merged.repros.len(),
        merged.survivors.len()
    );
    for ((fp, n), repro) in merged.fingerprint_counts.iter().zip(&merged.repros) {
        eprintln!(
            "fuzz FAILURE {fp} x{n}: {} (minimized to {} nodes, seed {})",
            repro.failure.fingerprint_key(),
            repro.program.node_count(),
            repro.seed.map_or("-".into(), |s| s.to_string()),
        );
    }
    if !merged.clean() || harness_failures > 0 {
        eprintln!(
            "fuzz: artifacts in {} (replay any repro with its embedded program alone)",
            out_dir.display()
        );
        std::process::exit(1);
    }
    println!("fuzz: campaign clean");
}
