//! Figure 3 — static scheduling: breakdown of shared-data memory
//! requests for slipstream mode, one-token local (L1) vs zero-token
//! global (G0).
//!
//! The paper's quoted averages: G0 A-timely reads 26% vs L1 46%; late
//! reads 34% vs 15%; G0 read-exclusive coverage 58% vs 38%; premature
//! (A-Only) 3% vs 8%.

use bench::static_suite;
use dsm_sim::{FillClass, ReqKind};
use slipstream::report::{coverage_line, fills_table};
use slipstream::MachineConfig;

fn main() {
    let machine = MachineConfig::paper();
    println!("Figure 3: shared-request classification under static scheduling\n");
    let suite = static_suite(&machine);
    let mut avg = [[0.0f64; 4]; 2]; // [l1,g0] x [timely, late, only, rdex-cov]
    for (bm, rows) in &suite {
        println!("--- {} ---", bm.name());
        let slip = &rows[2..4]; // slip-L1, slip-G0
        println!("{}", fills_table(slip));
        for (k, r) in slip.iter().enumerate() {
            println!("{}", coverage_line(r));
            avg[k][0] += r.fills.fraction(ReqKind::Read, FillClass::ATimely);
            avg[k][1] += r.fills.fraction(ReqKind::Read, FillClass::ALate);
            avg[k][2] += r.fills.fraction(ReqKind::Read, FillClass::AOnly);
            avg[k][3] += r.fills.a_coverage(ReqKind::ReadEx);
        }
        println!();
    }
    let n = suite.len() as f64;
    println!("==========================================================");
    for (k, name, paper) in [
        (
            0usize,
            "L1",
            "(paper: timely 46%, late 15%, premature 8%, rd-ex cov 38%)",
        ),
        (
            1,
            "G0",
            "(paper: timely 26%, late 34%, premature 3%, rd-ex cov 58%)",
        ),
    ] {
        println!(
            "{name} averages: A-timely {:.0}%, A-late {:.0}%, A-only {:.0}%, rd-ex coverage {:.0}%  {paper}",
            100.0 * avg[k][0] / n,
            100.0 * avg[k][1] / n,
            100.0 * avg[k][2] / n,
            100.0 * avg[k][3] / n,
        );
    }
}
