//! Ablation — A–R synchronization sweep beyond the paper's two points.
//!
//! The paper evaluates L1 and G0 and observes that looser synchronization
//! trades timeliness against premature prefetches. This sweep runs
//! {G0, G1, G2, L0, L1, L2, L4} on MG and CG to expose the full curve
//! (deeper lookahead → more A-Only migration harm).

use bench::run_modes;
use dsm_sim::{FillClass, ReqKind};
use npb_kernels::Benchmark;
use omp_rt::mode::{ExecMode, SlipSync};
use slipstream::MachineConfig;

fn main() {
    let machine = MachineConfig::paper();
    let syncs: Vec<(String, SlipSync)> = [
        (true, 0),
        (true, 1),
        (true, 2),
        (false, 0),
        (false, 1),
        (false, 2),
        (false, 4),
    ]
    .into_iter()
    .map(|(global, tokens)| {
        let s = SlipSync { global, tokens };
        (s.label(), s)
    })
    .collect();

    for bm in [Benchmark::Mg, Benchmark::Cg] {
        let p = bm.build_paper(None);
        let single = run_modes(&p, &machine, &[("single", ExecMode::Single, None)]);
        let base = single[0].exec_cycles;
        println!("--- {} (single = {} cycles) ---", bm.name(), base);
        println!(
            "{:<6} {:>10} {:>8} {:>9} {:>8} {:>8} {:>10}",
            "sync", "cycles", "speedup", "A-timely", "A-late", "A-only", "rd-ex cov"
        );
        let modes: Vec<(&str, ExecMode, Option<SlipSync>)> = syncs
            .iter()
            .map(|(l, s)| (l.as_str(), ExecMode::Slipstream, Some(*s)))
            .collect();
        for r in run_modes(&p, &machine, &modes) {
            println!(
                "{:<6} {:>10} {:>8.3} {:>8.0}% {:>7.0}% {:>7.0}% {:>9.0}%",
                r.label.trim_start_matches("slip-"),
                r.exec_cycles,
                base as f64 / r.exec_cycles as f64,
                100.0 * r.fills.fraction(ReqKind::Read, FillClass::ATimely),
                100.0 * r.fills.fraction(ReqKind::Read, FillClass::ALate),
                100.0 * r.fills.fraction(ReqKind::Read, FillClass::AOnly),
                100.0 * r.fills.a_coverage(ReqKind::ReadEx),
            );
        }
        println!();
    }
    println!("Expected shape: tokens beyond L1/G1 grow A-Only (premature");
    println!("prefetches migrate lines producers still own) and stop paying.");
}
