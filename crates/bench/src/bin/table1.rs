//! Table 1 — simulated system parameters.
//!
//! Echoes the machine configuration and asserts the derived end-to-end
//! miss latencies the paper states (170 ns local, 290 ns minimum remote).

use slipstream::MachineConfig;

fn main() {
    let c = MachineConfig::paper();
    println!("Table 1: Simulated System Parameters");
    println!("=====================================");
    println!("CPU model              MIPSY-based CMP, in-order, blocking");
    println!("Clock speed            {} GHz", c.clock_ghz);
    println!("CMP nodes              {}", c.num_cmps);
    println!("Processors per CMP     {}", c.cpus_per_cmp);
    println!(
        "L1 caches (I/D)        {} KB, {}-way, {}-cycle hit",
        c.l1.size_bytes / 1024,
        c.l1.associativity,
        c.l1.hit_latency
    );
    println!(
        "L2 cache (unified)     {} MB, {}-way, {}-cycle hit, shared per CMP",
        c.l2.size_bytes / (1024 * 1024),
        c.l2.associativity,
        c.l2.hit_latency
    );
    println!("Line size              {} B", c.l1.line_bytes);
    println!();
    println!("Memory parameters (ns):");
    println!("  BusTime              {}", c.mem_ns.bus_time);
    println!("  PILocalDCTime        {}", c.mem_ns.pi_local_dc_time);
    println!("  NILocalDCTime        {}", c.mem_ns.ni_local_dc_time);
    println!("  NIRemoteDCTime       {}", c.mem_ns.ni_remote_dc_time);
    println!("  NetTime              {}", c.mem_ns.net_time);
    println!("  MemTime              {}", c.mem_ns.mem_time);
    println!();
    println!(
        "Derived: local L2 miss  {} ns ({} cycles)",
        c.local_miss_ns(),
        c.local_miss_cycles()
    );
    println!(
        "Derived: remote L2 miss {} ns ({} cycles, minimum)",
        c.remote_miss_ns(),
        c.remote_miss_cycles()
    );
    assert_eq!(c.local_miss_ns(), 170, "paper: local miss requires 170 ns");
    assert_eq!(
        c.remote_miss_ns(),
        290,
        "paper: minimum remote miss is 290 ns"
    );
    println!();
    println!("(assertions passed: derived latencies match the paper)");
}
