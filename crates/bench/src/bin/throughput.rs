//! Simulation-throughput tracker: simulated cycles per wall second.
//!
//! Runs the fixed fig2-style workload set (the five kernels under the
//! four static modes on the 4-CMP bench machine) and reports, for each
//! benchmark/mode pair, how many simulated cycles the engine retires
//! per second of host wall time. Writes `BENCH_throughput.json` at the
//! repo root so the perf trajectory is tracked across PRs.
//!
//! Each pair is swept over the PDES worker counts (`SIM_WORKERS`-style
//! engine threads). Rows carry the worker count and the header carries
//! the host's core count, so trajectory scripts can tell a 1-core CI
//! box from a 32-core workstation. `workers=1` rows hash to exactly the
//! historical configuration string and stay comparable across PRs;
//! `workers>1` rows extend the canonical string with `|workers=N` and
//! form their own trajectories. The sweep also cross-checks stats
//! fingerprints between worker counts and aborts on any divergence —
//! a throughput number from a wrong simulation is worse than none.
//!
//! Environment:
//! - `THROUGHPUT_PRESET`: `tiny` (default) or `paper` workload presets.
//! - `THROUGHPUT_ITERS`: wall-time repetitions per pair; the best
//!   (minimum) time is reported (default 3).
//! - `THROUGHPUT_WORKERS`: comma-separated PDES worker counts to sweep
//!   (default `1,4`). Values are taken literally — the oversubscription
//!   clamp applies to pool-parallel harnesses, not to this serial
//!   sweep, and a `workers > cores` smoke run is still a valid
//!   determinism check.
//! - `THROUGHPUT_OUT`: override the output path.

use bench::{
    config_hash, small_machine, summary_fingerprint, throughput_config_string, STATIC_MODES,
};
use npb_kernels::Benchmark;
use omp_rt::RuntimeEnv;
use slipstream::runner::{run_program, RunOptions};
use std::time::Instant;

struct Row {
    benchmark: &'static str,
    mode: &'static str,
    /// PDES engine worker threads the row was measured with.
    workers: usize,
    exec_cycles: u64,
    wall_ns: u128,
    /// FNV-1a hash of the run's canonical configuration string. Rows with
    /// different hashes were measured under different conditions and must
    /// not be compared by trajectory scripts.
    config_hash: u64,
    /// Whether event tracing was enabled during the timed runs (always
    /// false here; the field exists so traced one-off numbers can never
    /// masquerade as baseline throughput).
    trace: bool,
    /// Whether memoized phase replay was enabled. Memo-on rows measure
    /// the replay speedup; their stats fingerprints are cross-checked
    /// against the memo-off rows before any number is written.
    memo: bool,
}

impl Row {
    fn cycles_per_sec(&self) -> f64 {
        self.exec_cycles as f64 / (self.wall_ns as f64 / 1e9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"benchmark\":\"{}\",\"mode\":\"{}\",\"workers\":{},\
             \"exec_cycles\":{},\"wall_ns\":{},\"cycles_per_sec\":{:.1},\
             \"config_hash\":\"{:016x}\",\"trace\":{},\"memo\":{}}}",
            self.benchmark,
            self.mode,
            self.workers,
            self.exec_cycles,
            self.wall_ns,
            self.cycles_per_sec(),
            self.config_hash,
            self.trace,
            self.memo,
        )
    }
}

fn worker_sweep() -> Vec<usize> {
    let mut sweep: Vec<usize> = bench::env::list_or("THROUGHPUT_WORKERS", &[1, 4])
        .into_iter()
        .map(|w: usize| w.max(1))
        .collect();
    sweep.dedup();
    if sweep.is_empty() {
        sweep.push(1);
    }
    sweep
}

fn main() {
    let preset = bench::env::string_or("THROUGHPUT_PRESET", "tiny");
    let iters: u32 = bench::env::get_or("THROUGHPUT_ITERS", 3).max(1);
    let sweep = worker_sweep();
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let machine = small_machine();

    let mut rows = Vec::new();
    for bm in Benchmark::ALL {
        let program = match preset.as_str() {
            "paper" => bm.build_paper(None),
            _ => bm.build_tiny(),
        };
        for (label, mode, sync) in STATIC_MODES {
            // One fingerprint per benchmark/mode pair, shared across the
            // whole workers × memo sweep: a memo-on row that diverges from
            // the memo-off baseline aborts the tracker before any number
            // is written.
            let mut fingerprint: Option<String> = None;
            for memo in [false, true] {
                for &workers in &sweep {
                    let mut o = RunOptions::new(mode)
                        .with_machine(machine.clone())
                        .with_workers(workers)
                        .with_memo(memo);
                    o.sync = sync;
                    o.env = RuntimeEnv::default();
                    let mut best = u128::MAX;
                    let mut exec_cycles = 0u64;
                    for _ in 0..iters {
                        let t0 = Instant::now();
                        let s = run_program(&program, &o).expect("simulation failed");
                        best = best.min(t0.elapsed().as_nanos().max(1));
                        exec_cycles = s.exec_cycles;
                        let fp = summary_fingerprint(&s);
                        match &fingerprint {
                            None => fingerprint = Some(fp),
                            Some(want) => assert_eq!(
                                want,
                                &fp,
                                "fingerprint divergence: {} {label} at \
                                 workers={workers} memo={memo} does not match \
                                 the memo-off baseline",
                                bm.name()
                            ),
                        }
                    }
                    // workers=1 memo-off hashes to the historical canonical
                    // string so old trajectories keep matching; other rows
                    // extend it.
                    let mut canonical =
                        throughput_config_string(&machine, &preset, bm.name(), label, false);
                    if workers > 1 {
                        canonical.push_str(&format!("|workers={workers}"));
                    }
                    if memo {
                        canonical.push_str("|memo=on");
                    }
                    let row = Row {
                        benchmark: bm.name(),
                        mode: label,
                        workers,
                        exec_cycles,
                        wall_ns: best,
                        config_hash: config_hash(&canonical),
                        trace: false,
                        memo,
                    };
                    println!(
                        "{:<4} {:<8} w{:<2} memo={:<5} {:>12} cycles {:>12.3} ms {:>14.0} cyc/s",
                        row.benchmark,
                        row.mode,
                        row.workers,
                        row.memo,
                        row.exec_cycles,
                        row.wall_ns as f64 / 1e6,
                        row.cycles_per_sec()
                    );
                    rows.push(row);
                }
            }
        }
    }

    let out_path = bench::env::string_or(
        "THROUGHPUT_OUT",
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json"),
    );
    let items: Vec<String> = rows.iter().map(|r| r.to_json()).collect();
    let json = format!(
        "{{\"preset\":\"{}\",\"iters\":{},\"host_cores\":{},\"rows\":[\n{}\n]}}\n",
        preset,
        iters,
        host_cores,
        items.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write BENCH_throughput.json");
    println!("wrote {out_path}");
}
