//! Simulation-throughput tracker: simulated cycles per wall second.
//!
//! Runs the fixed fig2-style workload set (the five kernels under the
//! four static modes on the 4-CMP bench machine) and reports, for each
//! benchmark/mode pair, how many simulated cycles the engine retires
//! per second of host wall time. Writes `BENCH_throughput.json` at the
//! repo root so the perf trajectory is tracked across PRs.
//!
//! Environment:
//! - `THROUGHPUT_PRESET`: `tiny` (default) or `paper` workload presets.
//! - `THROUGHPUT_ITERS`: wall-time repetitions per pair; the best
//!   (minimum) time is reported (default 3).
//! - `THROUGHPUT_OUT`: override the output path.

use bench::{config_hash, small_machine, throughput_config_string, STATIC_MODES};
use npb_kernels::Benchmark;
use omp_rt::RuntimeEnv;
use slipstream::runner::{run_program, RunOptions};
use std::time::Instant;

struct Row {
    benchmark: &'static str,
    mode: &'static str,
    exec_cycles: u64,
    wall_ns: u128,
    /// FNV-1a hash of the run's canonical configuration string. Rows with
    /// different hashes were measured under different conditions and must
    /// not be compared by trajectory scripts.
    config_hash: u64,
    /// Whether event tracing was enabled during the timed runs (always
    /// false here; the field exists so traced one-off numbers can never
    /// masquerade as baseline throughput).
    trace: bool,
}

impl Row {
    fn cycles_per_sec(&self) -> f64 {
        self.exec_cycles as f64 / (self.wall_ns as f64 / 1e9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"benchmark\":\"{}\",\"mode\":\"{}\",\"exec_cycles\":{},\
             \"wall_ns\":{},\"cycles_per_sec\":{:.1},\
             \"config_hash\":\"{:016x}\",\"trace\":{}}}",
            self.benchmark,
            self.mode,
            self.exec_cycles,
            self.wall_ns,
            self.cycles_per_sec(),
            self.config_hash,
            self.trace,
        )
    }
}

fn main() {
    let preset = std::env::var("THROUGHPUT_PRESET").unwrap_or_else(|_| "tiny".to_string());
    let iters: u32 = std::env::var("THROUGHPUT_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let machine = small_machine();

    let mut rows = Vec::new();
    for bm in Benchmark::ALL {
        let program = match preset.as_str() {
            "paper" => bm.build_paper(None),
            _ => bm.build_tiny(),
        };
        for (label, mode, sync) in STATIC_MODES {
            let mut o = RunOptions::new(mode).with_machine(machine.clone());
            o.sync = sync;
            o.env = RuntimeEnv::default();
            let mut best = u128::MAX;
            let mut exec_cycles = 0u64;
            for _ in 0..iters {
                let t0 = Instant::now();
                let s = run_program(&program, &o).expect("simulation failed");
                best = best.min(t0.elapsed().as_nanos().max(1));
                exec_cycles = s.exec_cycles;
            }
            let row = Row {
                benchmark: bm.name(),
                mode: label,
                exec_cycles,
                wall_ns: best,
                config_hash: config_hash(&throughput_config_string(
                    &machine,
                    &preset,
                    bm.name(),
                    label,
                    false,
                )),
                trace: false,
            };
            println!(
                "{:<4} {:<8} {:>12} cycles {:>12.3} ms {:>14.0} cyc/s",
                row.benchmark,
                row.mode,
                row.exec_cycles,
                row.wall_ns as f64 / 1e6,
                row.cycles_per_sec()
            );
            rows.push(row);
        }
    }

    let out_path = std::env::var("THROUGHPUT_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json").to_string()
    });
    let items: Vec<String> = rows.iter().map(|r| r.to_json()).collect();
    let json = format!(
        "{{\"preset\":\"{}\",\"iters\":{},\"rows\":[\n{}\n]}}\n",
        preset,
        iters,
        items.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write BENCH_throughput.json");
    println!("wrote {out_path}");
}
