//! Run the complete evaluation (Figures 2–5) and write machine-readable
//! results to `target/experiments.json`, plus a Markdown summary to
//! stdout (the source for EXPERIMENTS.md's measured columns).
//!
//! With `SERVE_ADDR` set, every simulation is submitted to a running
//! `serve` daemon instead of executed in-process; repeated invocations
//! then answer from the daemon's result cache. Both paths flow through
//! the same result rows and formatting code, so their output is
//! byte-identical.

use bench::serve::{suite_via_daemon, SuiteRow};
use bench::{
    best_slip_gain_rows, dynamic_suite, static_suite, suite_to_rows, to_records_rows, RunRecord,
    DYNAMIC_MODES, STATIC_MODES,
};
use dsm_sim::{FillClass, ReqKind, TimeClass};
use npb_kernels::Benchmark;
use slipstream::MachineConfig;

type Suite = Vec<(Benchmark, Vec<SuiteRow>)>;

fn suites() -> (Suite, Suite) {
    if let Some(addr) = bench::env::string("SERVE_ADDR") {
        eprintln!("running the evaluation through the daemon at {addr}");
        let stat = suite_via_daemon(&addr, &Benchmark::ALL, "paper", &STATIC_MODES)
            .expect("daemon static suite");
        let dyn_bms: Vec<Benchmark> = Benchmark::ALL
            .iter()
            .filter(|bm| bm.in_dynamic_experiment())
            .copied()
            .collect();
        let dynm = suite_via_daemon(&addr, &dyn_bms, "dynamic", &DYNAMIC_MODES)
            .expect("daemon dynamic suite");
        (stat, dynm)
    } else {
        let machine = MachineConfig::paper();
        (
            suite_to_rows(&static_suite(&machine)),
            suite_to_rows(&dynamic_suite(&machine)),
        )
    }
}

fn main() {
    let t0 = std::time::Instant::now();
    let (stat, dynm) = suites();

    // JSON dump.
    let mut records = to_records_rows(&stat);
    records.extend(to_records_rows(&dynm));
    let json = RunRecord::to_json_array(&records);
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/experiments.json", &json).expect("write json");

    // Markdown summary.
    println!("## Figure 2 — static scheduling (speedup over single mode)\n");
    println!("| bench | single | double | slip-L1 | slip-G0 | best-slip gain |");
    println!("|---|---|---|---|---|---|");
    for (bm, rows) in &stat {
        let base = rows[0].exec_cycles as f64;
        print!("| {} ", bm.name());
        for r in rows {
            print!("| {:.3} ", base / r.exec_cycles as f64);
        }
        println!("| {:+.1}% |", 100.0 * best_slip_gain_rows(rows));
    }
    let avg: f64 = stat
        .iter()
        .map(|(_, r)| best_slip_gain_rows(r))
        .sum::<f64>()
        / stat.len() as f64;
    println!(
        "\naverage best-slipstream gain: **{:+.1}%** (paper: ~13.5%)\n",
        100.0 * avg
    );

    println!("## Figure 3 — A-stream read classification, static (L1 / G0)\n");
    println!("| bench | sync | A-timely | A-late | A-only | rd-ex coverage |");
    println!("|---|---|---|---|---|---|");
    for (bm, rows) in &stat {
        for r in &rows[2..4] {
            println!(
                "| {} | {} | {:.0}% | {:.0}% | {:.0}% | {:.0}% |",
                bm.name(),
                r.label.trim_start_matches("slip-"),
                100.0 * r.fills.fraction(ReqKind::Read, FillClass::ATimely),
                100.0 * r.fills.fraction(ReqKind::Read, FillClass::ALate),
                100.0 * r.fills.fraction(ReqKind::Read, FillClass::AOnly),
                100.0 * r.fills.a_coverage(ReqKind::ReadEx),
            );
        }
    }

    println!("\n## Figure 4 — dynamic scheduling (base vs slip-G0)\n");
    println!("| bench | base sched% | slip gain |");
    println!("|---|---|---|");
    let mut dgain = 0.0;
    for (bm, rows) in &dynm {
        let g = rows[0].exec_cycles as f64 / rows[1].exec_cycles as f64 - 1.0;
        dgain += g;
        println!(
            "| {} | {:.1}% | {:+.1}% |",
            bm.name(),
            100.0 * rows[0].r_breakdown.fraction(TimeClass::Scheduling),
            100.0 * g
        );
    }
    println!(
        "\naverage dynamic gain: **{:+.1}%** (paper: ~12%)\n",
        100.0 * dgain / dynm.len() as f64
    );

    println!("## Figure 5 — A-stream classification, dynamic (G0)\n");
    println!("| bench | read A-timely | read A-late | rd-ex A-timely | rd-ex A-late |");
    println!("|---|---|---|---|---|");
    for (bm, rows) in &dynm {
        let f = &rows[1].fills;
        println!(
            "| {} | {:.0}% | {:.0}% | {:.0}% | {:.0}% |",
            bm.name(),
            100.0 * f.fraction(ReqKind::Read, FillClass::ATimely),
            100.0 * f.fraction(ReqKind::Read, FillClass::ALate),
            100.0 * f.fraction(ReqKind::ReadEx, FillClass::ATimely),
            100.0 * f.fraction(ReqKind::ReadEx, FillClass::ALate),
        );
    }
    eprintln!(
        "\nwrote target/experiments.json ({} records) in {:?}",
        records.len(),
        t0.elapsed()
    );
}
