//! `omp-analyze` sweep: run the slipstream-safety static analyzer over
//! every NPB kernel (tiny + paper presets, plus the dynamic/guided
//! scheduling variants) and every example-analogue program.
//!
//! Prints a per-program table, writes the machine-readable JSON reports
//! to `$ANALYZE_OUT` when set, and exits non-zero if any program has a
//! deny-severity finding — the contract the CI `analyze` job enforces.
//!
//! With `SERVE_ADDR` set, each program's report is produced by a
//! running `serve` daemon (`analyze` job kind) instead of in-process;
//! both paths format through [`bench::analyze_one`], so the output is
//! byte-identical either way.
//!
//! Environment:
//! * `SERVE_ADDR` — route analysis through a sim-serve daemon.
//! * `ANALYZE_OUT` — path for the JSON report array.
//! * `ANALYZE_THREADS` — override the modelled team size (default 16).
//! * `ANALYZE_BUDGET` — override the node-visit budget.

use bench::{analysis_corpus, analyze_one};
use omp_analyze::AnalyzeConfig;

/// (table text, JSON item, deny count) per program, computed either
/// in-process or by a daemon.
fn reports(threads: Option<u64>, budget: Option<u64>) -> Vec<(String, String, u64)> {
    let corpus = analysis_corpus();
    if let Some(addr) = bench::env::string("SERVE_ADDR") {
        eprintln!("analyzing through the daemon at {addr}");
        let mut client = sim_serve::Client::connect(&addr).expect("connect to daemon");
        let knob = |k: &str, v: Option<u64>| v.map(|n| format!(",\"{k}\":{n}")).unwrap_or_default();
        corpus
            .iter()
            .map(|(label, _)| {
                let spec = format!(
                    "{{\"kind\":\"analyze\",\"program\":\"{label}\"{}{}}}",
                    knob("threads", threads),
                    knob("budget", budget),
                );
                let (_, payload) = client
                    .run_to_payload(&spec, 0, None)
                    .unwrap_or_else(|e| panic!("analyze {label}: {e}"));
                let v = sim_trace::json::parse(&payload)
                    .unwrap_or_else(|e| panic!("analyze {label} payload: {e}"));
                let s = |k: &str| {
                    v.get(k)
                        .and_then(|x| x.as_str())
                        .unwrap_or_else(|| panic!("analyze {label}: missing {k}"))
                        .to_string()
                };
                let denies = v
                    .get("denies")
                    .and_then(|x| x.as_num())
                    .map(|n| n as u64)
                    .unwrap_or_else(|| panic!("analyze {label}: missing denies"));
                (s("text"), s("json_item"), denies)
            })
            .collect()
    } else {
        let mut cfg = AnalyzeConfig::paper();
        if let Some(t) = threads {
            cfg = cfg.with_threads(t);
        }
        if let Some(b) = budget {
            cfg = cfg.with_budget(b);
        }
        corpus
            .iter()
            .map(|(label, program)| analyze_one(label, program, &cfg))
            .collect()
    }
}

fn main() {
    let threads = bench::env::get::<u64>("ANALYZE_THREADS");
    let budget = bench::env::get::<u64>("ANALYZE_BUDGET");

    // The header reports the effective config; resolve it locally even
    // when the reports come from a daemon.
    let mut cfg = AnalyzeConfig::paper();
    if let Some(t) = threads {
        cfg = cfg.with_threads(t);
    }
    println!(
        "slipstream-safety analysis: {} threads, {} L2 lines/node\n",
        cfg.num_threads, cfg.l2_lines
    );
    println!(
        "{:<18} {:>7} {:>5} {:>5} {:>5} {:>6} {:>9}  status",
        "program", "regions", "deny", "warn", "info", "lead", "visits"
    );

    let mut json_items = Vec::new();
    let mut total_denies = 0u64;
    for (text, json_item, denies) in reports(threads, budget) {
        total_denies += denies;
        println!("{text}");
        json_items.push(json_item);
    }

    if let Some(path) = bench::env::string("ANALYZE_OUT") {
        std::fs::write(&path, format!("[{}]\n", json_items.join(",\n")))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote JSON reports to {path}");
    }

    if total_denies > 0 {
        eprintln!("\n{total_denies} deny-severity finding(s)");
        std::process::exit(1);
    }
    println!("\nall programs clean of deny-severity findings");
}
