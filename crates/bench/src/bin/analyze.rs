//! `omp-analyze` sweep: run the slipstream-safety static analyzer over
//! every NPB kernel (tiny + paper presets, plus the dynamic/guided
//! scheduling variants) and every example-analogue program.
//!
//! Prints a per-program table, writes the machine-readable JSON reports
//! to `$ANALYZE_OUT` when set, and exits non-zero if any program has a
//! deny-severity finding — the contract the CI `analyze` job enforces.
//!
//! Environment:
//! * `ANALYZE_OUT` — path for the JSON report array.
//! * `ANALYZE_THREADS` — override the modelled team size (default 16).
//! * `ANALYZE_BUDGET` — override the node-visit budget.

use bench::example_programs;
use npb_kernels::Benchmark;
use omp_analyze::{analyze, AnalyzeConfig};
use omp_ir::node::{Program, ScheduleSpec};

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok().map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{key} must be an integer, got {v:?}"))
    })
}

fn corpus() -> Vec<(String, Program)> {
    let mut out = Vec::new();
    for bm in Benchmark::ALL {
        out.push((format!("{}-tiny", bm.name()), bm.build_tiny()));
        out.push((format!("{}-paper", bm.name()), bm.build_paper(None)));
        if bm.in_dynamic_experiment() {
            out.push((
                format!("{}-dyn2", bm.name()),
                bm.build_tiny_sched(ScheduleSpec::dynamic(2)),
            ));
            out.push((
                format!("{}-guided", bm.name()),
                bm.build_tiny_sched(ScheduleSpec::guided()),
            ));
        }
    }
    for p in example_programs() {
        out.push((format!("example-{}", p.name), p));
    }
    out
}

fn main() {
    let mut cfg = AnalyzeConfig::paper();
    if let Some(t) = env_u64("ANALYZE_THREADS") {
        cfg = cfg.with_threads(t);
    }
    if let Some(b) = env_u64("ANALYZE_BUDGET") {
        cfg = cfg.with_budget(b);
    }

    println!(
        "slipstream-safety analysis: {} threads, {} L2 lines/node\n",
        cfg.num_threads, cfg.l2_lines
    );
    println!(
        "{:<18} {:>7} {:>5} {:>5} {:>5} {:>6} {:>9}  status",
        "program", "regions", "deny", "warn", "info", "lead", "visits"
    );

    let mut json_items = Vec::new();
    let mut total_denies = 0u64;
    for (label, program) in corpus() {
        let r = analyze(&program, &cfg);
        total_denies += r.deny_count() as u64;
        let lead = r.regions.iter().map(|g| g.lead_phases).max().unwrap_or(0);
        let status = if r.truncated {
            "TRUNCATED"
        } else if r.deny_count() > 0 {
            "DENY"
        } else if !r.findings.is_empty() {
            "warn"
        } else {
            "clean"
        };
        println!(
            "{:<18} {:>7} {:>5} {:>5} {:>5} {:>6} {:>9}  {}",
            label,
            r.regions.len(),
            r.deny_count(),
            r.warn_count(),
            r.info_count(),
            lead,
            r.visits,
            status
        );
        for f in &r.findings {
            println!("    {f}");
        }
        json_items.push(format!(
            "{{\"program\":\"{label}\",\"report\":{}}}",
            r.to_json()
        ));
    }

    if let Ok(path) = std::env::var("ANALYZE_OUT") {
        std::fs::write(&path, format!("[{}]\n", json_items.join(",\n")))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote JSON reports to {path}");
    }

    if total_denies > 0 {
        eprintln!("\n{total_denies} deny-severity finding(s)");
        std::process::exit(1);
    }
    println!("\nall programs clean of deny-severity findings");
}
