//! Extension — affinity scheduling (the paper's Section 3.2.2 cites it
//! as the remedy for dynamic scheduling's lost cache affinity:
//! "A proposed affinity scheduling extension [16] attempts to achieve
//! the same result for dynamic scheduling").
//!
//! Compares static / dynamic / affinity schedules under single and
//! slipstream modes. Affinity keeps each thread on its own block across
//! iterations (data stays in its L2) and steals only to rebalance, so it
//! should recover most of static's locality while keeping dynamic's
//! balancing.

use npb_kernels::{Benchmark, CgParams};
use omp_ir::node::ScheduleSpec;
use omp_rt::mode::{ExecMode, SlipSync};
use slipstream::runner::{run_program, RunOptions};
use slipstream::{MachineConfig, TimeClass};

fn main() {
    let machine = MachineConfig::paper();
    let team = machine.num_cmps as u64;
    println!("Scheduling comparison: static vs dynamic vs affinity\n");
    for bm in [Benchmark::Cg, Benchmark::Sp] {
        let chunk = if bm == Benchmark::Cg {
            CgParams::paper().paper_dynamic_chunk(team)
        } else {
            1
        };
        println!("--- {} (chunk {}) ---", bm.name(), chunk);
        println!(
            "{:<10} {:<8} {:>12} {:>9} {:>8} {:>8}",
            "schedule", "mode", "cycles", "sched%", "grabs", "steals"
        );
        for (sname, sched) in [
            ("static", None),
            ("dynamic", Some(ScheduleSpec::dynamic(chunk))),
            ("affinity", Some(ScheduleSpec::affinity(chunk))),
        ] {
            let p = bm.build_paper(sched);
            for (mlabel, mode, sync) in [
                ("single", ExecMode::Single, None),
                ("slip-G0", ExecMode::Slipstream, Some(SlipSync::G0)),
            ] {
                let mut o = RunOptions::new(mode).with_machine(machine.clone());
                o.sync = sync;
                let r = run_program(&p, &o).expect("simulation failed");
                println!(
                    "{:<10} {:<8} {:>12} {:>8.1}% {:>8} {:>8}",
                    sname,
                    mlabel,
                    r.exec_cycles,
                    100.0 * r.r_breakdown.fraction(TimeClass::Scheduling),
                    r.raw.sched_grabs,
                    r.raw.sched_steals,
                );
            }
        }
        println!();
    }
    println!("Expected: affinity lands between static and dynamic — its own-");
    println!("block grabs are node-local (cheap) and data reuse across");
    println!("iterations survives, unlike dynamic's arbitrary reassignment.");
}
