//! Machine-size sweep: the scalability story behind the paper's
//! motivation ("for fewer number of CMPs, running in double mode can
//! yield better performance... We focused on the region where these
//! benchmarks benefit more from reducing the communication overheads").
//!
//! Sweeps the CMP count and reports, per benchmark, which mode wins —
//! the crossover from parallelism (double) to communication reduction
//! (slipstream) as the machine grows.

use bench::{run_modes, STATIC_MODES};
use npb_kernels::Benchmark;
use slipstream::MachineConfig;

fn main() {
    let sizes = [2usize, 4, 8, 16];
    println!("Machine-size sweep: speedup over single mode at each size\n");
    for bm in Benchmark::ALL {
        let p = bm.build_paper(None);
        println!("--- {} ---", bm.name());
        println!(
            "{:>5} {:>9} {:>9} {:>9} {:>9}   winner",
            "CMPs", "single", "double", "slip-L1", "slip-G0"
        );
        for n in sizes {
            let mut m = MachineConfig::paper();
            m.num_cmps = n;
            let rows = run_modes(&p, &m, &STATIC_MODES);
            let base = rows[0].exec_cycles as f64;
            let speedups: Vec<f64> = rows.iter().map(|r| base / r.exec_cycles as f64).collect();
            let winner = rows
                .iter()
                .min_by_key(|r| r.exec_cycles)
                .map(|r| r.label.clone())
                .unwrap();
            println!(
                "{:>5} {:>9.3} {:>9.3} {:>9.3} {:>9.3}   {}",
                n, speedups[0], speedups[1], speedups[2], speedups[3], winner
            );
        }
        println!();
    }
}
