//! Standalone deterministic chaos proxy for the sim-serve protocol.
//!
//! Sits between a client and a daemon and injects transport faults —
//! resets, garbage lines, truncations, split writes, latency — on a
//! schedule that is a pure function of `CHAOS_SEED`, so any failure a
//! chaos run uncovers is replayable from its seed. Used by the CI
//! `chaos-smoke` job and handy for soaking a daemon by hand:
//!
//! ```text
//! SERVE_ADDR=127.0.0.1:4999 cargo run --release --bin serve &
//! CHAOS_UPSTREAM=127.0.0.1:4999 CHAOS_LISTEN=127.0.0.1:5999 \
//!     CHAOS_SEED=42 cargo run --release --bin chaos_proxy &
//! SERVE_ADDR=127.0.0.1:5999 cargo run --release --bin serve_batch
//! ```
//!
//! Environment:
//! * `CHAOS_UPSTREAM` — daemon address to forward to (required).
//! * `CHAOS_LISTEN` — listen address (default `127.0.0.1:0`; the
//!   chosen port is printed on startup).
//! * `CHAOS_SEED` — fault-schedule seed (default 1).
//! * `CHAOS_PROFILE` — `calm` or `storm` (default `storm`).
//! * `CHAOS_SECS` — exit after this many seconds, printing fault
//!   counters (default: run until killed).

use bench::env;
use sim_serve::chaos::{ChaosConfig, ChaosProxy};

fn main() {
    let upstream = env::string("CHAOS_UPSTREAM")
        .unwrap_or_else(|| panic!("CHAOS_UPSTREAM must name the daemon address"));
    let listen = env::string_or("CHAOS_LISTEN", "127.0.0.1:0");
    let seed: u64 = env::get_or("CHAOS_SEED", 1);
    let profile = env::string_or("CHAOS_PROFILE", "storm");
    let cfg = match profile.as_str() {
        "calm" => ChaosConfig::calm(seed),
        "storm" => ChaosConfig::storm(seed),
        other => panic!("CHAOS_PROFILE={other:?} (want calm or storm)"),
    };
    let proxy =
        ChaosProxy::bind(&listen, &upstream, cfg).unwrap_or_else(|e| panic!("chaos proxy: {e}"));
    println!(
        "chaos proxy listening on {} -> {upstream} (profile {profile}, seed {seed:#x})",
        proxy.local_addr()
    );

    match env::get::<u64>("CHAOS_SECS") {
        Some(secs) => {
            std::thread::sleep(std::time::Duration::from_secs(secs));
            let c = proxy.counters();
            use std::sync::atomic::Ordering::Relaxed;
            println!(
                "chaos proxy: {} connections, {} resets, {} garbage, {} truncates, \
                 {} splits, {} delays",
                c.connections.load(Relaxed),
                c.resets.load(Relaxed),
                c.garbage.load(Relaxed),
                c.truncates.load(Relaxed),
                c.splits.load(Relaxed),
                c.delays.load(Relaxed),
            );
            proxy.stop();
        }
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
}
