//! Table 2 — the benchmark suite.
//!
//! Lists the five NPB analogues with their scaled problem sizes and
//! structural statistics (from the reference tracer).

use npb_kernels::Benchmark;
use omp_ir::trace::trace;

fn main() {
    println!("Table 2: Benchmarks (NPB 2.3 OpenMP analogues, scaled problem sizes)");
    println!("====================================================================");
    println!(
        "{:<6} {:<44} {:>10} {:>10} {:>9}",
        "name", "problem", "loads", "stores", "barriers"
    );
    for bm in Benchmark::ALL {
        let p = bm.build_paper(None);
        let t = trace(&p, 16);
        let desc = match bm {
            Benchmark::Bt => "block-tridiagonal ADI, 16^3 grid, 3 steps",
            Benchmark::Cg => "conjugate gradient, n=512, 16-32 nnz/row, 6 iters",
            Benchmark::Lu => "SSOR wavefront, 12^3 grid, 2 iters",
            Benchmark::Mg => "multigrid V-cycle, 32^3..4^3, 2 cycles",
            Benchmark::Sp => "scalar-pentadiagonal ADI, 16^3 grid, 4 steps",
        };
        println!(
            "{:<6} {:<44} {:>10} {:>10} {:>9}",
            bm.name(),
            desc,
            t.total.loads,
            t.total.stores,
            t.barrier_episodes
        );
    }
    println!();
    println!("All runs use 16 dual-processor CMPs (Table 1 machine).");
    println!("LU is excluded from the dynamic-scheduling experiment (static");
    println!("scheduling is programmatically specified for its wavefronts).");
}
