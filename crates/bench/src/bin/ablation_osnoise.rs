//! Ablation — OS interference (the IRIX effect).
//!
//! The paper runs under IRIX, which "does not recognize slipstream mode
//! where A-stream and R-stream are scheduled and serviced independently",
//! and whose scheduling noise penalizes barrier-heavy configurations:
//! any interrupted straggler delays every barrier participant. This
//! ablation turns on a deterministic timer-tick/daemon model and shows
//! who suffers.

use npb_kernels::Benchmark;
use omp_rt::mode::{ExecMode, SlipSync};
use slipstream::runner::{run_program, RunOptions};
use slipstream::{MachineConfig, OsNoise, TimeClass};

fn main() {
    // ~10 us stolen every ~500 us per processor at 1.2 GHz.
    let noise = OsNoise {
        quantum_cycles: 600_000,
        slice_cycles: 12_000,
        seed: 42,
    };
    println!(
        "OS-noise ablation: {} cycles stolen every ~{} cycles per CPU\n",
        noise.slice_cycles, noise.quantum_cycles
    );
    println!(
        "{:<6} {:<8} {:>12} {:>12} {:>9} {:>8}",
        "bench", "mode", "quiet", "noisy", "slowdown", "os%"
    );
    for bm in [Benchmark::Mg, Benchmark::Cg] {
        let p = bm.build_paper(None);
        for (label, mode, sync) in [
            ("single", ExecMode::Single, None),
            ("double", ExecMode::Double, None),
            ("slip-G0", ExecMode::Slipstream, Some(SlipSync::G0)),
        ] {
            let mut quiet_o = RunOptions::new(mode).with_machine(MachineConfig::paper());
            quiet_o.sync = sync;
            let quiet = run_program(&p, &quiet_o).unwrap();
            let noisy_o = quiet_o.clone().with_os_noise(noise);
            let noisy = run_program(&p, &noisy_o).unwrap();
            println!(
                "{:<6} {:<8} {:>12} {:>12} {:>8.1}% {:>7.1}%",
                bm.name(),
                label,
                quiet.exec_cycles,
                noisy.exec_cycles,
                100.0 * (noisy.exec_cycles as f64 / quiet.exec_cycles as f64 - 1.0),
                100.0 * noisy.r_breakdown.fraction(TimeClass::Os),
            );
        }
        println!();
    }
    println!("Barrier-dense modes amplify the stolen slices: every");
    println!("interrupted straggler delays all barrier participants.");
}
