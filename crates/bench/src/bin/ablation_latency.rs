//! Ablation — remote-latency sensitivity.
//!
//! Slipstream's premise is that it pays when communication dominates.
//! This sweep scales the network time (and hence the remote-miss
//! latency) and reports how the slipstream gain over single mode grows
//! with it.

use bench::run_modes;
use npb_kernels::Benchmark;
use omp_rt::mode::{ExecMode, SlipSync};
use slipstream::MachineConfig;

fn main() {
    println!("Remote-latency sensitivity (scaling NetTime; base 50 ns)\n");
    println!(
        "{:<6} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "bench", "net(ns)", "remote(ns)", "single", "slip-G0", "gain"
    );
    for bm in [Benchmark::Sp, Benchmark::Mg] {
        let p = bm.build_paper(None);
        for net in [10u64, 25, 50, 100, 200] {
            let mut m = MachineConfig::paper();
            m.mem_ns.net_time = net;
            let rows = run_modes(
                &p,
                &m,
                &[
                    ("single", ExecMode::Single, None),
                    ("slip-G0", ExecMode::Slipstream, Some(SlipSync::G0)),
                ],
            );
            let gain = rows[0].exec_cycles as f64 / rows[1].exec_cycles as f64 - 1.0;
            println!(
                "{:<6} {:>8} {:>12} {:>12} {:>12} {:>+9.1}%",
                bm.name(),
                net,
                m.remote_miss_ns(),
                rows[0].exec_cycles,
                rows[1].exec_cycles,
                100.0 * gain
            );
        }
        println!();
    }
    println!("Expected shape: the slipstream gain grows with remote latency —");
    println!("the mechanism hides communication, so more communication cost");
    println!("means more to hide (and at very low latency it nets ~nothing).");
}
