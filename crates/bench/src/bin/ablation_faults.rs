//! Resilience ablation — how much does slipstream pay under injected
//! faults, and where does graceful degradation kick in?
//!
//! Sweeps seeded random fault plans of growing intensity against two NPB
//! kernels and reports execution time relative to the fault-free
//! slipstream run and to single mode, alongside the recovery/demotion
//! ledger. A faulted slipstream run can never be wrong (the R-streams
//! carry the architectural state); the only question is how much of the
//! A-stream benefit survives, and whether a battered pair is better off
//! demoted to single-stream mode (bounded retry) than thrashing in
//! recovery.

use npb_kernels::Benchmark;
use omp_rt::mode::{ExecMode, SlipSync};
use slipstream::faults::FaultPlan;
use slipstream::policy::RecoveryPolicy;
use slipstream::report::resilience_table;
use slipstream::runner::{run_program, RunOptions};
use slipstream::MachineConfig;

const SEEDS_PER_POINT: u64 = 5;

fn main() {
    let mut machine = MachineConfig::paper();
    machine.num_cmps = 4;
    let team = machine.num_cmps as u64;
    // The tiny sweep workloads finish in ~100k cycles, so the watchdog
    // must be proportionate or a single stranded pair idles for several
    // run-lengths before the backstop fires.
    let recovery = RecoveryPolicy::paper().with_watchdog(40_000);

    println!("Fault-injection resilience sweep (team of {team} pairs)\n");
    for bm in [Benchmark::Cg, Benchmark::Mg] {
        let p = bm.build_tiny();

        let single = run_program(
            &p,
            &RunOptions::new(ExecMode::Single).with_machine(machine.clone()),
        )
        .expect("single run");
        let clean = run_program(
            &p,
            &RunOptions::new(ExecMode::Slipstream)
                .with_machine(machine.clone())
                .with_sync(SlipSync::G0),
        )
        .expect("clean slipstream run");

        println!("--- {} ---", bm.name());
        println!(
            "single: {} cycles; slip-G0 clean: {} cycles ({:.3}x)\n",
            single.exec_cycles,
            clean.exec_cycles,
            clean.speedup_vs(single.exec_cycles),
        );
        println!(
            "{:>7} {:>6} {:>12} {:>9} {:>9} {:>6} {:>10} {:>10}",
            "faults", "seed", "cycles", "vs-clean", "vs-1stm", "fired", "recoveries", "demotions"
        );
        // Every (intensity, seed) run is an independent simulation: run
        // them all on the bounded worker pool, then report in sweep
        // order (the pool returns results in task order, so the output
        // is identical to the old serial loop).
        type Task<'s> =
            Box<dyn FnOnce() -> (usize, u64, slipstream::runner::RunSummary) + Send + 's>;
        let mut tasks: Vec<Task> = Vec::new();
        for max_events in [2usize, 6, 12] {
            for seed in 0..SEEDS_PER_POINT {
                let machine = machine.clone();
                let p = &p;
                tasks.push(Box::new(move || {
                    let plan = FaultPlan::random(seed * 7 + max_events as u64, team, max_events);
                    let opts = RunOptions::new(ExecMode::Slipstream)
                        .with_machine(machine)
                        .with_sync(SlipSync::G0)
                        .with_faults(plan)
                        .with_recovery(recovery);
                    let r = run_program(p, &opts).expect("faulted run must terminate");
                    (max_events, seed, r)
                }));
            }
        }
        let mut worst: Option<(u64, slipstream::runner::RunSummary)> = None;
        for (max_events, seed, r) in bench::pool::run_all(tasks) {
            let fired: u64 = r.raw.pair_ledgers.iter().map(|l| l.faults_injected).sum();
            println!(
                "{:>7} {:>6} {:>12} {:>8.3}x {:>8.3}x {:>6} {:>10} {:>10}",
                max_events,
                seed,
                r.exec_cycles,
                clean.exec_cycles as f64 / r.exec_cycles as f64,
                r.speedup_vs(single.exec_cycles),
                fired,
                r.raw.recoveries,
                r.raw.demotions,
            );
            if worst
                .as_ref()
                .map(|(c, _)| r.exec_cycles > *c)
                .unwrap_or(true)
            {
                worst = Some((r.exec_cycles, r));
            }
        }
        if let Some((_, w)) = worst {
            println!("\nworst run's resilience ledger:");
            print!("{}", resilience_table(&w.raw));
        }
        println!();
    }
    println!("Expected: light fault plans cost a few recovery penalties and");
    println!("stay close to the clean slipstream time; heavy plans demote the");
    println!("battered pairs, whose nodes then run at single-stream speed —");
    println!("degraded, but never slower than losing the whole region to a");
    println!("deadlocked barrier, and never incorrect.");
}
