//! Chaos-soak harness: hundreds of seeded random fault scenarios across
//! the NPB kernels and synchronization modes, each checked against three
//! invariants:
//!
//! 1. **Termination** — every run completes within a generous cycle
//!    budget (no fault plan may deadlock or run away);
//! 2. **Oracle exactness** — the R-stream's architectural output (loads,
//!    stores, compute, I/O) is bit-identical to the fault-free reference
//!    executor, whatever the A-streams suffered;
//! 3. **Controller consistency** — the structured trace's health and
//!    breaker transitions are legal under the state machines, replay to
//!    the ledger's final states, and the traced recovery/demotion counts
//!    match the aggregate counters.
//!
//! On top of the random sweep, two crafted scenarios pin the closed-loop
//! behaviours the controller exists for: a transient fault that demotes a
//! pair and must end with a successful probationary re-promotion, and a
//! half-team outage that must trip the team breaker and re-close it after
//! the pair heals.
//!
//! Every scenario is a pure function of its seed; any failure is appended
//! to `soak-failing-seeds.txt` (override with `SOAK_FAIL_FILE`) so it can
//! be replayed exactly. `SOAK_SCENARIOS` overrides the scenario count
//! (default 200); `SOAK_SEED` offsets the seed base.

use bench::{env, pool};
use npb_kernels::Benchmark;
use omp_ir::expr::Expr;
use omp_ir::node::Program;
use omp_ir::trace::{trace, TraceSummary};
use omp_rt::mode::{HealthState, PairMode, HEALTH_STATES};
use omp_rt::team::BreakerConfig;
use omp_rt::{ExecMode, SlipSync};
use sim_trace::{TraceConfig, TraceEvent};
use slipstream::faults::{FaultEvent, FaultKind, FaultPlan};
use slipstream::health::HealthPolicy;
use slipstream::policy::RecoveryPolicy;
use slipstream::runner::{run_program, RunOptions, RunSummary};
use slipstream::MachineConfig;
use std::io::Write;

/// Hard upper bound on simulated cycles for any soak scenario. Tiny-class
/// runs finish in the low millions; hitting this means a runaway.
const CYCLE_BUDGET: u64 = 2_000_000_000;

/// Pairs in the random-sweep machine (4 CMPs).
const TEAM: u64 = 4;

fn machine(cmps: usize) -> MachineConfig {
    let mut m = MachineConfig::paper();
    m.num_cmps = cmps;
    m
}

/// The crafted-scenario program: identical parallel regions give the
/// health controller a clean region clock for cool-down and probation.
fn multi_region(n: i64, regions: usize, fors: usize) -> Program {
    let mut b = omp_ir::ProgramBuilder::new("regions");
    let x = b.shared_array("x", n as u64, 8);
    let y = b.shared_array("y", n as u64, 8);
    let i = b.var();
    for _ in 0..regions {
        b.parallel(move |r| {
            for _ in 0..fors {
                r.par_for(None, i, 0, n, move |body| {
                    body.load(x, Expr::v(i));
                    body.compute(2);
                    body.store(y, Expr::v(i));
                });
            }
        });
    }
    b.build()
}

/// One soak scenario: everything needed to run it and to replay it.
struct Scenario {
    label: String,
    program_idx: usize,
    team: u64,
    sync: SlipSync,
    plan: FaultPlan,
    recovery: RecoveryPolicy,
    health: HealthPolicy,
    /// Crafted-scenario expectations (None for the random sweep).
    expect_repromotion: bool,
    expect_breaker_cycle: bool,
}

/// Aggregate counters surviving a scenario, for the end-of-soak summary.
#[derive(Default)]
struct Tally {
    recoveries: u64,
    watchdog: u64,
    timeout: u64,
    demotions: u64,
    repromotions: u64,
    trips: u64,
    reclosures: u64,
    max_cycles: u64,
}

fn check_oracle(r: &RunSummary, oracle: &TraceSummary) -> Result<(), String> {
    let u = &r.raw.user_r;
    let o = &oracle.total;
    if u.loads != o.loads || u.stores != o.stores || u.compute_cycles != o.compute_cycles {
        return Err(format!(
            "R-stream output diverged from oracle: loads {}/{} stores {}/{} compute {}/{}",
            u.loads, o.loads, u.stores, o.stores, u.compute_cycles, o.compute_cycles
        ));
    }
    if u.io_in != o.io_in || u.io_out != o.io_out {
        return Err(format!(
            "R-stream I/O diverged: in {}/{} out {}/{}",
            u.io_in, o.io_in, u.io_out, o.io_out
        ));
    }
    if r.raw.user_a.io_in != 0 || r.raw.user_a.io_out != 0 {
        return Err("A-stream performed I/O".into());
    }
    Ok(())
}

fn health_by_label(l: &str) -> Result<HealthState, String> {
    HEALTH_STATES
        .iter()
        .copied()
        .find(|s| s.label() == l)
        .ok_or_else(|| format!("unknown health label {l}"))
}

/// Invariant 3: replay the traced controller transitions. Per-event
/// legality always holds; state continuity and final-state agreement with
/// the ledger are only checked on lossless traces (the per-track rings
/// drop oldest on overflow).
fn check_trace_consistency(r: &RunSummary) -> Result<(), String> {
    let data = match r.raw.trace.as_ref() {
        Some(d) => d,
        None => return Err("soak runs must be traced".into()),
    };
    let lossless = data.dropped == 0;
    let mut health: Vec<HealthState> = vec![HealthState::Healthy; r.raw.pair_ledgers.len()];
    let mut breaker = "closed";
    let mut traced_recoveries = 0u64;
    let mut traced_timeout = 0u64;
    let mut traced_watchdog = 0u64;
    for e in &data.events {
        match &e.ev {
            TraceEvent::Health { pair, from, to } => {
                let (f, t) = (health_by_label(from)?, health_by_label(to)?);
                if !f.can_transition_to(t) {
                    return Err(format!(
                        "illegal health transition {from} -> {to} (pair {pair})"
                    ));
                }
                let p = *pair as usize;
                if lossless && health[p] != f {
                    return Err(format!(
                        "health discontinuity on pair {pair}: at {:?}, event claims {from} -> {to}",
                        health[p]
                    ));
                }
                health[p] = t;
            }
            TraceEvent::Breaker { from, to, .. } => {
                let legal = matches!(
                    (*from, *to),
                    ("closed", "open")
                        | ("open", "half-open")
                        | ("half-open", "closed")
                        | ("half-open", "open")
                );
                if !legal {
                    return Err(format!("illegal breaker transition {from} -> {to}"));
                }
                if lossless && breaker != *from {
                    return Err(format!(
                        "breaker discontinuity: at {breaker}, event claims {from} -> {to}"
                    ));
                }
                breaker = to;
            }
            TraceEvent::Recovery {
                watchdog, timeout, ..
            } => {
                traced_recoveries += 1;
                if *watchdog {
                    traced_watchdog += 1;
                }
                if *timeout {
                    traced_timeout += 1;
                }
            }
            _ => {}
        }
    }
    if lossless {
        for (p, l) in r.raw.pair_ledgers.iter().enumerate() {
            if health[p] != l.health {
                return Err(format!(
                    "trace replay of pair {p} ends {:?}, ledger says {:?}",
                    health[p], l.health
                ));
            }
        }
        if traced_recoveries != r.raw.recoveries
            || traced_watchdog != r.raw.watchdog_recoveries
            || traced_timeout != r.raw.timeout_recoveries
        {
            return Err(format!(
                "traced recovery counts {traced_recoveries}/{traced_watchdog}/{traced_timeout} \
                 disagree with aggregates {}/{}/{}",
                r.raw.recoveries, r.raw.watchdog_recoveries, r.raw.timeout_recoveries
            ));
        }
    }
    Ok(())
}

fn check_ledger(r: &RunSummary) -> Result<(), String> {
    let mut recoveries = 0;
    let mut watchdog = 0;
    let mut timeout = 0;
    let mut repromotions = 0;
    for l in &r.raw.pair_ledgers {
        recoveries += l.recoveries;
        watchdog += l.watchdog_recoveries;
        timeout += l.timeout_recoveries;
        repromotions += l.repromotions;
        if l.watchdog_recoveries + l.timeout_recoveries > l.recoveries {
            return Err(format!("recovery subsets exceed total: {l:?}"));
        }
        if l.demoted() != (l.health == HealthState::Demoted) {
            return Err(format!("mode/health disagreement: {l:?}"));
        }
        if l.demoted() && l.demoted_at.is_none() {
            return Err(format!("demoted pair without a demotion cycle: {l:?}"));
        }
        if l.repromotions > 0 && l.demoted_at.is_none() {
            return Err(format!("repromoted pair was never demoted: {l:?}"));
        }
    }
    let raw = &r.raw;
    if recoveries != raw.recoveries
        || watchdog != raw.watchdog_recoveries
        || timeout != raw.timeout_recoveries
        || repromotions != raw.repromotions
    {
        return Err("ledger totals disagree with aggregate counters".into());
    }
    let demoted_now = raw.pair_ledgers.iter().filter(|l| l.demoted()).count() as u64;
    if demoted_now != raw.demotions {
        return Err(format!(
            "demotions counter {} != pairs demoted at end {demoted_now}",
            raw.demotions
        ));
    }
    Ok(())
}

fn run_scenario(s: &Scenario, programs: &[(Program, TraceSummary)]) -> Result<Tally, String> {
    let (program, oracle) = &programs[s.program_idx];
    // Engine workers come from SIM_WORKERS, clamped by the pool guard so
    // scenarios running on every pool worker never oversubscribe the
    // host (results are bit-identical at any worker count regardless).
    let workers = env::get("SIM_WORKERS").map_or(1, pool::engine_workers);
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_machine(machine(s.team as usize))
        .with_sync(s.sync)
        .with_faults(s.plan.clone())
        .with_recovery(s.recovery)
        .with_health(s.health)
        .with_trace(TraceConfig::on())
        .with_workers(workers);
    let r = run_program(program, &opts).map_err(|e| format!("run failed: {e}"))?;
    if r.exec_cycles > CYCLE_BUDGET {
        return Err(format!(
            "cycle budget exceeded: {} > {CYCLE_BUDGET}",
            r.exec_cycles
        ));
    }
    check_oracle(&r, oracle)?;
    check_trace_consistency(&r)?;
    check_ledger(&r)?;
    if s.expect_repromotion && r.raw.repromotions == 0 {
        return Err("crafted scenario expected a successful re-promotion".into());
    }
    if s.expect_repromotion
        && !r
            .raw
            .pair_ledgers
            .iter()
            .any(|l| l.repromotions > 0 && l.mode == PairMode::Slipstream)
    {
        return Err("re-promoted pair did not finish back in slipstream".into());
    }
    if s.expect_breaker_cycle && (r.raw.breaker_trips == 0 || r.raw.breaker_reclosures == 0) {
        return Err(format!(
            "crafted scenario expected trip + re-closure, got {} trips {} reclosures",
            r.raw.breaker_trips, r.raw.breaker_reclosures
        ));
    }
    Ok(Tally {
        recoveries: r.raw.recoveries,
        watchdog: r.raw.watchdog_recoveries,
        timeout: r.raw.timeout_recoveries,
        demotions: r.raw.demotions,
        repromotions: r.raw.repromotions,
        trips: r.raw.breaker_trips,
        reclosures: r.raw.breaker_reclosures,
        max_cycles: r.exec_cycles,
    })
}

/// `SERVE_ADDR`-gated cross-check: ship each kernel program over the
/// wire as `program_json`, let the daemon simulate it under a seeded
/// fault plan, and compare its result fingerprint against an identical
/// in-process run. Exercises program serialization, the daemon's spec
/// path, and cross-process engine determinism in one sweep.
fn cross_check_daemon(addr: &str, seed_base: u64) {
    eprintln!(
        "soak: cross-checking {} kernels against the daemon at {addr}",
        Benchmark::ALL.len()
    );
    let mut client = sim_serve::Client::connect(addr).expect("connect to daemon");
    for (k, bm) in Benchmark::ALL.iter().enumerate() {
        let program = bm.build_tiny();
        let seed = seed_base + 0x50AC + k as u64;
        let spec = format!(
            "{{\"kind\":\"run\",\"program_json\":\"{}\",\"machine\":\"small\",\
             \"mode\":\"slip-G0\",\"workers\":1,\
             \"fault_seed\":{seed},\"fault_team\":{TEAM},\"fault_events\":4}}",
            sim_serve::proto::esc(&omp_ir::program_to_json(&program)),
        );
        let (_, payload) = client
            .run_to_payload(&spec, 0, None)
            .unwrap_or_else(|e| panic!("daemon cross-check {}: {e}", bm.name()));
        let row = bench::serve::SuiteRow::from_payload(&payload).expect("row payload");
        let opts = RunOptions::new(ExecMode::Slipstream)
            .with_machine(machine(TEAM as usize))
            .with_sync(SlipSync::G0)
            .with_faults(FaultPlan::random(seed, TEAM, 4))
            .with_workers(pool::engine_workers(1));
        let local = run_program(&program, &opts).expect("local cross-check run");
        assert_eq!(
            row.fingerprint,
            bench::summary_fingerprint(&local),
            "daemon and in-process runs diverged for {}",
            bm.name()
        );
    }
    eprintln!("soak: daemon cross-check passed");
}

fn main() {
    let scenarios = env::get_or("SOAK_SCENARIOS", 200);
    let seed_base = env::get_or("SOAK_SEED", 0);
    let fail_file = env::string_or("SOAK_FAIL_FILE", "soak-failing-seeds.txt");

    if let Some(addr) = env::string("SERVE_ADDR") {
        cross_check_daemon(&addr, seed_base);
    }

    // Programs and their fault-free oracles, computed once. Index 0..5
    // are the NPB kernels (tiny class); 5 is the crafted-scenario
    // multi-region program at team 4; 6 the same at team 2.
    eprintln!("soak: preparing programs and oracles…");
    let mut programs: Vec<(Program, TraceSummary)> = Benchmark::ALL
        .iter()
        .map(|bm| {
            let p = bm.build_tiny();
            let o = trace(&p, TEAM);
            (p, o)
        })
        .collect();
    let crafted = multi_region(96, 8, 6);
    let crafted_oracle = trace(&crafted, TEAM);
    programs.push((crafted.clone(), crafted_oracle));
    let crafted2_oracle = trace(&crafted, 2);
    programs.push((crafted, crafted2_oracle));

    // Fuzz-minimized corpus: every program JSON (raw or repro artifact)
    // in `SOAK_CORPUS` joins the soak as additional scenarios under the
    // same three invariants. Deny-class programs are skipped — the
    // differential fuzzer promotes only clean survivors, but the soak
    // must not silently trust a hand-edited directory.
    let mut corpus: Vec<(usize, String)> = Vec::new();
    if let Some(dir) = env::string("SOAK_CORPUS") {
        let mut paths: Vec<_> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("SOAK_CORPUS {dir}: {e}"))
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort(); // deterministic scenario order
        for path in paths {
            let name = path
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned();
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("soak: skipping corpus file {name}: {e}");
                    continue;
                }
            };
            let program = omp_fuzz::Repro::from_json(&text)
                .map(|r| r.program)
                .or_else(|_| omp_ir::program_from_json(&text));
            let program = match program {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("soak: skipping corpus file {name}: not a repro or program: {e}");
                    continue;
                }
            };
            if let Err(e) = omp_ir::validate(&program) {
                eprintln!("soak: skipping corpus file {name}: invalid program: {e}");
                continue;
            }
            let report = omp_analyze::analyze(
                &program,
                &omp_analyze::AnalyzeConfig::paper().with_threads(TEAM),
            );
            if report.deny_count() > 0 {
                eprintln!(
                    "soak: skipping deny-class corpus program {name} ({} deny finding(s))",
                    report.deny_count()
                );
                continue;
            }
            let oracle = trace(&program, TEAM);
            corpus.push((programs.len(), name));
            programs.push((program, oracle));
        }
        eprintln!(
            "soak: loaded {} corpus scenario program(s) from {dir}",
            corpus.len()
        );
    }

    // The sweep: seeded random plans over kernels × sync modes × recovery
    // budgets, all under the hardened recovery policy (every detection
    // tier armed) and the adaptive health controller.
    let sweep_recovery = RecoveryPolicy::hardened()
        .with_watchdog(150_000)
        .with_token_wait(120_000);
    let budgets = [8u64, 0, 2, 4];
    let mut list: Vec<Scenario> = Vec::new();
    for k in 0..scenarios {
        let seed = seed_base + k;
        let bench = (k % Benchmark::ALL.len() as u64) as usize;
        let sync = if (k / 5) % 2 == 0 {
            SlipSync::G0
        } else {
            SlipSync::L1
        };
        let budget = budgets[(k % budgets.len() as u64) as usize];
        list.push(Scenario {
            label: format!(
                "seed={seed} bench={} sync={} budget={budget}",
                Benchmark::ALL[bench].name(),
                sync.label()
            ),
            program_idx: bench,
            team: TEAM,
            sync,
            plan: FaultPlan::random(seed, TEAM, 6),
            recovery: sweep_recovery.with_max_recoveries(budget),
            health: HealthPolicy::adaptive(),
            expect_repromotion: false,
            expect_breaker_cycle: false,
        });
    }
    // Crafted: a transient wander demotes pair 1, which must serve its
    // cool-down, pass probation, and finish healthy back in slipstream.
    list.push(Scenario {
        label: "crafted-repromotion".into(),
        program_idx: 5,
        team: TEAM,
        sync: SlipSync::G0,
        plan: FaultPlan::wander_at(1, 0),
        recovery: RecoveryPolicy::paper()
            .with_watchdog(150_000)
            .with_max_recoveries(0),
        health: HealthPolicy::adaptive().with_breaker(BreakerConfig::disabled()),
        expect_repromotion: true,
        expect_breaker_cycle: false,
    });
    // Crafted: on a 2-pair team one demotion is half the team — the
    // breaker must trip, hold, half-open, and re-close once the pair
    // heals through probation.
    list.push(Scenario {
        label: "crafted-breaker-cycle".into(),
        program_idx: 6,
        team: 2,
        sync: SlipSync::G0,
        plan: FaultPlan::wander_at(1, 0),
        recovery: RecoveryPolicy::paper()
            .with_watchdog(150_000)
            .with_max_recoveries(0),
        health: HealthPolicy::adaptive(),
        expect_repromotion: true,
        expect_breaker_cycle: true,
    });
    // A stall-burst heavy scenario to exercise the token-wait timeout
    // tier with the watchdog off: timeouts, not deadlock.
    list.push(Scenario {
        label: "crafted-timeout-only".into(),
        program_idx: 5,
        team: TEAM,
        sync: SlipSync::G0,
        plan: FaultPlan::none().with(FaultEvent {
            kind: FaultKind::TokenLoss,
            tid: 0,
            seq: 0,
            arg: 0,
        }),
        recovery: RecoveryPolicy::hardened().with_watchdog(0),
        health: HealthPolicy::adaptive(),
        expect_repromotion: false,
        expect_breaker_cycle: false,
    });

    // Corpus programs: both synchronization modes, seeded fault plans,
    // hardened recovery — the same regime as the random sweep.
    for (k, (idx, name)) in corpus.iter().enumerate() {
        for sync in [SlipSync::G0, SlipSync::L1] {
            list.push(Scenario {
                label: format!("corpus={name} sync={}", sync.label()),
                program_idx: *idx,
                team: TEAM,
                sync,
                plan: FaultPlan::random(seed_base + 0xC0_u64 + k as u64, TEAM, 4),
                recovery: sweep_recovery.with_max_recoveries(8),
                health: HealthPolicy::adaptive(),
                expect_repromotion: false,
                expect_breaker_cycle: false,
            });
        }
    }

    eprintln!("soak: running {} scenarios…", list.len());
    type Task<'s> = Box<dyn FnOnce() -> Result<Tally, String> + Send + 's>;
    let tasks: Vec<Task> = list
        .iter()
        .map(|s| {
            let programs = &programs;
            Box::new(move || run_scenario(s, programs)) as Task
        })
        .collect();
    let results = pool::run_all(tasks);

    let mut total = Tally::default();
    let mut failures: Vec<(String, String)> = Vec::new();
    for (s, res) in list.iter().zip(results) {
        match res {
            Ok(t) => {
                total.recoveries += t.recoveries;
                total.watchdog += t.watchdog;
                total.timeout += t.timeout;
                total.demotions += t.demotions;
                total.repromotions += t.repromotions;
                total.trips += t.trips;
                total.reclosures += t.reclosures;
                total.max_cycles = total.max_cycles.max(t.max_cycles);
            }
            Err(e) => failures.push((s.label.clone(), e)),
        }
    }

    println!(
        "soak: {} scenarios, {} recoveries ({} watchdog, {} timeout), \
         {} demotions standing, {} repromotions, breaker {} trips / {} reclosures, \
         max cycles {}",
        list.len(),
        total.recoveries,
        total.watchdog,
        total.timeout,
        total.demotions,
        total.repromotions,
        total.trips,
        total.reclosures,
        total.max_cycles
    );

    // Soak-level expectations: the sweep as a whole must have exercised
    // the closed loop, not just survived it.
    if total.repromotions == 0 {
        failures.push(("soak-aggregate".into(), "no re-promotion anywhere".into()));
    }
    if total.trips == 0 || total.reclosures == 0 {
        failures.push((
            "soak-aggregate".into(),
            "no breaker trip + re-closure anywhere".into(),
        ));
    }
    if total.timeout == 0 {
        failures.push((
            "soak-aggregate".into(),
            "token-wait timeout tier never fired".into(),
        ));
    }

    if !failures.is_empty() {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&fail_file)
            .expect("open failing-seed file");
        for (label, err) in &failures {
            eprintln!("soak FAILURE: {label}: {err}");
            writeln!(f, "{label}: {err}").expect("record failing seed");
        }
        eprintln!(
            "soak: {} failures recorded in {fail_file} (replay: SOAK_SEED=<seed> SOAK_SCENARIOS=1)",
            failures.len()
        );
        std::process::exit(1);
    }
    println!("soak: all invariants held");
}
