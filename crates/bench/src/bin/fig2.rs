//! Figure 2 — static scheduling: speedup of slipstream (L1, G0) and
//! double mode over single mode, with the execution-time breakdown.
//!
//! Run with `--machine-cmps N` to change the machine size (default 16).

use bench::{best_slip_gain, static_suite};
use slipstream::report::breakdown_table;
use slipstream::MachineConfig;

fn main() {
    let mut machine = MachineConfig::paper();
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--machine-cmps") {
        machine.num_cmps = args[i + 1].parse().expect("bad --machine-cmps");
    }
    println!(
        "Figure 2: static scheduling on {} CMPs — speedup over single mode\n",
        machine.num_cmps
    );
    let t0 = std::time::Instant::now();
    let suite = static_suite(&machine);
    let mut gains = Vec::new();
    for (bm, rows) in &suite {
        println!("--- {} ---", bm.name());
        println!("{}", breakdown_table(rows));
        let g = best_slip_gain(rows);
        gains.push(g);
        println!(
            "best slipstream vs best(single, double): {:+.1}%\n",
            100.0 * g
        );
    }
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    println!("==========================================================");
    if machine.num_cmps == 16 {
        println!(
            "average best-slipstream gain: {:+.1}%  (paper: ~13.5% avg, 5%..20%)",
            100.0 * avg
        );
    } else {
        println!(
            "average best-slipstream gain: {:+.1}%  (paper comparison applies at 16 CMPs)",
            100.0 * avg
        );
    }
    println!("(simulated {} runs in {:?})", suite.len() * 4, t0.elapsed());
}
