//! Figure 4 — dynamic scheduling: execution-time breakdown for the base
//! case (one task per CMP) and slipstream with zero-token global
//! synchronization, on BT, CG, MG, SP (LU excluded as in the paper).
//!
//! Paper: base-case scheduling overhead averages ~11%; slipstream gains
//! 5% (MG) to 20% (SP), 12% on average.

use bench::dynamic_suite;
use dsm_sim::TimeClass;
use slipstream::report::breakdown_table;
use slipstream::MachineConfig;

fn main() {
    let machine = MachineConfig::paper();
    println!(
        "Figure 4: dynamic scheduling on {} CMPs\n",
        machine.num_cmps
    );
    let t0 = std::time::Instant::now();
    let suite = dynamic_suite(&machine);
    let mut gains = Vec::new();
    let mut scheds = Vec::new();
    for (bm, rows) in &suite {
        println!("--- {} ---", bm.name());
        println!("{}", breakdown_table(rows));
        let gain = rows[0].exec_cycles as f64 / rows[1].exec_cycles as f64 - 1.0;
        gains.push(gain);
        scheds.push(rows[0].r_breakdown.fraction(TimeClass::Scheduling));
        println!("slipstream gain over base: {:+.1}%\n", 100.0 * gain);
    }
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    let avg_sched = scheds.iter().sum::<f64>() / scheds.len() as f64;
    println!("==========================================================");
    println!(
        "average slipstream gain: {:+.1}%   (paper: 12% avg, 5%..20%)",
        100.0 * avg
    );
    println!(
        "average base scheduling overhead: {:.1}%  (paper: ~11%)",
        100.0 * avg_sched
    );
    println!("(simulated {} runs in {:?})", suite.len() * 2, t0.elapsed());
}
