//! Batch simulation daemon: serve slipstream runs over the sim-serve
//! line protocol.
//!
//! Starts a [`sim_serve::Server`] with the slipstream
//! [`bench::serve::BenchRunner`] and blocks until a client sends the
//! `shutdown` verb — or `drain`, which finishes running jobs, leaves
//! queued ones journaled for the next incarnation, and exits. Clients —
//! the `all_experiments`, `analyze`, `soak`, and `serve_batch`
//! binaries, or anything speaking NDJSON over TCP — submit job specs
//! and read back bit-identical result payloads, with repeated configs
//! answered from the content-addressed result cache and warm-started
//! sweeps forked from shared engine snapshots.
//!
//! Environment:
//! * `SERVE_ADDR` — listen address (default `127.0.0.1:0`; the chosen
//!   port is printed on startup).
//! * `SERVE_WORKERS` — daemon worker threads (default 2, clamped by
//!   the host like every pool consumer).
//! * `SERVE_CACHE_CAP` — in-memory result-cache entries (default 256).
//! * `SERVE_CACHE_DIR` — optional directory for the on-disk cache
//!   tier; cached results then survive daemon restarts.
//! * `SERVE_JOURNAL` — optional write-ahead journal path; accepted
//!   jobs then survive a `kill -9` and replay on the next start.
//! * `SERVE_JOURNAL_SYNC` — presence flag: `sync_data` every journal
//!   append (power-loss durability, at a syscall per submit).
//! * `SERVE_MAX_QUEUE` — queued-job bound (default 1024, 0 unbounded);
//!   overflow sheds lower-priority work or answers `busy` with a
//!   `retry_after_ms` hint.
//! * `SERVE_CONN_LIVE` — per-connection unfinished-job bound
//!   (default 0 = unbounded).

use bench::serve::BenchRunner;
use bench::{env, pool};
use sim_serve::{ServeOptions, Server};

fn main() {
    let addr = env::string_or("SERVE_ADDR", "127.0.0.1:0");
    let opts = ServeOptions {
        // Daemon workers are the process's job-level parallelism, so
        // they answer to the pool's worker bound (BENCH_WORKERS); the
        // per-job PDES engine threads are clamped separately by
        // `pool::engine_workers` inside the runner.
        workers: env::get_or("SERVE_WORKERS", 2).clamp(1, pool::worker_bound()),
        cache_cap: env::get_or("SERVE_CACHE_CAP", 256),
        cache_dir: env::path("SERVE_CACHE_DIR"),
        journal: env::path("SERVE_JOURNAL"),
        journal_sync: env::flag("SERVE_JOURNAL_SYNC"),
        max_queue: env::get_or("SERVE_MAX_QUEUE", 1024),
        max_live_per_conn: env::get_or("SERVE_CONN_LIVE", 0),
    };
    let server = Server::bind(&addr, Box::new(BenchRunner::new()), opts.clone())
        .unwrap_or_else(|e| panic!("bind {addr}: {e}"));
    println!(
        "sim-serve listening on {} ({} workers)",
        server.local_addr(),
        opts.workers
    );

    loop {
        if server.shutdown_requested() {
            println!("shutdown requested, draining");
            break;
        }
        if server.drain_requested() && server.drained() {
            println!("drain complete, exiting (queued work stays journaled)");
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    server.shutdown();
}
