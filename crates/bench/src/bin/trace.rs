//! Trace exporter: run one kernel with event tracing on and write a
//! Chrome trace-event JSON file openable in <https://ui.perfetto.dev>.
//!
//! The emitted trace carries per-CPU timeline tracks (time-class slices
//! and miss-path instants), token-semaphore instants, and per-pair
//! counter tracks (A–R lead, token count). A summary of the slipstream
//! analytics (lead over time, token slack, timeliness streaks, recovery
//! episodes) is printed to stdout.
//!
//! Environment:
//! - `TRACE_BENCH`: kernel name (`cg` default, or any of the suite).
//! - `TRACE_MODE`: mode label from the static set (`slip-G0` default).
//! - `TRACE_PRESET`: `tiny` (default) or `paper` workload presets.
//! - `TRACE_OUT`: override the output path
//!   (default `<bench>-<mode>.trace.json` in the current directory).

use bench::{small_machine, STATIC_MODES};
use npb_kernels::Benchmark;
use omp_rt::RuntimeEnv;
use sim_trace::{analyze, chrome_trace_json, validate_chrome_trace, TraceConfig};
use slipstream::runner::{run_program, RunOptions};

fn main() {
    let bench = bench::env::string_or("TRACE_BENCH", "cg");
    let mode_label = bench::env::string_or("TRACE_MODE", "slip-G0");
    let preset = bench::env::string_or("TRACE_PRESET", "tiny");

    let bm = Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == bench)
        .unwrap_or_else(|| {
            let names: Vec<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
            panic!("unknown TRACE_BENCH {bench:?}; expected one of {names:?}")
        });
    let (label, mode, sync) = STATIC_MODES
        .into_iter()
        .find(|(l, _, _)| *l == mode_label)
        .unwrap_or_else(|| {
            let labels: Vec<_> = STATIC_MODES.iter().map(|(l, _, _)| *l).collect();
            panic!("unknown TRACE_MODE {mode_label:?}; expected one of {labels:?}")
        });

    let program = match preset.as_str() {
        "paper" => bm.build_paper(None),
        _ => bm.build_tiny(),
    };
    let mut o = RunOptions::new(mode)
        .with_machine(small_machine())
        .with_trace(TraceConfig::on());
    o.sync = sync;
    o.env = RuntimeEnv::default();

    let s = run_program(&program, &o).expect("simulation failed");
    let td = s
        .raw
        .trace
        .as_ref()
        .expect("tracing was enabled but no trace came back");

    let json = chrome_trace_json(td);
    let report = validate_chrome_trace(&json).expect("emitted trace failed self-validation");

    let out_path = bench::env::string_or("TRACE_OUT", &format!("{}-{label}.trace.json", bm.name()));
    std::fs::write(&out_path, &json).expect("write trace file");

    println!(
        "{} {label} ({preset}): {} cycles, {} events ({} dropped), {} spans",
        bm.name(),
        td.cycles,
        td.events.len(),
        td.dropped,
        td.spans.iter().map(|s| s.len()).sum::<usize>()
    );
    println!(
        "trace: {} slices, {} token instants, {} lead counter tracks, {} cpu threads",
        report.slice_events,
        report.token_events,
        report.lead_counter_tracks,
        report.cpu_threads_named
    );
    println!("{}", analyze(td).render());
    println!("wrote {out_path} — open it in https://ui.perfetto.dev");
}
