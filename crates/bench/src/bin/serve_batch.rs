//! End-to-end smoke and warm-start benchmark for the sim-serve daemon.
//!
//! Drives one daemon through the full serving surface and asserts the
//! properties the design promises, failing loudly on any violation:
//!
//! 1. **Batch parity** — a (benchmark × mode) batch served through the
//!    daemon is byte-identical to direct in-process `run_program` runs.
//! 2. **Cache hit** — resubmitting a spec answers from the result cache
//!    (no re-execution) with a byte-identical payload.
//! 3. **Warm-start parity** — a job forked from a mid-run engine
//!    snapshot equals the straight cold run bit-for-bit.
//! 4. **Analyze parity** — a served `analyze` job formats exactly like
//!    the direct analyzer CLI path.
//! 5. **Warm vs cold sweep** — ≥8 post-warmup fault-injection jobs
//!    served from one shared snapshot against the honest cold baseline
//!    (every job re-simulates its warmup). Results must be
//!    bit-identical; the measured speedup is printed and, with
//!    `SERVE_BATCH_ASSERT_SPEEDUP` set, asserted ≥2x.
//!
//! Environment:
//! * `SERVE_ADDR` — use a running daemon instead of an in-process one.
//! * `SERVE_BATCH_JOBS` — sweep width (default 8).
//! * `SERVE_BATCH_ASSERT_SPEEDUP` — enforce the ≥2x warm-start gate
//!   (off by default: CI boxes share cores, so the hard assert is an
//!   opt-in for quiet machines; bit-identity is always enforced).
//! * `SERVE_STATS_OUT` — where to write the daemon stats JSON artifact
//!   (default `target/serve_stats.json`).

use std::time::Instant;

use bench::serve::{BenchRunner, SuiteRow};
use bench::{env, pool, small_machine, STATIC_MODES};
use npb_kernels::Benchmark;
use omp_rt::RuntimeEnv;
use sim_serve::{Client, ServeOptions, Server};
use slipstream::runner::{run_program, RunOptions};

/// Spec text for a tiny-preset run on the small machine.
fn spec(bench: &str, mode: &str, extra: &str) -> String {
    format!(
        "{{\"kind\":\"run\",\"bench\":\"{bench}\",\"preset\":\"tiny\",\
         \"machine\":\"small\",\"mode\":\"{mode}\",\"workers\":1{extra}}}"
    )
}

/// The direct-path twin of `spec`: run in-process and project to a row.
fn direct_row(bench: Benchmark, label: &str) -> SuiteRow {
    let (_, mode, sync) = *STATIC_MODES
        .iter()
        .find(|(l, _, _)| *l == label)
        .expect("known mode label");
    let mut o = RunOptions::new(mode)
        .with_machine(small_machine())
        .with_workers(pool::engine_workers(1));
    o.sync = sync;
    o.env = RuntimeEnv::default();
    let s = run_program(&bench.build_tiny(), &o).expect("direct run");
    SuiteRow::from_summary(&s)
}

fn main() {
    // Use an external daemon when pointed at one, else serve in-process.
    let external = env::string("SERVE_ADDR");
    let server = match &external {
        Some(_) => None,
        None => Some(
            Server::bind(
                "127.0.0.1:0",
                Box::new(BenchRunner::new()),
                ServeOptions::default(),
            )
            .expect("bind daemon"),
        ),
    };
    let addr = external.unwrap_or_else(|| server.as_ref().unwrap().local_addr().to_string());
    let mut client = Client::connect(&addr).expect("connect");
    println!("serve_batch driving daemon at {addr}");

    // 1. Batch parity: two kernels under all four static modes.
    let batch: Vec<(Benchmark, &str)> = [Benchmark::Cg, Benchmark::Mg]
        .into_iter()
        .flat_map(|bm| STATIC_MODES.iter().map(move |(l, _, _)| (bm, *l)))
        .collect();
    let mut acks = Vec::new();
    for (bm, label) in &batch {
        let ack = client
            .submit(&spec(bm.name(), label, ""), 0, None)
            .expect("submit");
        acks.push(ack);
    }
    let mut first_payload = None;
    for ((bm, label), ack) in batch.iter().zip(&acks) {
        let outcome = client.result(ack.id).expect("result");
        assert_eq!(
            outcome.state,
            "done",
            "{} {label}: {:?}",
            bm.name(),
            outcome.error
        );
        let payload = outcome.payload.expect("done payload");
        let want = direct_row(*bm, label).to_payload();
        assert_eq!(
            payload,
            want,
            "daemon payload for {} {label} must be byte-identical to the direct path",
            bm.name()
        );
        if first_payload.is_none() {
            first_payload = Some(payload);
        }
    }
    println!(
        "batch parity: {} jobs byte-identical to direct runs",
        batch.len()
    );

    // 2. Cache hit: the first spec again, answered without re-running.
    let (bm, label) = batch[0];
    let ack = client
        .submit(&spec(bm.name(), label, ""), 0, None)
        .expect("resubmit");
    assert!(ack.cached, "identical resubmit must be a cache hit");
    let outcome = client.result(ack.id).expect("cached result");
    assert_eq!(outcome.payload.as_deref(), first_payload.as_deref());
    println!("cache hit: byte-identical payload without re-execution");

    // 3. Warm-start parity: fork cg/slip-G0 from a snapshot at half the
    // run and compare against the straight run.
    let straight = direct_row(Benchmark::Cg, "slip-G0");
    let warm_extra = format!(",\"warm_cycles\":{}", straight.exec_cycles / 2);
    let (_, payload) = client
        .run_to_payload(&spec("cg", "slip-G0", &warm_extra), 0, None)
        .expect("warm job");
    assert_eq!(
        payload,
        straight.to_payload(),
        "snapshot warm-start must be bit-identical to the straight run"
    );
    println!(
        "warm-start parity: restore at cycle {} matches the straight run",
        straight.exec_cycles / 2
    );

    // 4. Analyze parity against the direct analyzer path.
    let (label_want, program) = bench::analysis_corpus()
        .into_iter()
        .find(|(l, _)| l == "cg-tiny")
        .expect("cg-tiny in corpus");
    let (text_want, json_want, denies_want) =
        bench::analyze_one(&label_want, &program, &omp_analyze::AnalyzeConfig::paper());
    let (_, payload) = client
        .run_to_payload("{\"kind\":\"analyze\",\"program\":\"cg-tiny\"}", 0, None)
        .expect("analyze job");
    let v = sim_trace::json::parse(&payload).expect("analyze payload");
    assert_eq!(
        v.get("text").and_then(|x| x.as_str()),
        Some(text_want.as_str())
    );
    assert_eq!(
        v.get("json_item").and_then(|x| x.as_str()),
        Some(json_want.as_str())
    );
    assert_eq!(
        v.get("denies").and_then(|x| x.as_num()).map(|n| n as u64),
        Some(denies_want)
    );
    println!("analyze parity: served report formats identically to the CLI path");

    // 5. Warm vs cold: a sweep of post-warmup fault-injection jobs.
    // Cold re-simulates the warmup prefix per job (warm_share:false);
    // warm forks every job from one shared snapshot. Identical
    // semantics, so the results must match bit-for-bit.
    let jobs: usize = env::get_or("SERVE_BATCH_JOBS", 8).max(2);
    let warm_at = straight.exec_cycles * 9 / 10;
    let sweep = |share: bool, client: &mut Client| -> (Vec<String>, f64) {
        let t0 = Instant::now();
        let mut ids = Vec::new();
        for seed in 1..=jobs as u64 {
            let extra = format!(
                ",\"warm_cycles\":{warm_at},\"warm_share\":{share},\"nocache\":true,\
                 \"fault_seed\":{seed},\"fault_team\":4,\"fault_events\":4"
            );
            ids.push(
                client
                    .submit(&spec("cg", "slip-G0", &extra), 0, None)
                    .expect("sweep submit")
                    .id,
            );
        }
        let mut prints = Vec::new();
        for id in ids {
            let outcome = client.result(id).expect("sweep result");
            assert_eq!(outcome.state, "done", "sweep job: {:?}", outcome.error);
            let row = SuiteRow::from_payload(&outcome.payload.unwrap()).unwrap();
            prints.push(row.fingerprint);
        }
        (prints, t0.elapsed().as_secs_f64())
    };
    let (cold_fps, cold_s) = sweep(false, &mut client);
    let (warm_fps, warm_s) = sweep(true, &mut client);
    assert_eq!(
        cold_fps, warm_fps,
        "warm-started sweep must be bit-identical to the cold baseline"
    );
    let speedup = cold_s / warm_s.max(1e-9);
    println!(
        "warm-start sweep: {jobs} jobs forked at cycle {warm_at}: \
         cold {cold_s:.3}s, warm {warm_s:.3}s — {speedup:.1}x"
    );
    if env::flag("SERVE_BATCH_ASSERT_SPEEDUP") {
        assert!(
            speedup >= 2.0,
            "warm-start sweep must be at least 2x faster than cold ({speedup:.2}x)"
        );
    }

    // Daemon stats artifact.
    let (stats, raw) = client.stats().expect("stats");
    assert!(stats.cache_hits >= 1, "the smoke run produced a cache hit");
    assert_eq!(stats.failed, 0, "no job may fail in the smoke run");
    let out = env::string_or("SERVE_STATS_OUT", "target/serve_stats.json");
    std::fs::create_dir_all(
        std::path::Path::new(&out)
            .parent()
            .unwrap_or_else(|| panic!("SERVE_STATS_OUT has no parent: {out}")),
    )
    .ok();
    std::fs::write(&out, format!("{raw}\n")).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!(
        "stats: {} submitted, {} hits, {} misses, {} coalesced -> {out}",
        stats.submitted, stats.cache_hits, stats.cache_misses, stats.coalesced
    );

    if let Some(server) = server {
        server.shutdown();
    }
    println!("serve_batch: all checks passed");
}
