//! Ablation — slipstream self-invalidation hints (paper Section 2).
//!
//! "It can also be used to give hints about future behavior ... by
//! sending self-invalidation hints to producers of data based on future
//! references by consumers", an optimization the paper ties to one-token
//! global synchronization. This ablation measures it on the
//! producer-consumer-heavy codes.

use npb_kernels::Benchmark;
use omp_rt::mode::{ExecMode, SlipSync};
use slipstream::policy::AStreamPolicy;
use slipstream::runner::{run_program, RunOptions};
use slipstream::MachineConfig;

fn run(bm: Benchmark, sync: SlipSync, selfinval: bool) -> u64 {
    let p = bm.build_paper(None);
    let policy = if selfinval {
        AStreamPolicy::paper().with_self_invalidation()
    } else {
        AStreamPolicy::paper()
    };
    let mut o = RunOptions::new(ExecMode::Slipstream)
        .with_machine(MachineConfig::paper())
        .with_policy(policy);
    o.sync = Some(sync);
    run_program(&p, &o).expect("simulation failed").exec_cycles
}

fn main() {
    println!("Self-invalidation ablation (paper ties it to one-token global)\n");
    println!(
        "{:<6} {:<6} {:>12} {:>12} {:>8}",
        "bench", "sync", "baseline", "self-inval", "delta"
    );
    for bm in [Benchmark::Sp, Benchmark::Mg, Benchmark::Bt] {
        for sync in [
            SlipSync {
                global: true,
                tokens: 1,
            },
            SlipSync::G0,
            SlipSync::L1,
        ] {
            let base = run(bm, sync, false);
            let si = run(bm, sync, true);
            println!(
                "{:<6} {:<6} {:>12} {:>12} {:>+7.1}%",
                bm.name(),
                sync.label(),
                base,
                si,
                100.0 * (base as f64 / si as f64 - 1.0),
            );
        }
    }
    println!();
    println!("positive delta = self-invalidation helped. In this model the");
    println!("hint fires on *every* A-stream read of a dirty remote line, so");
    println!("producers also lose lines they re-read next sweep — unselective");
    println!("self-invalidation consistently hurts. A selective last-write");
    println!("predictor (as in the original slipstream-multiprocessor paper");
    println!("[9]) is needed before the hint pays; this paper's evaluation");
    println!("accordingly uses prefetching only.");
}
