//! Experiment harness shared by the figure/table binaries and the
//! timing benches.
//!
//! Each function regenerates the data behind one piece of the paper's
//! evaluation (Section 5). Runs for different modes are independent
//! simulations, so the suite executes them on host threads in parallel;
//! each simulation itself is deterministic and single-threaded.

#![warn(missing_docs)]

pub mod env;
pub mod pool;
pub mod serve;

use npb_kernels::{Benchmark, CgParams, Grid3};
use omp_ir::expr::Expr;
use omp_ir::node::{Node, Program, ScheduleSpec, SlipSyncType, SlipstreamClause};
use omp_ir::{BlockBuilder, ProgramBuilder};
use omp_rt::mode::{ExecMode, SlipSync};
use omp_rt::RuntimeEnv;
use slipstream::runner::{run_program, RunOptions, RunSummary};
use slipstream::MachineConfig;

/// The modes of the static-scheduling comparison (Figure 2), in the
/// paper's order.
pub const STATIC_MODES: [(&str, ExecMode, Option<SlipSync>); 4] = [
    ("single", ExecMode::Single, None),
    ("double", ExecMode::Double, None),
    ("slip-L1", ExecMode::Slipstream, Some(SlipSync::L1)),
    ("slip-G0", ExecMode::Slipstream, Some(SlipSync::G0)),
];

/// The modes of the dynamic-scheduling comparison (Figure 4): the paper
/// compares against one task per CMP only, with zero-token global
/// synchronization for slipstream.
pub const DYNAMIC_MODES: [(&str, ExecMode, Option<SlipSync>); 2] = [
    ("single", ExecMode::Single, None),
    ("slip-G0", ExecMode::Slipstream, Some(SlipSync::G0)),
];

/// A record of one run (what the figures plot), serializable to JSON.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Benchmark name.
    pub benchmark: String,
    /// Mode label.
    pub mode: String,
    /// Execution cycles.
    pub cycles: u64,
    /// Speedup vs the suite's single-mode run of the same benchmark.
    pub speedup_vs_single: f64,
    /// Time-breakdown fractions over R/solo streams, by class label.
    pub breakdown: Vec<(String, f64)>,
    /// Shared-read fill fractions by class label.
    pub read_fills: Vec<(String, f64)>,
    /// Shared read-exclusive fill fractions by class label.
    pub readex_fills: Vec<(String, f64)>,
    /// A-stream store conversions.
    pub stores_converted: u64,
    /// Dynamic-scheduler chunk grabs.
    pub sched_grabs: u64,
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_pairs(pairs: &[(String, f64)]) -> String {
    let items: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("[\"{}\",{}]", json_escape(k), v))
        .collect();
    format!("[{}]", items.join(","))
}

impl RunRecord {
    /// Serialize to a JSON object (the workspace carries no serde
    /// dependency; records are flat enough to emit by hand).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"benchmark\":\"{}\",\"mode\":\"{}\",\"cycles\":{},\
             \"speedup_vs_single\":{},\"breakdown\":{},\"read_fills\":{},\
             \"readex_fills\":{},\"stores_converted\":{},\"sched_grabs\":{}}}",
            json_escape(&self.benchmark),
            json_escape(&self.mode),
            self.cycles,
            self.speedup_vs_single,
            json_pairs(&self.breakdown),
            json_pairs(&self.read_fills),
            json_pairs(&self.readex_fills),
            self.stores_converted,
            self.sched_grabs,
        )
    }

    /// Serialize a list of records to a JSON array.
    pub fn to_json_array(records: &[RunRecord]) -> String {
        let items: Vec<String> = records.iter().map(|r| r.to_json()).collect();
        format!("[{}]", items.join(",\n"))
    }

    /// Build a record from a daemon result row (speedup filled in by
    /// the caller). Mirrors [`RunRecord::from_summary`] exactly: the
    /// row carries the same integers, so the derived fractions — and
    /// the serialized JSON — are bit-identical between the direct and
    /// daemon paths.
    pub fn from_row(r: &serve::SuiteRow, speedup: f64) -> Self {
        use dsm_sim::{ReqKind, TimeClass, FILL_CLASSES};
        let classes = [
            TimeClass::Busy,
            TimeClass::MemStall,
            TimeClass::Lock,
            TimeClass::Barrier,
            TimeClass::Scheduling,
            TimeClass::JobWait,
        ];
        RunRecord {
            benchmark: r.name.clone(),
            mode: r.label.clone(),
            cycles: r.exec_cycles,
            speedup_vs_single: speedup,
            breakdown: classes
                .iter()
                .map(|c| (c.label().to_string(), r.r_breakdown.fraction(*c)))
                .collect(),
            read_fills: FILL_CLASSES
                .iter()
                .map(|c| (c.label().to_string(), r.fills.fraction(ReqKind::Read, *c)))
                .collect(),
            readex_fills: FILL_CLASSES
                .iter()
                .map(|c| (c.label().to_string(), r.fills.fraction(ReqKind::ReadEx, *c)))
                .collect(),
            stores_converted: r.stores_converted,
            sched_grabs: r.sched_grabs,
        }
    }

    /// Build a record from a summary (speedup filled in by the caller).
    pub fn from_summary(s: &RunSummary, speedup: f64) -> Self {
        use dsm_sim::{ReqKind, TimeClass, FILL_CLASSES};
        let classes = [
            TimeClass::Busy,
            TimeClass::MemStall,
            TimeClass::Lock,
            TimeClass::Barrier,
            TimeClass::Scheduling,
            TimeClass::JobWait,
        ];
        RunRecord {
            benchmark: s.name.clone(),
            mode: s.label.clone(),
            cycles: s.exec_cycles,
            speedup_vs_single: speedup,
            breakdown: classes
                .iter()
                .map(|c| (c.label().to_string(), s.r_breakdown.fraction(*c)))
                .collect(),
            read_fills: FILL_CLASSES
                .iter()
                .map(|c| (c.label().to_string(), s.fills.fraction(ReqKind::Read, *c)))
                .collect(),
            readex_fills: FILL_CLASSES
                .iter()
                .map(|c| (c.label().to_string(), s.fills.fraction(ReqKind::ReadEx, *c)))
                .collect(),
            stores_converted: s.raw.stores_converted,
            sched_grabs: s.raw.sched_grabs,
        }
    }
}

/// Build the program a benchmark uses in the dynamic experiment: CG with
/// a chunk of half its static block (as the paper specifies), everything
/// else with the compiler-default dynamic chunk.
pub fn dynamic_program(bm: Benchmark, team: u64) -> Program {
    let sched = if bm == Benchmark::Cg {
        Some(ScheduleSpec::dynamic(
            CgParams::paper().paper_dynamic_chunk(team),
        ))
    } else {
        Some(ScheduleSpec::dynamic(1))
    };
    bm.build_paper(sched)
}

fn run_one(
    program: &Program,
    machine: MachineConfig,
    mode: ExecMode,
    sync: Option<SlipSync>,
) -> RunSummary {
    let mut o = RunOptions::new(mode).with_machine(machine);
    o.sync = sync;
    o.env = RuntimeEnv::default();
    run_program(program, &o).expect("simulation failed")
}

/// Run one benchmark under a list of modes on the bounded worker pool.
/// Returns the summaries in mode order.
pub fn run_modes(
    program: &Program,
    machine: &MachineConfig,
    modes: &[(&str, ExecMode, Option<SlipSync>)],
) -> Vec<RunSummary> {
    type Task<'s> = Box<dyn FnOnce() -> RunSummary + Send + 's>;
    let tasks: Vec<Task> = modes
        .iter()
        .map(|&(_, mode, sync)| {
            let machine = machine.clone();
            Box::new(move || run_one(program, machine, mode, sync)) as Task
        })
        .collect();
    pool::run_all(tasks)
}

/// Run every (benchmark, mode) pair as one flat task list on the
/// bounded worker pool, regrouping the results per benchmark. Flat
/// scheduling load-balances across the whole suite instead of nesting a
/// per-mode scope inside a per-benchmark scope (which spawned
/// benchmarks × modes threads at once).
fn run_suite(
    machine: &MachineConfig,
    programs: &[(Benchmark, Program)],
    modes: &[(&str, ExecMode, Option<SlipSync>)],
) -> Vec<(Benchmark, Vec<RunSummary>)> {
    type Task<'s> = Box<dyn FnOnce() -> RunSummary + Send + 's>;
    let mut tasks: Vec<Task> = Vec::with_capacity(programs.len() * modes.len());
    for (_, program) in programs {
        for &(_, mode, sync) in modes {
            let machine = machine.clone();
            tasks.push(Box::new(move || run_one(program, machine, mode, sync)));
        }
    }
    let mut flat = pool::run_all(tasks).into_iter();
    programs
        .iter()
        .map(|(bm, _)| (*bm, flat.by_ref().take(modes.len()).collect()))
        .collect()
}

/// Run the full static-scheduling suite (Figures 2 and 3): every
/// benchmark under the four static modes.
pub fn static_suite(machine: &MachineConfig) -> Vec<(Benchmark, Vec<RunSummary>)> {
    let programs: Vec<(Benchmark, Program)> = Benchmark::ALL
        .iter()
        .map(|bm| (*bm, bm.build_paper(None)))
        .collect();
    run_suite(machine, &programs, &STATIC_MODES)
}

/// Run the dynamic-scheduling suite (Figures 4 and 5): BT, CG, MG, SP
/// (LU is excluded, as in the paper) under single and slip-G0.
pub fn dynamic_suite(machine: &MachineConfig) -> Vec<(Benchmark, Vec<RunSummary>)> {
    let programs: Vec<(Benchmark, Program)> = Benchmark::ALL
        .iter()
        .filter(|bm| bm.in_dynamic_experiment())
        .map(|bm| (*bm, dynamic_program(*bm, machine.num_cmps as u64)))
        .collect();
    run_suite(machine, &programs, &DYNAMIC_MODES)
}

/// Records for a suite, with speedups normalized to each benchmark's
/// single-mode run (the paper's normalization).
pub fn to_records(suite: &[(Benchmark, Vec<RunSummary>)]) -> Vec<RunRecord> {
    let mut out = Vec::new();
    for (_, rows) in suite {
        let base = rows[0].exec_cycles;
        for r in rows {
            out.push(RunRecord::from_summary(
                r,
                base as f64 / r.exec_cycles as f64,
            ));
        }
    }
    out
}

/// Project a whole suite of summaries down to daemon-style result rows.
/// The figure binaries report over rows so the direct and daemon paths
/// share one formatting path (and therefore produce identical output).
pub fn suite_to_rows(
    suite: &[(Benchmark, Vec<RunSummary>)],
) -> Vec<(Benchmark, Vec<serve::SuiteRow>)> {
    suite
        .iter()
        .map(|(bm, rows)| {
            (
                *bm,
                rows.iter().map(serve::SuiteRow::from_summary).collect(),
            )
        })
        .collect()
}

/// [`to_records`] over daemon-style rows: speedups normalized to each
/// benchmark's single-mode run.
pub fn to_records_rows(suite: &[(Benchmark, Vec<serve::SuiteRow>)]) -> Vec<RunRecord> {
    let mut out = Vec::new();
    for (_, rows) in suite {
        let base = rows[0].exec_cycles;
        for r in rows {
            out.push(RunRecord::from_row(r, base as f64 / r.exec_cycles as f64));
        }
    }
    out
}

/// [`best_slip_gain`] over daemon-style rows.
pub fn best_slip_gain_rows(rows: &[serve::SuiteRow]) -> f64 {
    let best_base = rows
        .iter()
        .filter(|r| !r.label.starts_with("slip"))
        .map(|r| r.exec_cycles)
        .min()
        .expect("baseline modes present");
    let best_slip = rows
        .iter()
        .filter(|r| r.label.starts_with("slip"))
        .map(|r| r.exec_cycles)
        .min()
        .expect("slipstream modes present");
    best_base as f64 / best_slip as f64 - 1.0
}

/// The "best slipstream vs best(single, double)" headline number of the
/// paper's Section 5.1, per benchmark.
pub fn best_slip_gain(rows: &[RunSummary]) -> f64 {
    let best_base = rows
        .iter()
        .filter(|r| !r.label.starts_with("slip"))
        .map(|r| r.exec_cycles)
        .min()
        .expect("baseline modes present");
    let best_slip = rows
        .iter()
        .filter(|r| r.label.starts_with("slip"))
        .map(|r| r.exec_cycles)
        .min()
        .expect("slipstream modes present");
    best_base as f64 / best_slip as f64 - 1.0
}

/// Canonical fingerprint of everything a run reports — the workspace-wide
/// bit-identity contract now lives in [`slipstream::stats_fingerprint`]
/// (the fuzzer needs it without depending on this crate); this re-export
/// keeps the historical bench-side name working.
pub fn summary_fingerprint(s: &RunSummary) -> String {
    slipstream::stats_fingerprint(s)
}

/// FNV-1a hash of a canonical configuration string, used to stamp
/// benchmark output rows so perf-trajectory scripts can detect when two
/// rows were produced under different configurations (machine, preset,
/// mode, tracing) and refuse to compare them.
pub fn config_hash(canonical: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canonical.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical configuration string hashed into throughput rows: every
/// knob that changes what a row measures.
pub fn throughput_config_string(
    machine: &MachineConfig,
    preset: &str,
    benchmark: &str,
    mode: &str,
    trace: bool,
) -> String {
    format!(
        "v1|cmps={}|cpus={}|l2b={}|preset={preset}|bm={benchmark}|mode={mode}|trace={trace}",
        machine.num_cmps, machine.cpus_per_cmp, machine.l2.size_bytes,
    )
}

/// Time a closure `iters` times and print a one-line report with the
/// best wall time. The `benches/` entry points are plain `harness =
/// false` mains built on this (the workspace carries no criterion
/// dependency); the returned value is the last simulated cycle count so
/// the work cannot be optimized away.
pub fn bench_point(name: &str, iters: u32, mut f: impl FnMut() -> u64) -> u64 {
    let mut best = u128::MAX;
    let mut out = 0u64;
    for _ in 0..iters {
        let t0 = std::time::Instant::now();
        out = std::hint::black_box(f());
        best = best.min(t0.elapsed().as_nanos());
    }
    println!(
        "{name:<40} {:>10.3} ms/iter (best of {iters})",
        best as f64 / 1e6
    );
    // Machine-readable twin of the human line, for scripts tracking the
    // perf trajectory across commits.
    println!(
        "BENCH_JSON {{\"bench\":\"{}\",\"best_ns\":{},\"iters\":{}}}",
        json_escape(name),
        best,
        iters
    );
    out
}

/// The static-analyzer sweep corpus: every NPB kernel (tiny + paper
/// presets, plus dynamic/guided scheduling variants for the kernels in
/// the dynamic experiment) and every example-analogue program. Shared
/// by the `analyze` binary and the daemon's `analyze` job kind so both
/// paths sweep exactly the same programs under the same labels.
pub fn analysis_corpus() -> Vec<(String, Program)> {
    let mut out = Vec::new();
    for bm in Benchmark::ALL {
        out.push((format!("{}-tiny", bm.name()), bm.build_tiny()));
        out.push((format!("{}-paper", bm.name()), bm.build_paper(None)));
        if bm.in_dynamic_experiment() {
            out.push((
                format!("{}-dyn2", bm.name()),
                bm.build_tiny_sched(ScheduleSpec::dynamic(2)),
            ));
            out.push((
                format!("{}-guided", bm.name()),
                bm.build_tiny_sched(ScheduleSpec::guided()),
            ));
        }
    }
    for p in example_programs() {
        out.push((format!("example-{}", p.name), p));
    }
    out
}

/// Analyze one corpus program and render the `analyze` binary's
/// per-program output: the table row (with finding lines appended),
/// the JSON report item, and the deny count. Both the direct CLI path
/// and the daemon path format through this function, so their output
/// is identical byte-for-byte.
pub fn analyze_one(
    label: &str,
    program: &Program,
    cfg: &omp_analyze::AnalyzeConfig,
) -> (String, String, u64) {
    let r = omp_analyze::analyze(program, cfg);
    let lead = r.regions.iter().map(|g| g.lead_phases).max().unwrap_or(0);
    let status = if r.truncated {
        "TRUNCATED"
    } else if r.deny_count() > 0 {
        "DENY"
    } else if !r.findings.is_empty() {
        "warn"
    } else {
        "clean"
    };
    let mut text = format!(
        "{:<18} {:>7} {:>5} {:>5} {:>5} {:>6} {:>9}  {}",
        label,
        r.regions.len(),
        r.deny_count(),
        r.warn_count(),
        r.info_count(),
        lead,
        r.visits,
        status
    );
    for f in &r.findings {
        text.push_str(&format!("\n    {f}"));
    }
    let json_item = format!("{{\"program\":\"{label}\",\"report\":{}}}", r.to_json());
    (text, json_item, r.deny_count() as u64)
}

/// A fast machine/workload pair for timing runs and smoke tests: the
/// paper machine shrunk to 4 CMPs with the tiny workload presets.
pub fn small_machine() -> MachineConfig {
    let mut m = MachineConfig::paper();
    m.num_cmps = 4;
    m
}

/// A plane-parallel ping-pong stencil sweep between two fields — the
/// program `examples/quickstart.rs` and `examples/heat_diffusion.rs`
/// build (ghost-plane exchange between slab neighbours every phase).
fn ping_pong_stencil(name: &str, n: i64, steps: i64, clause: Option<SlipstreamClause>) -> Program {
    let g = Grid3::cube(n);
    let mut pb = ProgramBuilder::new(name);
    let t0 = pb.shared_array("t0", g.len() as u64, 8);
    let t1 = pb.shared_array("t1", g.len() as u64, 8);
    let s = pb.var();
    let q = pb.var();
    let i = pb.var();
    if let Some(c) = clause {
        pb.slipstream(c);
    }
    pb.parallel(move |region| {
        region.push(Node::For {
            var: s,
            begin: Expr::c(0),
            end: Expr::c(steps),
            step: 1,
            body: Box::new({
                let mut blk = BlockBuilder::default();
                for (src, dst) in [(t0, t1), (t1, t0)] {
                    blk.par_for(None, q, 0, g.nz, move |plane| {
                        plane.for_loop(
                            i,
                            Expr::v(q) * g.dz(),
                            (Expr::v(q) + 1) * g.dz(),
                            move |cell| {
                                cell.load(src, Expr::v(i));
                                for off in g.stencil7_offsets() {
                                    cell.load(src, g.nbr(Expr::v(i), off));
                                }
                                cell.compute(16);
                                cell.store(dst, Expr::v(i));
                            },
                        );
                    });
                }
                blk.into_node()
            }),
        });
    });
    pb.build()
}

/// The programs the repository's `examples/` binaries build, mirrored
/// here so the analyze CLI (and its clean-corpus test) can sweep them:
/// the quickstart Jacobi sweep, the heat-diffusion variant with a
/// `RUNTIME_SYNC` slipstream directive, the sparse solver's
/// dynamically-scheduled CG, and the token-trace phase toy.
pub fn example_programs() -> Vec<Program> {
    let heat_clause = SlipstreamClause {
        sync: SlipSyncType::RuntimeSync,
        tokens: 0,
    };
    let sparse = CgParams {
        n: 640,
        min_nnz: 4,
        max_nnz: 40,
        iters: 2,
        compute_per_nnz: 6,
        seed: 0xD1CE,
        sched: Some(ScheduleSpec::dynamic(
            CgParams::paper().paper_dynamic_chunk(16),
        )),
    }
    .build();
    let toy = {
        let n: i64 = 16 * 512;
        let mut pb = ProgramBuilder::new("token-toy");
        let a = pb.shared_array("a", n as u64, 8);
        let ph = pb.var();
        let i = pb.var();
        pb.parallel(move |region| {
            region.push(Node::For {
                var: ph,
                begin: Expr::c(0),
                end: Expr::c(8),
                step: 1,
                body: Box::new({
                    let mut blk = BlockBuilder::default();
                    blk.par_for(None, i, 0, n, move |body| {
                        body.load(a, Expr::v(i));
                        body.compute(12);
                        body.store(a, Expr::v(i));
                    });
                    blk.into_node()
                }),
            });
        });
        pb.build()
    };
    vec![
        ping_pong_stencil("quickstart", 20, 4, None),
        ping_pong_stencil("heat3d", 24, 4, Some(heat_clause)),
        sparse,
        toy,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_modes_produces_all_rows() {
        let p = Benchmark::Cg.build_tiny();
        let rows = run_modes(&p, &small_machine(), &STATIC_MODES);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].label, "single");
        assert_eq!(rows[3].label, "slip-G0");
        let gain = best_slip_gain(&rows);
        assert!(gain.is_finite());
    }

    #[test]
    fn records_normalize_to_single() {
        let p = Benchmark::Mg.build_tiny();
        let rows = run_modes(&p, &small_machine(), &DYNAMIC_MODES);
        let suite = vec![(Benchmark::Mg, rows)];
        let recs = to_records(&suite);
        assert_eq!(recs.len(), 2);
        assert!((recs[0].speedup_vs_single - 1.0).abs() < 1e-12);
        assert!(recs[1].speedup_vs_single > 0.0);
        // Serializes cleanly.
        let js = RunRecord::to_json_array(&recs);
        assert!(js.contains("slip-G0"));
    }

    #[test]
    fn config_hash_is_stable_and_discriminating() {
        // FNV-1a reference vector.
        assert_eq!(config_hash(""), 0xcbf2_9ce4_8422_2325);
        let m = small_machine();
        let a = throughput_config_string(&m, "tiny", "cg", "single", false);
        let b = throughput_config_string(&m, "tiny", "cg", "single", true);
        let c = throughput_config_string(&m, "paper", "cg", "single", false);
        assert_eq!(config_hash(&a), config_hash(&a));
        assert_ne!(config_hash(&a), config_hash(&b), "trace flag changes hash");
        assert_ne!(config_hash(&a), config_hash(&c), "preset changes hash");
    }

    #[test]
    fn example_programs_analyze_clean() {
        let cfg = omp_analyze::AnalyzeConfig::paper();
        let programs = example_programs();
        assert_eq!(programs.len(), 4);
        for p in programs {
            let r = omp_analyze::analyze(&p, &cfg);
            assert!(
                r.is_clean(),
                "{} should analyze clean:\n{}",
                p.name,
                r.render_text()
            );
        }
    }

    #[test]
    fn dynamic_program_uses_cg_half_block_chunk() {
        let p = dynamic_program(Benchmark::Cg, 16);
        let txt = format!("{:?}", p.body);
        assert!(txt.contains("Dynamic"));
        assert!(txt.contains("chunk: Some(16)"));
        let p2 = dynamic_program(Benchmark::Sp, 16);
        let txt2 = format!("{:?}", p2.body);
        assert!(txt2.contains("chunk: Some(1)"));
    }
}
