//! Slipstream job runner and client plumbing for the `sim-serve`
//! daemon.
//!
//! The daemon itself (queue, cache, protocol) is simulation-agnostic;
//! this module supplies the slipstream half: a [`BenchRunner`] that
//! turns job specs into engine runs (with snapshot warm-starts shared
//! across a sweep), the canonical config-string derivation that keys
//! the result cache, and [`SuiteRow`] — the exact-integer result
//! payload that lets a client reproduce figure tables byte-for-byte
//! without access to the engine.
//!
//! ## Job specs
//!
//! A `run` spec names a program either by benchmark + preset or as
//! inline program JSON, plus the run configuration:
//!
//! ```json
//! {"kind":"run","bench":"cg","preset":"paper","machine":"paper",
//!  "mode":"slip-G0","workers":1,"trace":false,
//!  "fault_seed":0,"fault_team":0,"fault_events":0,
//!  "warm_cycles":0,"warm_share":true,"nocache":false}
//! ```
//!
//! Every field except the program source is optional; defaults are
//! filled before the canonical config string is derived, so two specs
//! that mean the same simulation always share a cache key. With
//! `warm_cycles > 0` the runner forks the run from a fault-free engine
//! snapshot taken at that cycle boundary (shared across jobs when
//! `warm_share`, re-simulated per job otherwise — the honest baseline
//! for warm-vs-cold comparisons). `nocache` opts a job out of the
//! result cache (used by benchmarks that must measure execution).
//!
//! An `analyze` spec names a program from the analyzer corpus:
//!
//! ```json
//! {"kind":"analyze","program":"cg-tiny","threads":16}
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use dsm_sim::{FillCounts, MachineConfig, ReqKind, TimeBreakdown, FILL_CLASSES, TIME_CLASSES};
use npb_kernels::Benchmark;
use omp_ir::node::Program;
use omp_rt::mode::{ExecMode, SlipSync};
use omp_rt::RuntimeEnv;
use sim_serve::server::{JobControl, JobRunner};
use sim_trace::json::JsonValue;
use slipstream::faults::FaultPlan;
use slipstream::runner::{checkpoint_program, resume_program, run_program, RunOptions};
use slipstream::RunSummary;

use crate::{dynamic_program, pool, small_machine, summary_fingerprint};

/// Canonical config-string version prefix. Bump when the spec
/// vocabulary changes meaning, so stale disk-cache entries from an
/// older daemon can never alias a new config.
pub const SPEC_VERSION: &str = "v1";

/// One run result as exact integers — everything the figure tables and
/// `RunRecord`s derive from a [`RunSummary`], in a form that survives a
/// JSON round trip bit-for-bit (counters stay `u64`; fractions are
/// recomputed client-side by the same code the direct path uses).
#[derive(Clone, Debug)]
pub struct SuiteRow {
    /// Program name.
    pub name: String,
    /// Mode label (`single`, `double`, `slip-L1`, `slip-G0`, ...).
    pub label: String,
    /// Execution cycles.
    pub exec_cycles: u64,
    /// R/solo-stream time breakdown.
    pub r_breakdown: TimeBreakdown,
    /// A-stream time breakdown.
    pub a_breakdown: TimeBreakdown,
    /// Shared-fill classification counts.
    pub fills: FillCounts,
    /// A-stream store conversions.
    pub stores_converted: u64,
    /// Dynamic-scheduler chunk grabs.
    pub sched_grabs: u64,
    /// The run's stats fingerprint (bit-identity witness).
    pub fingerprint: String,
}

impl SuiteRow {
    /// Project a [`RunSummary`] down to its row.
    pub fn from_summary(s: &RunSummary) -> SuiteRow {
        SuiteRow {
            name: s.name.clone(),
            label: s.label.clone(),
            exec_cycles: s.exec_cycles,
            r_breakdown: s.r_breakdown,
            a_breakdown: s.a_breakdown,
            fills: s.fills,
            stores_converted: s.raw.stores_converted,
            sched_grabs: s.raw.sched_grabs,
            fingerprint: summary_fingerprint(s),
        }
    }

    /// Serialize to the daemon payload format.
    pub fn to_payload(&self) -> String {
        let ints = |vals: &[u64]| {
            vals.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let tb = |b: &TimeBreakdown| ints(&TIME_CLASSES.map(|c| b.get(c)));
        let fills = |kind: ReqKind| ints(&FILL_CLASSES.map(|c| self.fills.get(kind, c)));
        format!(
            "{{\"name\":\"{}\",\"label\":\"{}\",\"exec_cycles\":{},\
             \"r_breakdown\":[{}],\"a_breakdown\":[{}],\
             \"fills_read\":[{}],\"fills_readex\":[{}],\
             \"stores_converted\":{},\"sched_grabs\":{},\"fingerprint\":\"{}\"}}",
            crate::json_escape(&self.name),
            crate::json_escape(&self.label),
            self.exec_cycles,
            tb(&self.r_breakdown),
            tb(&self.a_breakdown),
            fills(ReqKind::Read),
            fills(ReqKind::ReadEx),
            self.stores_converted,
            self.sched_grabs,
            crate::json_escape(&self.fingerprint),
        )
    }

    /// Parse a daemon payload back into a row.
    pub fn from_payload(text: &str) -> Result<SuiteRow, String> {
        let v = sim_trace::json::parse(text).map_err(|e| format!("payload: {e}"))?;
        let s = |k: &str| {
            v.get(k)
                .and_then(|x| x.as_str())
                .map(|x| x.to_string())
                .ok_or_else(|| format!("payload missing string {k:?}"))
        };
        let n = |k: &str| {
            v.get(k)
                .and_then(|x| x.as_num())
                .map(|x| x as u64)
                .ok_or_else(|| format!("payload missing number {k:?}"))
        };
        let arr = |k: &str, want: usize| -> Result<Vec<u64>, String> {
            let items = v
                .get(k)
                .and_then(|x| x.as_arr())
                .ok_or_else(|| format!("payload missing array {k:?}"))?;
            if items.len() != want {
                return Err(format!(
                    "payload {k:?} has {} cells, want {want}",
                    items.len()
                ));
            }
            items
                .iter()
                .map(|x| {
                    x.as_num()
                        .map(|f| f as u64)
                        .ok_or_else(|| format!("payload {k:?} has a non-number cell"))
                })
                .collect()
        };
        let breakdown = |cells: Vec<u64>| {
            let mut b = TimeBreakdown::new();
            for (c, v) in TIME_CLASSES.iter().zip(cells) {
                b.add(*c, v);
            }
            b
        };
        Ok(SuiteRow {
            name: s("name")?,
            label: s("label")?,
            exec_cycles: n("exec_cycles")?,
            r_breakdown: breakdown(arr("r_breakdown", TIME_CLASSES.len())?),
            a_breakdown: breakdown(arr("a_breakdown", TIME_CLASSES.len())?),
            fills: FillCounts::from_cells(
                &arr("fills_read", FILL_CLASSES.len())?,
                &arr("fills_readex", FILL_CLASSES.len())?,
            ),
            stores_converted: n("stores_converted")?,
            sched_grabs: n("sched_grabs")?,
            fingerprint: s("fingerprint")?,
        })
    }
}

/// Parse a mode label (`single`, `double`, `slip-G0`, `slip-L1`, ...)
/// into run options' mode + sync.
pub fn parse_mode(label: &str) -> Result<(ExecMode, Option<SlipSync>), String> {
    match label {
        "single" => return Ok((ExecMode::Single, None)),
        "double" => return Ok((ExecMode::Double, None)),
        _ => {}
    }
    let spec = label
        .strip_prefix("slip-")
        .ok_or_else(|| format!("unknown mode label {label:?}"))?;
    let (global, tokens) = match spec.split_at(1) {
        ("G", t) => (true, t),
        ("L", t) => (false, t),
        _ => return Err(format!("unknown slip sync {spec:?}")),
    };
    let tokens: u64 = tokens
        .parse()
        .map_err(|_| format!("bad token count in mode label {label:?}"))?;
    Ok((ExecMode::Slipstream, Some(SlipSync { global, tokens })))
}

fn spec_str<'a>(spec: &'a JsonValue, key: &str, default: &'a str) -> &'a str {
    spec.get(key).and_then(|v| v.as_str()).unwrap_or(default)
}

fn spec_u64(spec: &JsonValue, key: &str, default: u64) -> u64 {
    spec.get(key)
        .and_then(|v| v.as_num())
        .map_or(default, |n| n as u64)
}

fn spec_bool(spec: &JsonValue, key: &str, default: bool) -> bool {
    spec.get(key).and_then(|v| v.as_bool()).unwrap_or(default)
}

/// A fully-defaulted `run` spec: the canonical form behind the cache
/// key.
struct RunSpec {
    prog: ProgSource,
    preset: String,
    machine: String,
    mode: String,
    workers: u64,
    trace: bool,
    fault_seed: u64,
    fault_team: u64,
    fault_events: u64,
    warm_cycles: u64,
    warm_share: bool,
    nocache: bool,
}

enum ProgSource {
    Bench(Benchmark),
    Inline(String),
}

impl RunSpec {
    fn parse(spec: &JsonValue) -> Result<RunSpec, String> {
        let prog = if let Some(json) = spec.get("program_json").and_then(|v| v.as_str()) {
            ProgSource::Inline(json.to_string())
        } else {
            let name = spec
                .get("bench")
                .and_then(|v| v.as_str())
                .ok_or("run spec needs \"bench\" or \"program_json\"")?;
            let bm = Benchmark::ALL
                .iter()
                .find(|b| b.name() == name)
                .copied()
                .ok_or_else(|| format!("unknown benchmark {name:?}"))?;
            ProgSource::Bench(bm)
        };
        Ok(RunSpec {
            prog,
            preset: spec_str(spec, "preset", "paper").to_string(),
            machine: spec_str(spec, "machine", "paper").to_string(),
            mode: spec_str(spec, "mode", "single").to_string(),
            workers: spec_u64(spec, "workers", 1),
            trace: spec_bool(spec, "trace", false),
            fault_seed: spec_u64(spec, "fault_seed", 0),
            fault_team: spec_u64(spec, "fault_team", 0),
            fault_events: spec_u64(spec, "fault_events", 0),
            warm_cycles: spec_u64(spec, "warm_cycles", 0),
            warm_share: spec_bool(spec, "warm_share", true),
            nocache: spec_bool(spec, "nocache", false),
        })
    }

    fn prog_token(&self) -> String {
        match &self.prog {
            ProgSource::Bench(bm) => bm.name().to_string(),
            // Content address inline programs: equal JSON, equal key.
            ProgSource::Inline(json) => {
                format!("inline-{:016x}", sim_serve::cache::key_hash(json))
            }
        }
    }

    /// The canonical config string. Field order is fixed and every
    /// field is present, so any single semantic change (preset, mode,
    /// trace flag, workers, fault plan, warm boundary) changes the key.
    fn canonical_key(&self) -> String {
        format!(
            "{SPEC_VERSION}|kind=run|prog={}|preset={}|machine={}|mode={}|workers={}|trace={}|\
             fault={}/{}/{}|warm={}|share={}",
            self.prog_token(),
            self.preset,
            self.machine,
            self.mode,
            self.workers,
            u8::from(self.trace),
            self.fault_seed,
            self.fault_team,
            self.fault_events,
            self.warm_cycles,
            u8::from(self.warm_share),
        )
    }

    /// Key of the shared fault-free warmup snapshot this spec forks
    /// from: the config key minus the fault plan and sharing knobs.
    fn warm_key(&self) -> String {
        format!(
            "{SPEC_VERSION}|warm|prog={}|preset={}|machine={}|mode={}|workers={}|trace={}|warm={}",
            self.prog_token(),
            self.preset,
            self.machine,
            self.mode,
            self.workers,
            u8::from(self.trace),
            self.warm_cycles,
        )
    }

    fn build_program(&self) -> Result<Program, String> {
        match (&self.prog, self.preset.as_str()) {
            (ProgSource::Inline(json), _) => {
                omp_ir::program_from_json(json).map_err(|e| format!("program_json: {e}"))
            }
            (ProgSource::Bench(bm), "tiny") => Ok(bm.build_tiny()),
            (ProgSource::Bench(bm), "paper") => Ok(bm.build_paper(None)),
            (ProgSource::Bench(bm), "dynamic") => {
                Ok(dynamic_program(*bm, self.build_machine()?.num_cmps as u64))
            }
            (_, other) => Err(format!("unknown preset {other:?}")),
        }
    }

    fn build_machine(&self) -> Result<MachineConfig, String> {
        match self.machine.as_str() {
            "paper" => Ok(MachineConfig::paper()),
            "small" => Ok(small_machine()),
            other => Err(format!("unknown machine {other:?}")),
        }
    }

    fn fault_plan(&self) -> FaultPlan {
        if self.fault_events == 0 {
            FaultPlan::none()
        } else {
            FaultPlan::random(
                self.fault_seed,
                self.fault_team.max(1),
                self.fault_events as usize,
            )
        }
    }

    fn build_opts(&self, faults: FaultPlan) -> Result<RunOptions, String> {
        let (mode, sync) = parse_mode(&self.mode)?;
        let mut o = RunOptions::new(mode)
            .with_machine(self.build_machine()?)
            .with_workers(pool::engine_workers(self.workers as usize))
            .with_faults(faults);
        o.sync = sync;
        o.env = RuntimeEnv::default();
        if self.trace {
            o = o.with_trace(sim_trace::TraceConfig::on());
        }
        Ok(o)
    }
}

/// The slipstream [`JobRunner`]: executes `run` and `analyze` specs.
/// Holds the shared warm-start snapshot store; engine worker requests
/// are clamped through [`pool::engine_workers`] so daemon workers ×
/// engine workers never oversubscribe the host.
#[derive(Default)]
pub struct BenchRunner {
    snapshots: Mutex<HashMap<String, Arc<Vec<u8>>>>,
}

impl BenchRunner {
    /// A runner with an empty snapshot store.
    pub fn new() -> BenchRunner {
        BenchRunner::default()
    }

    fn run_job(&self, spec: &RunSpec) -> Result<String, String> {
        let program = spec.build_program()?;
        let summary = if spec.warm_cycles > 0 {
            let snapshot = if spec.warm_share {
                let cached = self
                    .snapshots
                    .lock()
                    .unwrap()
                    .get(&spec.warm_key())
                    .cloned();
                match cached {
                    Some(bytes) => bytes,
                    None => {
                        let cp = checkpoint_program(
                            &program,
                            &spec.build_opts(FaultPlan::none())?,
                            spec.warm_cycles,
                        )?;
                        let bytes = Arc::new(cp.bytes);
                        self.snapshots
                            .lock()
                            .unwrap()
                            .insert(spec.warm_key(), bytes.clone());
                        bytes
                    }
                }
            } else {
                // The cold baseline: re-simulate the warmup prefix.
                Arc::new(
                    checkpoint_program(
                        &program,
                        &spec.build_opts(FaultPlan::none())?,
                        spec.warm_cycles,
                    )?
                    .bytes,
                )
            };
            resume_program(&program, &spec.build_opts(spec.fault_plan())?, &snapshot)?
        } else {
            run_program(&program, &spec.build_opts(spec.fault_plan())?)?
        };
        Ok(SuiteRow::from_summary(&summary).to_payload())
    }

    fn analyze_job(&self, spec: &JsonValue) -> Result<String, String> {
        let name = spec
            .get("program")
            .and_then(|v| v.as_str())
            .ok_or("analyze spec needs \"program\"")?;
        let (_, program) = crate::analysis_corpus()
            .into_iter()
            .find(|(label, _)| label == name)
            .ok_or_else(|| format!("unknown corpus program {name:?}"))?;
        let mut cfg = omp_analyze::AnalyzeConfig::paper();
        if let Some(t) = spec.get("threads").and_then(|v| v.as_num()) {
            cfg = cfg.with_threads(t as u64);
        }
        if let Some(b) = spec.get("budget").and_then(|v| v.as_num()) {
            cfg = cfg.with_budget(b as u64);
        }
        let (text, json_item, denies) = crate::analyze_one(name, &program, &cfg);
        Ok(format!(
            "{{\"text\":\"{}\",\"json_item\":\"{}\",\"denies\":{}}}",
            crate::json_escape(&text),
            crate::json_escape(&json_item),
            denies,
        ))
    }
}

fn analyze_key(spec: &JsonValue) -> Result<String, String> {
    let name = spec
        .get("program")
        .and_then(|v| v.as_str())
        .ok_or("analyze spec needs \"program\"")?;
    let knob = |key: &str| {
        spec.get(key)
            .and_then(|v| v.as_num())
            .map_or_else(|| "default".to_string(), |n| (n as u64).to_string())
    };
    Ok(format!(
        "{SPEC_VERSION}|kind=analyze|program={name}|threads={}|budget={}",
        knob("threads"),
        knob("budget"),
    ))
}

impl JobRunner for BenchRunner {
    fn config_key(&self, spec: &JsonValue) -> Result<Option<String>, String> {
        match spec_str(spec, "kind", "run") {
            "run" => {
                let parsed = RunSpec::parse(spec)?;
                if parsed.nocache {
                    return Ok(None);
                }
                Ok(Some(parsed.canonical_key()))
            }
            "analyze" => Ok(Some(analyze_key(spec)?)),
            other => Err(format!("unknown job kind {other:?}")),
        }
    }

    fn run(&self, spec: &JsonValue, _ctl: &JobControl) -> Result<String, String> {
        match spec_str(spec, "kind", "run") {
            "run" => self.run_job(&RunSpec::parse(spec)?),
            "analyze" => self.analyze_job(spec),
            other => Err(format!("unknown job kind {other:?}")),
        }
    }
}

/// Build the spec JSON for one suite run (the client side of the
/// vocabulary [`RunSpec::parse`] accepts).
pub fn run_spec_json(bench: Benchmark, preset: &str, mode: &str, workers: usize) -> String {
    format!(
        "{{\"kind\":\"run\",\"bench\":\"{}\",\"preset\":\"{}\",\"machine\":\"paper\",\
         \"mode\":\"{}\",\"workers\":{}}}",
        bench.name(),
        preset,
        mode,
        workers,
    )
}

/// Run a whole suite through a daemon: one submit per (benchmark, mode)
/// — duplicates hit the daemon's cache — then wait for every result.
/// Returns rows grouped per benchmark in mode order, exactly like the
/// direct suites.
pub fn suite_via_daemon(
    addr: &str,
    programs: &[Benchmark],
    preset: &str,
    modes: &[(&str, ExecMode, Option<SlipSync>)],
) -> Result<Vec<(Benchmark, Vec<SuiteRow>)>, String> {
    let mut client = sim_serve::Client::connect(addr)?;
    let mut ids = Vec::new();
    for bm in programs {
        for (label, _, _) in modes {
            let ack = client.submit(&run_spec_json(*bm, preset, label, 1), 0, None)?;
            ids.push(ack.id);
        }
    }
    let mut ids = ids.into_iter();
    let mut out = Vec::new();
    for bm in programs {
        let mut rows = Vec::new();
        for _ in modes {
            let id = ids.next().expect("one id per submit");
            let outcome = client.result(id)?;
            let payload = match (outcome.state.as_str(), outcome.payload) {
                ("done", Some(p)) => p,
                (state, _) => {
                    return Err(format!(
                        "job {id} for {} ended {state}{}",
                        bm.name(),
                        outcome.error.map(|e| format!(": {e}")).unwrap_or_default()
                    ))
                }
            };
            rows.push(SuiteRow::from_payload(&payload)?);
        }
        out.push((*bm, rows));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_trace::json::parse;

    #[test]
    fn payload_round_trips_exactly() {
        let program = Benchmark::Cg.build_tiny();
        let mut o = RunOptions::new(ExecMode::Slipstream).with_machine(small_machine());
        o.sync = Some(SlipSync::G0);
        let s = run_program(&program, &o).unwrap();
        let row = SuiteRow::from_summary(&s);
        let back = SuiteRow::from_payload(&row.to_payload()).unwrap();
        assert_eq!(row.to_payload(), back.to_payload());
        assert_eq!(row.fingerprint, back.fingerprint);
        assert_eq!(back.fingerprint, summary_fingerprint(&s));
        assert_eq!(back.exec_cycles, s.exec_cycles);
    }

    #[test]
    fn canonical_key_is_total_and_field_sensitive() {
        let base = parse("{\"kind\":\"run\",\"bench\":\"cg\"}").unwrap();
        let key = RunSpec::parse(&base).unwrap().canonical_key();
        // Defaults are filled in: an explicit spec of the defaults has
        // the same key.
        let explicit = parse(
            "{\"kind\":\"run\",\"bench\":\"cg\",\"preset\":\"paper\",\"machine\":\"paper\",\
             \"mode\":\"single\",\"workers\":1,\"trace\":false,\"fault_seed\":0,\
             \"fault_team\":0,\"fault_events\":0,\"warm_cycles\":0}",
        )
        .unwrap();
        assert_eq!(key, RunSpec::parse(&explicit).unwrap().canonical_key());
        // Any single field change changes the key.
        for variant in [
            "{\"kind\":\"run\",\"bench\":\"mg\"}",
            "{\"kind\":\"run\",\"bench\":\"cg\",\"preset\":\"tiny\"}",
            "{\"kind\":\"run\",\"bench\":\"cg\",\"machine\":\"small\"}",
            "{\"kind\":\"run\",\"bench\":\"cg\",\"mode\":\"slip-G0\"}",
            "{\"kind\":\"run\",\"bench\":\"cg\",\"workers\":4}",
            "{\"kind\":\"run\",\"bench\":\"cg\",\"trace\":true}",
            "{\"kind\":\"run\",\"bench\":\"cg\",\"fault_seed\":1,\"fault_events\":2}",
            "{\"kind\":\"run\",\"bench\":\"cg\",\"warm_cycles\":1000}",
        ] {
            let v = parse(variant).unwrap();
            assert_ne!(
                key,
                RunSpec::parse(&v).unwrap().canonical_key(),
                "{variant} must change the cache key"
            );
        }
        // nocache opts out entirely.
        let v = parse("{\"kind\":\"run\",\"bench\":\"cg\",\"nocache\":true}").unwrap();
        assert!(BenchRunner::new().config_key(&v).unwrap().is_none());
    }

    #[test]
    fn mode_labels_parse() {
        assert_eq!(parse_mode("single").unwrap(), (ExecMode::Single, None));
        assert_eq!(parse_mode("double").unwrap(), (ExecMode::Double, None));
        assert_eq!(
            parse_mode("slip-G0").unwrap(),
            (ExecMode::Slipstream, Some(SlipSync::G0))
        );
        assert_eq!(
            parse_mode("slip-L1").unwrap(),
            (ExecMode::Slipstream, Some(SlipSync::L1))
        );
        assert!(parse_mode("slip-X3").is_err());
        assert!(parse_mode("triple").is_err());
    }
}
