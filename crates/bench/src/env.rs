//! Uniform environment-variable parsing for the bench binaries.
//!
//! Every knob across the harness (`BENCH_WORKERS`, `SIM_WORKERS`,
//! `SOAK_*`, `FUZZ_*`, `THROUGHPUT_*`, `TRACE_*`, `SERVE_*`, ...)
//! resolves through these helpers so the rules are identical
//! everywhere: an unset or empty variable falls back to its default,
//! and a *malformed* value aborts loudly with a uniform message instead
//! of being silently swallowed — a sweep that ran with the wrong worker
//! count because of a typo is worse than one that refused to start.

use std::fmt::Display;
use std::str::FromStr;

/// Read and parse `name`. Unset or empty returns `None`; a malformed
/// value panics with a uniform message.
pub fn get<T: FromStr>(name: &str) -> Option<T>
where
    T::Err: Display,
{
    let raw = std::env::var(name).ok()?;
    if raw.trim().is_empty() {
        return None;
    }
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(e) => panic!("{name}={raw:?} is invalid: {e}"),
    }
}

/// [`get`] with a default for the unset/empty case.
pub fn get_or<T: FromStr>(name: &str, default: T) -> T
where
    T::Err: Display,
{
    get(name).unwrap_or(default)
}

/// Read `name` as a plain string (no parsing; empty counts as unset).
pub fn string(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|v| !v.trim().is_empty())
}

/// [`string`] with a default for the unset/empty case.
pub fn string_or(name: &str, default: &str) -> String {
    string(name).unwrap_or_else(|| default.to_string())
}

/// True when `name` is set at all (any value, including empty) —
/// presence-style switches like `GOLDEN_BLESS=1`.
pub fn flag(name: &str) -> bool {
    std::env::var_os(name).is_some()
}

/// Read `name` as a filesystem path (empty counts as unset).
pub fn path(name: &str) -> Option<std::path::PathBuf> {
    string(name).map(std::path::PathBuf::from)
}

/// Read `name` as a comma-separated list. Unset or empty returns the
/// default; any malformed element panics with a uniform message.
pub fn list_or<T>(name: &str, default: &[T]) -> Vec<T>
where
    T: FromStr + Clone,
    T::Err: Display,
{
    let Some(raw) = string(name) else {
        return default.to_vec();
    };
    raw.split(',')
        .map(|item| match item.trim().parse() {
            Ok(v) => v,
            Err(e) => panic!("{name}={raw:?} has invalid element {item:?}: {e}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    // Process-global environment mutation: each test uses its own
    // variable name so parallel test threads cannot interfere.
    use super::*;

    #[test]
    fn unset_and_empty_fall_back() {
        assert_eq!(get_or::<u64>("BENCH_ENV_TEST_UNSET", 7), 7);
        std::env::set_var("BENCH_ENV_TEST_EMPTY", "  ");
        assert_eq!(get_or::<u64>("BENCH_ENV_TEST_EMPTY", 7), 7);
        assert!(!flag("BENCH_ENV_TEST_UNSET"));
        assert!(flag("BENCH_ENV_TEST_EMPTY"));
    }

    #[test]
    fn valid_values_parse() {
        std::env::set_var("BENCH_ENV_TEST_NUM", " 42 ");
        assert_eq!(get::<usize>("BENCH_ENV_TEST_NUM"), Some(42));
        std::env::set_var("BENCH_ENV_TEST_LIST", "1, 2,4");
        assert_eq!(list_or::<usize>("BENCH_ENV_TEST_LIST", &[9]), vec![1, 2, 4]);
        assert_eq!(list_or::<usize>("BENCH_ENV_TEST_LIST_UNSET", &[9]), vec![9]);
    }

    #[test]
    fn malformed_values_abort() {
        std::env::set_var("BENCH_ENV_TEST_BAD", "4x");
        let err = std::panic::catch_unwind(|| get::<u64>("BENCH_ENV_TEST_BAD"));
        assert!(err.is_err(), "malformed value must panic");
    }
}
