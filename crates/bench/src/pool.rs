//! Bounded worker pool for host-parallel simulation runs.
//!
//! The suite binaries fan dozens of independent simulations out onto
//! host threads. Spawning one thread per run — and, worse, nesting
//! per-benchmark scopes inside per-suite scopes — exploded into
//! benchmarks × modes threads all runnable at once, oversubscribing the
//! host and distorting any timing measured alongside. This pool caps
//! the whole process at a fixed number of concurrently running workers
//! no matter how calls nest.
//!
//! Design:
//!
//! * One process-wide permit counter holds `bound - 1` permits, where
//!   `bound` is `BENCH_WORKERS` or [`available_parallelism`] — helper
//!   threads are spawned only when a permit is free.
//! * The calling thread always drains the task queue itself, so a
//!   `run_all` nested inside a task still makes progress when no
//!   permits are available: nesting can never deadlock, it just runs
//!   serially on the caller.
//! * Helpers are scoped threads; tasks may borrow from the caller's
//!   stack. Results come back in task order.
//!
//! [`available_parallelism`]: std::thread::available_parallelism

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

static BOUND: OnceLock<usize> = OnceLock::new();
static HELPER_PERMITS: OnceLock<AtomicUsize> = OnceLock::new();
static LIVE_HELPERS: AtomicUsize = AtomicUsize::new(0);
static PEAK_HELPERS: AtomicUsize = AtomicUsize::new(0);

/// The maximum number of threads that may run tasks at once (the
/// calling thread plus spawned helpers). Read once per process from
/// `BENCH_WORKERS`, falling back to the host's available parallelism.
pub fn worker_bound() -> usize {
    *BOUND.get_or_init(|| {
        crate::env::get::<usize>("BENCH_WORKERS")
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// High-water mark of concurrently live helper threads over the life of
/// the process. Always at most `worker_bound() - 1`: the calling thread
/// occupies the remaining slot.
pub fn peak_workers() -> usize {
    PEAK_HELPERS.load(Ordering::SeqCst)
}

fn permits() -> &'static AtomicUsize {
    HELPER_PERMITS.get_or_init(|| AtomicUsize::new(worker_bound().saturating_sub(1)))
}

/// Oversubscription guard for simulations launched *through this pool*
/// that also want PDES engine workers: clamp an engine's worker request
/// so `pool workers × engine workers` never exceeds the host's
/// available parallelism. The pool side of the product is
/// [`worker_bound`] — i.e. `BENCH_WORKERS` is respected: capping the
/// pool below the core count is exactly how a caller frees cores for
/// engine-level parallelism. With an unset `BENCH_WORKERS` the pool may
/// saturate the host, and every engine correctly degrades to the serial
/// fast path (`1`). `0` requests "whatever share is free".
pub fn engine_workers(requested: usize) -> usize {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    dsm_sim::clamp_workers(
        dsm_sim::resolve_workers(requested, host),
        worker_bound(),
        host,
    )
}

fn try_acquire() -> bool {
    let p = permits();
    let mut cur = p.load(Ordering::Relaxed);
    while cur > 0 {
        match p.compare_exchange_weak(cur, cur - 1, Ordering::Acquire, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(seen) => cur = seen,
        }
    }
    false
}

fn release() {
    permits().fetch_add(1, Ordering::Release);
}

/// Run every task, using at most `worker_bound()` threads process-wide,
/// and return the results in task order.
///
/// The calling thread participates in the work, so this is safe to call
/// from within a task running on the pool (the nested call degrades to
/// serial execution when all permits are taken). A panicking task
/// propagates out of `run_all` after the remaining workers finish their
/// current tasks.
pub fn run_all<T, F>(tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let queue: Mutex<VecDeque<(usize, F)>> = Mutex::new(tasks.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());

    let drain = || loop {
        let job = queue.lock().expect("pool queue poisoned").pop_front();
        match job {
            Some((idx, task)) => {
                let out = task();
                results.lock().expect("pool results poisoned")[idx] = Some(out);
            }
            None => break,
        }
    };

    std::thread::scope(|scope| {
        // One helper per task beyond the first, each gated by a global
        // permit; the calling thread covers the remainder.
        let mut helpers = 0;
        while helpers + 1 < n && try_acquire() {
            helpers += 1;
            scope.spawn(|| {
                let live = LIVE_HELPERS.fetch_add(1, Ordering::SeqCst) + 1;
                PEAK_HELPERS.fetch_max(live, Ordering::SeqCst);
                drain();
                LIVE_HELPERS.fetch_sub(1, Ordering::SeqCst);
                release();
            });
        }
        drain();
    });

    results
        .into_inner()
        .expect("pool results poisoned")
        .into_iter()
        .map(|slot| slot.expect("every queued task ran"))
        .collect()
}

/// Render a panic payload the way the default hook would.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Like [`run_all`], but a panicking task is isolated instead of tearing
/// down the pool: its slot comes back as `Err(panic message)` while every
/// other task still runs to completion and the pool's locks stay
/// unpoisoned for subsequent calls.
///
/// Long campaign drivers (the fuzz and soak binaries) use this so one
/// pathological case is *reported* rather than aborting hours of
/// remaining work.
pub fn run_all_caught<T, F>(tasks: Vec<F>) -> Vec<Result<T, String>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let wrapped: Vec<_> = tasks
        .into_iter()
        .map(|task| {
            move || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)).map_err(panic_message)
            }
        })
        .collect();
    run_all(wrapped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_workers_respects_the_product_bound() {
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        let w = engine_workers(usize::MAX);
        assert!(w >= 1);
        // pool workers × engine workers never exceeds the host (the
        // degenerate host < bound case still grants the floor of one).
        assert!(w * worker_bound() <= host.max(worker_bound()));
        assert!(engine_workers(0) >= 1, "0 means auto, never zero threads");
        assert_eq!(engine_workers(1), 1, "serial request is honoured");
    }

    #[test]
    fn results_come_back_in_task_order() {
        let tasks: Vec<_> = (0..32).map(|i| move || i * i).collect();
        let out = run_all(tasks);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_task_list_is_fine() {
        let out: Vec<u32> = run_all(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn tasks_may_borrow_the_callers_stack() {
        let data = vec![3u64, 1, 4, 1, 5];
        let slice = &data;
        let tasks: Vec<_> = (0..slice.len()).map(|i| move || slice[i] * 2).collect();
        assert_eq!(run_all(tasks), vec![6, 2, 8, 2, 10]);
    }

    #[test]
    fn panicking_job_is_isolated_and_pool_survives() {
        type Job = Box<dyn FnOnce() -> u64 + Send>;
        let tasks: Vec<Job> = vec![
            Box::new(|| 11),
            Box::new(|| panic!("boom at job 1")),
            Box::new(|| 33),
        ];
        let out = run_all_caught(tasks);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], Ok(11));
        let err = out[1].as_ref().unwrap_err();
        assert!(err.contains("boom at job 1"), "lost panic message: {err}");
        assert_eq!(out[2], Ok(33));
        // The pool must stay serviceable after a caught panic.
        let again: Vec<_> = (0..8u64).map(|i| move || i + 1).collect();
        assert_eq!(run_all(again), (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn string_panic_payloads_are_preserved() {
        type Job = Box<dyn FnOnce() -> u8 + Send>;
        let msg = format!("formatted {} payload", 42);
        let tasks: Vec<Job> = vec![Box::new(move || panic!("{msg}"))];
        let out = run_all_caught(tasks);
        assert!(out[0]
            .as_ref()
            .unwrap_err()
            .contains("formatted 42 payload"));
    }
}
