//! PDES bit-identity suite.
//!
//! The contract of the parallel discrete-event scheduler is strict:
//! for every worker count, the simulation must produce output
//! *bit-identical* to the serial engine — same `exec_cycles`, same
//! stats fingerprint — across every mode, kernel, trace configuration,
//! fault plan, health policy, and OS-noise model. `workers == 1` is the
//! pre-PDES serial fast path; `workers > 1` switches to the per-CMP
//! domain queues, conservative window formation, the scout worker pool,
//! and closed-form replay of constant-compute loop runs. None of that
//! may move a single cycle.

use bench::{small_machine, summary_fingerprint, STATIC_MODES};
use npb_kernels::Benchmark;
use omp_ir::{Expr, ProgramBuilder};
use omp_rt::RuntimeEnv;
use slipstream::faults::FaultPlan;
use slipstream::runner::{run_program, RunOptions};
use slipstream::{ExecMode, HealthPolicy, OsNoise, SlipSync};

const WORKER_SWEEP: [usize; 2] = [2, 4];

fn fp(o: &RunOptions, program: &omp_ir::Program) -> (String, slipstream::RunResult) {
    let s = run_program(program, o).expect("simulation failed");
    (summary_fingerprint(&s), s.raw)
}

#[test]
fn every_kernel_and_mode_is_identical_across_worker_counts() {
    let machine = small_machine();
    for bm in Benchmark::ALL {
        let program = bm.build_tiny();
        for (label, mode, sync) in STATIC_MODES {
            let mut o = RunOptions::new(mode).with_machine(machine.clone());
            o.sync = sync;
            o.env = RuntimeEnv::default();
            let (serial, raw1) = fp(&o, &program);
            assert_eq!(raw1.pdes.windows, 0, "serial path must not form windows");
            for w in WORKER_SWEEP {
                let o = o.clone().with_workers(w);
                let (parallel, raw) = fp(&o, &program);
                assert_eq!(
                    serial,
                    parallel,
                    "{} {label} diverged at workers={w}",
                    bm.name()
                );
                assert_eq!(raw.pdes.workers, w);
                assert!(raw.pdes.windows > 0, "parallel path must form windows");
            }
        }
    }
}

#[test]
fn traced_runs_match_untraced_at_workers_4() {
    // Tracing is observation-only on the parallel path too: a traced
    // workers=4 run must fingerprint identically to the untraced
    // serial run.
    let machine = small_machine();
    for bm in [Benchmark::Cg, Benchmark::Mg] {
        let program = bm.build_tiny();
        for (label, mode, sync) in STATIC_MODES {
            let mut o = RunOptions::new(mode).with_machine(machine.clone());
            o.sync = sync;
            let (serial, _) = fp(&o, &program);
            let o = o.with_workers(4).with_trace(sim_trace::TraceConfig::on());
            let s = run_program(&program, &o).expect("traced parallel run");
            assert!(s.raw.trace.is_some());
            assert_eq!(
                serial,
                summary_fingerprint(&s),
                "traced workers=4 {} {label} diverged from untraced serial",
                bm.name()
            );
        }
    }
}

#[test]
fn faulted_adaptive_runs_match_serial() {
    // Divergence recovery is the one path that mutates a running
    // A-stream from outside (reseed at the construct barrier), and the
    // adaptive health controller plus breaker feed back into pairing —
    // the most interleaving-sensitive machinery in the engine. Seeded
    // fault storms must replay identically at every worker count.
    let machine = small_machine();
    let program = Benchmark::Mg.build_tiny();
    for seed in [1, 7, 23] {
        let plan = FaultPlan::random(seed, 4, 6);
        let mut o = RunOptions::new(ExecMode::Slipstream)
            .with_machine(machine.clone())
            .with_sync(SlipSync::G0)
            .with_faults(plan)
            .with_health(HealthPolicy::adaptive());
        o.env = RuntimeEnv::default();
        let (serial, raw) = fp(&o, &program);
        for w in WORKER_SWEEP {
            let o = o.clone().with_workers(w);
            let (parallel, praw) = fp(&o, &program);
            assert_eq!(
                serial, parallel,
                "faulted adaptive run (seed {seed}) diverged at workers={w}"
            );
            assert_eq!(raw.recoveries, praw.recoveries, "seed {seed}");
            assert_eq!(raw.pair_ledgers, praw.pair_ledgers, "seed {seed}");
        }
    }
}

#[test]
fn os_noise_runs_match_serial() {
    // OS interruptions fire on `now >= next_interrupt` inside the
    // stepping loop — exactly the predicate the closed-form replay has
    // to respect mid-run. A noisy run is the sharpest test of the bail
    // arithmetic.
    let machine = small_machine();
    let program = Benchmark::Cg.build_tiny();
    let noise = OsNoise {
        quantum_cycles: 10_000,
        slice_cycles: 500,
        seed: 7,
    };
    for (label, mode, sync) in STATIC_MODES {
        let mut o = RunOptions::new(mode)
            .with_machine(machine.clone())
            .with_os_noise(noise);
        o.sync = sync;
        let (serial, _) = fp(&o, &program);
        for w in WORKER_SWEEP {
            let o = o.clone().with_workers(w);
            let (parallel, _) = fp(&o, &program);
            assert_eq!(serial, parallel, "noisy {label} diverged at workers={w}");
        }
    }
}

#[test]
fn closed_form_replay_engages_and_is_exact() {
    // A compute-heavy kernel where almost every cycle comes from
    // constant-compute loop runs: the parallel path must retire them in
    // closed form (ff counters move) without moving a cycle.
    // The replay covers the native-batching arm: a *sequential*
    // constant-compute `for` run (worksharing iterations go through the
    // chunk iterator instead), so each outer chunk spins a long inner
    // compute loop.
    let mut b = ProgramBuilder::new("compute-heavy");
    let a = b.shared_array("a", 1024, 8);
    let q = b.var();
    let i = b.var();
    b.parallel(move |r| {
        r.par_for(None, q, 0, 16, move |body| {
            body.for_loop(i, 0, 512, move |cell| {
                cell.compute(37);
            });
        });
        r.par_for(None, i, 0, 1024, move |body| {
            body.load(a, Expr::v(i));
            body.compute(11);
        });
    });
    let program = b.build();
    for (_, mode, sync) in STATIC_MODES {
        let mut o = RunOptions::new(mode).with_machine(small_machine());
        o.sync = sync;
        let (serial, sraw) = fp(&o, &program);
        assert_eq!(sraw.pdes.ff_pieces, 0, "serial path must step natively");
        let o = o.with_workers(4);
        let (parallel, praw) = fp(&o, &program);
        assert_eq!(serial, parallel, "closed-form replay moved a cycle");
        assert!(
            praw.pdes.ff_iters > 0,
            "replay never engaged on a compute-bound kernel"
        );
        assert!(praw.pdes.ff_iters >= praw.pdes.ff_pieces);
    }
}

#[test]
fn zero_lookahead_is_lockstep_but_still_completes() {
    // `lookahead = 0` degrades window admission to frontier-time-only.
    // The run must neither deadlock nor change results.
    let program = Benchmark::Bt.build_tiny();
    let mut o = RunOptions::new(ExecMode::Slipstream).with_machine(small_machine());
    o.sync = Some(SlipSync::G0);
    let (serial, _) = fp(&o, &program);
    let mut o = o.with_workers(2);
    o.lookahead = Some(0);
    let (lockstep, raw) = fp(&o, &program);
    assert_eq!(serial, lockstep, "zero lookahead changed the simulation");
    assert_eq!(raw.pdes.lookahead, 0);
    assert!(raw.pdes.windows > 0);
}

#[test]
fn sixteen_domain_paper_machine_matches_serial() {
    // The full paper machine has 16 CMPs = 16 time domains — enough
    // admitted fronts to cross the scout pool's thread fan-out
    // threshold, so this is the configuration where scouting actually
    // spawns helper threads (small machines classify inline).
    let machine = slipstream::MachineConfig::paper();
    let program = Benchmark::Cg.build_tiny();
    for (label, mode, sync) in STATIC_MODES {
        let mut o = RunOptions::new(mode).with_machine(machine.clone());
        o.sync = sync;
        o.env = RuntimeEnv::default();
        let (serial, _) = fp(&o, &program);
        let o = o.with_workers(4);
        let (parallel, raw) = fp(&o, &program);
        assert_eq!(
            serial, parallel,
            "paper machine {label} diverged at workers=4"
        );
        assert!(raw.pdes.windows > 0);
        assert!(raw.pdes.peak_window_domains >= 2, "{label}");
    }
}
