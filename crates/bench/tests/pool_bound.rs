//! The worker pool must honor its configured thread bound even under
//! nested fan-out. This lives in its own integration-test binary so the
//! process-wide bound and peak counters are not shared with other
//! tests.

use bench::pool;

#[test]
fn nested_fan_out_never_exceeds_the_bound() {
    // Must be set before the pool is first touched: the bound is read
    // once per process.
    std::env::set_var("BENCH_WORKERS", "3");
    let bound = pool::worker_bound();
    assert_eq!(bound, 3, "BENCH_WORKERS override respected");

    // 8 outer tasks each fanning into 8 inner tasks: the old nested
    // thread::scope code would have had 64+ threads live at once.
    type Task<'s> = Box<dyn FnOnce() -> u64 + Send + 's>;
    let outer: Vec<Task> = (0..8u64)
        .map(|i| {
            Box::new(move || {
                let inner: Vec<Task> = (0..8u64)
                    .map(|j| {
                        Box::new(move || {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                            i * 100 + j
                        }) as Task
                    })
                    .collect();
                pool::run_all(inner).into_iter().sum()
            }) as Task
        })
        .collect();
    let sums = pool::run_all(outer);

    // Results arrive in task order with nothing lost.
    let expected: Vec<u64> = (0..8u64)
        .map(|i| (0..8u64).map(|j| i * 100 + j).sum())
        .collect();
    assert_eq!(sums, expected);

    // The calling thread occupies one slot; helpers get the rest.
    assert!(
        pool::peak_workers() < bound,
        "peak helper threads {} exceeded bound-1 = {}",
        pool::peak_workers(),
        bound - 1
    );
}
