//! Crash-recovery parity against the *real* daemon binary.
//!
//! Spawns the `serve` binary with a journal and a disk cache, SIGKILLs
//! it mid-batch, restarts it on the same state directory, and asserts
//! that every job acknowledged by the first incarnation completes under
//! its original id with a payload byte-identical to a direct in-process
//! run. This is the out-of-process twin of the in-process restart tests
//! in `sim-serve` — nothing simulated about the crash.
//!
//! Set `CHAOS_DIR` to relocate the daemon's state directory (CI points
//! it at an artifact path so the journal is uploaded when this fails).

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use bench::serve::SuiteRow;
use bench::{pool, small_machine, STATIC_MODES};
use npb_kernels::Benchmark;
use omp_rt::RuntimeEnv;
use sim_serve::Client;
use slipstream::runner::{run_program, RunOptions};

/// Spec text for a tiny-preset run on the small machine (the
/// `serve_batch` vocabulary).
fn spec(bench: &str, mode: &str) -> String {
    format!(
        "{{\"kind\":\"run\",\"bench\":\"{bench}\",\"preset\":\"tiny\",\
         \"machine\":\"small\",\"mode\":\"{mode}\",\"workers\":1}}"
    )
}

/// The direct-path twin of `spec`: run in-process and project to a row.
fn direct_payload(bench: Benchmark, label: &str) -> String {
    let (_, mode, sync) = *STATIC_MODES
        .iter()
        .find(|(l, _, _)| *l == label)
        .expect("known mode label");
    let mut o = RunOptions::new(mode)
        .with_machine(small_machine())
        .with_workers(pool::engine_workers(1));
    o.sync = sync;
    o.env = RuntimeEnv::default();
    let s = run_program(&bench.build_tiny(), &o).expect("direct run");
    SuiteRow::from_summary(&s).to_payload()
}

/// Launch the daemon binary against `state_dir` and return the child
/// plus the address it printed.
fn spawn_daemon(state_dir: &std::path::Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .env("SERVE_ADDR", "127.0.0.1:0")
        .env("SERVE_WORKERS", "1")
        .env("SERVE_CACHE_CAP", "64")
        .env("SERVE_CACHE_DIR", state_dir.join("cache"))
        .env("SERVE_JOURNAL", state_dir.join("jobs.wal"))
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn serve binary");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("daemon banner");
    // "sim-serve listening on 127.0.0.1:PORT (N workers)"
    let addr = line
        .split_whitespace()
        .find(|w| w.contains(':') && w.starts_with("127.0.0.1"))
        .unwrap_or_else(|| panic!("no address in daemon banner {line:?}"))
        .to_string();
    // Keep draining the daemon's stdout so it never blocks on a full
    // pipe; the lines themselves are uninteresting here.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while let Ok(n) = reader.read_line(&mut sink) {
            if n == 0 {
                break;
            }
            sink.clear();
        }
    });
    (child, addr)
}

#[test]
fn sigkill_mid_batch_loses_no_acknowledged_work() {
    let base = std::env::var("CHAOS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    let state_dir = base.join(format!("crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    std::fs::create_dir_all(&state_dir).expect("state dir");

    // One kernel under every static mode, single worker: when the first
    // job's result arrives, the rest of the batch is still queued.
    let batch: Vec<&str> = STATIC_MODES.iter().map(|(l, _, _)| *l).collect();

    let (mut child, addr) = spawn_daemon(&state_dir);
    let mut client = Client::connect(&addr).expect("connect first incarnation");
    let mut ids = Vec::new();
    for label in &batch {
        let ack = client
            .submit(&spec("cg", label), 0, None)
            .expect("submit to first incarnation");
        ids.push(ack.id);
    }
    let first = client.result(ids[0]).expect("first result");
    assert_eq!(first.state, "done", "{:?}", first.error);

    // SIGKILL mid-batch: no drain, no flush, no goodbye.
    child.kill().expect("SIGKILL daemon");
    let _ = child.wait();

    let (mut child, addr) = spawn_daemon(&state_dir);
    let mut client = Client::connect(&addr).expect("connect second incarnation");
    for (id, label) in ids.iter().zip(&batch) {
        let outcome = client.result(*id).expect("result after restart");
        assert_eq!(
            outcome.state, "done",
            "job {id} ({label}) after restart: {:?}",
            outcome.error
        );
        let payload = outcome.payload.expect("done payload");
        assert_eq!(
            payload,
            direct_payload(Benchmark::Cg, label),
            "job {id} ({label}): recovered payload must be byte-identical to the direct path"
        );
    }

    // The whole batch resubmitted is answered from the cache, byte-for-
    // byte, with nothing re-executed.
    for label in &batch {
        let (ack, payload) = client
            .run_to_payload(&spec("cg", label), 0, None)
            .expect("resubmit");
        assert!(ack.cached, "resubmit of {label} must be a cache hit");
        assert_eq!(payload, direct_payload(Benchmark::Cg, label));
    }

    client.shutdown().expect("clean shutdown");
    for _ in 0..100 {
        if let Ok(Some(_)) = child.try_wait() {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&state_dir);
}
