//! Snapshot warm-start bit-identity suite.
//!
//! `Engine::snapshot` serializes the complete simulator state at an
//! event boundary and `Engine::restore` rebuilds it under a fresh
//! engine. The contract is the same as the PDES one: a run that
//! checkpoints at cycle T and resumes from the snapshot must produce
//! output *bit-identical* to the uninterrupted run — same
//! `exec_cycles`, same stats fingerprint — across every kernel, mode,
//! worker count, trace configuration, and fault plan. The snapshot is
//! worker-count-agnostic, so a serial warmup may fork into parallel
//! continuations and vice versa.

use bench::{small_machine, summary_fingerprint, STATIC_MODES};
use npb_kernels::Benchmark;
use omp_rt::RuntimeEnv;
use slipstream::faults::FaultPlan;
use slipstream::runner::{checkpoint_program, resume_program, run_program, RunOptions};
use slipstream::{ExecMode, HealthPolicy, SlipSync};

fn straight(program: &omp_ir::Program, o: &RunOptions) -> (String, u64) {
    let s = run_program(program, o).expect("straight run failed");
    (summary_fingerprint(&s), s.exec_cycles)
}

/// Checkpoint at `at`, resume under `resume_opts`, fingerprint the
/// completed run.
fn sliced(
    program: &omp_ir::Program,
    warm_opts: &RunOptions,
    resume_opts: &RunOptions,
    at: u64,
) -> String {
    let cp = checkpoint_program(program, warm_opts, at).expect("checkpoint failed");
    let s = resume_program(program, resume_opts, &cp.bytes).expect("resume failed");
    summary_fingerprint(&s)
}

#[test]
fn every_kernel_and_mode_restores_identically() {
    let machine = small_machine();
    for bm in Benchmark::ALL {
        let program = bm.build_tiny();
        for (label, mode, sync) in STATIC_MODES {
            for workers in [1usize, 4] {
                let mut o = RunOptions::new(mode)
                    .with_machine(machine.clone())
                    .with_workers(workers);
                o.sync = sync;
                o.env = RuntimeEnv::default();
                let (want, cycles) = straight(&program, &o);
                // Slice at several depths: early (warmup barely
                // started), midpoint, and just before the end.
                for at in [cycles / 10, cycles / 2, cycles - 1] {
                    let got = sliced(&program, &o, &o, at.max(1));
                    assert_eq!(
                        want,
                        got,
                        "{} {label} workers={workers} diverged after restore at cycle {at}",
                        bm.name()
                    );
                }
            }
        }
    }
}

#[test]
fn snapshots_are_worker_count_agnostic() {
    // The queue export is (time, seq, cpu) triples — no domain
    // structure — so a snapshot taken under the serial engine must
    // resume bit-identically under the PDES engine and vice versa.
    let machine = small_machine();
    for bm in [Benchmark::Cg, Benchmark::Lu] {
        let program = bm.build_tiny();
        for (label, mode, sync) in STATIC_MODES {
            let mut o = RunOptions::new(mode).with_machine(machine.clone());
            o.sync = sync;
            let (want, cycles) = straight(&program, &o);
            for (warm_w, resume_w) in [(1usize, 4usize), (4, 1), (2, 4)] {
                let warm = o.clone().with_workers(warm_w);
                let resume = o.clone().with_workers(resume_w);
                let got = sliced(&program, &warm, &resume, cycles / 2);
                assert_eq!(
                    want,
                    got,
                    "{} {label} warm workers={warm_w} -> resume workers={resume_w} diverged",
                    bm.name()
                );
            }
        }
    }
}

#[test]
fn traced_restores_match_untraced_straight_runs() {
    // Tracing is observation-only, and the tracer's ring state rides
    // along in the snapshot: a traced sliced run must fingerprint
    // identically to the untraced straight run.
    let machine = small_machine();
    for bm in [Benchmark::Mg, Benchmark::Sp] {
        let program = bm.build_tiny();
        for (label, mode, sync) in STATIC_MODES {
            let mut o = RunOptions::new(mode).with_machine(machine.clone());
            o.sync = sync;
            let (want, cycles) = straight(&program, &o);
            let traced = o.clone().with_trace(sim_trace::TraceConfig::on());
            let cp = checkpoint_program(&program, &traced, cycles / 2).expect("checkpoint");
            let s = resume_program(&program, &traced, &cp.bytes).expect("resume");
            assert!(s.raw.trace.is_some(), "trace must survive the round trip");
            assert_eq!(
                want,
                summary_fingerprint(&s),
                "traced sliced {} {label} diverged from untraced straight",
                bm.name()
            );
        }
    }
}

#[test]
fn fault_plan_active_at_the_boundary_restores_identically() {
    // The sharpest slice: a seeded fault storm with recoveries in
    // flight on both sides of the checkpoint. The fired-flags vector
    // and every pair's recovery state must survive serialization.
    let machine = small_machine();
    let program = Benchmark::Mg.build_tiny();
    for seed in [1u64, 7, 23] {
        let plan = FaultPlan::random(seed, 4, 6);
        let mut o = RunOptions::new(ExecMode::Slipstream)
            .with_machine(machine.clone())
            .with_sync(SlipSync::G0)
            .with_faults(plan)
            .with_health(HealthPolicy::adaptive());
        o.env = RuntimeEnv::default();
        let (want, cycles) = straight(&program, &o);
        for at in [cycles / 4, cycles / 2, (3 * cycles) / 4] {
            let got = sliced(&program, &o, &o, at);
            assert_eq!(
                want, got,
                "faulted run (seed {seed}) diverged after restore at cycle {at}"
            );
        }
    }
}

#[test]
fn fault_free_warmup_forks_into_faulted_continuations() {
    // The warm-start pattern sim-serve relies on: checkpoint once with
    // no fault plan, then fork each sweep member with its own plan.
    // Legal because no fault of the stored plan fired before the
    // checkpoint. Fault hooks match their sequence counters *exactly*,
    // so a fork only equals the straight faulted run when the plan's
    // hooks all sit past the checkpoint: use a barrier-epoch wander
    // (the latest epoch that still fires) against a checkpoint taken
    // in the first 2% of the run, before any construct barrier.
    let machine = small_machine();
    let program = Benchmark::Cg.build_tiny();
    let mut base = RunOptions::new(ExecMode::Slipstream)
        .with_machine(machine.clone())
        .with_sync(SlipSync::G0)
        .with_health(HealthPolicy::adaptive());
    base.env = RuntimeEnv::default();
    let (_, cycles) = straight(&program, &base);
    let cp = checkpoint_program(&program, &base, (cycles / 50).max(1)).expect("warmup checkpoint");

    let late_wander = (1..=6)
        .rev()
        .map(|epoch| FaultPlan::wander_at(0, epoch))
        .find(|plan| {
            let o = base.clone().with_faults(plan.clone());
            let s = run_program(&program, &o).expect("probe run");
            s.raw.recoveries > 0
        })
        .expect("some barrier epoch must fire a wander");
    let o = base.clone().with_faults(late_wander);
    let (want, _) = straight(&program, &o);
    let s = resume_program(&program, &o, &cp.bytes).expect("faulted fork");
    assert!(s.raw.recoveries > 0, "the wander must fire post-restore");
    assert_eq!(
        want,
        summary_fingerprint(&s),
        "fault-plan fork diverged from straight faulted run"
    );

    // Random plans may hook counters the warmup already passed, so the
    // straight run is not comparable — but forking must be legal and
    // the forks themselves bit-reproducible.
    for seed in [3u64, 11] {
        let o = base.clone().with_faults(FaultPlan::random(seed, 4, 5));
        let a = resume_program(&program, &o, &cp.bytes).expect("fork a");
        let b = resume_program(&program, &o, &cp.bytes).expect("fork b");
        assert_eq!(
            summary_fingerprint(&a),
            summary_fingerprint(&b),
            "fork (seed {seed}) must be deterministic"
        );
    }
}

#[test]
fn swapping_a_fired_fault_plan_is_rejected() {
    // The other side of the swap rule: once a fault of the stored plan
    // has fired, the continuation is causally downstream of it —
    // resuming under a different plan must fail loudly, not silently
    // mix histories.
    let machine = small_machine();
    let program = Benchmark::Mg.build_tiny();
    let mut o = RunOptions::new(ExecMode::Slipstream)
        .with_machine(machine.clone())
        .with_sync(SlipSync::G0)
        .with_faults(FaultPlan::random(1, 4, 6))
        .with_health(HealthPolicy::adaptive());
    o.env = RuntimeEnv::default();
    let (_, cycles) = straight(&program, &o);
    // Late checkpoint: with 6 scheduled faults over the run, at 3/4
    // depth at least one has fired.
    let cp = checkpoint_program(&program, &o, (3 * cycles) / 4).expect("checkpoint");
    let swapped = o.clone().with_faults(FaultPlan::random(99, 4, 6));
    let err =
        resume_program(&program, &swapped, &cp.bytes).expect_err("swapping a fired plan must fail");
    assert!(
        err.contains("fault plan"),
        "unexpected error message: {err}"
    );
}

#[test]
fn restore_under_a_different_config_is_rejected() {
    let machine = small_machine();
    let program = Benchmark::Lu.build_tiny();
    let mut o = RunOptions::new(ExecMode::Slipstream).with_machine(machine.clone());
    o.sync = Some(SlipSync::G0);
    let (_, cycles) = straight(&program, &o);
    let cp = checkpoint_program(&program, &o, cycles / 2).expect("checkpoint");
    // Different mode: identity hash must mismatch.
    let other = RunOptions::new(ExecMode::Single).with_machine(machine.clone());
    let err = resume_program(&program, &other, &cp.bytes)
        .expect_err("restore under a different mode must fail");
    assert!(err.contains("identity"), "unexpected error message: {err}");
    // Corrupt payload: checksum must catch it.
    let mut bad = cp.bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x40;
    let err = resume_program(&program, &o, &bad).expect_err("corrupt snapshot must fail");
    assert!(
        err.contains("checksum") || err.contains("corrupt") || err.contains("truncated"),
        "unexpected error message: {err}"
    );
}

#[test]
fn checkpoint_past_the_end_captures_the_finished_run() {
    let machine = small_machine();
    let program = Benchmark::Sp.build_tiny();
    let mut o = RunOptions::new(ExecMode::Double).with_machine(machine);
    o.env = RuntimeEnv::default();
    let (want, cycles) = straight(&program, &o);
    let cp = checkpoint_program(&program, &o, cycles * 2).expect("checkpoint");
    assert!(cp.finished, "run must have completed before the boundary");
    let s = resume_program(&program, &o, &cp.bytes).expect("resume of finished run");
    assert_eq!(want, summary_fingerprint(&s));
}
