//! Golden-determinism regression test.
//!
//! The simulator's contract across performance work is bit-identical
//! output: the same program, machine, and mode must produce the same
//! `exec_cycles` and the same statistics, cycle for cycle. This test
//! runs the tiny preset of every kernel under the four static modes and
//! compares a full stats fingerprint against a checked-in golden file
//! captured from the pre-optimization engine.
//!
//! Regenerate (only when an *intentional* semantic change lands) with:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p bench --test golden
//! ```

use bench::{small_machine, summary_fingerprint, STATIC_MODES};
use npb_kernels::Benchmark;
use omp_rt::RuntimeEnv;
use slipstream::runner::{run_program, RunOptions};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_tiny.txt");

fn current_fingerprints() -> String {
    let machine = small_machine();
    let mut lines = Vec::new();
    for bm in Benchmark::ALL {
        let program = bm.build_tiny();
        for (label, mode, sync) in STATIC_MODES {
            let mut o = RunOptions::new(mode).with_machine(machine.clone());
            o.sync = sync;
            o.env = RuntimeEnv::default();
            let s = run_program(&program, &o).expect("simulation failed");
            lines.push(format!(
                "{} {} {}",
                bm.name(),
                label,
                summary_fingerprint(&s)
            ));
        }
    }
    lines.join("\n") + "\n"
}

#[test]
fn golden_determinism_tiny_presets() {
    let actual = current_fingerprints();
    if bench::env::flag("GOLDEN_BLESS") {
        std::fs::write(GOLDEN_PATH, &actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; regenerate with GOLDEN_BLESS=1");
    for (a, e) in actual.lines().zip(expected.lines()) {
        let key: Vec<&str> = a.split_whitespace().take(2).collect();
        assert_eq!(
            a,
            e,
            "stats fingerprint for {} diverged from the pre-optimization golden capture",
            key.join(" ")
        );
    }
    assert_eq!(
        actual.lines().count(),
        expected.lines().count(),
        "golden file row count changed"
    );
}

#[test]
fn golden_trace_parity() {
    // Tracing is observation-only: a run with event tracing enabled must
    // produce a stats fingerprint bit-identical to the untraced run for
    // every benchmark and mode. This is the contract that lets trace
    // sessions be trusted as pictures of the untraced execution.
    let machine = small_machine();
    for bm in [Benchmark::Cg, Benchmark::Mg] {
        let program = bm.build_tiny();
        for (label, mode, sync) in STATIC_MODES {
            let mut o = RunOptions::new(mode).with_machine(machine.clone());
            o.sync = sync;
            o.env = RuntimeEnv::default();
            let plain = run_program(&program, &o).expect("untraced run");
            let o = o.with_trace(sim_trace::TraceConfig::on());
            let traced = run_program(&program, &o).expect("traced run");
            assert!(traced.raw.trace.is_some());
            assert_eq!(
                summary_fingerprint(&plain),
                summary_fingerprint(&traced),
                "tracing perturbed the {} {label} simulation",
                bm.name()
            );
        }
    }
}

#[test]
fn golden_runs_are_repeatable_in_process() {
    // Two in-process runs of the same configuration must agree exactly
    // (guards against any hidden global state in the fast paths).
    let machine = small_machine();
    let program = Benchmark::Cg.build_tiny();
    let (label, mode, sync) = STATIC_MODES[3];
    let mut o = RunOptions::new(mode).with_machine(machine);
    o.sync = sync;
    let a = run_program(&program, &o).expect("run 1");
    let b = run_program(&program, &o).expect("run 2");
    assert_eq!(
        summary_fingerprint(&a),
        summary_fingerprint(&b),
        "repeat {label} runs diverged"
    );
}
