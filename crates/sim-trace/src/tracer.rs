//! The recording side: `TraceConfig`, per-domain `Tracer`s, coalescing
//! `SpanLog`s for CPU time-class timelines, and the merged `TraceData`
//! that a finished run hands to sinks.

use crate::event::{Span, TimedEvent, TraceEvent, TrackDomain};
use crate::ring::EventRing;

/// Per-track default ring capacity when tracing is switched on without an
/// explicit size: 64Ki events per track (~4 MiB/track worst case).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Single knob that turns the subsystem on. The default is off, and off
/// means *structurally* off: tracers hold no buffers, span logs are
/// `None`, and every record hook reduces to one predictable branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    pub enabled: bool,
    /// Per-track ring capacity in events. 0 behaves exactly like
    /// `enabled = false`.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::OFF
    }
}

impl TraceConfig {
    pub const OFF: TraceConfig = TraceConfig {
        enabled: false,
        capacity: 0,
    };

    /// Tracing on with the default per-track capacity.
    pub fn on() -> Self {
        TraceConfig {
            enabled: true,
            capacity: DEFAULT_CAPACITY,
        }
    }

    /// Tracing on with an explicit per-track capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceConfig {
            enabled: true,
            capacity,
        }
    }

    /// Effective switch: enabled with a non-zero buffer.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.enabled && self.capacity > 0
    }
}

/// Records typed events onto per-track rings for one `TrackDomain`.
///
/// A disabled tracer is a zero-byte shell: `is_on()` is a single bool
/// load, and callers are expected to guard event *construction* behind it
/// so the off path never materialises a `TraceEvent`.
#[derive(Clone, Debug)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    domain: TrackDomain,
    seq: u64,
    tracks: Vec<EventRing>,
}

impl Tracer {
    pub fn new(cfg: &TraceConfig, domain: TrackDomain) -> Self {
        Tracer {
            enabled: cfg.is_on(),
            capacity: cfg.capacity,
            domain,
            seq: 0,
            tracks: Vec::new(),
        }
    }

    /// A tracer that records nothing (the default for every subsystem).
    pub fn disabled(domain: TrackDomain) -> Self {
        Tracer::new(&TraceConfig::OFF, domain)
    }

    #[inline]
    pub fn is_on(&self) -> bool {
        self.enabled
    }

    pub fn domain(&self) -> TrackDomain {
        self.domain
    }

    /// Record `ev` on `track` at `cycle`. No-op when disabled, but prefer
    /// guarding with `is_on()` at the call site so the event payload is
    /// never built on the off path.
    pub fn record(&mut self, cycle: u64, track: u32, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        let t = track as usize;
        if self.tracks.len() <= t {
            let cap = self.capacity;
            self.tracks.resize_with(t + 1, || EventRing::new(cap));
        }
        let seq = self.seq;
        self.seq += 1;
        self.tracks[t].push(TimedEvent {
            cycle,
            domain: self.domain,
            track,
            seq,
            ev,
        });
    }

    /// Serialize the full recording state (switch, capacity, domain,
    /// sequence counter, and every track ring).
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.bool(self.enabled);
        w.usize(self.capacity);
        self.domain.snapshot(w);
        w.u64(self.seq);
        w.seq(&self.tracks, |w, t| t.snapshot(w));
    }

    /// Restore a tracer written by [`Tracer::snapshot`].
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        Ok(Tracer {
            enabled: r.bool()?,
            capacity: r.usize()?,
            domain: TrackDomain::restore(r)?,
            seq: r.u64()?,
            tracks: r.seq(EventRing::restore)?,
        })
    }

    /// Consume the tracer: all surviving events (unsorted across tracks,
    /// in-order within each) plus the total overwritten-event count.
    pub fn drain(self) -> (Vec<TimedEvent>, u64) {
        let mut all = Vec::new();
        let mut dropped = 0;
        for ring in self.tracks {
            let (evs, d) = ring.drain();
            all.extend(evs);
            dropped += d;
        }
        (all, dropped)
    }
}

/// Coalescing log of (time-class, start, end) segments for one CPU.
///
/// `CpuTimeline` attributes every cycle to a `TimeClass` as it advances;
/// the span log glues adjacent same-class segments into single slices so a
/// tight compute loop costs one comparison per attribution, not one event.
#[derive(Clone, Debug)]
pub struct SpanLog {
    capacity: usize,
    spans: Vec<Span>,
    cur: Option<Span>,
    dropped: u64,
}

impl SpanLog {
    pub fn new(capacity: usize) -> Self {
        SpanLog {
            capacity,
            spans: Vec::new(),
            cur: None,
            dropped: 0,
        }
    }

    /// Attribute `[start, end)` to `class`, merging with the open span
    /// when contiguous and same-class. Zero-length segments are ignored.
    pub fn note(&mut self, class: &'static str, start: u64, end: u64) {
        if end <= start || self.capacity == 0 {
            return;
        }
        match &mut self.cur {
            Some(c) if c.class == class && c.end == start => {
                c.end = end;
            }
            Some(c) => {
                let done = *c;
                self.cur = Some(Span { class, start, end });
                self.push_span(done);
            }
            None => {
                self.cur = Some(Span { class, start, end });
            }
        }
    }

    fn push_span(&mut self, s: Span) {
        if self.spans.len() < self.capacity {
            self.spans.push(s);
        } else {
            self.dropped += 1;
        }
    }

    /// Serialize the span log, including the still-open span.
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.usize(self.capacity);
        w.seq(&self.spans, |w, s| s.snapshot(w));
        w.opt(&self.cur, |w, s| s.snapshot(w));
        w.u64(self.dropped);
    }

    /// Restore a span log written by [`SpanLog::snapshot`].
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        Ok(SpanLog {
            capacity: r.usize()?,
            spans: r.seq(Span::restore)?,
            cur: r.opt(Span::restore)?,
            dropped: r.u64()?,
        })
    }

    /// Close the open span and return all slices plus the dropped count.
    pub fn finish(mut self) -> (Vec<Span>, u64) {
        if let Some(c) = self.cur.take() {
            self.push_span(c);
        }
        (self.spans, self.dropped)
    }
}

/// Everything a traced run produced, merged and deterministically ordered.
/// Carried on `RunResult` as `Option<TraceData>`; explicitly *excluded*
/// from stats fingerprints — tracing is observation-only.
#[derive(Clone, Debug, Default)]
pub struct TraceData {
    /// Total simulated cycles of the run.
    pub cycles: u64,
    /// Display name per CPU track, e.g. `"cpu3 (A)"`.
    pub cpu_names: Vec<String>,
    /// Number of CMP-domain tracks (shared-L2 events).
    pub cmp_count: usize,
    /// Coalesced time-class slices, one vec per CPU.
    pub spans: Vec<Vec<Span>>,
    /// All instant events, sorted by `(cycle, domain, track, seq)`.
    pub events: Vec<TimedEvent>,
    /// Events lost to ring wraparound or span-log overflow.
    pub dropped: u64,
}

impl TraceData {
    /// Merge any number of drained tracers into sorted `events`.
    pub fn merge_events(&mut self, batches: Vec<(Vec<TimedEvent>, u64)>) {
        for (evs, dropped) in batches {
            self.events.extend(evs);
            self.dropped += dropped;
        }
        self.events.sort_by_key(|e| e.order_key());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled(TrackDomain::Cpu);
        assert!(!t.is_on());
        for c in 0..100 {
            t.record(c, 0, TraceEvent::TokenWait { pair: 0 });
        }
        let (evs, dropped) = t.drain();
        assert!(evs.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn config_capacity_zero_is_off() {
        let cfg = TraceConfig {
            enabled: true,
            capacity: 0,
        };
        assert!(!cfg.is_on());
        let t = Tracer::new(&cfg, TrackDomain::Cpu);
        assert!(!t.is_on());
    }

    #[test]
    fn merge_orders_across_tracks_by_cycle_then_track() {
        let cfg = TraceConfig::with_capacity(16);
        let mut cpu = Tracer::new(&cfg, TrackDomain::Cpu);
        let mut cmp = Tracer::new(&cfg, TrackDomain::Cmp);
        // Interleave out of track order.
        cpu.record(5, 1, TraceEvent::TokenWait { pair: 0 });
        cpu.record(5, 0, TraceEvent::TokenWait { pair: 0 });
        cmp.record(
            5,
            0,
            TraceEvent::FillClass {
                line: 1,
                class: "A-Timely",
                complete: 5,
            },
        );
        cpu.record(2, 3, TraceEvent::TokenWait { pair: 1 });

        let mut td = TraceData::default();
        td.merge_events(vec![cpu.drain(), cmp.drain()]);
        let keys: Vec<_> = td.events.iter().map(|e| (e.cycle, e.track)).collect();
        assert_eq!(keys, [(2, 3), (5, 0), (5, 1), (5, 0)]);
        // Same cycle: all CPU-domain events precede CMP-domain events.
        assert_eq!(td.events[1].domain, TrackDomain::Cpu);
        assert_eq!(td.events[3].domain, TrackDomain::Cmp);
    }

    #[test]
    fn span_log_coalesces_contiguous_same_class() {
        let mut log = SpanLog::new(16);
        log.note("Busy", 0, 10);
        log.note("Busy", 10, 20);
        log.note("MemStall", 20, 30);
        log.note("Busy", 35, 40); // gap: no merge
        let (spans, dropped) = log.finish();
        assert_eq!(dropped, 0);
        assert_eq!(
            spans,
            vec![
                Span {
                    class: "Busy",
                    start: 0,
                    end: 20
                },
                Span {
                    class: "MemStall",
                    start: 20,
                    end: 30
                },
                Span {
                    class: "Busy",
                    start: 35,
                    end: 40
                },
            ]
        );
    }

    #[test]
    fn span_log_capacity_zero_records_nothing() {
        let mut log = SpanLog::new(0);
        log.note("Busy", 0, 10);
        let (spans, dropped) = log.finish();
        assert!(spans.is_empty());
        assert_eq!(dropped, 0);
    }
}
