//! Minimal recursive-descent JSON parser.
//!
//! The workspace is dependency-free by design, but the trace exporter's
//! output needs to be *verifiable* — by unit tests, by the `bench --bin
//! trace` self-check, and by anything else that wants to assert the
//! Chrome trace-event schema. This parser accepts standard JSON (objects,
//! arrays, strings with escapes, numbers, booleans, null); it is built for
//! validation, not speed.

#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<JsonValue, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar. Validate at
                    // most 4 bytes — not the whole remaining document,
                    // which would make parsing quadratic.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let rest = &self.bytes[self.pos..end];
                    let ch = match std::str::from_utf8(rest) {
                        Ok(s) => s.chars().next().unwrap(),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&rest[..e.valid_up_to()])
                                .unwrap()
                                .chars()
                                .next()
                                .unwrap()
                        }
                        Err(_) => return Err("invalid utf-8 in string".into()),
                    };
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\"y\n"},"d":true,"e":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\"y\n")
        );
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\"}").is_err());
    }

    #[test]
    fn unicode_escape() {
        let v = parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
