//! Typed trace events.
//!
//! Events carry `&'static str` labels (time classes, fill classes, fault
//! kinds, decision kinds) rather than the enums of the crates that emit
//! them, so `sim-trace` sits below `dsm-sim` and `slipstream` in the
//! dependency graph and never needs to know their types.

/// Which kind of track an event was recorded on. CPU tracks are indexed by
/// global CPU id; CMP tracks (shared-L2 / memory-system events) by node id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrackDomain {
    /// One track per simulated CPU.
    Cpu,
    /// One track per CMP node (shared L2 + directory).
    Cmp,
}

/// A structured trace event. Instants unless noted otherwise.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// An L2 fill completing on a CMP: the line, whether the requesting
    /// access was an exclusive (write) miss, whether the fill came from a
    /// remote home node, and the issue/complete cycles of the miss path.
    MemFill {
        line: u64,
        read_ex: bool,
        remote: bool,
        issue: u64,
        complete: u64,
    },
    /// Final prefetch-timeliness classification of a fill
    /// (`"A-Timely"`, `"A-Late"`, `"A-Only"`, `"R-Timely"`, ...), emitted
    /// when the fill record is retired (replacement, invalidation, or end
    /// of run).
    FillClass {
        line: u64,
        class: &'static str,
        complete: u64,
    },
    /// A CPU arrived at a barrier (`internal` = runtime-internal barrier
    /// such as the construct barrier, vs. a program barrier address).
    BarrierArrive {
        addr: u64,
        generation: u64,
        arrived: u32,
        total: u32,
    },
    /// Last arrival released the barrier, waking `woken` waiters.
    BarrierRelease {
        addr: u64,
        generation: u64,
        woken: u32,
    },
    /// R-stream inserted a token into pair `pair`'s semaphore (`lost` =
    /// swallowed by an injected TokenLoss fault). `count` is the semaphore
    /// count after the insert.
    TokenInsert {
        pair: u32,
        seq: u64,
        count: i64,
        lost: bool,
    },
    /// A-stream consumed a token to skip a barrier. `count` is the
    /// semaphore count after the consume.
    TokenConsume { pair: u32, count: i64 },
    /// A-stream blocked on an empty token semaphore.
    TokenWait { pair: u32 },
    /// A-stream published a dynamic-scheduling decision (`kind` is the
    /// decision label; `lost` = swallowed by an injected SignalLoss fault).
    DecisionPublish {
        pair: u32,
        seq: u64,
        kind: &'static str,
        lost: bool,
    },
    /// R-stream consumed a published decision.
    DecisionConsume { pair: u32, kind: &'static str },
    /// A fault-plan event fired.
    Fault {
        kind: &'static str,
        site: &'static str,
        pair: u32,
        seq: u64,
    },
    /// A recovery episode (A-stream reseed) ran on `pair`; `watchdog` is
    /// true when the region-end watchdog tripped it and `timeout` when the
    /// token-wait timeout did (plain slack suspicion otherwise).
    Recovery {
        pair: u32,
        watchdog: bool,
        timeout: bool,
    },
    /// `pair` was demoted to single-stream mode after exhausting retries.
    Demotion { pair: u32 },
    /// `pair`'s health-controller state changed. Labels are the
    /// `HealthState` labels (`"healthy"`, `"suspect"`, `"demoted"`,
    /// `"probation"`).
    Health {
        pair: u32,
        from: &'static str,
        to: &'static str,
    },
    /// The team circuit breaker changed state at a region boundary
    /// (`"closed"`, `"open"`, `"half-open"`); `unhealthy` is the pair
    /// count that drove the decision.
    Breaker {
        from: &'static str,
        to: &'static str,
        unhealthy: u32,
    },
    /// A–R lead distance sample for `pair` (A epoch minus R epoch),
    /// recorded whenever either side crosses an epoch boundary.
    Lead { pair: u32, lead: i64 },
}

impl TraceEvent {
    /// Short name used for the Perfetto event title.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::MemFill { .. } => "fill",
            TraceEvent::FillClass { class, .. } => class,
            TraceEvent::BarrierArrive { .. } => "barrier-arrive",
            TraceEvent::BarrierRelease { .. } => "barrier-release",
            TraceEvent::TokenInsert { lost: true, .. } => "token-insert-lost",
            TraceEvent::TokenInsert { .. } => "token-insert",
            TraceEvent::TokenConsume { .. } => "token-consume",
            TraceEvent::TokenWait { .. } => "token-wait",
            TraceEvent::DecisionPublish { lost: true, .. } => "decision-publish-lost",
            TraceEvent::DecisionPublish { .. } => "decision-publish",
            TraceEvent::DecisionConsume { .. } => "decision-consume",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Recovery { .. } => "recovery",
            TraceEvent::Demotion { .. } => "demotion",
            TraceEvent::Health { .. } => "health",
            TraceEvent::Breaker { .. } => "breaker",
            TraceEvent::Lead { .. } => "lead",
        }
    }
}

/// An event stamped with its cycle, track, and a per-tracer sequence number
/// that makes the merge order across tracks total and deterministic.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedEvent {
    pub cycle: u64,
    pub domain: TrackDomain,
    pub track: u32,
    pub seq: u64,
    pub ev: TraceEvent,
}

impl TimedEvent {
    /// Deterministic total-order key for merged timelines.
    pub fn order_key(&self) -> (u64, u8, u32, u64) {
        let d = match self.domain {
            TrackDomain::Cpu => 0u8,
            TrackDomain::Cmp => 1u8,
        };
        (self.cycle, d, self.track, self.seq)
    }
}

/// A coalesced time-class segment on a CPU track (rendered as a Perfetto
/// "X" complete slice).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    pub class: &'static str,
    pub start: u64,
    pub end: u64,
}

// ---------------------------------------------------------------------------
// Snapshot codecs. Labels are stored as strings and re-interned on restore
// (`snap::intern`), so a restored event's `&'static str` compares equal to
// the original label even though the pointer may differ.

impl TrackDomain {
    /// Snapshot discriminant.
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.u8(match self {
            TrackDomain::Cpu => 0,
            TrackDomain::Cmp => 1,
        });
    }

    /// Restore from a snapshot discriminant.
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        match r.u8()? {
            0 => Ok(TrackDomain::Cpu),
            1 => Ok(TrackDomain::Cmp),
            _ => Err(snap::SnapError::Corrupt {
                what: "TrackDomain",
            }),
        }
    }
}

impl TraceEvent {
    /// Serialize the event (tag byte + fields in declaration order).
    pub fn snapshot(&self, w: &mut snap::Writer) {
        match self {
            TraceEvent::MemFill {
                line,
                read_ex,
                remote,
                issue,
                complete,
            } => {
                w.u8(0);
                w.u64(*line);
                w.bool(*read_ex);
                w.bool(*remote);
                w.u64(*issue);
                w.u64(*complete);
            }
            TraceEvent::FillClass {
                line,
                class,
                complete,
            } => {
                w.u8(1);
                w.u64(*line);
                w.str(class);
                w.u64(*complete);
            }
            TraceEvent::BarrierArrive {
                addr,
                generation,
                arrived,
                total,
            } => {
                w.u8(2);
                w.u64(*addr);
                w.u64(*generation);
                w.u32(*arrived);
                w.u32(*total);
            }
            TraceEvent::BarrierRelease {
                addr,
                generation,
                woken,
            } => {
                w.u8(3);
                w.u64(*addr);
                w.u64(*generation);
                w.u32(*woken);
            }
            TraceEvent::TokenInsert {
                pair,
                seq,
                count,
                lost,
            } => {
                w.u8(4);
                w.u32(*pair);
                w.u64(*seq);
                w.i64(*count);
                w.bool(*lost);
            }
            TraceEvent::TokenConsume { pair, count } => {
                w.u8(5);
                w.u32(*pair);
                w.i64(*count);
            }
            TraceEvent::TokenWait { pair } => {
                w.u8(6);
                w.u32(*pair);
            }
            TraceEvent::DecisionPublish {
                pair,
                seq,
                kind,
                lost,
            } => {
                w.u8(7);
                w.u32(*pair);
                w.u64(*seq);
                w.str(kind);
                w.bool(*lost);
            }
            TraceEvent::DecisionConsume { pair, kind } => {
                w.u8(8);
                w.u32(*pair);
                w.str(kind);
            }
            TraceEvent::Fault {
                kind,
                site,
                pair,
                seq,
            } => {
                w.u8(9);
                w.str(kind);
                w.str(site);
                w.u32(*pair);
                w.u64(*seq);
            }
            TraceEvent::Recovery {
                pair,
                watchdog,
                timeout,
            } => {
                w.u8(10);
                w.u32(*pair);
                w.bool(*watchdog);
                w.bool(*timeout);
            }
            TraceEvent::Demotion { pair } => {
                w.u8(11);
                w.u32(*pair);
            }
            TraceEvent::Health { pair, from, to } => {
                w.u8(12);
                w.u32(*pair);
                w.str(from);
                w.str(to);
            }
            TraceEvent::Breaker {
                from,
                to,
                unhealthy,
            } => {
                w.u8(13);
                w.str(from);
                w.str(to);
                w.u32(*unhealthy);
            }
            TraceEvent::Lead { pair, lead } => {
                w.u8(14);
                w.u32(*pair);
                w.i64(*lead);
            }
        }
    }

    /// Restore an event written by [`TraceEvent::snapshot`].
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        let label = |r: &mut snap::Reader| -> Result<&'static str, snap::SnapError> {
            Ok(snap::intern(&r.string()?))
        };
        Ok(match r.u8()? {
            0 => TraceEvent::MemFill {
                line: r.u64()?,
                read_ex: r.bool()?,
                remote: r.bool()?,
                issue: r.u64()?,
                complete: r.u64()?,
            },
            1 => TraceEvent::FillClass {
                line: r.u64()?,
                class: label(r)?,
                complete: r.u64()?,
            },
            2 => TraceEvent::BarrierArrive {
                addr: r.u64()?,
                generation: r.u64()?,
                arrived: r.u32()?,
                total: r.u32()?,
            },
            3 => TraceEvent::BarrierRelease {
                addr: r.u64()?,
                generation: r.u64()?,
                woken: r.u32()?,
            },
            4 => TraceEvent::TokenInsert {
                pair: r.u32()?,
                seq: r.u64()?,
                count: r.i64()?,
                lost: r.bool()?,
            },
            5 => TraceEvent::TokenConsume {
                pair: r.u32()?,
                count: r.i64()?,
            },
            6 => TraceEvent::TokenWait { pair: r.u32()? },
            7 => TraceEvent::DecisionPublish {
                pair: r.u32()?,
                seq: r.u64()?,
                kind: label(r)?,
                lost: r.bool()?,
            },
            8 => TraceEvent::DecisionConsume {
                pair: r.u32()?,
                kind: label(r)?,
            },
            9 => TraceEvent::Fault {
                kind: label(r)?,
                site: label(r)?,
                pair: r.u32()?,
                seq: r.u64()?,
            },
            10 => TraceEvent::Recovery {
                pair: r.u32()?,
                watchdog: r.bool()?,
                timeout: r.bool()?,
            },
            11 => TraceEvent::Demotion { pair: r.u32()? },
            12 => TraceEvent::Health {
                pair: r.u32()?,
                from: label(r)?,
                to: label(r)?,
            },
            13 => TraceEvent::Breaker {
                from: label(r)?,
                to: label(r)?,
                unhealthy: r.u32()?,
            },
            14 => TraceEvent::Lead {
                pair: r.u32()?,
                lead: r.i64()?,
            },
            _ => {
                return Err(snap::SnapError::Corrupt {
                    what: "TraceEvent tag",
                })
            }
        })
    }
}

impl TimedEvent {
    /// Serialize the stamped event.
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.u64(self.cycle);
        self.domain.snapshot(w);
        w.u32(self.track);
        w.u64(self.seq);
        self.ev.snapshot(w);
    }

    /// Restore a stamped event.
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        Ok(TimedEvent {
            cycle: r.u64()?,
            domain: TrackDomain::restore(r)?,
            track: r.u32()?,
            seq: r.u64()?,
            ev: TraceEvent::restore(r)?,
        })
    }
}

impl Span {
    /// Serialize the span (class label stored as a string).
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.str(self.class);
        w.u64(self.start);
        w.u64(self.end);
    }

    /// Restore a span, re-interning the class label.
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        Ok(Span {
            class: snap::intern(&r.string()?),
            start: r.u64()?,
            end: r.u64()?,
        })
    }
}
