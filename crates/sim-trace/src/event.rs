//! Typed trace events.
//!
//! Events carry `&'static str` labels (time classes, fill classes, fault
//! kinds, decision kinds) rather than the enums of the crates that emit
//! them, so `sim-trace` sits below `dsm-sim` and `slipstream` in the
//! dependency graph and never needs to know their types.

/// Which kind of track an event was recorded on. CPU tracks are indexed by
/// global CPU id; CMP tracks (shared-L2 / memory-system events) by node id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrackDomain {
    /// One track per simulated CPU.
    Cpu,
    /// One track per CMP node (shared L2 + directory).
    Cmp,
}

/// A structured trace event. Instants unless noted otherwise.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// An L2 fill completing on a CMP: the line, whether the requesting
    /// access was an exclusive (write) miss, whether the fill came from a
    /// remote home node, and the issue/complete cycles of the miss path.
    MemFill {
        line: u64,
        read_ex: bool,
        remote: bool,
        issue: u64,
        complete: u64,
    },
    /// Final prefetch-timeliness classification of a fill
    /// (`"A-Timely"`, `"A-Late"`, `"A-Only"`, `"R-Timely"`, ...), emitted
    /// when the fill record is retired (replacement, invalidation, or end
    /// of run).
    FillClass {
        line: u64,
        class: &'static str,
        complete: u64,
    },
    /// A CPU arrived at a barrier (`internal` = runtime-internal barrier
    /// such as the construct barrier, vs. a program barrier address).
    BarrierArrive {
        addr: u64,
        generation: u64,
        arrived: u32,
        total: u32,
    },
    /// Last arrival released the barrier, waking `woken` waiters.
    BarrierRelease {
        addr: u64,
        generation: u64,
        woken: u32,
    },
    /// R-stream inserted a token into pair `pair`'s semaphore (`lost` =
    /// swallowed by an injected TokenLoss fault). `count` is the semaphore
    /// count after the insert.
    TokenInsert {
        pair: u32,
        seq: u64,
        count: i64,
        lost: bool,
    },
    /// A-stream consumed a token to skip a barrier. `count` is the
    /// semaphore count after the consume.
    TokenConsume { pair: u32, count: i64 },
    /// A-stream blocked on an empty token semaphore.
    TokenWait { pair: u32 },
    /// A-stream published a dynamic-scheduling decision (`kind` is the
    /// decision label; `lost` = swallowed by an injected SignalLoss fault).
    DecisionPublish {
        pair: u32,
        seq: u64,
        kind: &'static str,
        lost: bool,
    },
    /// R-stream consumed a published decision.
    DecisionConsume { pair: u32, kind: &'static str },
    /// A fault-plan event fired.
    Fault {
        kind: &'static str,
        site: &'static str,
        pair: u32,
        seq: u64,
    },
    /// A recovery episode (A-stream reseed) ran on `pair`; `watchdog` is
    /// true when the region-end watchdog tripped it and `timeout` when the
    /// token-wait timeout did (plain slack suspicion otherwise).
    Recovery {
        pair: u32,
        watchdog: bool,
        timeout: bool,
    },
    /// `pair` was demoted to single-stream mode after exhausting retries.
    Demotion { pair: u32 },
    /// `pair`'s health-controller state changed. Labels are the
    /// `HealthState` labels (`"healthy"`, `"suspect"`, `"demoted"`,
    /// `"probation"`).
    Health {
        pair: u32,
        from: &'static str,
        to: &'static str,
    },
    /// The team circuit breaker changed state at a region boundary
    /// (`"closed"`, `"open"`, `"half-open"`); `unhealthy` is the pair
    /// count that drove the decision.
    Breaker {
        from: &'static str,
        to: &'static str,
        unhealthy: u32,
    },
    /// A–R lead distance sample for `pair` (A epoch minus R epoch),
    /// recorded whenever either side crosses an epoch boundary.
    Lead { pair: u32, lead: i64 },
}

impl TraceEvent {
    /// Short name used for the Perfetto event title.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::MemFill { .. } => "fill",
            TraceEvent::FillClass { class, .. } => class,
            TraceEvent::BarrierArrive { .. } => "barrier-arrive",
            TraceEvent::BarrierRelease { .. } => "barrier-release",
            TraceEvent::TokenInsert { lost: true, .. } => "token-insert-lost",
            TraceEvent::TokenInsert { .. } => "token-insert",
            TraceEvent::TokenConsume { .. } => "token-consume",
            TraceEvent::TokenWait { .. } => "token-wait",
            TraceEvent::DecisionPublish { lost: true, .. } => "decision-publish-lost",
            TraceEvent::DecisionPublish { .. } => "decision-publish",
            TraceEvent::DecisionConsume { .. } => "decision-consume",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Recovery { .. } => "recovery",
            TraceEvent::Demotion { .. } => "demotion",
            TraceEvent::Health { .. } => "health",
            TraceEvent::Breaker { .. } => "breaker",
            TraceEvent::Lead { .. } => "lead",
        }
    }
}

/// An event stamped with its cycle, track, and a per-tracer sequence number
/// that makes the merge order across tracks total and deterministic.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedEvent {
    pub cycle: u64,
    pub domain: TrackDomain,
    pub track: u32,
    pub seq: u64,
    pub ev: TraceEvent,
}

impl TimedEvent {
    /// Deterministic total-order key for merged timelines.
    pub fn order_key(&self) -> (u64, u8, u32, u64) {
        let d = match self.domain {
            TrackDomain::Cpu => 0u8,
            TrackDomain::Cmp => 1u8,
        };
        (self.cycle, d, self.track, self.seq)
    }
}

/// A coalesced time-class segment on a CPU track (rendered as a Perfetto
/// "X" complete slice).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    pub class: &'static str,
    pub start: u64,
    pub end: u64,
}
