//! Timeline analytics derived from a merged trace.
//!
//! These are the per-cycle views the paper could only show as end-of-run
//! bar charts: how far ahead the A-stream actually ran, how full the token
//! semaphore sat, how long A-Timely fill streaks lasted, and how many
//! cycles each injected fault cost before recovery.

use crate::event::TraceEvent;
use crate::tracer::TraceData;

/// A–R lead-distance summary for one pair.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PairLead {
    pub pair: u32,
    pub samples: usize,
    pub min: i64,
    pub max: i64,
    pub last: i64,
    /// Cycle-weighted mean lead ×1000 (fixed point to stay float-free).
    pub mean_milli: i64,
}

/// Token-semaphore occupancy histogram for one pair: `buckets[k]` counts
/// inserts observed with post-insert count `k` (last bucket clamps).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SlackHistogram {
    pub pair: u32,
    pub buckets: Vec<u64>,
    pub waits: u64,
}

/// Prefetch-timeliness streaks per CMP: longest run of consecutive
/// A-Timely fill classifications, plus totals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimelinessStreak {
    pub cmp: u32,
    pub longest_timely: u64,
    pub timely: u64,
    pub classified: u64,
}

/// One fault matched to the recovery (or demotion) that cleared it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryEpisode {
    pub pair: u32,
    pub fault: &'static str,
    pub fault_cycle: u64,
    /// Cycle of the recovery/demotion that followed, if any did.
    pub cleared_cycle: Option<u64>,
    pub demoted: bool,
}

/// Health-state residency for one pair, derived from its
/// health-transition events. Pairs with no transitions spent the whole
/// run healthy and are omitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairHealthSummary {
    pub pair: u32,
    /// Cycles resident per state, indexed by the state ordinal
    /// (0 healthy, 1 suspect, 2 demoted, 3 probation).
    pub residency: [u64; 4],
    /// Transition count over the run.
    pub transitions: u64,
    /// Demoted -> probation re-promotions granted.
    pub repromotions: u64,
    /// State at end of run.
    pub final_state: &'static str,
}

impl Default for PairHealthSummary {
    fn default() -> Self {
        PairHealthSummary {
            pair: 0,
            residency: [0; 4],
            transitions: 0,
            repromotions: 0,
            final_state: "healthy",
        }
    }
}

/// Team circuit-breaker activity over the run, derived from its
/// transition events. `None` when no breaker event was recorded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BreakerSummary {
    /// Times the breaker opened (initial trips and half-open re-trips).
    pub trips: u64,
    /// Half-open probes that passed and re-closed the breaker.
    pub reclosures: u64,
    /// State at end of run.
    pub final_state: &'static str,
}

#[derive(Clone, Debug, Default)]
pub struct TraceAnalytics {
    pub leads: Vec<PairLead>,
    pub slack: Vec<SlackHistogram>,
    pub timeliness: Vec<TimelinessStreak>,
    pub recoveries: Vec<RecoveryEpisode>,
    pub health: Vec<PairHealthSummary>,
    pub breaker: Option<BreakerSummary>,
}

const SLACK_BUCKETS: usize = 9; // counts 0..=7, last bucket = 8+

/// Single pass over the merged event stream.
pub fn analyze(td: &TraceData) -> TraceAnalytics {
    let mut leads: Vec<PairLead> = Vec::new();
    // (last_lead, last_cycle, weighted_sum) per pair for the mean.
    let mut lead_accum: Vec<(i64, u64, i128)> = Vec::new();
    let mut slack: Vec<SlackHistogram> = Vec::new();
    let mut timeliness: Vec<TimelinessStreak> = Vec::new();
    let mut streak_run: Vec<u64> = Vec::new();
    let mut recoveries: Vec<RecoveryEpisode> = Vec::new();
    let mut health: Vec<PairHealthSummary> = Vec::new();
    // Cycle at which each pair entered its current state.
    let mut health_since: Vec<u64> = Vec::new();
    let mut breaker: Option<BreakerSummary> = None;

    fn at<T: Default + Clone>(v: &mut Vec<T>, idx: usize) -> &mut T {
        if v.len() <= idx {
            v.resize(idx + 1, T::default());
        }
        &mut v[idx]
    }

    for e in &td.events {
        match &e.ev {
            TraceEvent::Lead { pair, lead } => {
                let p = *pair as usize;
                let acc = at(&mut lead_accum, p);
                let entry = at(&mut leads, p);
                if entry.samples == 0 {
                    entry.pair = *pair;
                    entry.min = *lead;
                    entry.max = *lead;
                    *acc = (*lead, e.cycle, 0);
                } else {
                    entry.min = entry.min.min(*lead);
                    entry.max = entry.max.max(*lead);
                    acc.2 += acc.0 as i128 * (e.cycle - acc.1) as i128;
                    acc.0 = *lead;
                    acc.1 = e.cycle;
                }
                entry.last = *lead;
                entry.samples += 1;
            }
            TraceEvent::TokenInsert {
                pair,
                count,
                lost: false,
                ..
            } => {
                let h = at(&mut slack, *pair as usize);
                h.pair = *pair;
                if h.buckets.is_empty() {
                    h.buckets = vec![0; SLACK_BUCKETS];
                }
                let b = (*count).max(0) as usize;
                h.buckets[b.min(SLACK_BUCKETS - 1)] += 1;
            }
            TraceEvent::TokenWait { pair } => {
                let h = at(&mut slack, *pair as usize);
                h.pair = *pair;
                if h.buckets.is_empty() {
                    h.buckets = vec![0; SLACK_BUCKETS];
                }
                h.waits += 1;
            }
            TraceEvent::FillClass { class, .. } => {
                let cmp = e.track as usize;
                let t = at(&mut timeliness, cmp);
                t.cmp = e.track;
                t.classified += 1;
                let run = at(&mut streak_run, cmp);
                if *class == "A-Timely" {
                    t.timely += 1;
                    *run += 1;
                    t.longest_timely = t.longest_timely.max(*run);
                } else {
                    *run = 0;
                }
            }
            TraceEvent::Fault { kind, pair, .. } => {
                recoveries.push(RecoveryEpisode {
                    pair: *pair,
                    fault: kind,
                    fault_cycle: e.cycle,
                    cleared_cycle: None,
                    demoted: false,
                });
            }
            TraceEvent::Recovery { pair, .. } | TraceEvent::Demotion { pair } => {
                let demoted = matches!(e.ev, TraceEvent::Demotion { .. });
                for r in recoveries.iter_mut() {
                    if r.pair == *pair && r.cleared_cycle.is_none() {
                        r.cleared_cycle = Some(e.cycle);
                        r.demoted = demoted;
                    }
                }
            }
            TraceEvent::Health { pair, from, to } => {
                let p = *pair as usize;
                let since = *at(&mut health_since, p);
                let h = at(&mut health, p);
                h.pair = *pair;
                // Pairs start healthy at cycle 0; attribute the elapsed
                // window to the state being left.
                let ord = crate::perfetto::health_ordinal(from) as usize;
                if ord < h.residency.len() {
                    h.residency[ord] += e.cycle.saturating_sub(since);
                }
                h.transitions += 1;
                if *to == "probation" {
                    h.repromotions += 1;
                }
                h.final_state = to;
                *at(&mut health_since, p) = e.cycle;
            }
            TraceEvent::Breaker { from, to, .. } => {
                let b = breaker.get_or_insert(BreakerSummary {
                    trips: 0,
                    reclosures: 0,
                    final_state: "closed",
                });
                if *to == "open" && *from != "open" {
                    b.trips += 1;
                }
                if *from == "half-open" && *to == "closed" {
                    b.reclosures += 1;
                }
                b.final_state = to;
            }
            _ => {}
        }
    }

    // Close out the final health residency window at end-of-run.
    for (p, h) in health.iter_mut().enumerate() {
        if h.transitions == 0 {
            continue;
        }
        let ord = crate::perfetto::health_ordinal(h.final_state) as usize;
        if ord < h.residency.len() {
            h.residency[ord] += td.cycles.saturating_sub(health_since[p]);
        }
    }
    health.retain(|h| h.transitions > 0);

    // Close out the cycle-weighted lead means at end-of-run.
    for (p, entry) in leads.iter_mut().enumerate() {
        if entry.samples == 0 {
            continue;
        }
        let (last_lead, last_cycle, mut weighted) = lead_accum[p];
        let end = td.cycles.max(last_cycle);
        weighted += last_lead as i128 * (end - last_cycle) as i128;
        let first_cycle = td
            .events
            .iter()
            .find_map(|e| match &e.ev {
                TraceEvent::Lead { pair, .. } if *pair as usize == p => Some(e.cycle),
                _ => None,
            })
            .unwrap_or(0);
        let window = (end - first_cycle).max(1) as i128;
        entry.mean_milli = (weighted * 1000 / window) as i64;
    }

    leads.retain(|l| l.samples > 0);
    slack.retain(|h| !h.buckets.is_empty() || h.waits > 0);
    timeliness.retain(|t| t.classified > 0);

    TraceAnalytics {
        leads,
        slack,
        timeliness,
        recoveries,
        health,
        breaker,
    }
}

impl TraceAnalytics {
    /// Compact text rendering for terminals and reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("trace analytics\n");
        if self.leads.is_empty() {
            out.push_str("  lead: no pair epochs recorded\n");
        } else {
            out.push_str("  A-stream lead (epochs): pair  min  max  last  mean\n");
            for l in &self.leads {
                out.push_str(&format!(
                    "    pair{:<2} {:>5} {:>5} {:>5} {:>8.3}  ({} samples)\n",
                    l.pair,
                    l.min,
                    l.max,
                    l.last,
                    l.mean_milli as f64 / 1000.0,
                    l.samples
                ));
            }
        }
        for h in &self.slack {
            let total: u64 = h.buckets.iter().sum();
            out.push_str(&format!(
                "  token slack pair{}: inserts={} waits={} hist[0..8+]={:?}\n",
                h.pair, total, h.waits, h.buckets
            ));
        }
        for t in &self.timeliness {
            out.push_str(&format!(
                "  timeliness cmp{}: {}/{} A-Timely, longest streak {}\n",
                t.cmp, t.timely, t.classified, t.longest_timely
            ));
        }
        if !self.health.is_empty() {
            out.push_str("  health residency: pair  healthy  suspect  demoted  probation\n");
            for h in &self.health {
                let total: u64 = h.residency.iter().sum::<u64>().max(1);
                out.push_str(&format!(
                    "    pair{:<2} {:>7.1}% {:>7.1}% {:>7.1}% {:>8.1}%  ({} transitions, {} repromotions, final {})\n",
                    h.pair,
                    100.0 * h.residency[0] as f64 / total as f64,
                    100.0 * h.residency[1] as f64 / total as f64,
                    100.0 * h.residency[2] as f64 / total as f64,
                    100.0 * h.residency[3] as f64 / total as f64,
                    h.transitions,
                    h.repromotions,
                    h.final_state,
                ));
            }
        }
        if let Some(b) = &self.breaker {
            out.push_str(&format!(
                "  circuit breaker: {} trips, {} reclosures, final {}\n",
                b.trips, b.reclosures, b.final_state
            ));
        }
        if !self.recoveries.is_empty() {
            out.push_str("  recovery latency: pair  fault  injected@  cleared@  cycles\n");
            for r in &self.recoveries {
                match r.cleared_cycle {
                    Some(c) => out.push_str(&format!(
                        "    pair{:<2} {:<14} {:>10} {:>9} {:>7}{}\n",
                        r.pair,
                        r.fault,
                        r.fault_cycle,
                        c,
                        c.saturating_sub(r.fault_cycle),
                        if r.demoted { "  (demoted)" } else { "" }
                    )),
                    None => out.push_str(&format!(
                        "    pair{:<2} {:<14} {:>10}  (absorbed without recovery)\n",
                        r.pair, r.fault, r.fault_cycle
                    )),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TimedEvent, TrackDomain};

    fn mk(cycle: u64, track: u32, seq: u64, domain: TrackDomain, ev: TraceEvent) -> TimedEvent {
        TimedEvent {
            cycle,
            domain,
            track,
            seq,
            ev,
        }
    }

    #[test]
    fn lead_minmax_and_weighted_mean() {
        let mut td = TraceData {
            cycles: 100,
            ..Default::default()
        };
        td.merge_events(vec![(
            vec![
                mk(
                    0,
                    1,
                    0,
                    TrackDomain::Cpu,
                    TraceEvent::Lead { pair: 0, lead: 0 },
                ),
                mk(
                    10,
                    1,
                    1,
                    TrackDomain::Cpu,
                    TraceEvent::Lead { pair: 0, lead: 2 },
                ),
                mk(
                    60,
                    1,
                    2,
                    TrackDomain::Cpu,
                    TraceEvent::Lead { pair: 0, lead: 1 },
                ),
            ],
            0,
        )]);
        let a = analyze(&td);
        assert_eq!(a.leads.len(), 1);
        let l = &a.leads[0];
        assert_eq!((l.min, l.max, l.last, l.samples), (0, 2, 1, 3));
        // 0 for 10 cycles, 2 for 50 cycles, 1 for 40 cycles over a
        // 100-cycle window: mean = 140/100 = 1.4.
        assert_eq!(l.mean_milli, 1400);
    }

    #[test]
    fn slack_histogram_counts_inserts_and_waits() {
        let mut td = TraceData::default();
        td.merge_events(vec![(
            vec![
                mk(
                    1,
                    0,
                    0,
                    TrackDomain::Cpu,
                    TraceEvent::TokenInsert {
                        pair: 0,
                        seq: 0,
                        count: 1,
                        lost: false,
                    },
                ),
                mk(
                    2,
                    0,
                    1,
                    TrackDomain::Cpu,
                    TraceEvent::TokenInsert {
                        pair: 0,
                        seq: 1,
                        count: 2,
                        lost: false,
                    },
                ),
                mk(
                    3,
                    0,
                    2,
                    TrackDomain::Cpu,
                    TraceEvent::TokenInsert {
                        pair: 0,
                        seq: 2,
                        count: 1,
                        lost: true, // lost: not counted
                    },
                ),
                mk(4, 1, 3, TrackDomain::Cpu, TraceEvent::TokenWait { pair: 0 }),
            ],
            0,
        )]);
        let a = analyze(&td);
        let h = &a.slack[0];
        assert_eq!(h.waits, 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn timely_streaks_per_cmp() {
        let mut td = TraceData::default();
        let fc = |class| TraceEvent::FillClass {
            line: 0,
            class,
            complete: 0,
        };
        td.merge_events(vec![(
            vec![
                mk(1, 0, 0, TrackDomain::Cmp, fc("A-Timely")),
                mk(2, 0, 1, TrackDomain::Cmp, fc("A-Timely")),
                mk(3, 0, 2, TrackDomain::Cmp, fc("A-Late")),
                mk(4, 0, 3, TrackDomain::Cmp, fc("A-Timely")),
            ],
            0,
        )]);
        let a = analyze(&td);
        let t = &a.timeliness[0];
        assert_eq!((t.timely, t.classified, t.longest_timely), (3, 4, 2));
    }

    #[test]
    fn fault_matched_to_next_recovery() {
        let mut td = TraceData::default();
        td.merge_events(vec![(
            vec![
                mk(
                    100,
                    0,
                    0,
                    TrackDomain::Cpu,
                    TraceEvent::Fault {
                        kind: "token-loss",
                        site: "token-insert",
                        pair: 0,
                        seq: 0,
                    },
                ),
                mk(
                    250,
                    0,
                    1,
                    TrackDomain::Cpu,
                    TraceEvent::Recovery {
                        pair: 0,
                        watchdog: true,
                        timeout: false,
                    },
                ),
            ],
            0,
        )]);
        let a = analyze(&td);
        assert_eq!(a.recoveries.len(), 1);
        assert_eq!(a.recoveries[0].cleared_cycle, Some(250));
        assert!(!a.recoveries[0].demoted);
        assert!(a.render().contains("150"));
    }

    #[test]
    fn health_residency_and_breaker_counts() {
        let mut td = TraceData {
            cycles: 1_000,
            ..Default::default()
        };
        let health = |pair, from, to| TraceEvent::Health { pair, from, to };
        td.merge_events(vec![(
            vec![
                // Pair 0: healthy 0..200, demoted 200..600, probation
                // 600..900, healthy 900..1000.
                mk(200, 0, 0, TrackDomain::Cpu, health(0, "healthy", "demoted")),
                mk(
                    600,
                    0,
                    1,
                    TrackDomain::Cpu,
                    health(0, "demoted", "probation"),
                ),
                mk(
                    900,
                    0,
                    2,
                    TrackDomain::Cpu,
                    health(0, "probation", "healthy"),
                ),
                mk(
                    200,
                    0,
                    3,
                    TrackDomain::Cpu,
                    TraceEvent::Breaker {
                        from: "closed",
                        to: "open",
                        unhealthy: 1,
                    },
                ),
                mk(
                    700,
                    0,
                    4,
                    TrackDomain::Cpu,
                    TraceEvent::Breaker {
                        from: "open",
                        to: "half-open",
                        unhealthy: 0,
                    },
                ),
                mk(
                    800,
                    0,
                    5,
                    TrackDomain::Cpu,
                    TraceEvent::Breaker {
                        from: "half-open",
                        to: "closed",
                        unhealthy: 0,
                    },
                ),
            ],
            0,
        )]);
        let a = analyze(&td);
        assert_eq!(a.health.len(), 1);
        let h = &a.health[0];
        assert_eq!(h.residency, [300, 0, 400, 300]);
        assert_eq!(h.transitions, 3);
        assert_eq!(h.repromotions, 1);
        assert_eq!(h.final_state, "healthy");
        let b = a.breaker.as_ref().unwrap();
        assert_eq!((b.trips, b.reclosures), (1, 1));
        assert_eq!(b.final_state, "closed");
        let r = a.render();
        assert!(r.contains("health residency"), "{r}");
        assert!(r.contains("circuit breaker: 1 trips, 1 reclosures"), "{r}");
    }
}
