//! `sim-trace`: structured event tracing for the slipstream simulator.
//!
//! The paper's figures (2–5) are time-attribution stories — who stalls
//! where, how far the A-stream leads, whether prefetches land Timely or
//! Late. This crate gives the reproduction a per-cycle window into that
//! machinery: typed events recorded into fixed-capacity per-track ring
//! buffers, merged deterministically, exported as Chrome
//! trace-event/Perfetto JSON, and distilled into timeline analytics.
//!
//! Design constraints, in order:
//!
//! 1. **Observation-only.** Recording never charges simulated cycles or
//!    mutates engine state; a traced run must produce bit-identical stats
//!    to an untraced run (the golden parity test in `bench` enforces it).
//! 2. **Zero overhead when off.** A disabled [`Tracer`] holds no buffers;
//!    every hook is guarded by a single `is_on()` bool load, and event
//!    payloads are only constructed on the enabled path.
//! 3. **Bounded memory.** Per-track rings drop-oldest on overflow and
//!    count what they dropped; nothing grows with run length except up to
//!    the configured capacity.
//! 4. **No dependencies.** JSON emit and parse are hand-rolled (the
//!    workspace is offline by construction).
//!
//! Layering: this crate sits *below* `dsm-sim` and `slipstream`. Events
//! carry `&'static str` labels instead of simulator enums so the
//! dependency arrow points one way only.

pub mod analytics;
pub mod event;
pub mod json;
pub mod perfetto;
pub mod ring;
pub mod tracer;

pub use analytics::{
    analyze, BreakerSummary, PairHealthSummary, PairLead, RecoveryEpisode, SlackHistogram,
    TimelinessStreak, TraceAnalytics,
};
pub use event::{Span, TimedEvent, TraceEvent, TrackDomain};
pub use perfetto::{chrome_trace_json, validate_chrome_trace, ValidationReport};
pub use ring::EventRing;
pub use tracer::{SpanLog, TraceConfig, TraceData, Tracer, DEFAULT_CAPACITY};
