//! Fixed-capacity event ring buffers.
//!
//! Each track owns one `EventRing`. Capacity is fixed at construction;
//! when full, the oldest event is overwritten (drop-oldest) and a drop
//! counter is bumped so exports can report truncation honestly. Capacity 0
//! allocates nothing and makes `push` a pure no-op — this is the disabled
//! path, and it must stay branch-cheap because it sits inside the
//! simulator's hot loops.

use crate::event::TimedEvent;

#[derive(Clone, Debug, Default)]
pub struct EventRing {
    buf: Vec<TimedEvent>,
    /// Index of the oldest element once the ring has wrapped.
    head: usize,
    dropped: u64,
    capacity: usize,
}

impl EventRing {
    /// A ring holding at most `capacity` events. `capacity == 0` performs
    /// no allocation and records nothing.
    pub fn new(capacity: usize) -> Self {
        EventRing {
            buf: Vec::new(), // grown lazily up to `capacity`
            head: 0,
            dropped: 0,
            capacity,
        }
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full (0 unless it wrapped).
    #[inline]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Bytes of heap backing the ring right now (tests use this to prove
    /// the capacity-0 path never allocates).
    pub fn heap_events(&self) -> usize {
        self.buf.capacity()
    }

    #[inline]
    pub fn push(&mut self, ev: TimedEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Consume the ring, returning surviving events oldest-first plus the
    /// overwritten-event count.
    pub fn drain(mut self) -> (Vec<TimedEvent>, u64) {
        self.buf.rotate_left(self.head);
        (self.buf, self.dropped)
    }

    /// Serialize the ring. Events are written oldest-first so the encoding
    /// is independent of where `head` happens to sit.
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.usize(self.capacity);
        w.u64(self.dropped);
        w.usize(self.buf.len());
        for i in 0..self.buf.len() {
            self.buf[(self.head + i) % self.buf.len()].snapshot(w);
        }
    }

    /// Restore a ring written by [`EventRing::snapshot`]. The restored
    /// ring holds the same events oldest-first with `head = 0`, which is
    /// behaviorally identical under both `push` and `drain`.
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        let capacity = r.usize()?;
        let dropped = r.u64()?;
        let buf = r.seq(TimedEvent::restore)?;
        if buf.len() > capacity {
            return Err(snap::SnapError::Corrupt {
                what: "EventRing length",
            });
        }
        Ok(EventRing {
            buf,
            head: 0,
            dropped,
            capacity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TraceEvent, TrackDomain};

    fn ev(cycle: u64) -> TimedEvent {
        TimedEvent {
            cycle,
            domain: TrackDomain::Cpu,
            track: 0,
            seq: cycle,
            ev: TraceEvent::TokenWait { pair: 0 },
        }
    }

    #[test]
    fn fills_in_order_below_capacity() {
        let mut r = EventRing::new(4);
        for c in 0..3 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 3);
        let (evs, dropped) = r.drain();
        assert_eq!(dropped, 0);
        assert_eq!(evs.iter().map(|e| e.cycle).collect::<Vec<_>>(), [0, 1, 2]);
    }

    #[test]
    fn wraparound_drops_oldest_and_counts() {
        let mut r = EventRing::new(4);
        for c in 0..10 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let (evs, dropped) = r.drain();
        assert_eq!(dropped, 6);
        // Oldest-first survivors are the last 4 pushed.
        assert_eq!(
            evs.iter().map(|e| e.cycle).collect::<Vec<_>>(),
            [6, 7, 8, 9]
        );
    }

    #[test]
    fn wraparound_exactly_once() {
        let mut r = EventRing::new(3);
        for c in 0..4 {
            r.push(ev(c));
        }
        let (evs, dropped) = r.drain();
        assert_eq!(dropped, 1);
        assert_eq!(evs.iter().map(|e| e.cycle).collect::<Vec<_>>(), [1, 2, 3]);
    }

    #[test]
    fn capacity_zero_is_a_no_op_and_never_allocates() {
        let mut r = EventRing::new(0);
        for c in 0..1000 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 0);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.heap_events(), 0);
        let (evs, dropped) = r.drain();
        assert!(evs.is_empty());
        assert_eq!(dropped, 0);
    }
}
