//! Chrome trace-event / Perfetto JSON sink.
//!
//! Emits the "JSON Array Format" object (`{"traceEvents": [...]}`) that
//! ui.perfetto.dev and chrome://tracing both load. Layout:
//!
//! * pid 0 — "cpus": one thread per simulated CPU. Time-class spans render
//!   as "X" complete slices; engine events (tokens, barriers, decisions,
//!   faults, recoveries) as "i" instants on the owning CPU's track.
//! * pid 1 — "memory (shared L2)": one thread per CMP node; fill and
//!   fill-classification instants.
//! * pid 2 — "slipstream pairs": "C" counter tracks, one `pair<N> lead`
//!   counter per A–R pair plus `pair<N> tokens` semaphore occupancy and a
//!   `pair<N> health` counter stepping through the health-state ordinals
//!   (0 healthy, 1 suspect, 2 demoted, 3 probation).
//!
//! Timestamps are simulated cycles reported in the `ts` microsecond field
//! (1 cycle == 1 "µs"); wall time has no meaning inside the simulator, so
//! the scale is purely presentational.

use crate::event::{TraceEvent, TrackDomain};
use crate::json::{self, JsonValue};
use crate::tracer::TraceData;

const PID_CPUS: u32 = 0;
const PID_MEM: u32 = 1;
const PID_PAIRS: u32 = 2;

/// Render the full Chrome trace-event JSON document.
pub fn chrome_trace_json(td: &TraceData) -> String {
    let mut out = String::with_capacity(1 << 16);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;

    // -- metadata: process and thread names ------------------------------
    meta_process(&mut out, &mut first, PID_CPUS, "cpus");
    for (cpu, name) in td.cpu_names.iter().enumerate() {
        meta_thread(&mut out, &mut first, PID_CPUS, cpu as u32, name);
    }
    if td.cmp_count > 0 {
        meta_process(&mut out, &mut first, PID_MEM, "memory (shared L2)");
        for cmp in 0..td.cmp_count {
            meta_thread(
                &mut out,
                &mut first,
                PID_MEM,
                cmp as u32,
                &format!("cmp{cmp} L2"),
            );
        }
    }
    meta_process(&mut out, &mut first, PID_PAIRS, "slipstream pairs");

    // -- time-class spans per CPU ----------------------------------------
    for (cpu, spans) in td.spans.iter().enumerate() {
        for s in spans {
            sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{\"name\":{},\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{}}}",
                quote(s.class),
                PID_CPUS,
                cpu,
                s.start,
                s.end - s.start
            ));
        }
    }

    // -- instant + counter events ----------------------------------------
    for e in &td.events {
        let (pid, tid) = match e.domain {
            TrackDomain::Cpu => (PID_CPUS, e.track),
            TrackDomain::Cmp => (PID_MEM, e.track),
        };
        match &e.ev {
            TraceEvent::Lead { pair, lead } => {
                sep(&mut out, &mut first);
                out.push_str(&format!(
                    "{{\"name\":\"pair{pair} lead\",\"ph\":\"C\",\"pid\":{PID_PAIRS},\"tid\":0,\"ts\":{},\"args\":{{\"lead\":{lead}}}}}",
                    e.cycle
                ));
            }
            TraceEvent::TokenInsert { pair, count, .. }
            | TraceEvent::TokenConsume { pair, count } => {
                // The instant on the CPU track...
                sep(&mut out, &mut first);
                instant(&mut out, e.ev.name(), pid, tid, e.cycle, &args_for(&e.ev));
                // ...plus a semaphore-occupancy counter sample.
                sep(&mut out, &mut first);
                out.push_str(&format!(
                    "{{\"name\":\"pair{pair} tokens\",\"ph\":\"C\",\"pid\":{PID_PAIRS},\"tid\":0,\"ts\":{},\"args\":{{\"tokens\":{count}}}}}",
                    e.cycle
                ));
            }
            TraceEvent::Health { pair, to, .. } => {
                // The instant on the CPU track...
                sep(&mut out, &mut first);
                instant(&mut out, e.ev.name(), pid, tid, e.cycle, &args_for(&e.ev));
                // ...plus the health-state counter track sample.
                sep(&mut out, &mut first);
                out.push_str(&format!(
                    "{{\"name\":\"pair{pair} health\",\"ph\":\"C\",\"pid\":{PID_PAIRS},\"tid\":0,\"ts\":{},\"args\":{{\"state\":{}}}}}",
                    e.cycle,
                    health_ordinal(to)
                ));
            }
            ev => {
                sep(&mut out, &mut first);
                instant(&mut out, ev.name(), pid, tid, e.cycle, &args_for(ev));
            }
        }
    }

    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{");
    out.push_str(&format!(
        "\"cycles\":{},\"dropped_events\":{},\"generator\":\"sim-trace\"",
        td.cycles, td.dropped
    ));
    out.push_str("}}");
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

fn meta_process(out: &mut String, first: &mut bool, pid: u32, name: &str) {
    sep(out, first);
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":{}}}}}",
        quote(name)
    ));
}

fn meta_thread(out: &mut String, first: &mut bool, pid: u32, tid: u32, name: &str) {
    sep(out, first);
    out.push_str(&format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
        quote(name)
    ));
}

fn instant(out: &mut String, name: &str, pid: u32, tid: u32, ts: u64, args: &str) {
    out.push_str(&format!(
        "{{\"name\":{},\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\"args\":{{{args}}}}}",
        quote(name)
    ));
}

/// Structured `args` payload (comma-joined `"k":v` pairs) per event kind.
fn args_for(ev: &TraceEvent) -> String {
    match ev {
        TraceEvent::MemFill {
            line,
            read_ex,
            remote,
            issue,
            complete,
        } => format!(
            "\"line\":{line},\"read_ex\":{read_ex},\"remote\":{remote},\"issue\":{issue},\"complete\":{complete}"
        ),
        TraceEvent::FillClass { line, class, complete } => {
            format!("\"line\":{line},\"class\":{},\"complete\":{complete}", quote(class))
        }
        TraceEvent::BarrierArrive {
            addr,
            generation,
            arrived,
            total,
        } => format!(
            "\"addr\":{addr},\"generation\":{generation},\"arrived\":{arrived},\"total\":{total}"
        ),
        TraceEvent::BarrierRelease {
            addr,
            generation,
            woken,
        } => format!("\"addr\":{addr},\"generation\":{generation},\"woken\":{woken}"),
        TraceEvent::TokenInsert {
            pair,
            seq,
            count,
            lost,
        } => format!("\"pair\":{pair},\"seq\":{seq},\"count\":{count},\"lost\":{lost}"),
        TraceEvent::TokenConsume { pair, count } => {
            format!("\"pair\":{pair},\"count\":{count}")
        }
        TraceEvent::TokenWait { pair } => format!("\"pair\":{pair}"),
        TraceEvent::DecisionPublish {
            pair,
            seq,
            kind,
            lost,
        } => format!(
            "\"pair\":{pair},\"seq\":{seq},\"kind\":{},\"lost\":{lost}",
            quote(kind)
        ),
        TraceEvent::DecisionConsume { pair, kind } => {
            format!("\"pair\":{pair},\"kind\":{}", quote(kind))
        }
        TraceEvent::Fault {
            kind,
            site,
            pair,
            seq,
        } => format!(
            "\"kind\":{},\"site\":{},\"pair\":{pair},\"seq\":{seq}",
            quote(kind),
            quote(site)
        ),
        TraceEvent::Recovery {
            pair,
            watchdog,
            timeout,
        } => {
            format!("\"pair\":{pair},\"watchdog\":{watchdog},\"timeout\":{timeout}")
        }
        TraceEvent::Demotion { pair } => format!("\"pair\":{pair}"),
        TraceEvent::Health { pair, from, to } => format!(
            "\"pair\":{pair},\"from\":{},\"to\":{}",
            quote(from),
            quote(to)
        ),
        TraceEvent::Breaker {
            from,
            to,
            unhealthy,
        } => format!(
            "\"from\":{},\"to\":{},\"unhealthy\":{unhealthy}",
            quote(from),
            quote(to)
        ),
        TraceEvent::Lead { pair, lead } => format!("\"pair\":{pair},\"lead\":{lead}"),
    }
}

/// Health-state label -> stable counter ordinal (mirrors
/// `omp_rt::mode::HealthState::ordinal`, which this crate cannot see —
/// it sits below `omp-rt` in the dependency graph).
pub(crate) fn health_ordinal(label: &str) -> u32 {
    match label {
        "healthy" => 0,
        "suspect" => 1,
        "demoted" => 2,
        "probation" => 3,
        _ => u32::MAX,
    }
}

/// JSON string literal with escaping.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// What a schema check found inside an exported trace document.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ValidationReport {
    pub total_events: usize,
    pub slice_events: usize,
    pub instant_events: usize,
    pub counter_events: usize,
    pub cpu_threads_named: usize,
    pub token_events: usize,
    pub lead_counter_tracks: usize,
    pub health_counter_tracks: usize,
}

/// Parse `src` and verify it is well-formed Chrome trace-event JSON with
/// the track layout this exporter promises. Returns counts the callers
/// (tests, `bench --bin trace`, CI) assert against.
pub fn validate_chrome_trace(src: &str) -> Result<ValidationReport, String> {
    let doc = json::parse(src)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    let mut rep = ValidationReport {
        total_events: events.len(),
        ..Default::default()
    };
    let mut lead_tracks: Vec<String> = Vec::new();
    let mut health_tracks: Vec<String> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let ctx = |f: &str| format!("event {i}: {f}");
        let name = e
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ctx("missing name"))?;
        let ph = e
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ctx("missing ph"))?;
        e.get("pid")
            .and_then(JsonValue::as_num)
            .ok_or_else(|| ctx("missing pid"))?;
        e.get("tid")
            .and_then(JsonValue::as_num)
            .ok_or_else(|| ctx("missing tid"))?;
        match ph {
            "M" => {
                if name == "thread_name"
                    && e.get("pid").and_then(JsonValue::as_num) == Some(PID_CPUS as f64)
                {
                    rep.cpu_threads_named += 1;
                }
            }
            "X" => {
                e.get("ts")
                    .and_then(JsonValue::as_num)
                    .ok_or_else(|| ctx("slice missing ts"))?;
                e.get("dur")
                    .and_then(JsonValue::as_num)
                    .ok_or_else(|| ctx("slice missing dur"))?;
                rep.slice_events += 1;
            }
            "i" => {
                e.get("ts")
                    .and_then(JsonValue::as_num)
                    .ok_or_else(|| ctx("instant missing ts"))?;
                rep.instant_events += 1;
                if name.starts_with("token-") {
                    rep.token_events += 1;
                }
            }
            "C" => {
                e.get("ts")
                    .and_then(JsonValue::as_num)
                    .ok_or_else(|| ctx("counter missing ts"))?;
                e.get("args").ok_or_else(|| ctx("counter missing args"))?;
                rep.counter_events += 1;
                if name.ends_with(" lead") && !lead_tracks.iter().any(|n| n == name) {
                    lead_tracks.push(name.to_string());
                }
                if name.ends_with(" health") && !health_tracks.iter().any(|n| n == name) {
                    health_tracks.push(name.to_string());
                }
            }
            other => return Err(ctx(&format!("unknown ph {other:?}"))),
        }
    }
    rep.lead_counter_tracks = lead_tracks.len();
    rep.health_counter_tracks = health_tracks.len();
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Span, TimedEvent, TraceEvent, TrackDomain};
    use crate::tracer::TraceData;

    fn sample_trace() -> TraceData {
        let mut td = TraceData {
            cycles: 100,
            cpu_names: vec!["cpu0 (R)".into(), "cpu1 (A)".into()],
            cmp_count: 1,
            spans: vec![
                vec![
                    Span {
                        class: "Busy",
                        start: 0,
                        end: 40,
                    },
                    Span {
                        class: "Barrier",
                        start: 40,
                        end: 100,
                    },
                ],
                vec![Span {
                    class: "Busy",
                    start: 0,
                    end: 100,
                }],
            ],
            events: Vec::new(),
            dropped: 0,
        };
        let mk = |cycle, domain, track, seq, ev| TimedEvent {
            cycle,
            domain,
            track,
            seq,
            ev,
        };
        td.merge_events(vec![(
            vec![
                mk(
                    10,
                    TrackDomain::Cpu,
                    0,
                    0,
                    TraceEvent::TokenInsert {
                        pair: 0,
                        seq: 1,
                        count: 2,
                        lost: false,
                    },
                ),
                mk(
                    20,
                    TrackDomain::Cpu,
                    1,
                    1,
                    TraceEvent::TokenConsume { pair: 0, count: 1 },
                ),
                mk(
                    20,
                    TrackDomain::Cpu,
                    1,
                    2,
                    TraceEvent::Lead { pair: 0, lead: 1 },
                ),
                mk(
                    30,
                    TrackDomain::Cmp,
                    0,
                    3,
                    TraceEvent::FillClass {
                        line: 0x40,
                        class: "A-Timely",
                        complete: 25,
                    },
                ),
                mk(
                    40,
                    TrackDomain::Cpu,
                    0,
                    4,
                    TraceEvent::Health {
                        pair: 0,
                        from: "healthy",
                        to: "suspect",
                    },
                ),
                mk(
                    50,
                    TrackDomain::Cpu,
                    0,
                    5,
                    TraceEvent::Breaker {
                        from: "closed",
                        to: "open",
                        unhealthy: 1,
                    },
                ),
            ],
            0,
        )]);
        td
    }

    #[test]
    fn export_is_valid_and_counts_tracks() {
        let td = sample_trace();
        let out = chrome_trace_json(&td);
        let rep = validate_chrome_trace(&out).expect("valid trace");
        assert_eq!(rep.cpu_threads_named, 2);
        assert_eq!(rep.slice_events, 3);
        // 1 lead counter + 2 token counters + 1 health counter.
        assert_eq!(rep.counter_events, 4);
        assert_eq!(rep.lead_counter_tracks, 1);
        assert_eq!(rep.health_counter_tracks, 1);
        assert_eq!(rep.token_events, 2);
        // instants: token-insert, token-consume, fill-class, health,
        // breaker.
        assert_eq!(rep.instant_events, 5);
    }

    #[test]
    fn health_counter_uses_stable_ordinals() {
        let td = sample_trace();
        let out = chrome_trace_json(&td);
        assert!(
            out.contains("\"name\":\"pair0 health\",\"ph\":\"C\""),
            "{out}"
        );
        assert!(out.contains("\"args\":{\"state\":1}"), "{out}");
        assert_eq!(health_ordinal("healthy"), 0);
        assert_eq!(health_ordinal("probation"), 3);
        assert_eq!(health_ordinal("garbage"), u32::MAX);
    }

    #[test]
    fn export_orders_events_by_cycle() {
        let td = sample_trace();
        let out = chrome_trace_json(&td);
        let doc = crate::json::parse(&out).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let mut last_instant_ts = -1.0;
        for e in evs {
            if e.get("ph").and_then(JsonValue::as_str) == Some("i") {
                let ts = e.get("ts").and_then(JsonValue::as_num).unwrap();
                assert!(ts >= last_instant_ts, "instants out of order");
                last_instant_ts = ts;
            }
        }
    }

    #[test]
    fn quoting_escapes_specials() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
