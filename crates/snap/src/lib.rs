//! Binary snapshot codec for engine checkpoint/restore.
//!
//! The simulator's checkpoint format is a flat little-endian byte stream
//! wrapped in a versioned, checksummed envelope. This crate owns the
//! three pieces every serializing crate shares:
//!
//! - [`Writer`] / [`Reader`]: primitive framing (LE integers, lengths,
//!   strings, `Vec`/`VecDeque`/`Option` combinators). The reader is
//!   bounds-checked and returns [`SnapError`] instead of panicking on
//!   truncated or corrupt input.
//! - [`seal`] / [`open`]: the envelope — magic, format version, payload
//!   length, and an FNV-1a checksum over the payload. Snapshots are
//!   **build-internal**: the version is bumped on any layout change and
//!   `open` rejects mismatches, so a snapshot never silently deserializes
//!   under a different layout.
//! - [`intern`]: a leak-once interner mapping decoded strings back to
//!   `&'static str`. The simulator labels state with static strings
//!   (time classes, fill classes, health states, fault sites); the label
//!   sets are small and finite, so restoring them via a linear-scan
//!   interner is simpler and safer than round-tripping enum ordinals for
//!   every labelled subsystem.
//!
//! The codec is deliberately schema-less: each struct serializes its
//! fields in declaration order with no tags. The envelope version is the
//! only compatibility gate, which keeps snapshots compact and the codec
//! dependency-free.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::Mutex;

/// Error produced by [`Reader`] operations and [`open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before the expected field.
    Truncated {
        /// What the decoder was trying to read.
        what: &'static str,
    },
    /// The envelope magic did not match.
    BadMagic,
    /// The envelope version did not match the expected version.
    VersionMismatch {
        /// Version stored in the snapshot.
        found: u32,
        /// Version this build expects.
        want: u32,
    },
    /// The payload checksum did not match the envelope.
    ChecksumMismatch,
    /// A decoded discriminant or count was out of range.
    Corrupt {
        /// What was being decoded when the value went out of range.
        what: &'static str,
    },
    /// Bytes remained after the last expected field.
    TrailingBytes {
        /// Number of unread bytes.
        remaining: usize,
    },
}

impl From<SnapError> for String {
    fn from(e: SnapError) -> String {
        e.to_string()
    }
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated { what } => write!(f, "snapshot truncated while reading {what}"),
            SnapError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapError::VersionMismatch { found, want } => {
                write!(f, "snapshot version {found} but this build expects {want}")
            }
            SnapError::ChecksumMismatch => write!(f, "snapshot payload checksum mismatch"),
            SnapError::Corrupt { what } => write!(f, "snapshot corrupt: invalid {what}"),
            SnapError::TrailingBytes { remaining } => {
                write!(f, "snapshot has {remaining} trailing bytes")
            }
        }
    }
}

/// Append-only byte sink with little-endian primitive framing.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consume the writer and return the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64` little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64` little-endian.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append an `f64` by its IEEE-754 bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Append a length-prefixed slice, serializing each element with `f`.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Writer, &T)) {
        self.usize(items.len());
        for it in items {
            f(self, it);
        }
    }

    /// Append a length-prefixed `VecDeque`, front to back.
    pub fn deque<T>(&mut self, items: &VecDeque<T>, mut f: impl FnMut(&mut Writer, &T)) {
        self.usize(items.len());
        for it in items {
            f(self, it);
        }
    }

    /// Append an `Option` as a presence byte plus the value if present.
    pub fn opt<T>(&mut self, v: &Option<T>, f: impl FnOnce(&mut Writer, &T)) {
        match v {
            None => self.bool(false),
            Some(x) => {
                self.bool(true);
                f(self, x);
            }
        }
    }

    /// Append a `Vec<u64>` with a length prefix.
    pub fn u64s(&mut self, items: &[u64]) {
        self.seq(items, |w, v| w.u64(*v));
    }
}

/// Bounds-checked cursor over snapshot bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Unread bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless every byte has been consumed.
    pub fn expect_end(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a bool (one byte; values other than 0/1 are corrupt).
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt { what: "bool" }),
        }
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8, "i64")?.try_into().unwrap()))
    }

    /// Read a `usize` stored as `u64`; errors if it overflows the host.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::Corrupt { what: "usize" })
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, SnapError> {
        let n = self.usize()?;
        let bytes = self.take(n, "string")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Corrupt { what: "utf8" })
    }

    /// Read a length-prefixed sequence, decoding each element with `f`.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Reader<'a>) -> Result<T, SnapError>,
    ) -> Result<Vec<T>, SnapError> {
        let n = self.usize()?;
        // Guard against absurd counts from corrupt input: each element
        // consumes at least one byte in every encoding this codec emits.
        if n > self.remaining() {
            return Err(SnapError::Corrupt { what: "seq length" });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Read a length-prefixed sequence into a `VecDeque`.
    pub fn deque<T>(
        &mut self,
        f: impl FnMut(&mut Reader<'a>) -> Result<T, SnapError>,
    ) -> Result<VecDeque<T>, SnapError> {
        Ok(VecDeque::from(self.seq(f)?))
    }

    /// Read an `Option` written by [`Writer::opt`].
    pub fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut Reader<'a>) -> Result<T, SnapError>,
    ) -> Result<Option<T>, SnapError> {
        if self.bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    /// Read a length-prefixed `Vec<u64>`.
    pub fn u64s(&mut self) -> Result<Vec<u64>, SnapError> {
        self.seq(|r| r.u64())
    }
}

/// FNV-1a over a byte slice (the workspace's standard content hash).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Envelope magic: `b"SSSNAP\0\0"` little-endian.
const MAGIC: u64 = u64::from_le_bytes(*b"SSSNAP\0\0");

/// Wrap `payload` in the versioned envelope:
/// `magic(u64) | version(u32) | len(u64) | fnv1a(u64) | payload`.
pub fn seal(version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate an envelope produced by [`seal`] and return its payload.
///
/// Checks magic, exact version match, length, and checksum — a snapshot
/// from a different build layout fails here rather than misdecoding.
pub fn open(bytes: &[u8], want_version: u32) -> Result<&[u8], SnapError> {
    let mut r = Reader::new(bytes);
    let magic = r.u64().map_err(|_| SnapError::BadMagic)?;
    if magic != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = r.u32()?;
    if version != want_version {
        return Err(SnapError::VersionMismatch {
            found: version,
            want: want_version,
        });
    }
    let len = r.usize()?;
    let sum = r.u64()?;
    if r.remaining() != len {
        return Err(SnapError::Truncated { what: "payload" });
    }
    let payload = &bytes[bytes.len() - len..];
    if fnv1a(payload) != sum {
        return Err(SnapError::ChecksumMismatch);
    }
    Ok(payload)
}

/// Validate the envelope at the *front* of `bytes` and return its
/// payload plus the total number of bytes the envelope occupies.
///
/// This is the streaming sibling of [`open`]: a file of concatenated
/// sealed envelopes (the sim-serve job journal) is consumed by calling
/// `open_prefix` repeatedly, advancing by the returned length. Any
/// defect — missing header bytes, wrong magic or version, a payload cut
/// short, a checksum mismatch — returns an error without reading past
/// the defective record, so a torn tail can be detected and discarded
/// cleanly.
pub fn open_prefix(bytes: &[u8], want_version: u32) -> Result<(&[u8], usize), SnapError> {
    let mut r = Reader::new(bytes);
    let magic = r.u64().map_err(|_| SnapError::BadMagic)?;
    if magic != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = r.u32()?;
    if version != want_version {
        return Err(SnapError::VersionMismatch {
            found: version,
            want: want_version,
        });
    }
    let len = r.usize()?;
    let sum = r.u64()?;
    if r.remaining() < len {
        return Err(SnapError::Truncated { what: "payload" });
    }
    const HEADER: usize = 8 + 4 + 8 + 8;
    let payload = &bytes[HEADER..HEADER + len];
    if fnv1a(payload) != sum {
        return Err(SnapError::ChecksumMismatch);
    }
    Ok((payload, HEADER + len))
}

/// Leak-once static-string table backing [`intern`].
static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Map a decoded string to a `&'static str`, leaking at most one copy
/// per distinct value for the life of the process.
///
/// The simulator's labelled state (time classes, fill classes, health
/// and fault labels) uses `&'static str`; the label alphabet is small
/// and fixed, so a linear scan over the seen set is fine and a new leak
/// only happens the first time each label is restored.
pub fn intern(s: &str) -> &'static str {
    let mut table = INTERNED.lock().unwrap();
    if let Some(hit) = table.iter().find(|t| **t == s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    table.push(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.i64(-42);
        w.usize(12345);
        w.f64(-0.1);
        w.str("hello, snapshot");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert_eq!(r.string().unwrap(), "hello, snapshot");
        r.expect_end().unwrap();
    }

    #[test]
    fn containers_round_trip() {
        let mut w = Writer::new();
        w.seq(&[1u64, 2, 3], |w, v| w.u64(*v));
        let dq: VecDeque<i64> = VecDeque::from(vec![-1, 0, 9]);
        w.deque(&dq, |w, v| w.i64(*v));
        w.opt(&Some(5u64), |w, v| w.u64(*v));
        w.opt(&None::<u64>, |w, v| w.u64(*v));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.seq(|r| r.u64()).unwrap(), vec![1, 2, 3]);
        assert_eq!(r.deque(|r| r.i64()).unwrap(), dq);
        assert_eq!(r.opt(|r| r.u64()).unwrap(), Some(5));
        assert_eq!(r.opt(|r| r.u64()).unwrap(), None);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..4]);
        assert!(matches!(r.u64(), Err(SnapError::Truncated { .. })));
    }

    #[test]
    fn corrupt_seq_length_rejected() {
        let mut w = Writer::new();
        w.usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.seq(|r| r.u8()).is_err());
    }

    #[test]
    fn envelope_round_trip_and_rejection() {
        let payload = b"engine state".to_vec();
        let sealed = seal(3, &payload);
        assert_eq!(open(&sealed, 3).unwrap(), payload.as_slice());
        assert!(matches!(
            open(&sealed, 4),
            Err(SnapError::VersionMismatch { found: 3, want: 4 })
        ));
        let mut flipped = sealed.clone();
        *flipped.last_mut().unwrap() ^= 1;
        assert_eq!(open(&flipped, 3), Err(SnapError::ChecksumMismatch));
        assert_eq!(open(b"notasnap", 3), Err(SnapError::BadMagic));
        let mut short = sealed.clone();
        short.truncate(sealed.len() - 1);
        assert!(open(&short, 3).is_err());
    }

    #[test]
    fn open_prefix_walks_a_concatenated_stream() {
        let mut stream = Vec::new();
        let records: Vec<Vec<u8>> = vec![b"first".to_vec(), b"second record".to_vec(), vec![]];
        for rec in &records {
            stream.extend_from_slice(&seal(9, rec));
        }
        let mut pos = 0;
        let mut seen = Vec::new();
        while pos < stream.len() {
            let (payload, used) = open_prefix(&stream[pos..], 9).unwrap();
            seen.push(payload.to_vec());
            pos += used;
        }
        assert_eq!(seen, records);
        // A torn tail errors at every truncation offset of the last record.
        let last_start = stream.len() - seal(9, &records[2]).len();
        for cut in last_start + 1..stream.len() {
            assert!(
                open_prefix(&stream[last_start..cut], 9).is_err(),
                "cut at {cut} must not validate"
            );
        }
        // Garbage at the front is BadMagic, not a panic.
        assert!(matches!(
            open_prefix(b"garbage bytes here....", 9),
            Err(SnapError::BadMagic)
        ));
        assert!(open_prefix(&stream[..10], 9).is_err());
    }

    #[test]
    fn intern_stable_identity() {
        let a = intern("Busy");
        let b = intern(&String::from("Busy"));
        assert!(std::ptr::eq(a, b));
        assert_eq!(intern("Lock"), "Lock");
    }
}
