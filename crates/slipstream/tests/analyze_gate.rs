//! The pre-run safety gate: Deny blocks hazardous programs, Warn
//! observes without perturbing the run, Allow skips analysis.

use omp_ir::{Expr, ProgramBuilder};
use slipstream::runner::{run_program, RunOptions};
use slipstream::{ExecMode, GateMode, Hazard, MachineConfig, Program, SlipSync};

fn small_machine() -> MachineConfig {
    let mut m = MachineConfig::paper();
    m.num_cmps = 4;
    m
}

/// Disjoint per-iteration accesses: nothing to flag.
fn clean_program() -> Program {
    let mut b = ProgramBuilder::new("gate-clean");
    let a = b.shared_array("a", 256, 8);
    let i = b.var();
    b.parallel(move |r| {
        r.par_for(None, i, 0, 256, move |body| {
            body.load(a, Expr::v(i));
            body.compute(2);
            body.store(a, Expr::v(i));
        });
    });
    b.build()
}

/// Every iteration of the worksharing loop stores element 0 unprotected —
/// a write-write race across threads.
fn racy_program() -> Program {
    let mut b = ProgramBuilder::new("gate-racy");
    let a = b.shared_array("a", 256, 8);
    let i = b.var();
    b.parallel(move |r| {
        r.par_for(None, i, 0, 256, move |body| {
            body.store(a, Expr::c(0));
        });
    });
    b.build()
}

fn opts(gate: GateMode) -> RunOptions {
    RunOptions::new(ExecMode::Slipstream)
        .with_machine(small_machine())
        .with_sync(SlipSync::G0)
        .with_gate(gate)
}

#[test]
fn deny_gate_blocks_racy_program() {
    let err = run_program(&racy_program(), &opts(GateMode::Deny)).unwrap_err();
    assert!(err.contains("refusing to run"), "{err}");
    assert!(err.contains("race-ww"), "{err}");
}

#[test]
fn deny_gate_passes_clean_program() {
    let s = run_program(&clean_program(), &opts(GateMode::Deny)).unwrap();
    let report = s.analysis.expect("gate attaches the report");
    assert!(report.is_clean(), "{}", report.render_text());
    assert!(s.exec_cycles > 0);
}

#[test]
fn warn_gate_attaches_report_but_still_runs() {
    let s = run_program(&racy_program(), &opts(GateMode::Warn)).unwrap();
    let report = s.analysis.expect("warn gate attaches the report");
    assert!(report
        .findings
        .iter()
        .any(|f| f.hazard == Hazard::RaceWriteWrite));
    assert!(s.exec_cycles > 0, "warn mode must not block the run");
}

#[test]
fn allow_gate_skips_analysis() {
    let s = run_program(&racy_program(), &opts(GateMode::Allow)).unwrap();
    assert!(s.analysis.is_none());
}

#[test]
fn warn_gate_is_observation_only() {
    // The gate must not perturb the simulation: identical stats with the
    // gate on (default Warn) and fully off (Allow).
    let warn = run_program(&clean_program(), &opts(GateMode::Warn)).unwrap();
    let allow = run_program(&clean_program(), &opts(GateMode::Allow)).unwrap();
    assert_eq!(warn.exec_cycles, allow.exec_cycles);
    assert_eq!(warn.fills, allow.fills);
    assert_eq!(warn.raw.user_r.loads, allow.raw.user_r.loads);
}
