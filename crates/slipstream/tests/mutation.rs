//! Engine-mutation classes must be observable bugs — and `None` must be
//! bit-inert. The differential fuzzer's self-check depends on both
//! directions: a mutation the oracle can't see would make the self-check
//! vacuous, and a non-inert `None` would poison every production run.

use omp_ir::{trace, Expr, ProgramBuilder};
use slipstream::runner::{run_program, RunOptions};
use slipstream::{EngineMutation, ExecMode, MachineConfig, SlipSync};

const TEAM: u64 = 4;

fn machine() -> MachineConfig {
    let mut m = MachineConfig::paper();
    m.num_cmps = TEAM as usize;
    m
}

/// Two static phases (>= 2 token insertions per pair) with loads, stores,
/// and a compute-only inner loop (exercises the batched native path).
fn victim() -> omp_ir::Program {
    let mut b = ProgramBuilder::new("victim");
    let a = b.shared_array("a", 64, 8);
    let c = b.shared_array("c", 64, 8);
    let i = b.var();
    let j = b.var();
    b.parallel(|r| {
        r.par_for(None, i, 0, 37, |body| {
            body.load(a, Expr::v(i));
            body.for_loop(j, 0, 5, |inner| inner.compute(3));
            body.store(c, Expr::v(i));
        });
        r.par_for(None, i, 0, 37, |body| {
            body.load(c, Expr::v(i));
            body.compute(2);
        });
    });
    b.build()
}

fn opts(mode: ExecMode, sync: Option<SlipSync>, mutation: EngineMutation) -> RunOptions {
    let mut o = RunOptions::new(mode)
        .with_machine(machine())
        .with_mutation(mutation)
        .with_cycle_budget(40_000_000);
    o.sync = sync;
    o
}

#[test]
fn none_mutation_matches_oracle_in_all_modes() {
    let p = victim();
    let oracle = trace(&p, TEAM).total;
    for (mode, sync) in [
        (ExecMode::Single, None),
        (ExecMode::Double, None),
        (ExecMode::Slipstream, Some(SlipSync::L1)),
        (ExecMode::Slipstream, Some(SlipSync::G0)),
    ] {
        let s = run_program(&p, &opts(mode, sync, EngineMutation::None)).unwrap();
        assert_eq!(s.raw.user_r.loads, oracle.loads, "{}", s.label);
        assert_eq!(s.raw.user_r.stores, oracle.stores, "{}", s.label);
        assert_eq!(
            s.raw.user_r.compute_cycles, oracle.compute_cycles,
            "{}",
            s.label
        );
        assert_eq!(s.raw.recoveries, 0, "{}", s.label);
    }
}

#[test]
fn chunk_off_by_one_drops_work_in_every_mode() {
    let p = victim();
    let oracle = trace(&p, TEAM).total;
    for (mode, sync) in [
        (ExecMode::Single, None),
        (ExecMode::Slipstream, Some(SlipSync::G0)),
    ] {
        let s = run_program(&p, &opts(mode, sync, EngineMutation::ChunkOffByOne)).unwrap();
        assert!(
            s.raw.user_r.loads < oracle.loads,
            "{}: loads {} should undercount oracle {}",
            s.label,
            s.raw.user_r.loads,
            oracle.loads
        );
    }
}

#[test]
fn batch_bail_off_by_one_overcounts_compute() {
    let p = victim();
    let oracle = trace(&p, TEAM).total;
    let s = run_program(
        &p,
        &opts(ExecMode::Single, None, EngineMutation::BatchBailOffByOne),
    )
    .unwrap();
    assert!(
        s.raw.user_r.compute_cycles > oracle.compute_cycles,
        "compute {} should overcount oracle {}",
        s.raw.user_r.compute_cycles,
        oracle.compute_cycles
    );
}

#[test]
fn token_accounting_strands_or_recovers_the_a_stream() {
    let p = victim();
    let res = run_program(
        &p,
        &opts(
            ExecMode::Slipstream,
            Some(SlipSync::G0),
            EngineMutation::TokenAccounting,
        ),
    );
    // Every second token vanishes: either the run wedges into the cycle
    // budget, or the watchdog pulls the A-streams through via recoveries.
    // Both are observable failures for an expected-clean program.
    match res {
        Err(e) => assert!(
            e.contains("max_cycles") || e.contains("deadlock"),
            "unexpected error: {e}"
        ),
        Ok(s) => assert!(
            s.raw.recoveries > 0,
            "mutated run completed with no recoveries: {:?}",
            s.raw.recoveries
        ),
    }
}

#[test]
fn mutation_labels_round_trip() {
    for m in EngineMutation::ALL_BROKEN {
        assert_eq!(EngineMutation::from_label(m.label()), Some(m));
    }
    assert_eq!(
        EngineMutation::from_label("none"),
        Some(EngineMutation::None)
    );
    assert_eq!(EngineMutation::from_label("bogus"), None);
}

#[test]
fn cycle_budget_turns_runaway_into_error() {
    let p = victim();
    let mut o = opts(ExecMode::Single, None, EngineMutation::None);
    o.max_cycles = Some(10); // absurdly small: any real program exceeds it
    let e = run_program(&p, &o).unwrap_err();
    assert!(e.contains("max_cycles"), "unexpected error: {e}");
}
