//! Memoized phase replay: bit-identity against memo-off runs, fixed-point
//! engagement on certified loops, and runtime-guard fallback on stale
//! certificates.

use dsm_sim::MachineConfig;
use npb_kernels::Benchmark;
use omp_ir::node::Program;
use omp_ir::{Expr, ProgramBuilder};
use omp_rt::{ExecMode, SlipSync};
use slipstream::runner::{run_program, RunOptions, RunSummary};
use slipstream::{stats_fingerprint, MemoDiag};

fn small_machine() -> MachineConfig {
    let mut m = MachineConfig::paper();
    m.num_cmps = 4;
    m
}

/// A certified replay loop: a serial iteration loop whose single barrier
/// phase touches disjoint per-thread elements (Pure/ReplaySafe accesses).
fn certified_loop(trip: i64) -> Program {
    let mut b = ProgramBuilder::new("memo-toy");
    let a = b.shared_array("a", 256, 8);
    let c = b.shared_array("c", 256, 8);
    let i = b.var();
    let t = b.var();
    b.parallel(move |r| {
        r.for_loop(t, 0, trip, move |it| {
            it.par_for(None, i, 0, 256, move |body| {
                body.load(a, Expr::v(i));
                body.compute(6);
                body.store(c, Expr::v(i));
            });
        });
    });
    b.build()
}

fn fingerprints(p: &Program, opts: &RunOptions) -> (String, RunSummary) {
    let s = run_program(p, opts).unwrap();
    (stats_fingerprint(&s), s)
}

#[test]
fn memo_engages_and_stays_bit_identical_on_certified_loop() {
    let p = certified_loop(8);
    let base = RunOptions::new(ExecMode::Single).with_machine(small_machine());
    let (off_fp, off) = fingerprints(&p, &base);
    let (on_fp, on) = fingerprints(&p, &base.clone().with_memo(true));
    assert_eq!(off_fp, on_fp, "memo-on run diverged from memo-off");
    assert_eq!(off.exec_cycles, on.exec_cycles);
    // The memo-off run never inspects boundaries.
    assert_eq!(off.raw.memo, MemoDiag::default());
    // The memo-on run reached the fixed point and bulk-jumped.
    assert!(on.raw.memo.engagements >= 1, "memo: {:?}", on.raw.memo);
    assert!(
        on.raw.memo.jumped_iterations >= 1,
        "memo: {:?}",
        on.raw.memo
    );
    assert_eq!(on.raw.memo.guard_fallbacks, 0);
    assert!(!on.raw.memo.disabled);
}

#[test]
fn memo_bit_identity_npb_kernels_all_modes_and_workers() {
    let machine = small_machine();
    let modes: [(ExecMode, Option<SlipSync>); 4] = [
        (ExecMode::Single, None),
        (ExecMode::Double, None),
        (ExecMode::Slipstream, Some(SlipSync::L1)),
        (ExecMode::Slipstream, Some(SlipSync::G0)),
    ];
    for bm in Benchmark::ALL {
        let p = bm.build_tiny();
        for (mode, sync) in modes {
            for workers in [1usize, 4] {
                let mut opts = RunOptions::new(mode)
                    .with_machine(machine.clone())
                    .with_workers(workers);
                if let Some(s) = sync {
                    opts = opts.with_sync(s);
                }
                let (off_fp, _) = fingerprints(&p, &opts);
                let (on_fp, on) = fingerprints(&p, &opts.clone().with_memo(true));
                assert_eq!(
                    off_fp,
                    on_fp,
                    "{} {:?} sync={:?} workers={} diverged under memo (diag {:?})",
                    bm.name(),
                    mode,
                    sync,
                    workers,
                    on.raw.memo,
                );
            }
        }
    }
}

#[test]
fn memo_never_arms_in_slipstream_mode_or_under_tracing() {
    let p = certified_loop(8);
    let slip = RunOptions::new(ExecMode::Slipstream)
        .with_machine(small_machine())
        .with_sync(SlipSync::G0)
        .with_memo(true);
    let s = run_program(&p, &slip).unwrap();
    assert_eq!(s.raw.memo, MemoDiag::default(), "armed in slipstream mode");

    let traced = RunOptions::new(ExecMode::Single)
        .with_machine(small_machine())
        .with_trace(sim_trace::TraceConfig::on())
        .with_memo(true);
    let s = run_program(&p, &traced).unwrap();
    assert_eq!(s.raw.memo, MemoDiag::default(), "armed under tracing");
}

#[test]
fn stale_certificate_hits_runtime_guard_and_falls_back() {
    use dsm_sim::AddressMap;
    use slipstream::exec::{Engine, EngineConfig};
    use slipstream::gate::analyze_config;
    use slipstream::AStreamPolicy;

    // Certify the 5-trip program, then run the 9-trip compilation with
    // that plan: the license resolves structurally but its bounds are
    // stale, so the guard must disable memoization and the run must be
    // bit-identical to an unplanned one.
    let p5 = certified_loop(5);
    let p9 = certified_loop(9);
    let machine = small_machine();
    let acfg = analyze_config(&machine, &AStreamPolicy::paper(), None);
    let report5 = omp_analyze::analyze(&p5, &acfg);
    let map = AddressMap::new(&machine);
    let cp9 = slipstream::compile(&p9, &map).unwrap();
    let stale_plan = slipstream::build_plan(&report5, &cp9);
    assert!(
        !stale_plan.is_empty(),
        "license should resolve structurally"
    );

    let mut cfg = EngineConfig::new(machine.clone(), ExecMode::Single);
    cfg.memo = stale_plan;
    let guarded = Engine::new(&cp9, cfg).run().unwrap();
    let clean = Engine::new(&cp9, EngineConfig::new(machine, ExecMode::Single))
        .run()
        .unwrap();

    assert!(
        guarded.memo.guard_fallbacks >= 1,
        "memo: {:?}",
        guarded.memo
    );
    assert!(guarded.memo.disabled);
    assert_eq!(guarded.memo.engagements, 0);
    assert_eq!(guarded.exec_cycles, clean.exec_cycles);
    assert_eq!(guarded.user_r, clean.user_r);
    assert_eq!(guarded.machine, clean.machine);
}
