//! Engine edge cases: degenerate loops, construct nesting, tiny machines,
//! token extremes, divergence timing, and thread-count caps.

use dsm_sim::MachineConfig;
use omp_ir::expr::Expr;
use omp_ir::node::{Node, ScheduleSpec};
use omp_ir::ProgramBuilder;
use omp_rt::{ExecMode, RuntimeEnv, SlipSync};
use slipstream::runner::{run_program, RunOptions};

fn machine(cmps: usize) -> MachineConfig {
    let mut m = MachineConfig::paper();
    m.num_cmps = cmps;
    m
}

fn all_modes(p: &omp_ir::Program, m: &MachineConfig) -> Vec<slipstream::runner::RunSummary> {
    let mut out = Vec::new();
    for (mode, sync) in [
        (ExecMode::Single, None),
        (ExecMode::Double, None),
        (ExecMode::Slipstream, Some(SlipSync::G0)),
        (ExecMode::Slipstream, Some(SlipSync::L1)),
    ] {
        let mut o = RunOptions::new(mode).with_machine(m.clone());
        o.sync = sync;
        out.push(run_program(p, &o).unwrap());
    }
    out
}

#[test]
fn zero_trip_loops_complete() {
    // Constant zero-trip/reversed bounds are invalid IR (`validate`
    // rejects them), but empty iteration spaces still arise at runtime
    // from non-constant bounds; every schedule flavour must complete
    // them as a plain barrier.
    let mut b = ProgramBuilder::new("zt");
    let a = b.shared_array("a", 16, 8);
    let i = b.var();
    b.parallel(move |r| {
        // NumThreads..NumThreads: zero trips at any team size.
        r.par_for(None, i, Expr::NumThreads, Expr::NumThreads, move |body| {
            body.load(a, Expr::v(i))
        });
        // Reversed at runtime: normalizes to an empty space.
        r.par_for(
            Some(ScheduleSpec::dynamic(4)),
            i,
            Expr::NumThreads + Expr::c(3),
            Expr::NumThreads,
            move |body| body.load(a, Expr::v(i)),
        );
        r.par_for(None, i, 0, 4, move |body| body.load(a, Expr::v(i)));
    });
    let p = b.build();
    for r in all_modes(&p, &machine(4)) {
        assert_eq!(r.raw.user_r.loads, 4, "{}", r.label);
    }
}

#[test]
fn loops_smaller_than_the_team_complete() {
    // 3 iterations over 8/16 threads: most threads get no chunk.
    let mut b = ProgramBuilder::new("small");
    let a = b.shared_array("a", 8, 8);
    let i = b.var();
    b.parallel(move |r| {
        r.par_for(None, i, 0, 3, move |body| {
            body.load(a, Expr::v(i));
            body.compute(50);
        });
        r.par_for(Some(ScheduleSpec::dynamic(1)), i, 0, 3, move |body| {
            body.load(a, Expr::v(i));
        });
    });
    let p = b.build();
    for r in all_modes(&p, &machine(8)) {
        assert_eq!(r.raw.user_r.loads, 6, "{}", r.label);
    }
}

#[test]
fn single_cmp_machine_runs_every_mode() {
    let mut b = ProgramBuilder::new("one");
    let a = b.shared_array("a", 64, 8);
    let i = b.var();
    b.parallel(move |r| {
        r.par_for(None, i, 0, 64, move |body| {
            body.load(a, Expr::v(i));
            body.store(a, Expr::v(i));
        });
        r.barrier();
    });
    let p = b.build();
    for r in all_modes(&p, &machine(1)) {
        assert_eq!(r.raw.user_r.loads, 64, "{}", r.label);
    }
}

#[test]
fn deep_sequential_nesting() {
    let mut b = ProgramBuilder::new("deep");
    let a = b.shared_array("a", 16, 8);
    let vars: Vec<_> = (0..5).map(|_| b.var()).collect();
    let i = b.var();
    b.parallel(move |r| {
        r.par_for(None, i, 0, 4, move |l0| {
            l0.for_loop(vars[0], 0, 2, move |l1| {
                l1.for_loop(vars[1], 0, 2, move |l2| {
                    l2.for_loop(vars[2], 0, 2, move |l3| {
                        l3.for_loop(vars[3], 0, 2, move |l4| {
                            l4.for_loop(vars[4], 0, 2, move |body| {
                                body.load(a, Expr::v(vars[4]));
                            });
                        });
                    });
                });
            });
        });
    });
    let p = b.build();
    let r = run_program(
        &p,
        &RunOptions::new(ExecMode::Slipstream)
            .with_machine(machine(4))
            .with_sync(SlipSync::G0),
    )
    .unwrap();
    assert_eq!(r.raw.user_r.loads, 4 * 32);
    assert_eq!(r.raw.user_a.loads, 4 * 32);
}

#[test]
fn many_tokens_never_deadlock() {
    let mut b = ProgramBuilder::new("tokens");
    let a = b.shared_array("a", 128, 8);
    let i = b.var();
    b.parallel(move |r| {
        for _ in 0..6 {
            r.par_for(None, i, 0, 128, move |body| {
                body.load(a, Expr::v(i));
                body.store(a, Expr::v(i));
            });
        }
    });
    let p = b.build();
    for tokens in [0, 1, 3, 100] {
        for global in [true, false] {
            let mut o = RunOptions::new(ExecMode::Slipstream).with_machine(machine(4));
            o.sync = Some(SlipSync { global, tokens });
            let r = run_program(&p, &o)
                .unwrap_or_else(|e| panic!("tokens={tokens} global={global}: {e}"));
            assert_eq!(r.raw.user_r.loads, 6 * 128);
        }
    }
}

#[test]
fn divergence_at_first_and_last_epoch() {
    let mut b = ProgramBuilder::new("div");
    let a = b.shared_array("a", 64, 8);
    let i = b.var();
    b.parallel(move |r| {
        for _ in 0..4 {
            r.par_for(None, i, 0, 64, move |body| body.load(a, Expr::v(i)));
        }
    });
    let p = b.build();
    for epoch in [0u64, 3] {
        let mut o = RunOptions::new(ExecMode::Slipstream)
            .with_machine(machine(4))
            .with_sync(SlipSync::G0);
        o.inject_divergence = vec![(0, epoch), (2, epoch)];
        let r = run_program(&p, &o).unwrap_or_else(|e| panic!("epoch {epoch}: {e}"));
        assert!(r.raw.recoveries >= 2, "epoch {epoch}: both pairs recovered");
        assert_eq!(r.raw.user_r.loads, 4 * 64);
    }
}

#[test]
fn divergence_during_dynamic_loop_recovers() {
    let mut b = ProgramBuilder::new("divdyn");
    let a = b.shared_array("a", 64, 8);
    let i = b.var();
    b.parallel(move |r| {
        r.par_for(None, i, 0, 64, move |body| body.load(a, Expr::v(i)));
        r.par_for(Some(ScheduleSpec::dynamic(4)), i, 0, 64, move |body| {
            body.load(a, Expr::v(i));
        });
        r.par_for(None, i, 0, 64, move |body| body.load(a, Expr::v(i)));
    });
    let p = b.build();
    let mut o = RunOptions::new(ExecMode::Slipstream)
        .with_machine(machine(4))
        .with_sync(SlipSync::G0);
    o.inject_divergence = vec![(1, 1)];
    let r = run_program(&p, &o).unwrap();
    assert!(r.raw.recoveries >= 1);
    assert_eq!(r.raw.user_r.loads, 3 * 64);
}

#[test]
fn omp_num_threads_caps_the_team() {
    let mut b = ProgramBuilder::new("cap");
    let a = b.shared_array("a", 64, 8);
    let i = b.var();
    b.parallel(move |r| {
        r.par_for(None, i, 0, 64, move |body| body.load(a, Expr::v(i)));
    });
    let p = b.build();
    let mut env = RuntimeEnv::default();
    env.set_var("OMP_NUM_THREADS", "2").unwrap();
    for mode in [ExecMode::Single, ExecMode::Slipstream] {
        let mut o = RunOptions::new(mode)
            .with_machine(machine(4))
            .with_env(env.clone());
        if mode == ExecMode::Slipstream {
            o.sync = Some(SlipSync::G0);
        }
        let r = run_program(&p, &o).unwrap();
        assert_eq!(r.raw.user_r.loads, 64, "{mode:?}");
        // Only 2 workers were active: their per-cpu stats confirm it.
        let active = r
            .raw
            .cpu_stats
            .iter()
            .zip(&r.raw.roles)
            .filter(|(s, role)| s.loads > 0 && !role.is_a())
            .count();
        assert!(active <= 2, "{mode:?}: {active} workers for a cap of 2");
    }
}

#[test]
fn back_to_back_regions_and_serial_interludes() {
    let mut b = ProgramBuilder::new("regions");
    let a = b.shared_array("a", 64, 8);
    let i = b.var();
    for _ in 0..4 {
        b.parallel(move |r| {
            r.par_for(None, i, 0, 64, move |body| {
                body.load(a, Expr::v(i));
            });
        });
        b.serial(move |s| {
            s.compute(500);
            s.store(a, 0);
        });
    }
    let p = b.build();
    for r in all_modes(&p, &machine(4)) {
        assert_eq!(r.raw.user_r.loads, 4 * 64, "{}", r.label);
        assert_eq!(r.raw.user_r.stores, 4, "{}", r.label);
    }
}

#[test]
fn region_scoped_slipstream_off_disables_only_that_region() {
    use omp_ir::node::{SlipSyncType, SlipstreamClause};
    let mut b = ProgramBuilder::new("mixed");
    let a = b.shared_array("a", 64, 8);
    let i = b.var();
    // Region 1: slipstream as configured. Region 2: explicitly disabled.
    b.parallel(move |r| {
        r.par_for(None, i, 0, 64, move |body| body.load(a, Expr::v(i)));
    });
    b.parallel_with(
        Some(SlipstreamClause {
            sync: SlipSyncType::None,
            tokens: 0,
        }),
        move |r| {
            r.par_for(None, i, 0, 64, move |body| body.load(a, Expr::v(i)));
        },
    );
    let p = b.build();
    let r = run_program(
        &p,
        &RunOptions::new(ExecMode::Slipstream)
            .with_machine(machine(4))
            .with_sync(SlipSync::G0),
    )
    .unwrap();
    assert_eq!(r.raw.user_r.loads, 2 * 64);
    // The A-streams executed only the first region.
    assert_eq!(r.raw.user_a.loads, 64);
}

#[test]
fn barrier_dense_program_with_no_work() {
    let mut b = ProgramBuilder::new("bars");
    b.parallel(|r| {
        for _ in 0..20 {
            r.barrier();
        }
    });
    let p = b.build();
    for r in all_modes(&p, &machine(4)) {
        assert!(r.exec_cycles > 0, "{}", r.label);
    }
}

#[test]
fn sections_with_more_sections_than_threads() {
    let mut b = ProgramBuilder::new("secs");
    let a = b.shared_array("a", 64, 8);
    b.parallel(move |r| {
        r.sections(13, move |idx, sec| {
            sec.load(a, idx as i64 % 64);
            sec.compute(30);
        });
    });
    let p = b.build();
    for r in all_modes(&p, &machine(4)) {
        assert_eq!(r.raw.user_r.loads, 13, "{}", r.label);
    }
    // In slipstream mode the A-streams mirror all 13 sections.
    let mut o = RunOptions::new(ExecMode::Slipstream).with_machine(machine(4));
    o.sync = Some(SlipSync::G0);
    let r = run_program(&p, &o).unwrap();
    assert_eq!(r.raw.user_a.loads, 13);
}

#[test]
fn affinity_schedule_completes_and_mostly_stays_home() {
    // Balanced loop: no steals needed; every thread drains its own block.
    let n = 256i64;
    let mut b = ProgramBuilder::new("aff");
    let a = b.shared_array("a", n as u64, 8);
    let i = b.var();
    b.parallel(move |r| {
        r.par_for(Some(ScheduleSpec::affinity(16)), i, 0, n, move |body| {
            body.load(a, Expr::v(i));
            body.compute(20);
        });
    });
    let p = b.build();
    for (mode, sync) in [
        (ExecMode::Single, None),
        (ExecMode::Slipstream, Some(SlipSync::G0)),
    ] {
        let mut o = RunOptions::new(mode).with_machine(machine(4));
        o.sync = sync;
        let r = run_program(&p, &o).unwrap();
        assert_eq!(r.raw.user_r.loads, n as u64, "{mode:?}");
        assert!(r.raw.sched_grabs > 0);
        if mode == ExecMode::Slipstream {
            // The A-streams mirror every affinity chunk.
            assert_eq!(r.raw.user_a.loads, n as u64);
        }
    }
}

#[test]
fn affinity_steals_rebalance_an_imbalanced_loop() {
    // Triangular work: early iterations are cheap, late ones expensive.
    // Affinity scheduling must finish (steals drain the loaded tail) and
    // cover the space exactly.
    let n = 128i64;
    let mut b = ProgramBuilder::new("aff-imb");
    let a = b.shared_array("a", n as u64, 8);
    let i = b.var();
    let j = b.var();
    b.parallel(move |r| {
        r.par_for(Some(ScheduleSpec::affinity(4)), i, 0, n, move |body| {
            body.for_loop(j, 0, Expr::v(i) * 4, move |inner| {
                inner.compute(10);
                inner.load(a, Expr::v(i));
            });
        });
    });
    let p = b.build();
    let oracle = omp_ir::trace(&p, 4);
    let mut o = RunOptions::new(ExecMode::Single).with_machine(machine(4));
    o.sync = None;
    let r = run_program(&p, &o).unwrap();
    assert_eq!(r.raw.user_r.loads, oracle.total.loads);
}

#[test]
fn recovery_resets_stale_handshake_tokens() {
    // Divergence while the R-stream is publishing dynamic-loop decisions,
    // followed by ANOTHER dynamic loop after recovery: the recovered
    // A-stream must not consume stale semaphore tokens whose decisions
    // were discarded.
    let mut b = ProgramBuilder::new("divdyn2");
    let a = b.shared_array("a", 64, 8);
    let i = b.var();
    b.parallel(move |r| {
        r.par_for(None, i, 0, 64, move |body| body.load(a, Expr::v(i)));
        r.par_for(Some(ScheduleSpec::dynamic(4)), i, 0, 64, move |body| {
            body.load(a, Expr::v(i));
        });
        r.par_for(Some(ScheduleSpec::dynamic(4)), i, 0, 64, move |body| {
            body.load(a, Expr::v(i));
        });
        r.par_for(Some(ScheduleSpec::dynamic(4)), i, 0, 64, move |body| {
            body.load(a, Expr::v(i));
        });
    });
    let p = b.build();
    for epoch in [1u64, 2] {
        let mut o = RunOptions::new(ExecMode::Slipstream)
            .with_machine(machine(4))
            .with_sync(SlipSync::G0);
        o.inject_divergence = vec![(0, epoch), (3, epoch)];
        let r = run_program(&p, &o).unwrap_or_else(|e| panic!("epoch {epoch}: {e}"));
        assert!(r.raw.recoveries >= 2, "epoch {epoch}");
        assert_eq!(r.raw.user_r.loads, 4 * 64);
    }
}

#[test]
fn os_noise_is_deterministic_and_accounted() {
    use slipstream::OsNoise;
    let mut b = ProgramBuilder::new("noise");
    let a = b.shared_array("a", 256, 8);
    let i = b.var();
    b.parallel(move |r| {
        for _ in 0..3 {
            r.par_for(None, i, 0, 256, move |body| {
                body.load(a, Expr::v(i));
                body.compute(40);
            });
        }
    });
    let p = b.build();
    let noise = OsNoise {
        quantum_cycles: 10_000,
        slice_cycles: 500,
        seed: 7,
    };
    let mut o = RunOptions::new(ExecMode::Slipstream)
        .with_machine(machine(4))
        .with_sync(SlipSync::G0)
        .with_os_noise(noise);
    let r1 = run_program(&p, &o).unwrap();
    let r2 = run_program(&p, &o).unwrap();
    assert_eq!(r1.exec_cycles, r2.exec_cycles, "noise is deterministic");
    assert!(
        r1.r_breakdown.get(dsm_sim::TimeClass::Os) > 0,
        "stolen cycles are accounted"
    );
    // A different seed gives a different (but still complete) run.
    o.os_noise = Some(OsNoise { seed: 8, ..noise });
    let r3 = run_program(&p, &o).unwrap();
    assert_eq!(r3.raw.user_r.loads, r1.raw.user_r.loads);
    assert_ne!(r3.exec_cycles, r1.exec_cycles);
    // Quiet runs are faster.
    o.os_noise = None;
    let quiet = run_program(&p, &o).unwrap();
    assert!(quiet.exec_cycles < r1.exec_cycles);
}

#[test]
fn explicit_node_api_parallel_region() {
    // Build a region via raw nodes (the lower-level API) and run it.
    let p = omp_ir::Program {
        name: "raw".into(),
        arrays: vec![omp_ir::node::ArrayDecl {
            name: "x".into(),
            shared: true,
            len: 32,
            elem_bytes: 8,
        }],
        tables: vec![],
        num_vars: 1,
        body: Node::Parallel {
            body: Box::new(Node::ParFor {
                sched: None,
                var: omp_ir::expr::VarId(0),
                begin: Expr::c(0),
                end: Expr::c(32),
                body: Box::new(Node::Store {
                    array: omp_ir::node::ArrayId(0),
                    index: Expr::v(omp_ir::expr::VarId(0)),
                }),
                reduction: None,
                nowait: false,
            }),
            slipstream: None,
        },
    };
    let r = run_program(
        &p,
        &RunOptions::new(ExecMode::Single).with_machine(machine(2)),
    )
    .unwrap();
    assert_eq!(r.raw.user_r.stores, 32);
}
