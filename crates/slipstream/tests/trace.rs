//! Integration tests for the structured event-tracing subsystem: a traced
//! run must produce a coherent `TraceData` (tokens, leads, barriers,
//! spans) while leaving every simulated statistic bit-identical to the
//! untraced run — tracing is observation-only.

use omp_ir::expr::Expr;
use omp_ir::node::{Program, ScheduleKind, ScheduleSpec};
use omp_ir::ProgramBuilder;
use omp_rt::ExecMode;
use omp_rt::SlipSync;
use sim_trace::{analyze, chrome_trace_json, validate_chrome_trace, TraceConfig, TraceEvent};
use slipstream::faults::{FaultEvent, FaultKind, FaultPlan};
use slipstream::runner::{run_program, RunOptions};
use slipstream::MachineConfig;

fn small_machine() -> MachineConfig {
    let mut m = MachineConfig::paper();
    m.num_cmps = 4;
    m
}

fn kernel(iters: i64) -> Program {
    let n = 64i64;
    let mut b = ProgramBuilder::new("trace-kernel");
    let x = b.shared_array("x", n as u64, 8);
    let y = b.shared_array("y", n as u64, 8);
    let i = b.var();
    let t = b.var();
    b.parallel(move |r| {
        r.for_loop(t, 0, iters, move |it| {
            it.par_for(None, i, 0, n, move |body| {
                body.load(x, Expr::v(i));
                body.compute(8);
                body.store(y, Expr::v(i));
            });
        });
    });
    b.build()
}

fn opts(trace: TraceConfig) -> RunOptions {
    RunOptions::new(ExecMode::Slipstream)
        .with_machine(small_machine())
        .with_sync(SlipSync::G0)
        .with_trace(trace)
}

#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let p = kernel(4);
    let plain = run_program(&p, &opts(TraceConfig::OFF)).unwrap();
    let traced = run_program(&p, &opts(TraceConfig::on())).unwrap();
    assert!(plain.raw.trace.is_none());
    assert!(traced.raw.trace.is_some());
    assert_eq!(plain.exec_cycles, traced.exec_cycles);
    assert_eq!(plain.r_breakdown, traced.r_breakdown);
    assert_eq!(plain.a_breakdown, traced.a_breakdown);
    assert_eq!(plain.raw.fill_counts, traced.raw.fill_counts);
    assert_eq!(plain.raw.user_r, traced.raw.user_r);
    assert_eq!(plain.raw.user_a, traced.raw.user_a);
    assert_eq!(plain.raw.machine, traced.raw.machine);
    for (a, b) in plain.raw.cpu_stats.iter().zip(&traced.raw.cpu_stats) {
        assert_eq!(a.time, b.time);
        assert_eq!(
            (
                a.l1_hits,
                a.l2_hits,
                a.l2_misses,
                a.barriers,
                a.loads,
                a.stores
            ),
            (
                b.l1_hits,
                b.l2_hits,
                b.l2_misses,
                b.barriers,
                b.loads,
                b.stores
            )
        );
    }
}

#[test]
fn traced_slipstream_run_records_the_protocol() {
    let p = kernel(3);
    let r = run_program(&p, &opts(TraceConfig::on())).unwrap();
    let t = r.raw.trace.as_ref().unwrap();

    assert_eq!(t.cycles, r.exec_cycles);
    assert_eq!(t.cpu_names.len(), 8, "4 CMPs x 2 CPUs");
    assert!(t.cpu_names.iter().any(|n| n.contains("(R)")));
    assert!(t.cpu_names.iter().any(|n| n.contains("(A)")));
    assert_eq!(t.cmp_count, 4);
    assert_eq!(t.spans.len(), 8);
    assert!(t.spans.iter().any(|s| !s.is_empty()), "spans recorded");

    let mut inserts = 0u64;
    let mut consumes = 0u64;
    let mut leads = 0u64;
    let mut arrives = 0u64;
    let mut fills = 0u64;
    for e in &t.events {
        match e.ev {
            TraceEvent::TokenInsert { .. } => inserts += 1,
            TraceEvent::TokenConsume { .. } => consumes += 1,
            TraceEvent::Lead { .. } => leads += 1,
            TraceEvent::BarrierArrive { .. } => arrives += 1,
            TraceEvent::MemFill { .. } => fills += 1,
            _ => {}
        }
    }
    assert!(inserts > 0, "R-streams inserted tokens");
    assert!(consumes > 0, "A-streams consumed tokens");
    assert!(leads > 0, "lead samples recorded");
    assert!(arrives > 0, "barrier arrivals recorded");
    assert!(fills > 0, "L2 fills recorded");

    // Merge order is total and deterministic.
    let mut keys: Vec<_> = t.events.iter().map(|e| e.order_key()).collect();
    let sorted = {
        let mut k = keys.clone();
        k.sort();
        k
    };
    assert_eq!(keys, sorted);
    keys.dedup();
    assert_eq!(keys.len(), t.events.len(), "order keys are unique");
}

#[test]
fn fault_and_recovery_events_reach_the_trace() {
    let p = kernel(6);
    let plan = FaultPlan::none().with(FaultEvent {
        kind: FaultKind::Wander,
        tid: 1,
        seq: 2,
        arg: 0,
    });
    let o = opts(TraceConfig::on()).with_faults(plan);
    let r = run_program(&p, &o).unwrap();
    assert!(r.raw.recoveries > 0, "wander forces a recovery");
    let t = r.raw.trace.as_ref().unwrap();
    let faults = t
        .events
        .iter()
        .filter(|e| matches!(e.ev, TraceEvent::Fault { .. }))
        .count();
    let recoveries = t
        .events
        .iter()
        .filter(|e| matches!(e.ev, TraceEvent::Recovery { .. }))
        .count();
    assert_eq!(faults, 1, "one planned fault fired");
    assert_eq!(recoveries as u64, r.raw.recoveries);
    let episodes = &analyze(t).recoveries;
    assert_eq!(episodes.len(), 1);
    assert!(episodes[0].cleared_cycle.is_some(), "episode resolved");
}

#[test]
fn dynamic_schedule_handshakes_are_traced() {
    let n = 64i64;
    let mut b = ProgramBuilder::new("dyn-trace");
    let x = b.shared_array("x", n as u64, 8);
    let i = b.var();
    b.parallel(move |r| {
        r.par_for(
            Some(ScheduleSpec {
                kind: ScheduleKind::Dynamic,
                chunk: Some(8),
            }),
            i,
            0,
            n,
            move |body| body.load(x, Expr::v(i)),
        );
    });
    let p = b.build();
    let r = run_program(&p, &opts(TraceConfig::on())).unwrap();
    let t = r.raw.trace.as_ref().unwrap();
    let publishes = t
        .events
        .iter()
        .filter(|e| matches!(e.ev, TraceEvent::DecisionPublish { .. }))
        .count();
    let consumes = t
        .events
        .iter()
        .filter(|e| matches!(e.ev, TraceEvent::DecisionConsume { .. }))
        .count();
    assert!(publishes > 0, "R published chunk decisions");
    assert!(consumes > 0, "A consumed chunk decisions");
}

#[test]
fn traced_run_exports_valid_chrome_trace() {
    let p = kernel(3);
    let r = run_program(&p, &opts(TraceConfig::on())).unwrap();
    let t = r.raw.trace.as_ref().unwrap();
    let json = chrome_trace_json(t);
    let report = validate_chrome_trace(&json).expect("valid chrome trace");
    assert!(report.slice_events > 0, "time-class slices");
    assert!(report.token_events > 0, "token semaphore instants");
    assert!(report.lead_counter_tracks >= 1, "per-pair lead counters");
    assert_eq!(report.cpu_threads_named, 8);
}

#[test]
fn capacity_zero_trace_config_stays_off() {
    let p = kernel(2);
    let o = opts(TraceConfig {
        enabled: true,
        capacity: 0,
    });
    let r = run_program(&p, &o).unwrap();
    assert!(r.raw.trace.is_none());
}
