//! Execution-engine integration tests: semantics against the reference
//! tracer oracle, protocol correctness in every mode, and the core
//! slipstream behaviours.

use dsm_sim::{FillClass, MachineConfig, ReqKind, TimeClass};
use omp_ir::expr::Expr;
use omp_ir::node::{Program, ReductionOp, ScheduleSpec};
use omp_ir::trace::trace;
use omp_ir::ProgramBuilder;
use omp_rt::{ExecMode, RuntimeEnv, SlipSync};
use slipstream::runner::{run_figure2_modes, run_program, RunOptions};

/// A memory-bound streaming kernel: two iterations over a shared grid
/// with a reduction, the shape the paper's intro motivates.
fn stream_kernel(n: i64, iters: i64, compute_per_elem: i64) -> Program {
    let mut b = ProgramBuilder::new("stream");
    let x = b.shared_array("x", n as u64, 8);
    let y = b.shared_array("y", n as u64, 8);
    let sum = b.shared_array("sum", 1, 8);
    let it = b.var();
    let i = b.var();
    b.serial(|s| s.io(true, 4096));
    b.parallel(move |r| {
        r.par_for(None, it, 0, iters, |_| {});
        r.barrier();
    });
    b.parallel(move |r| {
        r.push(omp_ir::node::Node::For {
            var: it,
            begin: Expr::c(0),
            end: Expr::c(iters),
            step: 1,
            body: Box::new(omp_ir::node::Node::Seq(vec![])),
        });
        let _ = it;
        r.par_for(None, i, 0, n, move |body| {
            body.load(x, Expr::v(i));
            body.compute(compute_per_elem);
            body.store(y, Expr::v(i));
        });
        r.par_for_reduce(None, i, 0, n, ReductionOp::Sum, sum, 0, move |body| {
            body.load(y, Expr::v(i));
            body.compute(1);
        });
    });
    b.build()
}

fn small_machine() -> MachineConfig {
    let mut m = MachineConfig::paper();
    m.num_cmps = 4;
    m
}

#[test]
fn single_mode_matches_trace_oracle() {
    let p = stream_kernel(512, 2, 4);
    let opts = RunOptions::new(ExecMode::Single).with_machine(small_machine());
    let r = run_program(&p, &opts).unwrap();
    let oracle = trace(&p, 4);
    assert_eq!(r.raw.user_r.loads, oracle.total.loads, "loads");
    assert_eq!(r.raw.user_r.stores, oracle.total.stores, "stores");
    assert_eq!(
        r.raw.user_r.compute_cycles, oracle.total.compute_cycles,
        "compute"
    );
    assert_eq!(r.raw.user_r.io_in, oracle.total.io_in);
    assert!(r.exec_cycles > 0);
}

#[test]
fn double_mode_matches_trace_oracle() {
    let p = stream_kernel(512, 1, 4);
    let opts = RunOptions::new(ExecMode::Double).with_machine(small_machine());
    let r = run_program(&p, &opts).unwrap();
    let oracle = trace(&p, 8); // 4 CMPs x 2 = 8 threads
    assert_eq!(r.raw.user_r.loads, oracle.total.loads);
    assert_eq!(r.raw.user_r.stores, oracle.total.stores);
}

#[test]
fn slipstream_r_side_matches_trace_oracle() {
    let p = stream_kernel(512, 1, 4);
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_machine(small_machine())
        .with_sync(SlipSync::G0);
    let r = run_program(&p, &opts).unwrap();
    let oracle = trace(&p, 4);
    assert_eq!(r.raw.user_r.loads, oracle.total.loads, "R loads");
    assert_eq!(r.raw.user_r.stores, oracle.total.stores, "R stores");
    // The A-streams execute the same loads (prefetching) but never more.
    assert_eq!(r.raw.user_a.loads, oracle.total.loads, "A loads mirror R");
    // All A shared stores were converted or skipped — none demand-stored.
    assert_eq!(
        r.raw.stores_converted + r.raw.stores_skipped,
        r.raw.user_a.stores,
        "A stores all converted or skipped"
    );
    // The A-stream never performs I/O.
    assert_eq!(r.raw.user_a.io_in, 0);
    assert_eq!(r.raw.user_a.io_out, 0);
}

#[test]
fn runs_are_deterministic() {
    let p = stream_kernel(256, 1, 4);
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_machine(small_machine())
        .with_sync(SlipSync::L1);
    let a = run_program(&p, &opts).unwrap();
    let b = run_program(&p, &opts).unwrap();
    assert_eq!(a.exec_cycles, b.exec_cycles);
    assert_eq!(a.raw.user_r.loads, b.raw.user_r.loads);
    assert_eq!(a.fills.total(ReqKind::Read), b.fills.total(ReqKind::Read));
}

#[test]
fn slipstream_prefetches_classify() {
    let p = stream_kernel(2048, 2, 2);
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_machine(small_machine())
        .with_sync(SlipSync::L1);
    let r = run_program(&p, &opts).unwrap();
    let reads = r.fills.total(ReqKind::Read);
    assert!(reads > 0, "shared read fills must be classified");
    let a_useful = r.fills.get(ReqKind::Read, FillClass::ATimely)
        + r.fills.get(ReqKind::Read, FillClass::ALate);
    assert!(
        a_useful > 0,
        "A-stream must prefetch something the R-stream uses: {:?}",
        r.fills
    );
    // Converted stores must appear as read-exclusive fills.
    assert!(r.raw.stores_converted > 0, "some stores should convert");
    assert!(r.fills.total(ReqKind::ReadEx) > 0);
}

#[test]
fn all_four_modes_complete_and_breakdowns_are_sane() {
    let p = stream_kernel(1024, 1, 4);
    let rows = run_figure2_modes(&p, &small_machine(), &RuntimeEnv::default()).unwrap();
    assert_eq!(rows.len(), 4);
    for r in &rows {
        assert!(r.exec_cycles > 0, "{} finished", r.label);
        let busy = r.r_breakdown.get(TimeClass::Busy);
        assert!(busy > 0, "{} has busy time", r.label);
        assert!(
            r.r_breakdown.total() > 0,
            "{} accounts time somewhere",
            r.label
        );
    }
    // Single and slipstream run the same 4-thread decomposition; double
    // splits 8 ways. All must execute the same user work in total.
    assert_eq!(rows[0].raw.user_r.loads, rows[1].raw.user_r.loads);
    assert_eq!(rows[0].raw.user_r.loads, rows[3].raw.user_r.loads);
}

#[test]
fn dynamic_schedule_completes_and_covers_space() {
    let n = 600i64;
    let mut b = ProgramBuilder::new("dyn");
    let x = b.shared_array("x", n as u64, 8);
    let i = b.var();
    b.parallel(move |r| {
        r.par_for(Some(ScheduleSpec::dynamic(16)), i, 0, n, move |body| {
            body.load(x, Expr::v(i));
            body.compute(20);
            body.store(x, Expr::v(i));
        });
    });
    let p = b.build();
    for mode in [ExecMode::Single, ExecMode::Double] {
        let opts = RunOptions::new(mode).with_machine(small_machine());
        let r = run_program(&p, &opts).unwrap();
        assert_eq!(r.raw.user_r.loads, n as u64, "{mode:?} loads");
        assert_eq!(r.raw.user_r.stores, n as u64);
        assert!(r.raw.sched_grabs >= (n as u64) / 16, "grabs happened");
    }
    // Slipstream: the A-streams mirror their R-streams' chunks exactly.
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_machine(small_machine())
        .with_sync(SlipSync::G0);
    let r = run_program(&p, &opts).unwrap();
    assert_eq!(r.raw.user_r.loads, n as u64);
    assert_eq!(r.raw.user_a.loads, n as u64, "A mirrors all chunks");
    assert!(
        r.r_breakdown.get(TimeClass::Scheduling) > 0,
        "dynamic scheduling time is visible"
    );
}

#[test]
fn guided_schedule_completes() {
    let n = 500i64;
    let mut b = ProgramBuilder::new("guided");
    let x = b.shared_array("x", n as u64, 8);
    let i = b.var();
    b.parallel(move |r| {
        r.par_for(
            Some(ScheduleSpec {
                kind: omp_ir::node::ScheduleKind::Guided,
                chunk: Some(4),
            }),
            i,
            0,
            n,
            move |body| {
                body.load(x, Expr::v(i));
                body.compute(10);
            },
        );
    });
    let p = b.build();
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_machine(small_machine())
        .with_sync(SlipSync::G0);
    let r = run_program(&p, &opts).unwrap();
    assert_eq!(r.raw.user_r.loads, n as u64);
    assert_eq!(r.raw.user_a.loads, n as u64);
}

#[test]
fn constructs_execute_correct_number_of_times() {
    let mut b = ProgramBuilder::new("constructs");
    let a = b.shared_array("a", 64, 8);
    b.parallel(|r| {
        r.master(|m| m.store(a, 0));
        r.single(|s| s.store(a, 1));
        r.critical("c", |c| c.store(a, 2));
        r.sections(3, |idx, sec| sec.store(a, 10 + idx as i64));
        r.atomic(a, 3);
        r.flush();
    });
    let p = b.build();
    let machine = small_machine();
    let team = 4u64;
    // master(1) + single(1) + critical(team) + sections(3) = 5 + team.
    for mode in [ExecMode::Single, ExecMode::Slipstream] {
        let mut opts = RunOptions::new(mode).with_machine(machine.clone());
        if mode == ExecMode::Slipstream {
            opts = opts.with_sync(SlipSync::G0);
        }
        let r = run_program(&p, &opts).unwrap();
        assert_eq!(
            r.raw.user_r.stores,
            5 + team,
            "{mode:?} R-side construct stores"
        );
        assert_eq!(r.raw.user_r.atomics, team, "{mode:?} atomics");
        if mode == ExecMode::Slipstream {
            // A-side: master body for tid 0 only (1 store); single skipped;
            // critical skipped; sections mirrored (each pair mirrors its
            // R's claims — 3 total across pairs).
            assert_eq!(r.raw.user_a.stores, 1 + 3, "A-side construct stores");
            assert_eq!(r.raw.user_a.atomics, team, "A executes atomics");
        }
    }
}

#[test]
fn divergence_recovery_completes_the_run() {
    let p = stream_kernel(512, 2, 4);
    let mut opts = RunOptions::new(ExecMode::Slipstream)
        .with_machine(small_machine())
        .with_sync(SlipSync::G0);
    // Inject divergence on pair 1 at its second construct barrier.
    opts.inject_divergence = vec![(1, 1)];
    let r = run_program(&p, &opts).unwrap();
    assert!(r.raw.recoveries >= 1, "the diverged A-stream was recovered");
    // The run still produces correct R-side semantics.
    let oracle = trace(&p, 4);
    assert_eq!(r.raw.user_r.loads, oracle.total.loads);
}

#[test]
fn env_kill_switch_disables_slipstream() {
    let p = stream_kernel(256, 1, 4);
    let mut env = RuntimeEnv::default();
    env.set_var("OMP_SLIPSTREAM", "NONE").unwrap();
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_machine(small_machine())
        .with_env(env);
    let r = run_program(&p, &opts).unwrap();
    // A-streams idle through every region: no prefetching work.
    assert_eq!(r.raw.user_a.loads, 0, "A-streams skipped all regions");
    assert_eq!(r.raw.stores_converted, 0);
    let oracle = trace(&p, 4);
    assert_eq!(r.raw.user_r.loads, oracle.total.loads, "R unaffected");
}

#[test]
fn nowait_loops_skip_the_barrier() {
    let n = 128i64;
    let mut b = ProgramBuilder::new("nowait");
    let x = b.shared_array("x", n as u64, 8);
    let i = b.var();
    b.parallel(move |r| {
        r.par_for_nowait(None, i, 0, n, move |body| {
            body.load(x, Expr::v(i));
        });
        r.par_for(None, i, 0, n, move |body| {
            body.load(x, Expr::v(i));
        });
    });
    let p = b.build();
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_machine(small_machine())
        .with_sync(SlipSync::G0);
    let r = run_program(&p, &opts).unwrap();
    assert_eq!(r.raw.user_r.loads, 2 * n as u64);
    assert_eq!(r.raw.user_a.loads, 2 * n as u64);
}

#[test]
fn empty_parallel_region_works() {
    let mut b = ProgramBuilder::new("empty");
    b.parallel(|_r| {});
    let p = b.build();
    for mode in [ExecMode::Single, ExecMode::Double, ExecMode::Slipstream] {
        let mut opts = RunOptions::new(mode).with_machine(small_machine());
        if mode == ExecMode::Slipstream {
            opts = opts.with_sync(SlipSync::G0);
        }
        let r = run_program(&p, &opts).unwrap();
        assert!(r.exec_cycles > 0, "{mode:?}");
    }
}

#[test]
fn io_synchronizes_the_pair() {
    let mut b = ProgramBuilder::new("io");
    let a = b.shared_array("a", 16, 8);
    b.serial(|s| {
        s.io(true, 8192);
        s.io(false, 128);
        s.store(a, 0);
    });
    b.parallel(|r| r.load(a, 0));
    let p = b.build();
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_machine(small_machine())
        .with_sync(SlipSync::G0);
    let r = run_program(&p, &opts).unwrap();
    // R performed both I/Os; A performed none.
    assert_eq!(r.raw.user_r.io_in, 1);
    assert_eq!(r.raw.user_r.io_out, 1);
    assert_eq!(r.raw.user_a.io_in + r.raw.user_a.io_out, 0);
    // The A-master spent time waiting for the input.
    assert!(r.a_breakdown.get(TimeClass::AStreamWait) > 0);
}

#[test]
fn static_chunked_schedule_round_robins() {
    let n = 96i64;
    let mut b = ProgramBuilder::new("schunk");
    let x = b.shared_array("x", n as u64, 8);
    let i = b.var();
    b.parallel(move |r| {
        r.par_for(
            Some(ScheduleSpec {
                kind: omp_ir::node::ScheduleKind::Static,
                chunk: Some(8),
            }),
            i,
            0,
            n,
            move |body| body.load(x, Expr::v(i)),
        );
    });
    let p = b.build();
    let opts = RunOptions::new(ExecMode::Single).with_machine(small_machine());
    let r = run_program(&p, &opts).unwrap();
    assert_eq!(r.raw.user_r.loads, n as u64);
}
