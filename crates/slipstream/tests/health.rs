//! End-to-end tests of the adaptive pair-health controller: the closed
//! loop from demotion through probation back to slipstream, the
//! token-wait timeout tier, and the team circuit breaker — all exercised
//! through the public runner on real multi-region programs, with the
//! R-stream oracle checked throughout (recovery machinery must never
//! perturb architectural output, whatever the controller decides).

use dsm_sim::MachineConfig;
use omp_ir::expr::Expr;
use omp_ir::node::Program;
use omp_ir::trace::trace;
use omp_rt::mode::{HealthState, PairMode};
use omp_rt::team::BreakerConfig;
use omp_rt::{ExecMode, SlipSync};
use sim_trace::{TraceConfig, TraceEvent};
use slipstream::faults::{FaultEvent, FaultKind, FaultPlan};
use slipstream::health::HealthPolicy;
use slipstream::policy::RecoveryPolicy;
use slipstream::report::resilience_table;
use slipstream::runner::{run_program, RunOptions, RunSummary};

fn machine(cmps: usize) -> MachineConfig {
    let mut m = MachineConfig::paper();
    m.num_cmps = cmps;
    m
}

/// A program with `regions` identical parallel regions of `fors` static
/// loops each. Region completions are the health controller's clock, so
/// the state machine needs room to serve cool-downs and probations after
/// an early demotion; the loops-per-region knob controls how many barrier
/// epochs (= wander-fault hook slots, which reset per region) one region
/// exposes.
fn multi_region(n: i64, regions: usize, fors: usize) -> Program {
    let mut b = omp_ir::ProgramBuilder::new("health");
    let x = b.shared_array("x", n as u64, 8);
    let y = b.shared_array("y", n as u64, 8);
    let i = b.var();
    for _ in 0..regions {
        b.parallel(move |r| {
            for _ in 0..fors {
                r.par_for(None, i, 0, n, move |body| {
                    body.load(x, Expr::v(i));
                    body.compute(2);
                    body.store(y, Expr::v(i));
                });
            }
        });
    }
    b.build()
}

/// Wander faults at A-epochs `0..seqs` against `tid`. Epoch counters
/// reset at region start, so a blanket storm keeps re-firing on a pair
/// as it recovers and advances within (and across) regions, until the
/// unfired slots run out.
fn wander_storm(tid: u64, seqs: u64) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for seq in 0..seqs {
        plan = plan.with(FaultEvent {
            kind: FaultKind::Wander,
            tid,
            seq,
            arg: 0,
        });
    }
    plan
}

fn run(p: &Program, team: u64, opts: RunOptions) -> RunSummary {
    let opts = opts
        .with_machine(machine(team as usize))
        .with_sync(SlipSync::G0);
    run_program(p, &opts).expect("run must terminate")
}

fn assert_oracle(r: &RunSummary, oracle: &omp_ir::trace::TraceSummary, ctx: &str) {
    assert_eq!(r.raw.user_r.loads, oracle.total.loads, "R loads {ctx}");
    assert_eq!(r.raw.user_r.stores, oracle.total.stores, "R stores {ctx}");
    assert_eq!(
        r.raw.user_r.compute_cycles, oracle.total.compute_cycles,
        "R compute {ctx}"
    );
}

/// The tentpole loop: a transient fault demotes a pair in an early
/// region; the controller serves the cool-down, re-enters slipstream on
/// probation, and earns back healthy — visible in the ledger, the
/// aggregate counters, the residency histogram, and the report.
#[test]
fn demoted_pair_is_repromoted_and_heals() {
    const TEAM: u64 = 4;
    let p = multi_region(96, 8, 6);
    let oracle = trace(&p, TEAM);
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_faults(wander_storm(1, 1))
        .with_recovery(
            RecoveryPolicy::paper()
                .with_watchdog(150_000)
                .with_max_recoveries(0),
        )
        .with_health(HealthPolicy::adaptive().with_breaker(BreakerConfig::disabled()));
    let r = run(&p, TEAM, opts);
    assert_oracle(&r, &oracle, "(repromotion)");
    let l = &r.raw.pair_ledgers[1];
    assert!(
        l.demoted_at.is_some(),
        "the pair must first have been demoted: {l:?}"
    );
    assert_eq!(
        l.mode,
        PairMode::Slipstream,
        "…and be back in slipstream at the end: {l:?}"
    );
    assert_eq!(l.health, HealthState::Healthy, "{l:?}");
    assert_eq!(l.repromotions, 1, "{l:?}");
    assert_eq!(r.raw.repromotions, 1);
    assert_eq!(
        r.raw.demotions, 0,
        "demotions count pairs still demoted at the end"
    );
    let res = &r.raw.health_residency;
    assert!(res[HealthState::Demoted.ordinal() as usize] >= 1, "{res:?}");
    assert!(
        res[HealthState::Probation.ordinal() as usize] >= 1,
        "{res:?}"
    );
    let table = resilience_table(&r.raw);
    assert!(table.contains("1 repromotions"), "{table}");
    assert!(table.contains("health residency"), "{table}");
    // Healthy bystanders never leave slipstream.
    assert_eq!(r.raw.pair_ledgers[0].mode, PairMode::Slipstream);
    assert_eq!(r.raw.pair_ledgers[0].repromotions, 0);
}

/// Every health transition of a traced run must be legal under the state
/// machine, and the demote → probation → healthy arc must appear on the
/// victim pair's track.
#[test]
fn health_transitions_in_the_trace_are_consistent() {
    const TEAM: u64 = 4;
    let p = multi_region(96, 8, 6);
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_faults(wander_storm(1, 1))
        .with_recovery(
            RecoveryPolicy::paper()
                .with_watchdog(150_000)
                .with_max_recoveries(0),
        )
        .with_health(HealthPolicy::adaptive().with_breaker(BreakerConfig::disabled()))
        .with_trace(TraceConfig::on());
    let r = run(&p, TEAM, opts);
    let data = r.raw.trace.as_ref().expect("traced run");
    let by_label = |l: &str| {
        omp_rt::mode::HEALTH_STATES
            .iter()
            .copied()
            .find(|s| s.label() == l)
            .unwrap_or_else(|| panic!("unknown health label {l}"))
    };
    let mut arcs: Vec<(HealthState, HealthState)> = Vec::new();
    for e in &data.events {
        if let TraceEvent::Health { pair, from, to } = &e.ev {
            let (f, t) = (by_label(from), by_label(to));
            assert!(
                f.can_transition_to(t),
                "illegal traced transition {from} -> {to} on pair {pair}"
            );
            if *pair == 1 {
                arcs.push((f, t));
            }
        }
    }
    use HealthState::*;
    assert!(arcs.contains(&(Healthy, Demoted)), "{arcs:?}");
    assert!(arcs.contains(&(Demoted, Probation)), "{arcs:?}");
    assert!(arcs.contains(&(Probation, Healthy)), "{arcs:?}");
}

/// A pair that diverges *on probation* is re-demoted at once, and once
/// its probation budget is spent the demotion is permanent: no further
/// re-promotions, ever.
#[test]
fn failed_probation_becomes_permanent() {
    const TEAM: u64 = 4;
    let p = multi_region(96, 8, 6);
    let oracle = trace(&p, TEAM);
    // A blanket storm: the unfired hook slots left over from the first
    // demotion re-fire when the probationary pair advances through its
    // trial region, failing the probation.
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_faults(wander_storm(2, 16))
        .with_recovery(
            RecoveryPolicy::paper()
                .with_watchdog(150_000)
                .with_max_recoveries(0),
        )
        .with_health(
            HealthPolicy::adaptive()
                .with_max_repromotions(1)
                .with_breaker(BreakerConfig::disabled()),
        );
    let r = run(&p, TEAM, opts);
    assert_oracle(&r, &oracle, "(permanent demotion)");
    let l = &r.raw.pair_ledgers[2];
    assert!(l.demoted(), "{l:?}");
    assert_eq!(l.health, HealthState::Demoted, "{l:?}");
    assert_eq!(
        l.repromotions, 1,
        "exactly the probation budget was granted: {l:?}"
    );
    assert_eq!(r.raw.demotions, 1);
}

/// Enough unhealthy pairs trip the team breaker: regions run with
/// slipstream forced off while it is open, and once the demoted pair
/// heals through probation the half-open probe re-closes it.
#[test]
fn breaker_trips_and_recloses_when_the_pair_heals() {
    const TEAM: u64 = 2; // one demoted pair = half the team = trip
    let p = multi_region(96, 8, 6);
    let oracle = trace(&p, TEAM);
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_faults(wander_storm(1, 1))
        .with_recovery(
            RecoveryPolicy::paper()
                .with_watchdog(150_000)
                .with_max_recoveries(0),
        )
        .with_health(HealthPolicy::adaptive())
        .with_trace(TraceConfig::on());
    let r = run(&p, TEAM, opts);
    assert_oracle(&r, &oracle, "(breaker)");
    assert!(r.raw.breaker_trips >= 1, "{:?}", r.raw.breaker_trips);
    assert!(
        r.raw.breaker_reclosures >= 1,
        "healed team must re-close the breaker (trips {}, reclosures {})",
        r.raw.breaker_trips,
        r.raw.breaker_reclosures
    );
    let table = resilience_table(&r.raw);
    assert!(table.contains("breaker:"), "{table}");
    // The traced breaker arc is closed -> open -> half-open -> closed.
    let data = r.raw.trace.as_ref().expect("traced run");
    let arcs: Vec<(&str, &str)> = data
        .events
        .iter()
        .filter_map(|e| match &e.ev {
            TraceEvent::Breaker { from, to, .. } => Some((*from, *to)),
            _ => None,
        })
        .collect();
    assert!(arcs.contains(&("closed", "open")), "{arcs:?}");
    assert!(arcs.contains(&("open", "half-open")), "{arcs:?}");
    assert!(arcs.contains(&("half-open", "closed")), "{arcs:?}");
}

/// The token-wait timeout is a real anti-wedge tier of its own: with the
/// watchdog disabled, a lost token (which strands the A-stream where no
/// slack ever accumulates) is recovered by the timeout alone.
#[test]
fn token_wait_timeout_recovers_a_lost_token_without_the_watchdog() {
    const TEAM: u64 = 4;
    let p = multi_region(96, 4, 2);
    let oracle = trace(&p, TEAM);
    let plan = FaultPlan::none().with(FaultEvent {
        kind: FaultKind::TokenLoss,
        tid: 0,
        seq: 0,
        arg: 0,
    });
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_faults(plan)
        .with_recovery(RecoveryPolicy::hardened().with_watchdog(0));
    let r = run(&p, TEAM, opts);
    assert_oracle(&r, &oracle, "(token-wait timeout)");
    assert!(
        r.raw.timeout_recoveries >= 1,
        "timeout tier must have recovered the stranded A-stream: {:?}",
        r.raw.pair_ledgers
    );
    assert_eq!(r.raw.watchdog_recoveries, 0, "watchdog was disabled");
    let l = &r.raw.pair_ledgers[0];
    assert!(l.timeout_recoveries >= 1, "{l:?}");
    assert!(l.timeout_recoveries <= l.recoveries, "subset: {l:?}");
}

/// Timeout recoveries are labelled in the structured trace, distinct from
/// watchdog and slack recoveries.
#[test]
fn timeout_recoveries_are_labelled_in_the_trace() {
    const TEAM: u64 = 4;
    let p = multi_region(96, 4, 2);
    let plan = FaultPlan::none().with(FaultEvent {
        kind: FaultKind::TokenLoss,
        tid: 0,
        seq: 0,
        arg: 0,
    });
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_faults(plan)
        .with_recovery(RecoveryPolicy::hardened().with_watchdog(0))
        .with_trace(TraceConfig::on());
    let r = run(&p, TEAM, opts);
    let data = r.raw.trace.as_ref().expect("traced run");
    let timeout_recoveries = data
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.ev,
                TraceEvent::Recovery {
                    timeout: true,
                    watchdog: false,
                    ..
                }
            )
        })
        .count() as u64;
    assert_eq!(timeout_recoveries, r.raw.timeout_recoveries);
    assert!(timeout_recoveries >= 1);
}

/// Satellite 3: the retry budget is exact. Calibrate how many recoveries
/// a blanket storm forces under an effectively unbounded budget, then pin
/// the boundary: a budget of exactly that many survives; one less turns
/// the final recovery into the demoting attempt.
#[test]
fn retry_budget_off_by_one_boundary() {
    const TEAM: u64 = 4;
    let p = multi_region(96, 8, 6);
    let oracle = trace(&p, TEAM);
    let storm = wander_storm(1, 16);
    let base = RecoveryPolicy::paper().with_watchdog(150_000);
    let probe = run(
        &p,
        TEAM,
        RunOptions::new(ExecMode::Slipstream)
            .with_faults(storm.clone())
            .with_recovery(base.with_max_recoveries(64)),
    );
    let forced = probe.raw.pair_ledgers[1].recoveries;
    assert!(
        forced >= 2,
        "storm must force repeated recoveries: {forced}"
    );
    assert!(!probe.raw.pair_ledgers[1].demoted());
    // Budget exactly equal to the forced recoveries: survives.
    let r = run(
        &p,
        TEAM,
        RunOptions::new(ExecMode::Slipstream)
            .with_faults(storm.clone())
            .with_recovery(base.with_max_recoveries(forced)),
    );
    assert_oracle(&r, &oracle, "(budget == forced)");
    let l = &r.raw.pair_ledgers[1];
    assert_eq!(l.recoveries, forced, "{l:?}");
    assert!(!l.demoted(), "exact budget must not demote: {l:?}");
    assert_eq!(r.raw.demotions, 0);
    // One less: the last recovery becomes the demoting attempt.
    let r = run(
        &p,
        TEAM,
        RunOptions::new(ExecMode::Slipstream)
            .with_faults(storm)
            .with_recovery(base.with_max_recoveries(forced - 1)),
    );
    assert_oracle(&r, &oracle, "(budget == forced - 1)");
    let l = &r.raw.pair_ledgers[1];
    assert_eq!(l.recoveries, forced, "budget + the demoting attempt: {l:?}");
    assert!(l.demoted(), "{l:?}");
    assert_eq!(r.raw.demotions, 1);
}

/// A short recovery burst makes a pair Suspect without demoting it, and
/// clean regions clear the suspicion — the EWMA path of the controller,
/// end to end.
#[test]
fn recovery_burst_raises_and_clears_suspicion() {
    const TEAM: u64 = 4;
    let p = multi_region(96, 8, 6);
    let oracle = trace(&p, TEAM);
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_faults(wander_storm(3, 6))
        .with_recovery(RecoveryPolicy::paper().with_watchdog(150_000))
        .with_health(HealthPolicy::adaptive().with_breaker(BreakerConfig::disabled()));
    let r = run(&p, TEAM, opts);
    assert_oracle(&r, &oracle, "(suspicion)");
    let l = &r.raw.pair_ledgers[3];
    assert!(!l.demoted(), "{l:?}");
    assert_eq!(l.health, HealthState::Healthy, "suspicion cleared: {l:?}");
    assert!(
        r.raw.health_residency[HealthState::Suspect.ordinal() as usize] >= 1,
        "{:?}",
        r.raw.health_residency
    );
    assert_eq!(r.raw.demotions, 0);
    assert_eq!(r.raw.breaker_trips, 0);
}

/// On a clean run the adaptive controller is pure observation: identical
/// execution time and R-stream output to the inert paper policy, all
/// residency in Healthy, nothing tripped or re-promoted.
#[test]
fn adaptive_controller_is_observation_only_on_clean_runs() {
    const TEAM: u64 = 4;
    let p = multi_region(96, 6, 2);
    let paper = run(&p, TEAM, RunOptions::new(ExecMode::Slipstream));
    let adaptive = run(
        &p,
        TEAM,
        RunOptions::new(ExecMode::Slipstream).with_health(HealthPolicy::adaptive()),
    );
    assert_eq!(paper.exec_cycles, adaptive.exec_cycles);
    assert_eq!(paper.raw.user_r, adaptive.raw.user_r);
    assert_eq!(adaptive.raw.recoveries, 0);
    assert_eq!(adaptive.raw.repromotions, 0);
    assert_eq!(adaptive.raw.breaker_trips, 0);
    let res = &adaptive.raw.health_residency;
    let total: u64 = res.iter().sum();
    assert_eq!(
        res[HealthState::Healthy.ordinal() as usize],
        total,
        "every pair-region healthy: {res:?}"
    );
    assert_eq!(total, 6 * TEAM, "one tick per pair per region: {res:?}");
}
