//! Fault-injection property suite: the A-stream is speculative
//! everywhere, so NO fault plan may deadlock the run or perturb R-stream
//! output, and a pair that exhausts its retry budget must degrade to
//! single-stream mode visibly.

use dsm_sim::MachineConfig;
use omp_ir::expr::Expr;
use omp_ir::node::{Program, ReductionOp, ScheduleSpec};
use omp_ir::trace::trace;
use omp_rt::mode::PairMode;
use omp_rt::{ExecMode, SlipSync};
use slipstream::faults::{FaultEvent, FaultKind, FaultPlan};
use slipstream::policy::RecoveryPolicy;
use slipstream::report::resilience_table;
use slipstream::runner::{run_program, RunOptions, RunSummary};

const TEAM: u64 = 4;

fn machine() -> MachineConfig {
    let mut m = MachineConfig::paper();
    m.num_cmps = TEAM as usize;
    m
}

/// A kernel that visits every fault hook point: static barriers (token
/// insert/consume), a dynamic loop and sections (publish handshake),
/// input I/O (publish handshake in serial code), a single, a reduction,
/// shared stores (conversion site), and two regions (region-go handshake
/// plus token re-allocation).
fn chaos_kernel(n: i64) -> Program {
    let mut b = omp_ir::ProgramBuilder::new("chaos");
    let x = b.shared_array("x", n as u64, 8);
    let y = b.shared_array("y", n as u64, 8);
    let sum = b.shared_array("sum", 1, 8);
    let i = b.var();
    b.serial(|s| s.io(true, 512));
    b.parallel(move |r| {
        r.par_for(None, i, 0, n, move |body| {
            body.load(x, Expr::v(i));
            body.compute(2);
            body.store(y, Expr::v(i));
        });
        r.par_for(Some(ScheduleSpec::dynamic(8)), i, 0, n, move |body| {
            body.load(y, Expr::v(i));
        });
        r.sections(3, move |s, body| {
            body.load(x, Expr::c(s as i64));
            body.compute(4);
        });
        r.single(move |body| body.store(y, Expr::c(0)));
        r.barrier();
    });
    b.serial(|s| s.io(true, 256));
    b.parallel(move |r| {
        r.par_for_reduce(None, i, 0, n, ReductionOp::Sum, sum, 0, move |body| {
            body.load(y, Expr::v(i));
            body.compute(1);
        });
        r.par_for(None, i, 0, n, move |body| {
            body.load(x, Expr::v(i));
            body.store(y, Expr::v(i));
        });
    });
    b.build()
}

fn run_with(
    p: &Program,
    sync: SlipSync,
    faults: FaultPlan,
    recovery: RecoveryPolicy,
) -> RunSummary {
    let opts = RunOptions::new(ExecMode::Slipstream)
        .with_machine(machine())
        .with_sync(sync)
        .with_faults(faults)
        .with_recovery(recovery);
    run_program(p, &opts).expect("faulted run must terminate without deadlock")
}

/// R-stream semantics must be byte-for-byte those of the fault-free
/// oracle: the A-stream is pure speculation.
fn assert_oracle(r: &RunSummary, oracle: &omp_ir::trace::TraceSummary, ctx: &str) {
    assert_eq!(r.raw.user_r.loads, oracle.total.loads, "R loads {ctx}");
    assert_eq!(r.raw.user_r.stores, oracle.total.stores, "R stores {ctx}");
    assert_eq!(
        r.raw.user_r.compute_cycles, oracle.total.compute_cycles,
        "R compute {ctx}"
    );
    assert_eq!(r.raw.user_r.io_in, oracle.total.io_in, "R io {ctx}");
    assert_eq!(r.raw.user_a.io_in, 0, "A never does I/O {ctx}");
    assert_eq!(r.raw.user_a.io_out, 0, "A never does I/O {ctx}");
}

fn assert_ledger_sane(r: &RunSummary, plan_len: usize, ctx: &str) {
    let l = &r.raw.pair_ledgers;
    assert_eq!(l.len(), TEAM as usize, "one ledger per pair {ctx}");
    let fired: u64 = l.iter().map(|p| p.faults_injected).sum();
    assert!(
        fired <= plan_len as u64,
        "each event fires at most once {ctx}"
    );
    let rec: u64 = l.iter().map(|p| p.recoveries).sum();
    let wd: u64 = l.iter().map(|p| p.watchdog_recoveries).sum();
    assert_eq!(rec, r.raw.recoveries, "ledger vs aggregate {ctx}");
    assert_eq!(wd, r.raw.watchdog_recoveries, "ledger vs aggregate {ctx}");
    assert!(wd <= rec, "watchdog recoveries are a subset {ctx}");
    for p in l {
        assert!(p.watchdog_recoveries <= p.recoveries, "{ctx}");
        assert_eq!(p.demoted(), p.demoted_at.is_some(), "{ctx}");
        assert_eq!(p.demoted(), p.mode == PairMode::DegradedSingle, "{ctx}");
    }
    assert_eq!(
        r.raw.demotions,
        l.iter().filter(|p| p.demoted()).count() as u64,
        "{ctx}"
    );
}

/// The tentpole property: 200+ seeded random fault plans, every one
/// terminating with oracle-exact R-stream output and a sane ledger,
/// under both synchronization policies.
#[test]
fn random_fault_plans_never_corrupt_or_deadlock() {
    let p = chaos_kernel(96);
    let oracle = trace(&p, TEAM);
    // Short watchdog so stranded-A plans recover quickly in tests.
    let recovery = RecoveryPolicy::paper().with_watchdog(150_000);
    for seed in 0..220u64 {
        let plan = FaultPlan::random(seed, TEAM, 6);
        let n = plan.events.len();
        let sync = if seed % 2 == 0 {
            SlipSync::G0
        } else {
            SlipSync::L1
        };
        let r = run_with(&p, sync, plan, recovery);
        let ctx = format!("(seed {seed}, {:?})", sync);
        assert_oracle(&r, &oracle, &ctx);
        assert_ledger_sane(&r, n, &ctx);
    }
}

/// Replaying the same seed must reproduce the run exactly — the whole
/// point of a deterministic fault plan.
#[test]
fn faulted_runs_are_deterministic() {
    let p = chaos_kernel(64);
    let recovery = RecoveryPolicy::paper().with_watchdog(150_000);
    for seed in [3u64, 17, 101] {
        let a = run_with(&p, SlipSync::G0, FaultPlan::random(seed, TEAM, 6), recovery);
        let b = run_with(&p, SlipSync::G0, FaultPlan::random(seed, TEAM, 6), recovery);
        assert_eq!(a.exec_cycles, b.exec_cycles, "seed {seed}");
        assert_eq!(a.raw.recoveries, b.raw.recoveries, "seed {seed}");
        assert_eq!(a.raw.pair_ledgers, b.raw.pair_ledgers, "seed {seed}");
    }
}

/// Satellite 1 regression: token-slack suspicion alone (diverged flag
/// never set) must trigger recovery. A long stall burst keeps the
/// A-stream from consuming while its R-stream keeps inserting; the old
/// `suspected && diverged` condition left the pair unrecovered forever.
#[test]
fn slack_suspicion_alone_recovers() {
    let p = chaos_kernel(96);
    let oracle = trace(&p, TEAM);
    let plan = FaultPlan::none().with(FaultEvent {
        kind: FaultKind::StallBurst,
        tid: 1,
        seq: 0,
        arg: 40_000_000, // sidelined well past every R barrier
    });
    let r = run_with(
        &p,
        SlipSync::G0,
        plan,
        RecoveryPolicy::paper().with_watchdog(150_000),
    );
    assert_oracle(&r, &oracle, "(stall burst)");
    assert!(
        r.raw.pair_ledgers[1].recoveries >= 1,
        "slack-based suspicion must recover the stalled pair: {:?}",
        r.raw.pair_ledgers[1]
    );
}

/// Satellite 2 regression: a lost `sched_sem` signal surfaces as
/// recoverable divergence (typed `None`/mismatch), never as a panic, and
/// the run still completes with oracle output.
#[test]
fn lost_scheduling_signal_is_recoverable() {
    let p = chaos_kernel(96);
    let oracle = trace(&p, TEAM);
    for seq in 0..4u64 {
        let plan = FaultPlan::none().with(FaultEvent {
            kind: FaultKind::SignalLoss,
            tid: 2,
            seq,
            arg: 0,
        });
        let r = run_with(
            &p,
            SlipSync::G0,
            plan,
            RecoveryPolicy::paper().with_watchdog(150_000),
        );
        assert_oracle(&r, &oracle, &format!("(signal loss seq {seq})"));
    }
}

/// A lost token strands the A-stream at a construct barrier where no
/// slack ever accumulates; only the region-end watchdog can save the
/// team from deadlock.
#[test]
fn token_loss_is_caught_by_the_watchdog() {
    let p = chaos_kernel(96);
    let oracle = trace(&p, TEAM);
    let plan = FaultPlan::none().with(FaultEvent {
        kind: FaultKind::TokenLoss,
        tid: 0,
        seq: 0,
        arg: 0,
    });
    let r = run_with(
        &p,
        SlipSync::G0,
        plan,
        RecoveryPolicy::paper().with_watchdog(120_000),
    );
    assert_oracle(&r, &oracle, "(token loss)");
    assert!(
        r.raw.watchdog_recoveries >= 1,
        "stranded A-stream must be watchdog-recovered: {:?}",
        r.raw.pair_ledgers
    );
}

/// Corrupted decisions are well-formed but wrong; the typed consumer
/// diverges instead of panicking and the pair recovers.
#[test]
fn corrupted_decisions_are_recoverable() {
    let p = chaos_kernel(96);
    let oracle = trace(&p, TEAM);
    for seq in 0..4u64 {
        let plan = FaultPlan::none().with(FaultEvent {
            kind: FaultKind::DecisionCorrupt,
            tid: 3,
            seq,
            arg: 0,
        });
        let r = run_with(
            &p,
            SlipSync::G0,
            plan,
            RecoveryPolicy::paper().with_watchdog(150_000),
        );
        assert_oracle(&r, &oracle, &format!("(corrupt seq {seq})"));
    }
}

/// Bounded retry with escalation: a pair battered past its retry budget
/// is demoted to single-stream mode, the demotion is recorded in the
/// ledger and aggregate counters, the resilience report shows it, and
/// the run still completes correctly.
#[test]
fn exhausted_retry_budget_demotes_the_pair() {
    let p = chaos_kernel(96);
    let oracle = trace(&p, TEAM);
    // Wander at every early epoch: each recovery re-diverges immediately.
    let mut plan = FaultPlan::none();
    for seq in 0..12 {
        plan = plan.with(FaultEvent {
            kind: FaultKind::Wander,
            tid: 1,
            seq,
            arg: 0,
        });
    }
    let r = run_with(
        &p,
        SlipSync::G0,
        plan,
        RecoveryPolicy::paper()
            .with_watchdog(120_000)
            .with_max_recoveries(2),
    );
    assert_oracle(&r, &oracle, "(demotion)");
    assert_eq!(r.raw.demotions, 1, "{:?}", r.raw.pair_ledgers);
    let l = &r.raw.pair_ledgers[1];
    assert!(l.demoted(), "{l:?}");
    assert_eq!(l.mode, PairMode::DegradedSingle);
    assert!(l.demoted_at.is_some());
    assert_eq!(l.recoveries, 3, "budget 2 + the demoting attempt: {l:?}");
    let table = resilience_table(&r.raw);
    assert!(table.contains("degraded-single"), "{table}");
    assert!(table.contains("1 demotions"), "{table}");
    // Healthy pairs stay in slipstream mode.
    assert_eq!(r.raw.pair_ledgers[0].mode, PairMode::Slipstream);
}

/// Demotion is one-way and per-pair: other pairs keep slipstreaming and
/// the empty plan never recovers or demotes anything.
#[test]
fn empty_plan_is_a_no_op() {
    let p = chaos_kernel(96);
    let oracle = trace(&p, TEAM);
    let r = run_with(&p, SlipSync::G0, FaultPlan::none(), RecoveryPolicy::paper());
    assert_oracle(&r, &oracle, "(no faults)");
    assert_eq!(r.raw.recoveries, 0);
    assert_eq!(r.raw.watchdog_recoveries, 0);
    assert_eq!(r.raw.demotions, 0);
    assert!(r.raw.pair_ledgers.iter().all(|l| !l.demoted()));
}
