//! A–R pair state: token semaphores, scheduling handshake, epochs.
//!
//! Each CMP node in slipstream mode hosts one pair. The pair owns:
//!
//! * the **token semaphore** of Figure 1 — the R-stream inserts a token
//!   per construct barrier (at entry for local sync, at exit for global
//!   sync); the A-stream consumes one to skip the barrier and blocks when
//!   none are available;
//! * the **scheduling/syscall semaphore** — initialized to zero; used for
//!   the dynamic-scheduling handshake (the R-stream publishes its chunk
//!   decision and signals; the A-stream waits and mirrors it) and for
//!   input-operation synchronization;
//! * **epoch counters** — barrier sessions passed by each stream, used to
//!   gate store→prefetch conversion ("the A-stream is in the same session
//!   with its R-stream") and to detect divergence;
//! * the pair's **operating mode** and recovery ledger — a pair that
//!   exhausts its recovery budget is demoted to single-stream mode
//!   ([`PairMode::DegradedSingle`]) for the rest of the run.

use crate::health::PairHealth;
use dsm_sim::{Addr, CpuId, Semaphore};
use omp_ir::wsloop::Chunk;
use omp_rt::mode::{PairMode, SlipSync};
use std::collections::VecDeque;

/// A scheduling decision the R-stream publishes for its A-stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// A dynamic/guided loop chunk.
    Chunk(Chunk),
    /// A claimed section index.
    Section(usize),
    /// An input operation completed; the A-stream may proceed past it
    /// ("the A-stream should see the same image of the data that the
    /// R-stream sees").
    IoDone,
    /// The R-master finished configuring a parallel region; the A-master
    /// may enter it (region state is shared runtime data the A-stream
    /// must observe consistently).
    RegionGo,
    /// The R-stream exhausted the construct; the A-stream moves on.
    End,
}

impl Decision {
    /// Short label for traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Decision::Chunk(_) => "chunk",
            Decision::Section(_) => "section",
            Decision::IoDone => "io-done",
            Decision::RegionGo => "region-go",
            Decision::End => "end",
        }
    }

    /// Serialize one decision.
    pub fn snapshot(&self, w: &mut snap::Writer) {
        match self {
            Decision::Chunk(c) => {
                w.u8(0);
                w.i64(c.lo);
                w.i64(c.hi);
            }
            Decision::Section(s) => {
                w.u8(1);
                w.usize(*s);
            }
            Decision::IoDone => w.u8(2),
            Decision::RegionGo => w.u8(3),
            Decision::End => w.u8(4),
        }
    }

    /// Restore a decision written by [`Decision::snapshot`].
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        Ok(match r.u8()? {
            0 => Decision::Chunk(Chunk {
                lo: r.i64()?,
                hi: r.i64()?,
            }),
            1 => Decision::Section(r.usize()?),
            2 => Decision::IoDone,
            3 => Decision::RegionGo,
            4 => Decision::End,
            _ => return Err(snap::SnapError::Corrupt { what: "Decision" }),
        })
    }
}

/// State of one A–R pair.
#[derive(Debug)]
pub struct PairState {
    /// The shared OpenMP thread id of the pair.
    pub tid: u64,
    /// The R-stream's processor.
    pub r_cpu: CpuId,
    /// The A-stream's processor.
    pub a_cpu: CpuId,
    /// Synchronization method for the current region.
    pub sync: SlipSync,
    /// The token semaphore (pair-shared hardware register).
    pub tokens: Semaphore,
    /// The scheduling/syscall semaphore (initialized to zero; paper
    /// Section 2.2).
    pub sched_sem: Semaphore,
    /// Published scheduling decisions, consumed in FIFO order.
    pub decisions: VecDeque<Decision>,
    /// Shared line the R-stream writes decisions to (the A-stream reads it
    /// after each signal).
    pub decision_addr: Addr,
    /// Barrier sessions completed by the R-stream in the current region.
    pub r_epoch: u64,
    /// Barrier sessions completed (skipped) by the A-stream.
    pub a_epoch: u64,
    /// The A-stream has diverged and stopped making useful progress.
    pub diverged: bool,
    /// Number of recoveries performed on this pair, over the whole run.
    pub recoveries: u64,
    /// Recoveries in the current health episode (reset when the health
    /// controller re-promotes the pair); this, not the lifetime total, is
    /// what the retry budget bounds.
    pub episode_recoveries: u64,
    /// Subset of `recoveries` forced by the barrier watchdog.
    pub watchdog_recoveries: u64,
    /// Subset of `recoveries` triggered by the token-wait timeout.
    pub timeout_recoveries: u64,
    /// Consecutive token-wait timeouts in the current region (drives the
    /// exponential backoff; reset at region start).
    pub wait_timeouts: u32,
    /// A token-wait timeout fired and its recovery has not yet been
    /// attributed (consumed by the next reseed).
    pub timeout_pending: bool,
    /// Faults the injection framework fired against this pair.
    pub faults_injected: u64,
    /// Operating mode; demotion to [`PairMode::DegradedSingle`] is
    /// reversed only by the health controller's probationary
    /// re-promotion.
    pub mode: PairMode,
    /// Health-controller state for the pair.
    pub health: PairHealth,
    /// Simulated cycle of the most recent demotion, if any.
    pub demoted_at: Option<u64>,
    /// Running count of token insertions by the R-stream, across the whole
    /// run (fault-hook sequence key; wraps).
    pub token_seq: u64,
    /// Running count of decision publications by the R-stream, across the
    /// whole run (fault-hook sequence key; wraps).
    pub publish_seq: u64,
}

impl PairState {
    /// Build the pair for thread `tid`.
    pub fn new(
        tid: u64,
        r_cpu: CpuId,
        a_cpu: CpuId,
        sync: SlipSync,
        token_addr: Addr,
        sched_addr: Addr,
        decision_addr: Addr,
    ) -> Self {
        PairState {
            tid,
            r_cpu,
            a_cpu,
            sync,
            tokens: Semaphore::new(sync.tokens, token_addr),
            sched_sem: Semaphore::new(0, sched_addr),
            decisions: VecDeque::new(),
            decision_addr,
            r_epoch: 0,
            a_epoch: 0,
            diverged: false,
            recoveries: 0,
            episode_recoveries: 0,
            watchdog_recoveries: 0,
            timeout_recoveries: 0,
            wait_timeouts: 0,
            timeout_pending: false,
            faults_injected: 0,
            mode: PairMode::Slipstream,
            health: PairHealth::new(),
            demoted_at: None,
            token_seq: 0,
            publish_seq: 0,
        }
    }

    /// Reconfigure at the start of a parallel region: reset tokens to the
    /// region's initial count and align epochs. ("At the beginning of a
    /// parallel region, a number of tokens is allocated...") Serial-part
    /// handshake decisions (I/O, region-go) may still be in flight and are
    /// preserved.
    pub fn start_region(&mut self, sync: SlipSync) {
        self.sync = sync;
        self.tokens.reset(sync.tokens);
        self.r_epoch = 0;
        self.a_epoch = 0;
        self.wait_timeouts = 0;
    }

    /// True once the pair has been demoted to single-stream mode.
    pub fn demoted(&self) -> bool {
        self.mode.is_demoted()
    }

    /// True when both streams are in the same barrier session — the
    /// store-conversion gate.
    pub fn same_session(&self) -> bool {
        self.r_epoch == self.a_epoch
    }

    /// Advance the R-stream's barrier-session counter. Epochs are session
    /// sequence numbers, not magnitudes: they wrap rather than saturate,
    /// and [`PairState::same_session`] only ever compares them for
    /// equality, so wraparound between sessions is harmless.
    pub fn bump_r_epoch(&mut self) {
        self.r_epoch = self.r_epoch.wrapping_add(1);
    }

    /// Advance the A-stream's barrier-session counter (wrapping; see
    /// [`PairState::bump_r_epoch`]).
    pub fn bump_a_epoch(&mut self) {
        self.a_epoch = self.a_epoch.wrapping_add(1);
    }

    /// Signed A–R lead distance in barrier sessions: how many sessions the
    /// A-stream is ahead of (positive) or behind (negative) its R-stream.
    /// Epochs wrap, so the difference is taken in wrapping arithmetic and
    /// reinterpreted as signed — correct as long as the true lead stays
    /// within ±2^63 sessions, which any real run does by many orders of
    /// magnitude.
    pub fn lead(&self) -> i64 {
        self.a_epoch.wrapping_sub(self.r_epoch) as i64
    }

    /// Divergence heuristic evaluated by the R-stream at a barrier: tokens
    /// accumulating unconsumed beyond the initial allocation plus slack
    /// mean the A-stream is no longer visiting barriers.
    pub fn divergence_suspected(&self, slack: u64) -> bool {
        self.tokens.count() > self.sync.tokens + slack
    }

    /// Publish a scheduling decision (R-stream side). Returns the parked
    /// A-stream processor to wake, if it was waiting on the semaphore.
    pub fn publish(&mut self, d: Decision) -> Option<CpuId> {
        self.decisions.push_back(d);
        self.sched_sem.signal()
    }

    /// Consume the next published decision (A-stream side, after a
    /// successful semaphore wait). `None` means the semaphore was granted
    /// but the queue is empty — a lost or corrupted handshake. The caller
    /// must treat that as recoverable divergence, not a fatal error: the
    /// A-stream is speculative, so a broken handshake only means it can no
    /// longer follow its R-stream.
    pub fn take_decision(&mut self) -> Option<Decision> {
        self.decisions.pop_front()
    }

    /// Serialize the pair's mutable state. Identity fields (tid, cpus,
    /// addresses) are layout-derived and rebuilt by engine construction,
    /// so they are not written.
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.bool(self.sync.global);
        w.u64(self.sync.tokens);
        self.tokens.snapshot(w);
        self.sched_sem.snapshot(w);
        w.deque(&self.decisions, |w, d| d.snapshot(w));
        w.u64(self.r_epoch);
        w.u64(self.a_epoch);
        w.bool(self.diverged);
        w.u64(self.recoveries);
        w.u64(self.episode_recoveries);
        w.u64(self.watchdog_recoveries);
        w.u64(self.timeout_recoveries);
        w.u32(self.wait_timeouts);
        w.bool(self.timeout_pending);
        w.u64(self.faults_injected);
        w.bool(self.mode.is_demoted());
        self.health.snapshot(w);
        w.opt(&self.demoted_at, |w, &c| w.u64(c));
        w.u64(self.token_seq);
        w.u64(self.publish_seq);
    }

    /// Overwrite this pair's mutable state from a snapshot written by
    /// [`PairState::snapshot`] (keeping identity fields).
    pub fn restore_into(&mut self, r: &mut snap::Reader) -> Result<(), snap::SnapError> {
        self.sync = SlipSync {
            global: r.bool()?,
            tokens: r.u64()?,
        };
        self.tokens = dsm_sim::Semaphore::restore(r)?;
        self.sched_sem = dsm_sim::Semaphore::restore(r)?;
        self.decisions = r.deque(Decision::restore)?;
        self.r_epoch = r.u64()?;
        self.a_epoch = r.u64()?;
        self.diverged = r.bool()?;
        self.recoveries = r.u64()?;
        self.episode_recoveries = r.u64()?;
        self.watchdog_recoveries = r.u64()?;
        self.timeout_recoveries = r.u64()?;
        self.wait_timeouts = r.u32()?;
        self.timeout_pending = r.bool()?;
        self.faults_injected = r.u64()?;
        self.mode = if r.bool()? {
            PairMode::DegradedSingle
        } else {
            PairMode::Slipstream
        };
        self.health = PairHealth::restore(r)?;
        self.demoted_at = r.opt(|r| r.u64())?;
        self.token_seq = r.u64()?;
        self.publish_seq = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(sync: SlipSync) -> PairState {
        PairState::new(0, CpuId(0), CpuId(1), sync, 0x100, 0x140, 0x180)
    }

    #[test]
    fn region_start_resets_tokens() {
        let mut p = pair(SlipSync::L1);
        assert_eq!(p.tokens.count(), 1);
        p.tokens.wait(CpuId(1));
        p.start_region(SlipSync::G0);
        assert_eq!(p.tokens.count(), 0);
        assert!(p.sync.global);
        assert!(p.same_session());
    }

    #[test]
    fn session_tracking() {
        let mut p = pair(SlipSync::G0);
        assert!(p.same_session());
        p.bump_a_epoch();
        assert!(!p.same_session());
        p.bump_r_epoch();
        assert!(p.same_session());
    }

    #[test]
    fn epoch_counters_wrap_between_sessions() {
        // A long run can take the session counters through u64 wraparound;
        // same_session only compares for equality, so the pair must sail
        // through 2^64 without panicking or desynchronizing.
        let mut p = pair(SlipSync::G0);
        p.r_epoch = u64::MAX;
        p.a_epoch = u64::MAX;
        assert!(p.same_session());
        p.bump_r_epoch();
        assert_eq!(p.r_epoch, 0);
        assert!(!p.same_session(), "R one session ahead across the wrap");
        p.bump_a_epoch();
        assert!(p.same_session(), "A catches up across the wrap");
    }

    #[test]
    fn divergence_heuristic() {
        let mut p = pair(SlipSync::G0);
        assert!(!p.divergence_suspected(1));
        // R inserts tokens that A never consumes.
        p.tokens.signal();
        assert!(!p.divergence_suspected(1), "one unconsumed token is slack");
        p.tokens.signal();
        assert!(p.divergence_suspected(1));
    }

    #[test]
    fn divergence_slack_zero_fires_on_first_leftover_token() {
        let mut p = pair(SlipSync::G0);
        assert!(!p.divergence_suspected(0), "no tokens yet");
        p.tokens.signal();
        assert!(p.divergence_suspected(0), "slack 0: one leftover suffices");
        assert!(!p.divergence_suspected(1), "slack 1 tolerates it");
    }

    #[test]
    fn suspicion_threshold_tracks_initial_allocation() {
        // L1 starts with one token; the heuristic measures *accumulation
        // beyond* the initial allocation, so the threshold shifts with it.
        let mut l1 = pair(SlipSync::L1);
        assert!(
            !l1.divergence_suspected(0),
            "initial L1 token is not evidence"
        );
        l1.tokens.signal();
        assert!(!l1.divergence_suspected(1));
        l1.tokens.signal();
        assert!(
            l1.divergence_suspected(1),
            "two beyond initial exceeds slack 1"
        );

        // G0 starts empty: the same two insertions already exceed slack 1.
        let mut g0 = pair(SlipSync::G0);
        g0.tokens.signal();
        g0.tokens.signal();
        assert!(g0.divergence_suspected(1));
    }

    #[test]
    fn suspicion_matrix_slack_0_and_1_for_l1_and_g0() {
        // The full boundary matrix: for each token configuration, the
        // heuristic must fire exactly when accumulation beyond the
        // initial allocation exceeds the slack — at slack 0 the first
        // leftover token is evidence, at slack 1 the second is.
        for sync in [SlipSync::L1, SlipSync::G0] {
            for slack in [0u64, 1] {
                let mut p = pair(sync);
                assert!(
                    !p.divergence_suspected(slack),
                    "{sync:?} slack {slack}: initial allocation is never evidence"
                );
                for extra in 1..=3u64 {
                    p.tokens.signal();
                    let expect = extra > slack;
                    assert_eq!(
                        p.divergence_suspected(slack),
                        expect,
                        "{sync:?} slack {slack}: {extra} tokens beyond initial"
                    );
                }
            }
        }
    }

    #[test]
    fn consumed_tokens_clear_suspicion() {
        // Insertion site (entry for L1, exit for G0) does not matter to the
        // heuristic as long as the A-stream keeps consuming: a healthy pair
        // never accumulates.
        for sync in [SlipSync::L1, SlipSync::G0] {
            let mut p = pair(sync);
            for _ in 0..8 {
                p.tokens.signal();
                assert!(p.tokens.wait(CpuId(1)), "healthy A consumes promptly");
                assert!(!p.divergence_suspected(0), "{:?}", sync);
            }
        }
    }

    #[test]
    fn handshake_fifo() {
        let mut p = pair(SlipSync::G0);
        // A arrives first: parks on the semaphore.
        assert!(!p.sched_sem.wait(CpuId(1)));
        // R publishes: wakes A.
        let woken = p.publish(Decision::Chunk(Chunk { lo: 0, hi: 8 }));
        assert_eq!(woken, Some(CpuId(1)));
        assert_eq!(
            p.take_decision(),
            Some(Decision::Chunk(Chunk { lo: 0, hi: 8 }))
        );
        // R publishes ahead; A consumes without parking.
        assert_eq!(p.publish(Decision::End), None);
        assert!(p.sched_sem.wait(CpuId(1)));
        assert_eq!(p.take_decision(), Some(Decision::End));
    }

    #[test]
    fn empty_decision_queue_is_observable_not_fatal() {
        // A lost-signal fault can grant the semaphore with nothing
        // published; the consumer sees None and treats it as divergence.
        let mut p = pair(SlipSync::G0);
        assert_eq!(p.take_decision(), None);
    }

    #[test]
    fn lead_is_signed_and_wrap_safe() {
        let mut p = pair(SlipSync::G0);
        assert_eq!(p.lead(), 0);
        p.bump_a_epoch();
        p.bump_a_epoch();
        assert_eq!(p.lead(), 2);
        p.bump_r_epoch();
        p.bump_r_epoch();
        p.bump_r_epoch();
        assert_eq!(p.lead(), -1);
        // Across the u64 wrap: A at 1, R at MAX means A is 2 ahead.
        p.r_epoch = u64::MAX;
        p.a_epoch = 1;
        assert_eq!(p.lead(), 2);
    }

    #[test]
    fn pairs_start_healthy() {
        let p = pair(SlipSync::G0);
        assert_eq!(p.mode, PairMode::Slipstream);
        assert!(!p.demoted());
        assert_eq!(p.demoted_at, None);
        assert_eq!(
            (p.recoveries, p.watchdog_recoveries, p.faults_injected),
            (0, 0, 0)
        );
    }
}
