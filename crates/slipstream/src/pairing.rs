//! A–R pair state: token semaphores, scheduling handshake, epochs.
//!
//! Each CMP node in slipstream mode hosts one pair. The pair owns:
//!
//! * the **token semaphore** of Figure 1 — the R-stream inserts a token
//!   per construct barrier (at entry for local sync, at exit for global
//!   sync); the A-stream consumes one to skip the barrier and blocks when
//!   none are available;
//! * the **scheduling/syscall semaphore** — initialized to zero; used for
//!   the dynamic-scheduling handshake (the R-stream publishes its chunk
//!   decision and signals; the A-stream waits and mirrors it) and for
//!   input-operation synchronization;
//! * **epoch counters** — barrier sessions passed by each stream, used to
//!   gate store→prefetch conversion ("the A-stream is in the same session
//!   with its R-stream") and to detect divergence.

use dsm_sim::{Addr, CpuId, Semaphore};
use omp_ir::wsloop::Chunk;
use omp_rt::mode::SlipSync;
use std::collections::VecDeque;

/// A scheduling decision the R-stream publishes for its A-stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// A dynamic/guided loop chunk.
    Chunk(Chunk),
    /// A claimed section index.
    Section(usize),
    /// An input operation completed; the A-stream may proceed past it
    /// ("the A-stream should see the same image of the data that the
    /// R-stream sees").
    IoDone,
    /// The R-master finished configuring a parallel region; the A-master
    /// may enter it (region state is shared runtime data the A-stream
    /// must observe consistently).
    RegionGo,
    /// The R-stream exhausted the construct; the A-stream moves on.
    End,
}

/// State of one A–R pair.
#[derive(Debug)]
pub struct PairState {
    /// The shared OpenMP thread id of the pair.
    pub tid: u64,
    /// The R-stream's processor.
    pub r_cpu: CpuId,
    /// The A-stream's processor.
    pub a_cpu: CpuId,
    /// Synchronization method for the current region.
    pub sync: SlipSync,
    /// The token semaphore (pair-shared hardware register).
    pub tokens: Semaphore,
    /// The scheduling/syscall semaphore (initialized to zero; paper
    /// Section 2.2).
    pub sched_sem: Semaphore,
    /// Published scheduling decisions, consumed in FIFO order.
    pub decisions: VecDeque<Decision>,
    /// Shared line the R-stream writes decisions to (the A-stream reads it
    /// after each signal).
    pub decision_addr: Addr,
    /// Barrier sessions completed by the R-stream in the current region.
    pub r_epoch: u64,
    /// Barrier sessions completed (skipped) by the A-stream.
    pub a_epoch: u64,
    /// The A-stream has diverged and stopped making useful progress.
    pub diverged: bool,
    /// Number of recoveries performed on this pair.
    pub recoveries: u64,
}

impl PairState {
    /// Build the pair for thread `tid`.
    pub fn new(
        tid: u64,
        r_cpu: CpuId,
        a_cpu: CpuId,
        sync: SlipSync,
        token_addr: Addr,
        sched_addr: Addr,
        decision_addr: Addr,
    ) -> Self {
        PairState {
            tid,
            r_cpu,
            a_cpu,
            sync,
            tokens: Semaphore::new(sync.tokens, token_addr),
            sched_sem: Semaphore::new(0, sched_addr),
            decisions: VecDeque::new(),
            decision_addr,
            r_epoch: 0,
            a_epoch: 0,
            diverged: false,
            recoveries: 0,
        }
    }

    /// Reconfigure at the start of a parallel region: reset tokens to the
    /// region's initial count and align epochs. ("At the beginning of a
    /// parallel region, a number of tokens is allocated...") Serial-part
    /// handshake decisions (I/O, region-go) may still be in flight and are
    /// preserved.
    pub fn start_region(&mut self, sync: SlipSync) {
        self.sync = sync;
        self.tokens.reset(sync.tokens);
        self.r_epoch = 0;
        self.a_epoch = 0;
    }

    /// True when both streams are in the same barrier session — the
    /// store-conversion gate.
    pub fn same_session(&self) -> bool {
        self.r_epoch == self.a_epoch
    }

    /// Divergence heuristic evaluated by the R-stream at a barrier: tokens
    /// accumulating unconsumed beyond the initial allocation plus slack
    /// mean the A-stream is no longer visiting barriers.
    pub fn divergence_suspected(&self, slack: u64) -> bool {
        self.tokens.count() > self.sync.tokens + slack
    }

    /// Publish a scheduling decision (R-stream side). Returns the parked
    /// A-stream processor to wake, if it was waiting on the semaphore.
    pub fn publish(&mut self, d: Decision) -> Option<CpuId> {
        self.decisions.push_back(d);
        self.sched_sem.signal()
    }

    /// Consume the next published decision (A-stream side, after a
    /// successful semaphore wait).
    pub fn take_decision(&mut self) -> Decision {
        self.decisions
            .pop_front()
            .expect("semaphore granted but no decision published")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(sync: SlipSync) -> PairState {
        PairState::new(0, CpuId(0), CpuId(1), sync, 0x100, 0x140, 0x180)
    }

    #[test]
    fn region_start_resets_tokens() {
        let mut p = pair(SlipSync::L1);
        assert_eq!(p.tokens.count(), 1);
        p.tokens.wait(CpuId(1));
        p.start_region(SlipSync::G0);
        assert_eq!(p.tokens.count(), 0);
        assert!(p.sync.global);
        assert!(p.same_session());
    }

    #[test]
    fn session_tracking() {
        let mut p = pair(SlipSync::G0);
        assert!(p.same_session());
        p.a_epoch += 1;
        assert!(!p.same_session());
        p.r_epoch += 1;
        assert!(p.same_session());
    }

    #[test]
    fn divergence_heuristic() {
        let mut p = pair(SlipSync::G0);
        assert!(!p.divergence_suspected(1));
        // R inserts tokens that A never consumes.
        p.tokens.signal();
        assert!(!p.divergence_suspected(1), "one unconsumed token is slack");
        p.tokens.signal();
        assert!(p.divergence_suspected(1));
    }

    #[test]
    fn handshake_fifo() {
        let mut p = pair(SlipSync::G0);
        // A arrives first: parks on the semaphore.
        assert!(!p.sched_sem.wait(CpuId(1)));
        // R publishes: wakes A.
        let woken = p.publish(Decision::Chunk(Chunk { lo: 0, hi: 8 }));
        assert_eq!(woken, Some(CpuId(1)));
        assert_eq!(p.take_decision(), Decision::Chunk(Chunk { lo: 0, hi: 8 }));
        // R publishes ahead; A consumes without parking.
        assert_eq!(p.publish(Decision::End), None);
        assert!(p.sched_sem.wait(CpuId(1)));
        assert_eq!(p.take_decision(), Decision::End);
    }
}
