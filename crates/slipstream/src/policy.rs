//! The A-stream policy table (paper Section 3.1).
//!
//! The paper specifies, construct by construct, what the advanced stream
//! does: skip synchronization and shared stores, skip `single` and
//! `critical`, execute `master` and `atomic`, treat `flush` as void, run
//! reduction bodies but not the shared combine, never perform I/O, and
//! synchronize with the R-stream at dynamic scheduling points. The table
//! is explicit data so ablation benches can flip individual rows.

use serde::{Deserialize, Serialize};

/// What the A-stream does when it reaches a construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AAction {
    /// Execute the construct like the R-stream.
    Execute,
    /// Skip the construct entirely.
    Skip,
    /// Wait for the R-stream's decision (dynamic scheduling handshake).
    SyncWithR,
}

/// Per-construct A-stream policy. [`AStreamPolicy::paper`] encodes the
/// paper's table; individual rows can be overridden for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AStreamPolicy {
    /// `single` sections: skipped — "there is no clear way an A-stream can
    /// tell that its R-stream will execute this section".
    pub single: AAction,
    /// `master` sections: executed — "the R-stream to execute this section
    /// is predetermined a priori".
    pub master: AAction,
    /// `critical` sections: skipped — "they may cause unnecessary
    /// migration of data".
    pub critical: AAction,
    /// `atomic` updates: executed (as read-exclusive prefetches) — "the
    /// data prefetched by the A-stream are highly likely not to be
    /// migrated".
    pub atomic: AAction,
    /// Reduction loop bodies execute as user code; this row governs the
    /// shared combine step (inside a critical section → skipped).
    pub reduction_combine: AAction,
    /// Convert shared stores into read-exclusive prefetches when the
    /// A-stream is in the same barrier session as its R-stream and an MSHR
    /// is free; otherwise the store is skipped.
    pub convert_shared_stores: bool,
    /// `sections` under dynamic assignment synchronize with the R-stream.
    pub sections: AAction,
    /// Slipstream self-invalidation (paper Section 2): A-stream reads of
    /// dirty remote lines hint the producer to write back and drop its
    /// copy. The paper ties this optimization to one-token-global
    /// synchronization; it defaults off (the evaluated configuration).
    pub self_invalidation: bool,
}

impl AStreamPolicy {
    /// The exact policy of paper Section 3.1.
    pub fn paper() -> Self {
        AStreamPolicy {
            single: AAction::Skip,
            master: AAction::Execute,
            critical: AAction::Skip,
            atomic: AAction::Execute,
            reduction_combine: AAction::Skip,
            convert_shared_stores: true,
            sections: AAction::SyncWithR,
            self_invalidation: false,
        }
    }

    /// Extension: enable self-invalidation hints.
    pub fn with_self_invalidation(mut self) -> Self {
        self.self_invalidation = true;
        self
    }

    /// Ablation: no store conversion (A-stream skips shared stores
    /// outright).
    pub fn without_store_conversion(mut self) -> Self {
        self.convert_shared_stores = false;
        self
    }

    /// Ablation: A-stream executes critical sections too.
    pub fn with_critical_execution(mut self) -> Self {
        self.critical = AAction::Execute;
        self
    }
}

impl Default for AStreamPolicy {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_policy_matches_section_3_1() {
        let p = AStreamPolicy::paper();
        assert_eq!(p.single, AAction::Skip);
        assert_eq!(p.master, AAction::Execute);
        assert_eq!(p.critical, AAction::Skip);
        assert_eq!(p.atomic, AAction::Execute);
        assert_eq!(p.reduction_combine, AAction::Skip);
        assert_eq!(p.sections, AAction::SyncWithR);
        assert!(p.convert_shared_stores);
    }

    #[test]
    fn ablations_flip_rows() {
        let p = AStreamPolicy::paper().without_store_conversion();
        assert!(!p.convert_shared_stores);
        let p = AStreamPolicy::paper().with_critical_execution();
        assert_eq!(p.critical, AAction::Execute);
        let p = AStreamPolicy::paper().with_self_invalidation();
        assert!(p.self_invalidation);
        assert!(!AStreamPolicy::paper().self_invalidation, "off by default");
    }
}
