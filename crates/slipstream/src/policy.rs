//! The A-stream policy table (paper Section 3.1).
//!
//! The paper specifies, construct by construct, what the advanced stream
//! does: skip synchronization and shared stores, skip `single` and
//! `critical`, execute `master` and `atomic`, treat `flush` as void, run
//! reduction bodies but not the shared combine, never perform I/O, and
//! synchronize with the R-stream at dynamic scheduling points. The table
//! is explicit data so ablation benches can flip individual rows.

/// What the A-stream does when it reaches a construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AAction {
    /// Execute the construct like the R-stream.
    Execute,
    /// Skip the construct entirely.
    Skip,
    /// Wait for the R-stream's decision (dynamic scheduling handshake).
    SyncWithR,
}

/// Per-construct A-stream policy. [`AStreamPolicy::paper`] encodes the
/// paper's table; individual rows can be overridden for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AStreamPolicy {
    /// `single` sections: skipped — "there is no clear way an A-stream can
    /// tell that its R-stream will execute this section".
    pub single: AAction,
    /// `master` sections: executed — "the R-stream to execute this section
    /// is predetermined a priori".
    pub master: AAction,
    /// `critical` sections: skipped — "they may cause unnecessary
    /// migration of data".
    pub critical: AAction,
    /// `atomic` updates: executed (as read-exclusive prefetches) — "the
    /// data prefetched by the A-stream are highly likely not to be
    /// migrated".
    pub atomic: AAction,
    /// Reduction loop bodies execute as user code; this row governs the
    /// shared combine step (inside a critical section → skipped).
    pub reduction_combine: AAction,
    /// Convert shared stores into read-exclusive prefetches when the
    /// A-stream is in the same barrier session as its R-stream and an MSHR
    /// is free; otherwise the store is skipped.
    pub convert_shared_stores: bool,
    /// `sections` under dynamic assignment synchronize with the R-stream.
    pub sections: AAction,
    /// Slipstream self-invalidation (paper Section 2): A-stream reads of
    /// dirty remote lines hint the producer to write back and drop its
    /// copy. The paper ties this optimization to one-token-global
    /// synchronization; it defaults off (the evaluated configuration).
    pub self_invalidation: bool,
}

impl AStreamPolicy {
    /// The exact policy of paper Section 3.1.
    pub fn paper() -> Self {
        AStreamPolicy {
            single: AAction::Skip,
            master: AAction::Execute,
            critical: AAction::Skip,
            atomic: AAction::Execute,
            reduction_combine: AAction::Skip,
            convert_shared_stores: true,
            sections: AAction::SyncWithR,
            self_invalidation: false,
        }
    }

    /// Extension: enable self-invalidation hints.
    pub fn with_self_invalidation(mut self) -> Self {
        self.self_invalidation = true;
        self
    }

    /// Ablation: no store conversion (A-stream skips shared stores
    /// outright).
    pub fn without_store_conversion(mut self) -> Self {
        self.convert_shared_stores = false;
        self
    }

    /// Ablation: A-stream executes critical sections too.
    pub fn with_critical_execution(mut self) -> Self {
        self.critical = AAction::Execute;
        self
    }
}

impl Default for AStreamPolicy {
    fn default() -> Self {
        Self::paper()
    }
}

/// Divergence detection and recovery knobs (paper Section 4.4, hardened).
///
/// Detection has three tiers. The cheap tier is the paper's token-slack
/// heuristic: tokens accumulating beyond `sync.tokens + divergence_slack`
/// at an R-stream barrier suggest the A-stream has stopped consuming.
/// The middle tier is the **token-wait timeout**: an A-stream parked on a
/// token or scheduling-decision semaphore for more than
/// `token_wait_cycles` is declared diverged and recovered, with the
/// deadline backing off exponentially (each consecutive timeout within a
/// region doubles the next wait, up to `token_wait_shift_cap` doublings)
/// so a genuinely slow R-stream is not thrashed by repeated recoveries.
/// The backstop tier is the barrier **watchdog**: an R-stream parked at
/// the region-end barrier for more than `watchdog_cycles` forces recovery
/// of any stuck A-stream rather than deadlocking (lost tokens or lost
/// scheduling signals can strand an A-stream where no slack ever
/// accumulates). Recovery is **bounded**: once a pair has recovered more
/// than `max_recoveries_per_pair` times within one health episode,
/// retrying is judged futile and the pair is demoted to single-stream
/// mode ([`omp_rt::mode::PairMode::DegradedSingle`]); whether demotion is
/// final or probationary is the health controller's call (see
/// `HealthPolicy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Cycles charged to re-seed an A-stream from its R-stream
    /// (architectural-state copy + pipeline refill).
    pub recovery_cycles: u64,
    /// Extra tokens beyond the sync policy's count tolerated before an
    /// R-stream barrier check suspects divergence.
    pub divergence_slack: u64,
    /// Cycles an R-stream may wait at the region-end barrier before the
    /// watchdog forces recovery of stuck A-streams. 0 disables the
    /// watchdog.
    pub watchdog_cycles: u64,
    /// Recoveries after which a pair is demoted to single-stream mode.
    pub max_recoveries_per_pair: u64,
    /// Base cycles an A-stream may park on the token/decision semaphore
    /// path before the timeout declares it diverged. 0 disables the
    /// timeout (the paper's configuration).
    pub token_wait_cycles: u64,
    /// Cap on the exponential backoff of the token-wait deadline: the
    /// n-th consecutive timeout in a region waits
    /// `token_wait_cycles << min(n, cap)`.
    pub token_wait_shift_cap: u32,
}

impl RecoveryPolicy {
    /// The default configuration used by the evaluation: recovery cost
    /// and slack from the paper's runtime, a watchdog comfortably above
    /// any legitimate barrier wait on the simulated machine, a small
    /// retry budget, and no token-wait timeout (the watchdog alone is the
    /// paper's anti-wedge backstop).
    pub fn paper() -> Self {
        RecoveryPolicy {
            recovery_cycles: 400,
            divergence_slack: 1,
            watchdog_cycles: 2_000_000,
            max_recoveries_per_pair: 8,
            token_wait_cycles: 0,
            token_wait_shift_cap: 3,
        }
    }

    /// The hardened configuration used by the chaos-soak harness: the
    /// paper settings plus a token-wait timeout at half the watchdog
    /// horizon, so a lost token or lost signal recovers an A-stream even
    /// in configurations where the watchdog never gets the chance.
    pub fn hardened() -> Self {
        RecoveryPolicy {
            token_wait_cycles: 1_000_000,
            ..Self::paper()
        }
    }

    /// Builder: override the watchdog deadline.
    ///
    /// `cycles == 0` means **disabled** — the watchdog never arms and
    /// never fires — not "fire every cycle". Disable it only when another
    /// anti-wedge tier (the token-wait timeout) is active, or when a
    /// deadlock is the desired observable outcome of a fault.
    pub fn with_watchdog(mut self, cycles: u64) -> Self {
        self.watchdog_cycles = cycles;
        self
    }

    /// Builder: override the per-pair retry budget.
    pub fn with_max_recoveries(mut self, n: u64) -> Self {
        self.max_recoveries_per_pair = n;
        self
    }

    /// Builder: override the token-wait timeout base. `cycles == 0`
    /// disables the timeout tier entirely.
    pub fn with_token_wait(mut self, cycles: u64) -> Self {
        self.token_wait_cycles = cycles;
        self
    }

    /// Builder: override the token-wait backoff cap.
    pub fn with_token_wait_shift_cap(mut self, cap: u32) -> Self {
        self.token_wait_shift_cap = cap;
        self
    }

    /// Effective token-wait deadline length after `timeouts` consecutive
    /// timeouts in the current region (exponential backoff, capped).
    /// Returns `None` when the timeout tier is disabled.
    pub fn token_wait_deadline(&self, timeouts: u32) -> Option<u64> {
        if self.token_wait_cycles == 0 {
            return None;
        }
        let shift = timeouts.min(self.token_wait_shift_cap);
        Some(self.token_wait_cycles.saturating_shl(shift))
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_policy_matches_section_3_1() {
        let p = AStreamPolicy::paper();
        assert_eq!(p.single, AAction::Skip);
        assert_eq!(p.master, AAction::Execute);
        assert_eq!(p.critical, AAction::Skip);
        assert_eq!(p.atomic, AAction::Execute);
        assert_eq!(p.reduction_combine, AAction::Skip);
        assert_eq!(p.sections, AAction::SyncWithR);
        assert!(p.convert_shared_stores);
    }

    #[test]
    fn ablations_flip_rows() {
        let p = AStreamPolicy::paper().without_store_conversion();
        assert!(!p.convert_shared_stores);
        let p = AStreamPolicy::paper().with_critical_execution();
        assert_eq!(p.critical, AAction::Execute);
        let p = AStreamPolicy::paper().with_self_invalidation();
        assert!(p.self_invalidation);
        assert!(!AStreamPolicy::paper().self_invalidation, "off by default");
    }

    #[test]
    fn recovery_policy_builders() {
        let r = RecoveryPolicy::paper()
            .with_watchdog(12_345)
            .with_max_recoveries(2);
        assert_eq!(r.watchdog_cycles, 12_345);
        assert_eq!(r.max_recoveries_per_pair, 2);
        assert_eq!(r.recovery_cycles, RecoveryPolicy::paper().recovery_cycles);
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::paper());
    }

    #[test]
    fn watchdog_zero_means_disabled() {
        let r = RecoveryPolicy::paper().with_watchdog(0);
        assert_eq!(r.watchdog_cycles, 0, "zero is the documented off switch");
        // The paper preset keeps the watchdog armed.
        assert!(RecoveryPolicy::paper().watchdog_cycles > 0);
    }

    #[test]
    fn token_wait_backoff_doubles_up_to_the_cap() {
        let r = RecoveryPolicy::paper()
            .with_token_wait(1_000)
            .with_token_wait_shift_cap(2);
        assert_eq!(r.token_wait_deadline(0), Some(1_000));
        assert_eq!(r.token_wait_deadline(1), Some(2_000));
        assert_eq!(r.token_wait_deadline(2), Some(4_000));
        assert_eq!(r.token_wait_deadline(3), Some(4_000), "capped");
        assert_eq!(r.token_wait_deadline(100), Some(4_000));
    }

    #[test]
    fn token_wait_zero_means_disabled() {
        let r = RecoveryPolicy::paper();
        assert_eq!(r.token_wait_cycles, 0, "paper config has no timeout tier");
        assert_eq!(r.token_wait_deadline(0), None);
        assert_eq!(r.token_wait_deadline(7), None);
        let h = RecoveryPolicy::hardened();
        assert_eq!(h.token_wait_cycles, 1_000_000);
        assert!(h.token_wait_deadline(0).is_some());
    }

    #[test]
    fn token_wait_backoff_saturates_instead_of_overflowing() {
        let r = RecoveryPolicy::paper()
            .with_token_wait(u64::MAX / 2)
            .with_token_wait_shift_cap(8);
        assert_eq!(r.token_wait_deadline(8), Some(u64::MAX));
    }
}
